"""Command-line interface: ``grayscott <command>``.

Commands:

- ``run <settings.json>`` — run the end-to-end workflow from a settings
  file (the artifact's usage pattern) and print the provenance report;
  ``--trace-out``/``--metrics-out`` capture a Chrome/Perfetto trace and
  a metrics JSON through :mod:`repro.observe`; ``--virtual-ranks N``
  [``--overlap``] switches to the event-driven modeled SPMD mode
  (:mod:`repro.core.virtual` on :mod:`repro.sched` — thousands of
  ranks, no threads);
- ``trace <trace.json>`` — summarize a trace written by
  ``run --trace-out`` (per-category totals, lanes, ASCII timeline);
- ``observe <tail|summary|merge-shards|flamegraph>`` — work with
  *streamed* telemetry (:mod:`repro.observe.stream`): tail the last
  spans of a shard stream, summarize it, merge shards back into one
  Chrome JSON, or render a sim-profiler folded profile;
- ``lint <settings.json>`` — statically analyze the run the settings
  describe (kernel bounds/races/type stability, exchange-plan deadlock
  and matching, ADIOS step protocol and coverage) without executing it;
  exits nonzero on error-severity diagnostics (``--format json`` emits
  a SARIF-like record, ``--rules`` selects rule ids);
- ``analyze <dataset.bp>`` — summarize a dataset and render the centre
  V slice as an ASCII heatmap (the Figure 9 session, in a terminal);
- ``bpls <dataset.bp>`` — the Listing 1 provenance record;
- ``bench <target>`` — regenerate a paper table/figure (table1-3,
  fig5-8, listing1/4), the strong-scaling extension (``strong``), or
  the machine-readable JSON of everything (``report``);
- ``campaign <base.json> --regimes a,b`` — Pearson-regime sweeps
  (``--jobs N`` fans members over worker processes, byte-identical to
  serial; exit codes follow the lint 0/1/2 contract);
- ``serve <base.json> --smoke|--load N`` — the simulator as an
  always-on cached service (:mod:`repro.serve`): repeated settings are
  answered from the canonical-hash cache byte-identically, ``--load``
  replays synthetic concurrent clients and reports p50/p99 latency;
- ``compare <a.bp> <b.bp> [--strict]`` — dataset diffs (max/RMS/PSNR).
"""

from __future__ import annotations

import argparse
import sys


def _trace_mode(path: str) -> str:
    """How ``--trace-out`` should write: streamed or monolithic.

    A ``.jsonl`` suffix streams to a single JSONL shard; a directory —
    existing, trailing-separator, or suffixless — streams rotating
    shards plus a manifest; anything else is the monolithic Chrome
    JSON dump.
    """
    import os
    from pathlib import Path

    p = Path(path)
    if p.suffix == ".jsonl":
        return "jsonl"
    if p.is_dir() or path.endswith(os.sep) or p.suffix == "":
        return "dir"
    return "mono"


def _probe_trace_out(path: str, mode: str) -> str | None:
    """An error message if ``--trace-out`` cannot be written, else None.

    Probed before the run starts, so an unwritable destination fails in
    seconds instead of after the workflow has finished (the old
    behavior: the exit-time dump raised with the whole run already
    spent).
    """
    import os
    from pathlib import Path

    p = Path(path)
    if mode == "dir":
        try:
            p.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            return f"cannot create trace directory {p}: {exc}"
        if not os.access(p, os.W_OK):
            return f"trace directory {p} is not writable"
        return None
    parent = p.parent if str(p.parent) else Path(".")
    if not parent.is_dir():
        return (
            f"trace output directory {parent} does not exist "
            f"(cannot write {p})"
        )
    if not os.access(parent, os.W_OK):
        return f"trace output directory {parent} is not writable"
    if p.exists() and not os.access(p, os.W_OK):
        return f"trace output {p} is not writable"
    return None


def _probe_jit_cache(path: str) -> str | None:
    """An error message if a JIT cache at ``path`` cannot be used, else None.

    Same early-failure contract as ``--trace-out``: a bad cache path
    exits 2 before the run starts.
    """
    import os
    from pathlib import Path

    p = Path(path)
    if p.exists() and not p.is_dir():
        return f"jit cache path {p} exists and is not a directory"
    try:
        p.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        return f"cannot create jit cache directory {p}: {exc}"
    if not os.access(p, os.W_OK):
        return f"jit cache directory {p} is not writable"
    return None


def _streaming_tracer(trace_out: str):
    """A retain-nothing tracer streaming to ``trace_out`` shards."""
    from repro.observe.stream import ShardedPerfettoWriter
    from repro.observe.trace import Tracer

    writer = ShardedPerfettoWriter(trace_out)
    return Tracer(sinks=[writer], retain=False), writer


def _finish_stream(tracer, writer, trace_out: str) -> None:
    tracer.close()
    kind = (
        "shard" if writer.single_file
        else f"shards in {trace_out.rstrip('/')}/"
    )
    print(
        f"streamed {writer.total_spans} spans to {writer.target} ({kind}; "
        f"merge with 'grayscott observe merge-shards {trace_out}')"
    )


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.core.execute import JobSpec, execute_job
    from repro.core.settings import GrayScottSettings
    from repro.observe import trace as observe

    settings = GrayScottSettings.load(args.settings)
    if args.ranks is not None:
        settings = settings.with_overrides(ranks=args.ranks)

    trace_mode = _trace_mode(args.trace_out) if args.trace_out else None
    if args.trace_out:
        problem = _probe_trace_out(args.trace_out, trace_mode)
        if problem is not None:
            print(f"grayscott: {problem}", file=sys.stderr)
            return 2
    if args.jit_cache:
        problem = _probe_jit_cache(args.jit_cache)
        if problem is not None:
            print(f"grayscott: {problem}", file=sys.stderr)
            return 2
        from repro.gpu import jitcache

        warm = jitcache.warm_start(args.jit_cache)
        print(f"jit cache: {warm['preloaded']} plan(s) preloaded from "
              f"{args.jit_cache}")

    if args.virtual_ranks is not None:
        return _run_virtual(args, settings, trace_mode)
    if args.sim_profile:
        print("grayscott: --sim-profile requires --virtual-ranks",
              file=sys.stderr)
        return 2
    if args.overlap:
        print("grayscott: --overlap requires --virtual-ranks", file=sys.stderr)
        return 2
    if args.nic_contention:
        print("grayscott: --nic-contention requires --virtual-ranks",
              file=sys.stderr)
        return 2
    if args.jobs != 1:
        print("grayscott: --jobs requires --virtual-ranks", file=sys.stderr)
        return 2
    if args.engine != "auto":
        print("grayscott: --engine requires --virtual-ranks", file=sys.stderr)
        return 2

    profiler = None
    if args.trace:
        if settings.backend == "cpu":
            print("grayscott: --trace needs a GPU backend (julia/hip)",
                  file=sys.stderr)
            return 2
        from repro.gpu.rocprof import Profiler

        profiler = Profiler()
    tracing = bool(args.trace_out or args.metrics_out)

    spec = JobSpec(settings=settings)

    stream_writer = None
    if tracing:
        if args.trace_out and trace_mode != "mono":
            session_tracer, stream_writer = _streaming_tracer(args.trace_out)
        else:
            session_tracer = None
        with observe.session(session_tracer) as tracer:
            result = execute_job(spec, gpu_profiler=profiler)
            if args.trace_out and stream_writer is None:
                from repro.observe.export import write_chrome_trace

                write_chrome_trace(tracer, args.trace_out)
            if args.metrics_out:
                from repro.observe.export import write_metrics_json

                write_metrics_json(tracer.metrics, args.metrics_out)
    else:
        result = execute_job(spec, gpu_profiler=profiler)
    print(result.render())
    if args.timings:
        print(result.timings.render())
    if args.trace:
        profiler.report().write_csv(args.trace)
        print(f"rocprof-style trace written to {args.trace}")
    if stream_writer is not None:
        _finish_stream(tracer, stream_writer, args.trace_out)
    elif args.trace_out:
        print(f"chrome trace written to {args.trace_out} "
              "(load it at https://ui.perfetto.dev)")
    if args.metrics_out:
        print(f"metrics written to {args.metrics_out}")
    return 0


def _run_virtual(args: argparse.Namespace, settings, trace_mode=None) -> int:
    """``run --virtual-ranks N``: event-driven modeled SPMD execution."""
    from repro.core.execute import JobSpec, execute_job

    if args.engine == "vector" and args.nic_contention:
        print("grayscott: --engine vector is incompatible with "
              "--nic-contention (use --engine batch or auto)",
              file=sys.stderr)
        return 2
    if args.engine == "vector" and args.sim_profile:
        print("grayscott: --engine vector is incompatible with "
              "--sim-profile (use --engine batch or auto)", file=sys.stderr)
        return 2
    tracer = None
    stream_writer = None
    if args.trace_out and trace_mode != "mono":
        tracer, stream_writer = _streaming_tracer(args.trace_out)
    elif args.trace_out or args.metrics_out:
        from repro.observe.trace import Tracer

        tracer = Tracer()
    profiler = None
    if args.sim_profile:
        from repro.sched import SimProfiler

        profiler = SimProfiler(args.sim_profile_interval)
        if args.jobs != 1:
            print("grayscott: --sim-profile samples one engine; "
                  "running serially (--jobs ignored)", file=sys.stderr)
    spec = JobSpec(
        settings=settings,
        mode="virtual",
        virtual_ranks=args.virtual_ranks,
        overlap=args.overlap,
        nic_contention=args.nic_contention,
    )
    result = execute_job(
        spec, jobs=args.jobs, tracer=tracer, profiler=profiler,
        engine=args.engine,
    )
    print(result.render())
    if stream_writer is not None:
        _finish_stream(tracer, stream_writer, args.trace_out)
    elif args.trace_out:
        from repro.observe.export import write_chrome_trace

        write_chrome_trace(tracer, args.trace_out)
        print(f"chrome trace written to {args.trace_out} "
              "(load it at https://ui.perfetto.dev)")
    if args.metrics_out:
        from repro.observe.export import write_metrics_json

        write_metrics_json(tracer.metrics, args.metrics_out)
        print(f"metrics written to {args.metrics_out}")
    if profiler is not None:
        profiler.write_folded(args.sim_profile)
        print(f"sim profile ({profiler.samples_taken} samples) written to "
              f"{args.sim_profile} (render with 'grayscott observe "
              f"flamegraph {args.sim_profile}')")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """``grayscott lint``: exit 0 clean, 1 on errors, 2 on usage/IO."""
    import json

    from repro.core.settings import GrayScottSettings
    from repro.lint import check_rule_ids, exit_code, render_text, to_sarif
    from repro.lint.runner import lint_workflow
    from repro.util.errors import ConfigError, IrError, LintError

    rules = None
    if args.rules:
        try:
            rules = check_rule_ids(
                r.strip() for r in args.rules.split(",") if r.strip()
            )
        except LintError as exc:
            print(f"grayscott: {exc}", file=sys.stderr)
            return 2

    if args.passes:
        from repro.ir.passes import parse_pipeline

        try:
            parse_pipeline(args.passes)
        except IrError as exc:
            print(f"grayscott: {exc}", file=sys.stderr)
            return 2

    try:
        settings = GrayScottSettings.load(args.settings)
    except (ConfigError, OSError) as exc:
        print(f"grayscott: {exc}", file=sys.stderr)
        return 2
    report = lint_workflow(settings, rules=rules, passes=args.passes)

    if args.format in ("json", "sarif"):
        text = json.dumps(to_sarif(report), indent=2)
    else:
        text = render_text(report, title=f"lint: {args.settings}")
    if args.out:
        from repro.util.files import atomic_write_text

        try:
            atomic_write_text(args.out, text + "\n")
        except OSError as exc:
            print(f"grayscott: cannot write {args.out}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"lint report written to {args.out}")
    else:
        print(text)
    return exit_code(report)


def _parse_shape(text: str) -> tuple[int, int, int]:
    from repro.util.errors import IrError

    parts = [p for p in text.lower().replace(",", "x").split("x") if p]
    try:
        dims = tuple(int(p) for p in parts)
    except ValueError:
        raise IrError(f"malformed shape {text!r}; expected NxNxN") from None
    if len(dims) == 1:
        dims = dims * 3
    if len(dims) != 3 or any(d < 4 for d in dims):
        raise IrError(
            f"shape {text!r} must have 3 extents of at least 4"
        )
    return dims


def _ir_module(args):
    """The stencil-IR module an ``ir`` subcommand operates on."""
    from repro.core.settings import GrayScottSettings
    from repro.ir.build import workflow_module
    from repro.util.errors import IrError

    settings = (
        GrayScottSettings.load(args.settings) if args.settings else None
    )
    module = workflow_module(settings)
    if args.kernel:
        names = [f.name for f in module.funcs]
        if args.kernel not in names:
            raise IrError(
                f"unknown kernel {args.kernel!r}; module has: "
                + ", ".join(names)
            )
        module = module.with_funcs(
            [f for f in module.funcs if f.name == args.kernel]
        )
    return module


def _emit(text: str, out: str | None, what: str) -> int:
    if out:
        from repro.util.files import atomic_write_text

        try:
            atomic_write_text(out, text + "\n")
        except OSError as exc:
            print(f"grayscott: cannot write {out}: {exc}", file=sys.stderr)
            return 2
        print(f"{what} written to {out}")
    else:
        print(text)
    return 0


def _cmd_ir(args: argparse.Namespace) -> int:
    """``grayscott ir <dump|verify|optimize>`` over the workflow module.

    Exit codes follow the lint contract: 0 on success/clean, 1 when
    ``verify`` finds problems, 2 on usage or IO errors.
    """
    import json

    from repro.util.errors import ConfigError, IrError

    try:
        module = _ir_module(args)
    except (ConfigError, IrError, OSError) as exc:
        print(f"grayscott: {exc}", file=sys.stderr)
        return 2

    if args.ir_command == "dump":
        if args.format == "json":
            text = json.dumps(module.to_json(), indent=2)
        else:
            text = module.render()
        return _emit(text, args.out, "IR dump")

    if args.ir_command == "verify":
        from repro.ir.analysis import AnalysisContext
        from repro.lint import check_ir_func, render_text, to_sarif
        from repro.lint.diagnostics import LintReport
        from repro.lint.kernels import analyze_ir_func

        problems = module.verify()
        if problems:
            for problem in problems:
                print(f"grayscott: invalid IR: {problem}", file=sys.stderr)
            return 1
        report = LintReport()
        for func in module.funcs:
            ctx = AnalysisContext(func)
            analyze_ir_func(func, report=report, ctx=ctx)
            check_ir_func(func, report=report, ctx=ctx)
        if args.format in ("json", "sarif"):
            text = json.dumps(to_sarif(report), indent=2)
        else:
            text = render_text(report, title=f"ir verify: {module.name}")
        code = _emit(text, args.out, "IR verify report")
        if code:
            return code
        from repro.lint import exit_code

        return exit_code(report)

    # optimize
    from repro.ir.passes import parse_pipeline
    from repro.ir.perfmodel import counterfactual

    try:
        pipeline = parse_pipeline(args.passes)
        shape = _parse_shape(args.shape)
    except IrError as exc:
        print(f"grayscott: {exc}", file=sys.stderr)
        return 2
    result = counterfactual(
        module,
        shape=shape,
        passes=pipeline,
        exact=args.exact,
        capacity_bytes=args.capacity_bytes,
    )
    if args.format == "json":
        text = json.dumps(result.to_json(), indent=2)
    else:
        text = result.render()
    return _emit(text, args.out, "IR optimize report")


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.observe.export import load_chrome_trace, summarize_chrome_trace

    obj = load_chrome_trace(args.trace)
    print(summarize_chrome_trace(obj, width=args.width))
    return 0


def _cmd_observe_tail(args: argparse.Namespace) -> int:
    from repro.observe.stream import tail_spans

    records = tail_spans(args.source, args.lines)
    if not records:
        print("(empty stream)")
        return 0
    for rec in records:
        extra = ""
        if rec["args"]:
            pairs = ", ".join(f"{k}={v}" for k, v in sorted(rec["args"].items()))
            extra = f"  [{pairs}]"
        print(
            f"[{rec['clock']}] {rec['process']}/{rec['thread']} "
            f"{rec['start']:.6f}s +{rec['seconds']:.6f}s "
            f"{rec['cat']}:{rec['name']}{extra}"
        )
    return 0


def _cmd_observe_summary(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.observe.export import load_chrome_trace, summarize_chrome_trace
    from repro.observe.stream import is_shard_source, load_manifest

    source = Path(args.source)
    if is_shard_source(source) and source.suffix != ".jsonl":
        manifest = load_manifest(source)
        print(
            f"shard stream: {manifest['spans']} spans in "
            f"{len(manifest['shards'])} shard(s)"
        )
        print()
    obj = load_chrome_trace(args.source)
    print(summarize_chrome_trace(obj, width=args.width))
    return 0


def _cmd_observe_merge(args: argparse.Namespace) -> int:
    from repro.observe.stream import write_merged

    out = write_merged(args.source, args.out)
    print(f"merged trace written to {out} "
          "(load it at https://ui.perfetto.dev)")
    return 0


def _cmd_observe_flamegraph(args: argparse.Namespace) -> int:
    from repro.sched.profiler import load_folded, render_stacks

    print(render_stacks(load_folded(args.profile), width=args.width))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.reader import GrayScottDataset
    from repro.analysis.render import ascii_heatmap
    from repro.analysis.stats import classify_pattern

    ds = GrayScottDataset(args.dataset)
    print(f"dataset: {args.dataset}")
    print(f"shape: {ds.shape}, output steps: {len(ds.steps)}")
    for name in ds.FIELDS:
        lo, hi = ds.minmax(name)
        print(f"  {name}: min/max {lo:g} / {hi:g}")
    plane = ds.slice2d("V", axis=2)
    print(ascii_heatmap(plane, title="V centre slice (last step)", width=args.width))
    print(f"pattern: {classify_pattern(plane)}")
    if args.images:
        from repro.analysis.imageio import snapshot_dataset

        written = snapshot_dataset(ds, args.images)
        print(f"wrote {len(written)} frames to {args.images}/")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    """``grayscott campaign``: exit 0 ok, 1 member failure, 2 usage/IO.

    The lint exit-code contract: a campaign whose members all succeed
    exits 0; one or more failed member runs (captured per variant, the
    others still complete) exit 1; a bad invocation — unknown regime,
    unreadable settings, bad ``--jobs`` — exits 2 before any run.
    """
    from repro.core.campaign import Campaign
    from repro.core.params import PEARSON_REGIMES
    from repro.core.settings import GrayScottSettings
    from repro.util.errors import ConfigError, ParError

    try:
        base = GrayScottSettings.load(args.settings)
    except (ConfigError, OSError) as exc:
        print(f"grayscott: {exc}", file=sys.stderr)
        return 2
    campaign = Campaign(base, workdir=args.workdir)
    for name in args.regimes.split(","):
        name = name.strip()
        if name not in PEARSON_REGIMES:
            print(
                f"grayscott: unknown regime {name!r}; "
                f"available: {', '.join(sorted(PEARSON_REGIMES))}",
                file=sys.stderr,
            )
            return 2
        F, k = PEARSON_REGIMES[name]
        campaign.add(name, F=F, k=k)
    try:
        result = campaign.run(jobs=args.jobs)
    except (ConfigError, ParError) as exc:
        print(f"grayscott: {exc}", file=sys.stderr)
        return 2
    print(result.render())
    if args.provenance:
        try:
            result.save_provenance(args.provenance)
        except OSError as exc:
            print(f"grayscott: cannot write {args.provenance}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"provenance written to {args.provenance}")
    return 0 if result.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """``grayscott serve``: the simulator as an always-on cached service.

    ``--smoke`` runs the CI self-check (hit + miss + byte-identity +
    clean shutdown; exit 0 pass, 1 fail); ``--load N`` replays N
    synthetic concurrent clients and prints the latency/throughput
    report. One of the two is required (the CLI has no daemon mode);
    invoking without either — or with a bad settings file — exits 2.
    """
    import asyncio
    import tempfile

    from repro.core.settings import GrayScottSettings
    from repro.util.errors import ConfigError, ServeError

    if not args.smoke and args.load is None:
        print("grayscott: serve needs --smoke or --load N", file=sys.stderr)
        return 2
    try:
        settings = GrayScottSettings.load(args.settings)
    except (ConfigError, OSError) as exc:
        print(f"grayscott: {exc}", file=sys.stderr)
        return 2
    if args.mode == "virtual" and settings.backend == "cpu":
        print("grayscott: --mode virtual needs a GPU backend (julia/hip) "
              "in the settings", file=sys.stderr)
        return 2
    if args.warm_cache:
        problem = _probe_jit_cache(args.warm_cache)
        if problem is not None:
            print(f"grayscott: {problem}", file=sys.stderr)
            return 2

    with tempfile.TemporaryDirectory(prefix="grayscott-serve-") as scratch:
        workdir = args.workdir or scratch
        try:
            if args.smoke:
                return _serve_smoke(args, settings, workdir)
            return _serve_load(args, settings, workdir)
        except (ServeError, ConfigError) as exc:
            print(f"grayscott: {exc}", file=sys.stderr)
            return 2
        except asyncio.CancelledError:  # pragma: no cover - ^C
            return 1


def _serve_smoke(args: argparse.Namespace, settings, workdir: str) -> int:
    """Self-checking service round trip (the CI serve-smoke job)."""
    import asyncio

    from repro.serve.loadgen import generate_specs
    from repro.serve.service import SimService

    specs = generate_specs(
        settings, 2, mode=args.mode,
        virtual_ranks=args.virtual_ranks if args.mode == "virtual" else 0,
    )

    async def smoke():
        async with SimService(
            workers=args.workers, backend=args.backend,
            workdir=workdir, stream=args.stream,
            jit_cache=args.warm_cache,
        ) as service:
            cold = await service.run(specs[0])
            hot = await service.run(specs[0])
            miss = await service.run(specs[1])
            return [
                ("cold run executes (not cached)", not cold.cached),
                ("repeat answered from cache", hot.cached),
                ("cache hit is byte-identical", hot.rendered == cold.rendered),
                ("different settings miss", not miss.cached),
                ("cache hit count == 1",
                 service.stats_counters.cache_hits == 1),
                ("no failures", service.stats_counters.failed == 0),
            ], service.render_stats()

    checks, stats = asyncio.run(smoke())
    failed = [name for name, ok in checks if not ok]
    for name, ok in checks:
        print(f"  [{'ok' if ok else 'FAIL'}] {name}")
    print(stats)
    if failed:
        print(f"grayscott: serve smoke failed: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    print("serve smoke: all checks passed, service shut down cleanly")
    return 0


def _serve_load(args: argparse.Namespace, settings, workdir: str) -> int:
    """Synthetic-client load replay against a fresh service."""
    from repro.serve.loadgen import run_load

    report, stats = run_load(
        settings,
        clients=args.load,
        requests=args.requests,
        hit_fraction=args.hit_fraction,
        workers=args.workers,
        backend=args.backend,
        mode=args.mode,
        virtual_ranks=args.virtual_ranks if args.mode == "virtual" else 0,
        pace=args.pace,
        workdir=workdir,
        stream=args.stream,
        jit_cache=args.warm_cache,
    )
    print(report.render())
    print()
    print(f"service cache: {stats['cache_hits']} hits / "
          f"{stats['cache_misses']} misses, "
          f"{stats['coalesced']} coalesced, "
          f"{stats['store']['entries']} entries")
    return 1 if report.failed else 0


def _cmd_jitcache(args: argparse.Namespace) -> int:
    """``grayscott jit-cache <stats|clear> DIR``: manage persisted plans.

    Exit codes follow the usage contract: 0 on success, 2 when the
    directory does not exist or cannot be used as a cache.
    """
    from pathlib import Path

    from repro.gpu.jitcache import JitCacheError, JitDiskCache
    from repro.util.tables import Table

    p = Path(args.path)
    if not p.is_dir():
        print(f"grayscott: jit cache directory {p} does not exist",
              file=sys.stderr)
        return 2
    try:
        cache = JitDiskCache(p)
    except JitCacheError as exc:
        print(f"grayscott: {exc}", file=sys.stderr)
        return 2

    if args.jitcache_command == "clear":
        removed = cache.clear()
        print(f"jit cache cleared: {removed} entry(ies) removed from {p}")
        return 0

    # stats: entries() first — it drops corrupt files, so the totals
    # reported afterwards only count valid plans.
    entries = cache.entries()
    stats = cache.stats()
    table = Table(["quantity", "value"], title=f"jit cache: {p}")
    table.add_row(["schema", stats["schema"]])
    table.add_row(["entries", stats["entries"]])
    table.add_row(["bytes", stats["bytes"]])
    table.add_row(["max entries", stats["max_entries"]])
    table.add_row(["corrupt (dropped)", stats["corrupt"]])
    by_kernel: dict[str, int] = {}
    for entry in entries:
        by_kernel[entry["kernel"]] = by_kernel.get(entry["kernel"], 0) + 1
    for kernel in sorted(by_kernel):
        table.add_row([f"plans: {kernel}", by_kernel[kernel]])
    print(table.render())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.compare import compare_datasets, render_comparison

    deltas = compare_datasets(args.dataset_a, args.dataset_b)
    print(render_comparison(deltas))
    if args.strict and any(not d.identical for d in deltas):
        return 1
    return 0


def _cmd_bpls(args: argparse.Namespace) -> int:
    from repro.adios.bpls import bpls

    print(bpls(args.dataset))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    target = args.target
    if target == "table1":
        from repro.bench import table1

        print(table1.render(table1.run()))
    elif target == "table2":
        from repro.bench import table2

        print(table2.render(table2.run()))
    elif target == "table3":
        from repro.bench import table3

        print(table3.render(table3.run()))
    elif target == "fig5":
        from repro.bench import fig5

        print(fig5.render(fig5.run()))
        print()
        print(fig5.render_virtual(fig5.run_virtual()))
    elif target == "fig6":
        from repro.bench import fig6

        print(fig6.render_frontier(fig6.run_frontier(jobs=args.jobs)))
        print()
        print(fig6.render_mini(fig6.run_mini()))
    elif target == "fig7":
        from repro.bench import fig7

        print(fig7.render(fig7.run()))
        print()
        print(fig7.render_warm(*fig7.run_warm_comparison()))
    elif target == "fig8":
        from repro.bench import fig8

        print(fig8.render_frontier(fig8.run_frontier(jobs=args.jobs)))
        print()
        print(fig8.render_mini(fig8.run_mini()))
    elif target == "listing1":
        from repro.bench import listings

        print(listings.run_listing1().listing)
    elif target == "listing4":
        from repro.bench import listings

        print(listings.run_listing4().ir)
    elif target == "strong":
        from repro.mpi.strongscaling import StrongScalingModel

        model = StrongScalingModel()
        print(model.render(model.run()))
    elif target == "report":
        import json

        from repro.bench import report

        print(json.dumps(report.collect(), indent=2))
    else:  # pragma: no cover - argparse choices guard this
        raise SystemExit(f"unknown bench target {target!r}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="grayscott",
        description="Gray-Scott end-to-end HPC workflow reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run a workflow from a settings file")
    p_run.add_argument("settings", help="path to a JSON settings file")
    p_run.add_argument(
        "--trace", metavar="CSV",
        help="write a rocprof-style results.csv (GPU backends only)",
    )
    p_run.add_argument(
        "--trace-out", metavar="PATH",
        help="write a Chrome/Perfetto trace of the whole run; a .jsonl "
             "suffix or a directory path streams bounded-memory shards "
             "instead of buffering (see 'observe merge-shards')",
    )
    p_run.add_argument(
        "--metrics-out", metavar="JSON",
        help="write the collected metrics registry as JSON",
    )
    p_run.add_argument(
        "--ranks", type=int, metavar="N",
        help="override settings.ranks (simulated MPI ranks; 0/1 = serial)",
    )
    p_run.add_argument(
        "--virtual-ranks", type=int, metavar="N",
        help="run N *modeled* ranks on the discrete-event engine instead "
             "of executing the solver (thousands of ranks, no threads)",
    )
    p_run.add_argument(
        "--overlap", action="store_true",
        help="with --virtual-ranks: model the nonblocking halo exchange "
             "and BP5 async drain (comm/I/O overlap compute)",
    )
    p_run.add_argument(
        "--nic-contention", action="store_true",
        help="with --virtual-ranks: halo traffic queues on the node's "
             "4 shared Slingshot NICs instead of a private per-rank link",
    )
    p_run.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="with --virtual-ranks: shard the modeled ranks over N worker "
             "processes (0 = all cores); results are bit-identical to "
             "--jobs 1",
    )
    p_run.add_argument(
        "--engine", choices=("auto", "scalar", "batch", "vector"),
        default="auto",
        help="with --virtual-ranks: execution tier — scalar heap, "
             "batch-pop heap, or the NumPy vector engine (auto picks "
             "vector unless --nic-contention/--sim-profile need engine "
             "processes); all tiers are bit-identical",
    )
    p_run.add_argument(
        "--jit-cache", metavar="DIR",
        help="persist JIT compilation plans under DIR and warm-start "
             "from any already there (see docs/PERFORMANCE.md)",
    )
    p_run.add_argument(
        "--timings", action="store_true",
        help="print this rank's wall-time section table",
    )
    p_run.add_argument(
        "--sim-profile", metavar="FOLDED",
        help="with --virtual-ranks: sample the rank states at virtual-time "
             "intervals and write flame-graph folded stacks here",
    )
    p_run.add_argument(
        "--sim-profile-interval", type=float, default=1e-3, metavar="SEC",
        help="virtual seconds between sim-profiler samples (default: 1e-3)",
    )
    p_run.set_defaults(func=_cmd_run)

    p_lint = sub.add_parser(
        "lint", help="statically analyze the kernels/exchange/writer of a run"
    )
    p_lint.add_argument("settings", help="path to a JSON settings file")
    p_lint.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        help="report format: human text or SARIF JSON ('json' and "
             "'sarif' are synonyms)",
    )
    p_lint.add_argument(
        "--rules", metavar="ID,ID,...",
        help="only report these rule ids (see docs/LINTING.md)",
    )
    p_lint.add_argument(
        "--passes", metavar="P,P,...",
        help="also run this stencil-IR pass pipeline (e.g. fuse,rle,cse) "
             "over the workflow module and report missed optimizations "
             "(IR-FUSION-MISSED, IR-CSE)",
    )
    p_lint.add_argument(
        "--out", metavar="FILE", help="write the report here instead of stdout"
    )
    p_lint.set_defaults(func=_cmd_lint)

    p_ir = sub.add_parser(
        "ir", help="dump/verify/optimize the workflow's stencil IR"
    )
    ir_sub = p_ir.add_subparsers(dest="ir_command", required=True)

    def _ir_common(p):
        p.add_argument(
            "settings", nargs="?", default=None,
            help="optional JSON settings file (defaults to the built-in "
                 "Gray-Scott configuration)",
        )
        p.add_argument(
            "--kernel", metavar="NAME",
            help="restrict to one kernel of the module",
        )
        p.add_argument(
            "--format", choices=["text", "json", "sarif"], default="text",
            help="output format",
        )
        p.add_argument(
            "--out", metavar="FILE",
            help="write the output here instead of stdout",
        )

    i_dump = ir_sub.add_parser(
        "dump", help="print the module's MLIR-flavored text (or JSON) form"
    )
    _ir_common(i_dump)
    i_dump.set_defaults(func=_cmd_ir)
    i_verify = ir_sub.add_parser(
        "verify",
        help="verify SSA well-formedness and lint the IR (KRN-* plus the "
             "optimizer-backed IR-* rules)",
    )
    _ir_common(i_verify)
    i_verify.set_defaults(func=_cmd_ir)
    i_opt = ir_sub.add_parser(
        "optimize",
        help="run a pass pipeline and report the predicted traffic delta",
    )
    _ir_common(i_opt)
    i_opt.add_argument(
        "--passes", default="fuse,rle,cse,dse", metavar="P,P,...",
        help="pass pipeline (fuse, rle, cse, dse, tile=TxTxT); "
             "default: fuse,rle,cse,dse",
    )
    i_opt.add_argument(
        "--shape", default="256x256x256", metavar="NxNxN",
        help="grid shape the traffic model prices (default: 256x256x256)",
    )
    i_opt.add_argument(
        "--exact", action="store_true",
        help="use the exact LRU cache simulator instead of the analytic "
             "streaming model (small shapes only)",
    )
    i_opt.add_argument(
        "--capacity-bytes", type=int, default=None, metavar="B",
        help="with --exact: cache capacity in bytes (default: the GCD's "
             "8 MiB TCC)",
    )
    i_opt.set_defaults(func=_cmd_ir)

    p_tr = sub.add_parser("trace", help="summarize a Chrome trace JSON file")
    p_tr.add_argument("trace", help="path to a trace written by run --trace-out")
    p_tr.add_argument("--width", type=int, default=72)
    p_tr.set_defaults(func=_cmd_trace)

    p_obs = sub.add_parser(
        "observe", help="work with streamed telemetry (shards, profiles)"
    )
    obs_sub = p_obs.add_subparsers(dest="observe_command", required=True)
    o_tail = obs_sub.add_parser(
        "tail", help="print the last spans of a shard stream"
    )
    o_tail.add_argument(
        "source", help="shard directory, manifest.json, or .jsonl shard"
    )
    o_tail.add_argument("-n", "--lines", type=int, default=20)
    o_tail.set_defaults(func=_cmd_observe_tail)
    o_sum = obs_sub.add_parser(
        "summary", help="summarize a streamed (or monolithic) trace"
    )
    o_sum.add_argument(
        "source", help="shard directory, manifest.json, .jsonl, or trace JSON"
    )
    o_sum.add_argument("--width", type=int, default=72)
    o_sum.set_defaults(func=_cmd_observe_summary)
    o_merge = obs_sub.add_parser(
        "merge-shards",
        help="reassemble streamed shards into one Chrome trace JSON",
    )
    o_merge.add_argument(
        "source", help="shard directory, manifest.json, or .jsonl shard"
    )
    o_merge.add_argument(
        "-o", "--out", required=True, metavar="JSON",
        help="path of the merged Chrome trace (byte-identical to the "
             "monolithic --trace-out export of the same run)",
    )
    o_merge.set_defaults(func=_cmd_observe_merge)
    o_flame = obs_sub.add_parser(
        "flamegraph",
        help="render a sim-profiler folded profile as ASCII occupancy bars",
    )
    o_flame.add_argument(
        "profile", help="folded stacks written by run --sim-profile"
    )
    o_flame.add_argument("--width", type=int, default=40)
    o_flame.set_defaults(func=_cmd_observe_flamegraph)

    p_an = sub.add_parser("analyze", help="summarize + render a dataset")
    p_an.add_argument("dataset", help="path to a .bp dataset")
    p_an.add_argument("--width", type=int, default=64)
    p_an.add_argument(
        "--images", metavar="DIR",
        help="also write one PPM frame per output step into DIR",
    )
    p_an.set_defaults(func=_cmd_analyze)

    p_ls = sub.add_parser("bpls", help="list a dataset's provenance record")
    p_ls.add_argument("dataset", help="path to a .bp dataset")
    p_ls.set_defaults(func=_cmd_bpls)

    p_camp = sub.add_parser(
        "campaign", help="sweep Pearson regimes from a base settings file"
    )
    p_camp.add_argument("settings", help="base JSON settings file")
    p_camp.add_argument(
        "--regimes", default="paper,alpha,epsilon",
        help="comma-separated Pearson regime names",
    )
    p_camp.add_argument("--workdir", default=".", help="output directory")
    p_camp.add_argument("--provenance", help="write campaign provenance JSON here")
    p_camp.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run campaign members across N worker processes (0 = all "
             "cores); reports and datasets are byte-identical to --jobs 1",
    )
    p_camp.set_defaults(func=_cmd_campaign)

    p_serve = sub.add_parser(
        "serve", help="run the simulator as an always-on cached service"
    )
    p_serve.add_argument("settings", help="base JSON settings file")
    p_serve.add_argument(
        "--smoke", action="store_true",
        help="self-checking round trip: cold run, cached repeat "
             "(byte-identical), distinct miss, clean shutdown; exit 0/1",
    )
    p_serve.add_argument(
        "--load", type=int, metavar="N",
        help="replay N concurrent synthetic clients and print the "
             "hit/miss latency and throughput report",
    )
    p_serve.add_argument(
        "--requests", type=int, default=8, metavar="R",
        help="with --load: requests per client (default: 8)",
    )
    p_serve.add_argument(
        "--hit-fraction", type=float, default=0.75, metavar="F",
        help="with --load: fraction of requests repeating the hot "
             "configuration (default: 0.75)",
    )
    p_serve.add_argument(
        "--pace", type=float, default=0.0, metavar="SEC",
        help="with --load: bursty inter-arrival scale in seconds "
             "(default: 0 = closed-loop saturation)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="compute workers behind the queue (default: 2)",
    )
    p_serve.add_argument(
        "--backend", choices=["process", "thread", "inline"],
        default="thread",
        help="compute backend: a repro.par-style process pool, an "
             "executor thread per worker, or inline on the event loop",
    )
    p_serve.add_argument(
        "--mode", choices=["workflow", "virtual"], default="workflow",
        help="what each job executes: the real solver or the "
             "discrete-event virtual SPMD model",
    )
    p_serve.add_argument(
        "--virtual-ranks", type=int, default=8, metavar="N",
        help="with --mode virtual: modeled ranks per job (default: 8)",
    )
    p_serve.add_argument(
        "--workdir", metavar="DIR",
        help="sandbox job datasets under DIR, keyed by canonical hash "
             "(default: a temporary directory)",
    )
    p_serve.add_argument(
        "--stream", metavar="NAME",
        help="publish job lifecycle events on this adios.sst stream "
             "(lossy: dropped, never blocking, when no reader keeps up)",
    )
    p_serve.add_argument(
        "--warm-cache", metavar="DIR",
        help="warm-start every worker from the persistent JIT plan "
             "cache under DIR (populate it with 'run --jit-cache DIR')",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_jc = sub.add_parser(
        "jit-cache", help="inspect or clear a persistent JIT plan cache"
    )
    jc_sub = p_jc.add_subparsers(dest="jitcache_command", required=True)
    jc_stats = jc_sub.add_parser(
        "stats", help="entry/byte totals and per-kernel plan counts"
    )
    jc_stats.add_argument(
        "path", help="cache directory (run --jit-cache / serve --warm-cache)"
    )
    jc_stats.set_defaults(func=_cmd_jitcache)
    jc_clear = jc_sub.add_parser(
        "clear", help="delete every persisted plan in the cache"
    )
    jc_clear.add_argument("path", help="cache directory")
    jc_clear.set_defaults(func=_cmd_jitcache)

    p_cmp = sub.add_parser("compare", help="diff two datasets (max/RMS/PSNR)")
    p_cmp.add_argument("dataset_a")
    p_cmp.add_argument("dataset_b")
    p_cmp.add_argument(
        "--strict", action="store_true",
        help="exit nonzero unless bitwise identical",
    )
    p_cmp.set_defaults(func=_cmd_compare)

    p_bench = sub.add_parser("bench", help="regenerate a paper table/figure")
    p_bench.add_argument(
        "target",
        choices=[
            "table1", "table2", "table3",
            "fig5", "fig6", "fig7", "fig8",
            "listing1", "listing4", "report", "strong",
        ],
    )
    p_bench.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run the fig6/fig8 rank ladders across N worker processes "
             "(0 = all cores); other targets ignore it",
    )
    p_bench.set_defaults(func=_cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        print(f"grayscott: {exc}", file=sys.stderr)
        return 1
    finally:
        # Drop any process-global jit-cache configuration the command
        # made, so repeated main() calls in one process (tests) don't
        # bleed cache state into each other.
        jitcache = sys.modules.get("repro.gpu.jitcache")
        if jitcache is not None:
            jitcache.deconfigure()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
