"""Kernel-IR analyzer: bounds, races, coalescing, type stability.

Operates on the :class:`~repro.gpu.jit.KernelTrace` the tracing JIT
produces — the same affine load/store records the paper reads off
Julia's LLVM-IR in Listing 4 — so every check runs *without executing
the workload*:

- **KRN-BOUNDS** — an access offset larger than the ghost width means
  a guarded interior workitem still reaches outside the allocated halo
  (``u[i + 2, j, k]`` with one ghost layer reads past the array).
- **KRN-GHOST-WRITE** — a store into the halo region is legal but gets
  clobbered by the next exchange; almost always an index bug.
- **KRN-RACE** — write-write races are found by solving affine index
  equality between distinct workitems over (a sample of) the launch
  grid: if two different workitems evaluate a store address to the same
  cell, the kernel's output depends on scheduling.
- **KRN-STRIDE** — coalescing: the contiguous (Fortran-leading) axis
  of every array access should be addressed by some launch symbol with
  coefficient ±1; |coeff| > 1 or a symbol-free contiguous axis means
  each wavefront touches strided memory.
- **KRN-TYPE-MIX / KRN-INT-ESCAPE / KRN-RAND** — ``@code_warntype``
  style diagnostics: float32/float64 array mixing, traced integers
  escaping into float dataflow (LLVM ``sitofp`` in the hot loop), and
  device RNG calls (which cost LDS/scratch on AMDGPU, Table 3).

A clean analysis still records **facts**: the kernel's unique
load/store counts (the paper's "no hidden memory traffic" invariant),
flop count, and rand calls.
"""

from __future__ import annotations

from itertools import product
from typing import TYPE_CHECKING

from repro.lint import diagnostics as D
from repro.lint.diagnostics import LintReport

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.jit import KernelTrace, MemoryAccess
    from repro.gpu.kernel import Kernel

#: how many workitems per symbol the race solver enumerates; affine
#: collisions over a box are visible within any window this wide that
#: covers coefficient differences up to +/- RACE_SAMPLE - 1
RACE_SAMPLE = 4


def _fmt_access(acc: "MemoryAccess") -> str:
    return str(acc)


def _symbols_of(acc: "MemoryAccess") -> set[str]:
    return {sym for expr in acc.exprs for sym, _ in expr.linear_part}


def analyze_kernel_trace(
    trace: "KernelTrace",
    *,
    ghost: int = 1,
    report: LintReport | None = None,
) -> LintReport:
    """Run every kernel rule over one trace; returns the report."""
    report = report if report is not None else LintReport()
    where = f"kernel:{trace.kernel_name}"

    _check_bounds(trace, ghost, report, where)
    _check_races(trace, report, where)
    _check_coalescing(trace, report, where)
    _check_type_stability(trace, report, where)

    report.record_fact(f"{where}.unique_loads", len(trace.unique_loads))
    report.record_fact(f"{where}.unique_stores", len(trace.unique_stores))
    report.record_fact(f"{where}.flops", trace.flops)
    report.record_fact(f"{where}.rand_calls", trace.rand_calls)
    return report


def lint_kernel(kernel: "Kernel", args, *, ghost: int = 1,
                report: LintReport | None = None) -> LintReport:
    """Trace ``kernel`` over ``args`` and analyze the trace.

    Tracing goes through the process-wide launch-trace memo, so linting
    a kernel the workflow already launched (or re-linting in a loop)
    costs one dictionary lookup, not a re-trace.
    """
    from repro.gpu.jit import memoized_trace

    return analyze_kernel_trace(
        memoized_trace(kernel, args), ghost=ghost, report=report
    )


#: resident-wave fraction below which a memory-bound kernel can no
#: longer cover HBM latency (the knee of the CDNA2 bandwidth-vs-
#: occupancy curve; Julia's 50% sits well under it, matching Table 2)
OCCUPANCY_THRESHOLD = 0.75


def check_occupancy(
    backend, *, report: LintReport | None = None, limits=None
) -> LintReport:
    """GPU-OCCUPANCY: flag codegen that under-fills the CU's wave slots.

    Uses :func:`repro.gpu.occupancy.occupancy_for` to turn the
    backend's Table 3 codegen facts (workgroup size, LDS bytes) into a
    resident-wave count; occupancy below :data:`OCCUPANCY_THRESHOLD`
    is reported (informational — the paper's AMDGPU.jl codegen
    triggers it by design, which is exactly the Fig. 7 story).
    """
    from repro.gpu.backends import get_backend
    from repro.gpu.occupancy import occupancy_for

    report = report if report is not None else LintReport()
    backend = get_backend(backend)
    result = occupancy_for(backend, limits)
    where = f"backend:{backend.name}"
    report.record_fact(
        f"{where}.occupancy_percent", round(result.occupancy * 100, 1)
    )
    if result.occupancy < OCCUPANCY_THRESHOLD:
        report.add(
            D.GPU_OCCUPANCY, where,
            f"{backend.name} codegen holds {result.resident_waves}/"
            f"{result.max_waves} resident waves "
            f"({result.occupancy * 100:.0f}% occupancy), limited by "
            f"{result.limiter}: {backend.workgroup_size}-workitem "
            f"workgroups with {backend.lds_bytes} B LDS allow "
            f"{result.resident_workgroups} resident workgroup(s) per CU",
            hint="shrink the workgroup or its LDS footprint so more "
                 "workgroups fit per CU; memory-bound kernels need "
                 f"~{OCCUPANCY_THRESHOLD * 100:.0f}%+ occupancy to "
                 "cover HBM latency",
        )
    return report


# -- bounds / halo ----------------------------------------------------------


def _check_bounds(trace, ghost: int, report: LintReport, where: str) -> None:
    for kind, accesses in (("load", trace.unique_loads),
                           ("store", trace.unique_stores)):
        for acc in accesses:
            shape = trace.array_shapes.get(acc.array, ())
            for axis, expr in enumerate(acc.exprs):
                off = expr.const
                if expr.linear_part:
                    # symbolic axis: the constant is a stencil offset
                    # relative to the guarded interior workitem, which
                    # may roam the whole interior — |offset| must fit
                    # inside the halo
                    if abs(off) > ghost:
                        report.add(
                            D.KRN_BOUNDS, where,
                            f"{kind} {_fmt_access(acc)} reaches offset "
                            f"{off:+d} on axis {axis} but the halo is only "
                            f"{ghost} deep",
                            hint=f"widen the ghost region to {abs(off)} "
                                 f"layers or shrink the stencil",
                        )
                    elif kind == "store" and off != 0:
                        report.add(
                            D.KRN_GHOST_WRITE, where,
                            f"store {_fmt_access(acc)} lands {off:+d} cells "
                            f"into the halo on axis {axis}",
                            hint="the next ghost exchange overwrites halo "
                                 "cells; store to the workitem's own cell",
                        )
                elif axis < len(shape) and not 0 <= off < shape[axis]:
                    # constant axis: an absolute index into the array
                    report.add(
                        D.KRN_BOUNDS, where,
                        f"{kind} {_fmt_access(acc)} uses absolute index "
                        f"{off} on axis {axis} of extent {shape[axis]}",
                        hint="absolute indices must stay inside the "
                             "allocated array",
                    )


# -- write-write races ------------------------------------------------------


def _check_races(trace, report: LintReport, where: str) -> None:
    """Solve affine address equality between distinct workitems.

    All stores to one array are evaluated at every workitem of a small
    sample grid; two *distinct* workitems producing the same concrete
    address is a write-write race. Affine addresses collide within a
    window of ``RACE_SAMPLE`` per symbol whenever they collide at all
    (for the coefficient magnitudes kernels actually use), so the
    enumeration is a sound, cheap stand-in for an ILP solve.
    """
    by_array: dict[str, list] = {}
    for acc in trace.unique_stores:
        by_array.setdefault(acc.array, []).append(acc)

    # the launch footprint is inferred from *every* symbol the trace
    # observed (loads included): a store that ignores one of them is
    # written by all workitems along that symbol — the classic race
    symbols = sorted(
        {sym for acc in [*trace.unique_loads, *trace.unique_stores]
         for sym in _symbols_of(acc)}
    )
    grid = list(product(range(RACE_SAMPLE), repeat=len(symbols)))
    for array, accesses in by_array.items():
        seen: dict[tuple, tuple] = {}  # address -> (workitem, access)
        reported = set()
        for acc in accesses:
            for point in grid:
                assignment = dict(zip(symbols, point))
                address = tuple(e.evaluate(assignment) for e in acc.exprs)
                prior = seen.get(address)
                if prior is None:
                    seen[address] = (point, acc)
                    continue
                prior_point, prior_acc = prior
                if prior_point == point:
                    continue
                key = (prior_acc.linear_signature(), acc.linear_signature(),
                       prior_acc.stencil_offset(), acc.stencil_offset())
                if key in reported:
                    continue
                reported.add(key)
                report.add(
                    D.KRN_RACE, where,
                    f"workitems {dict(zip(symbols, prior_point))} and "
                    f"{dict(zip(symbols, point))} both write "
                    f"{array}{list(address)} (via {_fmt_access(prior_acc)} "
                    f"and {_fmt_access(acc)})",
                    hint="make the store address injective in the launch "
                         "symbols (one output cell per workitem)",
                )


# -- coalescing -------------------------------------------------------------


def _check_coalescing(trace, report: LintReport, where: str) -> None:
    """The contiguous axis (Fortran axis 0) should be unit-stride.

    The device model is wavefront-order agnostic (the TCC cache model
    consumes offset sets, not lane order), so any launch symbol with
    coefficient ±1 on the leading axis counts as coalesced; a strided
    coefficient or a symbol-free leading axis on a multi-symbol access
    does not.
    """
    flagged = set()
    for acc in [*trace.unique_loads, *trace.unique_stores]:
        if not acc.exprs or not _symbols_of(acc):
            continue
        key = (acc.array, acc.linear_signature())
        if key in flagged:
            continue
        leading = acc.exprs[0]
        coeffs = [c for _, c in leading.linear_part]
        if any(abs(c) > 1 for c in coeffs):
            flagged.add(key)
            report.add(
                D.KRN_STRIDE, where,
                f"access {_fmt_access(acc)} strides the contiguous axis "
                f"by {max(abs(c) for c in coeffs)}",
                hint="unit-stride the fastest array axis for coalesced "
                     "wavefront accesses",
            )
        elif not coeffs and len(acc.exprs) > 1:
            flagged.add(key)
            report.add(
                D.KRN_STRIDE, where,
                f"access {_fmt_access(acc)} holds the contiguous axis "
                f"constant; consecutive workitems touch strided memory",
                hint="map a launch symbol onto the leading (contiguous) "
                     "array axis",
            )


# -- type stability ---------------------------------------------------------


def _check_type_stability(trace, report: LintReport, where: str) -> None:
    float_dtypes = sorted(
        {d for d in trace.array_dtypes.values() if d.startswith("float")}
    )
    if len(float_dtypes) > 1:
        owners = {
            d: sorted(n for n, dt in trace.array_dtypes.items() if dt == d)
            for d in float_dtypes
        }
        detail = "; ".join(f"{d}: {', '.join(n)}" for d, n in owners.items())
        report.add(
            D.KRN_TYPE_MIX, where,
            f"kernel mixes array precisions ({detail})",
            hint="pick one floating precision per kernel; mixed precision "
                 "inserts converts on every access (@code_warntype would "
                 "show the union type)",
        )
    for kind, detail in trace.type_escapes:
        report.add(
            D.KRN_INT_ESCAPE, where,
            f"{kind}: {detail}",
            hint="keep index arithmetic out of floating dataflow; hoist "
                 "the conversion outside the hot loop",
        )
    if trace.rand_calls:
        report.add(
            D.KRN_RAND, where,
            f"{trace.rand_calls} device RNG call(s) in the kernel body",
            hint="RNG state costs LDS + scratch on AMDGPU (Table 3); "
                 "counter-based generators keep runs reproducible",
        )
