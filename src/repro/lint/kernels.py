"""Kernel lint rules over the shared stencil IR.

The checks operate on the :class:`~repro.ir.StencilFunc` that
:func:`repro.ir.from_trace` promotes from the tracing JIT's
:class:`~repro.gpu.jit.KernelTrace` — the same affine load/store facts
the paper reads off Julia's LLVM-IR in Listing 4 — so every rule runs
*without executing the workload*. The dataflow itself lives in
:mod:`repro.ir.analysis`; this module only formats the analysis results
into diagnostics, so the lint and the rewrite passes share one
computation per func (via :class:`~repro.ir.AnalysisContext`) instead
of each re-walking the ops:

- **KRN-BOUNDS / KRN-GHOST-WRITE** — :func:`~repro.ir.halo_analysis`:
  stencil offsets beyond the ghost depth (``u[i + 2, j, k]`` with one
  ghost layer reads past the array), stores landing in the halo, and
  absolute out-of-bounds subscripts.
- **KRN-RACE** — :func:`~repro.ir.race_analysis`: write-write races by
  affine address-equality solving between distinct workitems over a
  sample of the launch grid.
- **KRN-STRIDE** — :func:`~repro.ir.stride_analysis`: the contiguous
  (Fortran-leading) axis of every access should be covered by some
  launch symbol with coefficient ±1.
- **KRN-TYPE-MIX / KRN-INT-ESCAPE / KRN-RAND** — ``@code_warntype``
  style diagnostics from the func's metadata: float32/float64 array
  mixing, traced integers escaping into float dataflow, device RNG
  calls (which cost LDS/scratch on AMDGPU, Table 3).

:func:`check_ir_func` adds the optimizer-backed rules —
IR-REDUNDANT-LOAD, IR-DEAD-STORE, IR-CSE — for IR that did *not* come
from the CSE'ing tracer (hand-written or external IR); the production
tracer folds these at record time, so they are reported only when
explicitly requested (``grayscott ir`` / ``lint --passes``).

A clean analysis still records **facts**: the kernel's unique
load/store counts (the paper's "no hidden memory traffic" invariant),
flop count, and rand calls.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.lint import diagnostics as D
from repro.lint.diagnostics import LintReport

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.jit import KernelTrace, MemoryAccess
    from repro.gpu.kernel import Kernel
    from repro.ir.analysis import AnalysisContext
    from repro.ir.core import StencilFunc


def _fmt_access(acc: "MemoryAccess") -> str:
    return str(acc)


def analyze_kernel_trace(
    trace: "KernelTrace",
    *,
    ghost: int = 1,
    report: LintReport | None = None,
) -> LintReport:
    """Run every kernel rule over one trace; returns the report.

    The trace is promoted to a stencil func first, so the rules consume
    the shared IR analyses rather than re-walking the raw trace.
    """
    from repro.ir.core import from_trace

    return analyze_ir_func(from_trace(trace, ghost=ghost), report=report)


def analyze_ir_func(
    func: "StencilFunc",
    *,
    report: LintReport | None = None,
    ctx: "AnalysisContext | None" = None,
) -> LintReport:
    """Run the KRN-* rules over one stencil func via the IR analyses."""
    from repro.ir.analysis import AnalysisContext

    report = report if report is not None else LintReport()
    ctx = ctx if ctx is not None else AnalysisContext(func)
    where = f"kernel:{func.name}"

    _report_halo(ctx, report, where)
    _report_races(ctx, report, where)
    _report_strides(ctx, report, where)
    _report_type_stability(func, report, where)

    report.record_fact(f"{where}.unique_loads", len(func.unique_loads))
    report.record_fact(f"{where}.unique_stores", len(func.unique_stores))
    report.record_fact(f"{where}.flops", func.flops)
    report.record_fact(f"{where}.rand_calls", func.rand_calls)
    return report


def lint_kernel(kernel: "Kernel", args, *, ghost: int = 1,
                report: LintReport | None = None) -> LintReport:
    """Trace ``kernel`` over ``args`` and analyze the trace.

    Tracing goes through the process-wide launch-trace memo, so linting
    a kernel the workflow already launched (or re-linting in a loop)
    costs one dictionary lookup, not a re-trace.
    """
    from repro.gpu.jit import memoized_trace

    return analyze_kernel_trace(
        memoized_trace(kernel, args), ghost=ghost, report=report
    )


#: resident-wave fraction below which a memory-bound kernel can no
#: longer cover HBM latency (the knee of the CDNA2 bandwidth-vs-
#: occupancy curve; Julia's 50% sits well under it, matching Table 2)
OCCUPANCY_THRESHOLD = 0.75


def check_occupancy(
    backend, *, report: LintReport | None = None, limits=None
) -> LintReport:
    """GPU-OCCUPANCY: flag codegen that under-fills the CU's wave slots.

    Uses :func:`repro.gpu.occupancy.occupancy_for` to turn the
    backend's Table 3 codegen facts (workgroup size, LDS bytes) into a
    resident-wave count; occupancy below :data:`OCCUPANCY_THRESHOLD`
    is reported (informational — the paper's AMDGPU.jl codegen
    triggers it by design, which is exactly the Fig. 7 story).
    """
    from repro.gpu.backends import get_backend
    from repro.gpu.occupancy import occupancy_for

    report = report if report is not None else LintReport()
    backend = get_backend(backend)
    result = occupancy_for(backend, limits)
    where = f"backend:{backend.name}"
    report.record_fact(
        f"{where}.occupancy_percent", round(result.occupancy * 100, 1)
    )
    if result.occupancy < OCCUPANCY_THRESHOLD:
        report.add(
            D.GPU_OCCUPANCY, where,
            f"{backend.name} codegen holds {result.resident_waves}/"
            f"{result.max_waves} resident waves "
            f"({result.occupancy * 100:.0f}% occupancy), limited by "
            f"{result.limiter}: {backend.workgroup_size}-workitem "
            f"workgroups with {backend.lds_bytes} B LDS allow "
            f"{result.resident_workgroups} resident workgroup(s) per CU",
            hint="shrink the workgroup or its LDS footprint so more "
                 "workgroups fit per CU; memory-bound kernels need "
                 f"~{OCCUPANCY_THRESHOLD * 100:.0f}%+ occupancy to "
                 "cover HBM latency",
            key=f"{backend.name}:{result.occupancy:.3f}",
        )
    return report


# -- bounds / halo ----------------------------------------------------------


def _report_halo(ctx, report: LintReport, where: str) -> None:
    for finding in ctx.halo:
        acc, axis, off = finding.access, finding.axis, finding.offset
        key = f"{finding.category}:{_fmt_access(acc)}:axis{axis}"
        if finding.category == "stencil-overrun":
            report.add(
                D.KRN_BOUNDS, where,
                f"{finding.kind} {_fmt_access(acc)} reaches offset "
                f"{off:+d} on axis {axis} but the halo is only "
                f"{finding.extent} deep",
                hint=f"widen the ghost region to {abs(off)} "
                     f"layers or shrink the stencil",
                key=key,
            )
        elif finding.category == "halo-store":
            report.add(
                D.KRN_GHOST_WRITE, where,
                f"store {_fmt_access(acc)} lands {off:+d} cells "
                f"into the halo on axis {axis}",
                hint="the next ghost exchange overwrites halo "
                     "cells; store to the workitem's own cell",
                key=key,
            )
        else:  # absolute-oob
            report.add(
                D.KRN_BOUNDS, where,
                f"{finding.kind} {_fmt_access(acc)} uses absolute index "
                f"{off} on axis {axis} of extent {finding.extent}",
                hint="absolute indices must stay inside the "
                     "allocated array",
                key=key,
            )


# -- write-write races ------------------------------------------------------


def _report_races(ctx, report: LintReport, where: str) -> None:
    for f in ctx.races:
        report.add(
            D.KRN_RACE, where,
            f"workitems {dict(zip(f.symbols, f.point_a))} and "
            f"{dict(zip(f.symbols, f.point_b))} both write "
            f"{f.array}{list(f.address)} (via {_fmt_access(f.access_a)} "
            f"and {_fmt_access(f.access_b)})",
            hint="make the store address injective in the launch "
                 "symbols (one output cell per workitem)",
            key=f"{_fmt_access(f.access_a)}|{_fmt_access(f.access_b)}",
        )


# -- coalescing -------------------------------------------------------------


def _report_strides(ctx, report: LintReport, where: str) -> None:
    for f in ctx.strides:
        if f.category == "strided":
            report.add(
                D.KRN_STRIDE, where,
                f"access {_fmt_access(f.access)} strides the contiguous axis "
                f"by {f.stride}",
                hint="unit-stride the fastest array axis for coalesced "
                     "wavefront accesses",
                key=f"strided:{_fmt_access(f.access)}",
            )
        else:  # constant-leading
            report.add(
                D.KRN_STRIDE, where,
                f"access {_fmt_access(f.access)} holds the contiguous axis "
                f"constant; consecutive workitems touch strided memory",
                hint="map a launch symbol onto the leading (contiguous) "
                     "array axis",
                key=f"constant-leading:{_fmt_access(f.access)}",
            )


# -- type stability ---------------------------------------------------------


def _report_type_stability(func, report: LintReport, where: str) -> None:
    float_dtypes = sorted(
        {d for d in func.array_dtypes.values() if d.startswith("float")}
    )
    if len(float_dtypes) > 1:
        owners = {
            d: sorted(n for n, dt in func.array_dtypes.items() if dt == d)
            for d in float_dtypes
        }
        detail = "; ".join(f"{d}: {', '.join(n)}" for d, n in owners.items())
        report.add(
            D.KRN_TYPE_MIX, where,
            f"kernel mixes array precisions ({detail})",
            hint="pick one floating precision per kernel; mixed precision "
                 "inserts converts on every access (@code_warntype would "
                 "show the union type)",
            key=detail,
        )
    for kind, detail in func.type_escapes:
        report.add(
            D.KRN_INT_ESCAPE, where,
            f"{kind}: {detail}",
            hint="keep index arithmetic out of floating dataflow; hoist "
                 "the conversion outside the hot loop",
            key=f"{kind}:{detail}",
        )
    if func.rand_calls:
        report.add(
            D.KRN_RAND, where,
            f"{func.rand_calls} device RNG call(s) in the kernel body",
            hint="RNG state costs LDS + scratch on AMDGPU (Table 3); "
                 "counter-based generators keep runs reproducible",
            key=f"rand:{func.rand_calls}",
        )


# -- optimizer-backed rules (explicit IR linting only) ----------------------


def check_ir_func(
    func: "StencilFunc",
    *,
    report: LintReport | None = None,
    ctx: "AnalysisContext | None" = None,
) -> LintReport:
    """IR-REDUNDANT-LOAD / IR-DEAD-STORE / IR-CSE over one func.

    These rules report what the rewrite passes *would* remove. The
    production tracer CSE's loads at record time, so funcs built by
    :func:`~repro.ir.from_trace` never trip IR-REDUNDANT-LOAD — the
    rules exist for hand-written or externally lowered IR and are run
    only on request (``grayscott ir verify`` / ``lint --passes``), not
    in the default :func:`lint_kernel` path.
    """
    from repro.ir.analysis import AnalysisContext
    from repro.ir.core import LoadOp

    report = report if report is not None else LintReport()
    ctx = ctx if ctx is not None else AnalysisContext(func)
    where = f"kernel:{func.name}"

    for group in ctx.redundant:
        canonical = func.ops[group.canonical]
        assert isinstance(canonical, LoadOp)
        report.add(
            D.IR_REDUNDANT_LOAD, where,
            f"{len(group.duplicates)} redundant load(s) of "
            f"{_fmt_access(canonical.access)}; the value is already live "
            f"in {canonical.result}",
            hint="run the rle pass (or reuse the first load's SSA value) "
                 "to drop the re-fetch",
            key=f"rle:{_fmt_access(canonical.access)}",
        )
    for dead in ctx.reaching.dead_stores:
        over = func.ops[dead.overwritten_by]
        report.add(
            D.IR_DEAD_STORE, where,
            f"store {_fmt_access(dead.store.access)} at op {dead.index} is "
            f"overwritten by op {dead.overwritten_by} "
            f"({_fmt_access(over.access)}) before any possible read",
            hint="run the dse pass or drop the first store; its value can "
                 "never be observed",
            key=f"dse:{_fmt_access(dead.store.access)}:{dead.index}",
        )
    for group in ctx.cse:
        canonical = func.ops[group.canonical]
        report.add(
            D.IR_CSE, where,
            f"{len(group.duplicates)} op(s) recompute the value of "
            f"{canonical.result} (op {group.canonical})",
            hint="run the cse pass to fold repeated pure subexpressions "
                 "into one definition",
            key=f"cse:{canonical.result}:{group.canonical}",
        )
    return report
