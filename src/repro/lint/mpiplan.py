"""MPI plan checker: deadlocks, matching, wildcard nondeterminism.

A :class:`CommPlan` is the *static* send/recv graph of one
communication phase — each rank's point-to-point operations in program
order, before anything executes. The checker runs two analyses:

1. **Matching** — group sends and receives by ``(source, dest, tag)``
   edges: a send with no receive is **MPI-UNMATCHED-SEND** (refined to
   **MPI-TAG-MISMATCH** when the same peer pair exists under another
   tag), more sends than receives on one edge is **MPI-DUP-MATCH**,
   a receive nothing feeds is **MPI-UNMATCHED-RECV**, and wildcard
   receives are flagged **MPI-WILDCARD** (they match whatever arrives
   first — nondeterministic with more than one candidate).

2. **Deadlock** — an abstract scheduler advances every rank through
   its program: nonblocking operations always complete (they only
   post), buffered sends complete eagerly (the repo's sends copy at
   send time, like Cray-MPICH under the eager threshold), unbuffered
   sends rendezvous with a posted receive, and blocking receives wait
   for a matching in-flight message. When no rank can advance, the
   ranks stuck on blocking operations form the blocking cycle reported
   by **MPI-DEADLOCK** — exactly the mismatched-nonblocking-halo hazard
   the paper's Listing 3 exchange must avoid.

3. **Collective ordering** — every rank must issue the same sequence of
   collectives (barriers, reductions) in the same order; the first rank
   whose sequence diverges from rank 0's is reported as
   **MPI-COLLECTIVE-ORDER**. Plans with collectives come from
   :func:`repro.sched.record_plan`, which symbolically executes a
   virtual-SPMD rank program.

:func:`halo_exchange_plan` builds the plan of the built-in Cartesian
ghost exchange (:mod:`repro.core.exchange`) from ``dims``/``periods``
alone, using the same rank ordering as :class:`repro.mpi.cart.CartComm`
and the same tag map as the runtime exchange — so ``grayscott lint``
verifies the actual production plan, not a copy of it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.exchange import _face_tag
from repro.lint import diagnostics as D
from repro.lint.diagnostics import LintReport
from repro.mpi.comm import ANY_SOURCE, ANY_TAG, PROC_NULL
from repro.util.errors import LintError


@dataclass(frozen=True)
class PlanOp:
    """One operation of one rank's program (point-to-point or collective)."""

    kind: str  # "send" | "recv" | "coll"
    rank: int
    peer: int  # dest for sends; source (or ANY_SOURCE) for recvs
    tag: int  # ANY_TAG allowed on recvs
    blocking: bool = True
    #: sends only: buffered (eager, completes immediately) vs
    #: rendezvous (completes when the matching receive is posted)
    buffered: bool = True
    where: str = ""  # human-readable origin, e.g. "axis0/+1"
    #: collectives only: the collective's name, e.g. "barrier",
    #: "allreduce[sum]" — ordering is checked across ranks by name
    coll: str = ""

    def describe(self) -> str:
        origin = f" [{self.where}]" if self.where else ""
        if self.kind == "coll":
            return f"rank {self.rank}: {self.coll}(){origin}"
        peer = {ANY_SOURCE: "ANY_SOURCE"}.get(self.peer, str(self.peer))
        tag = {ANY_TAG: "ANY_TAG"}.get(self.tag, str(self.tag))
        mode = "" if self.blocking else "i"
        if self.kind == "send":
            return f"rank {self.rank}: {mode}send(dest={peer}, tag={tag}){origin}"
        return f"rank {self.rank}: {mode}recv(source={peer}, tag={tag}){origin}"


@dataclass
class CommPlan:
    """Per-rank programs of one communication phase."""

    nranks: int
    ops: list[PlanOp] = field(default_factory=list)

    def add(self, op: PlanOp) -> "CommPlan":
        if not 0 <= op.rank < self.nranks:
            raise LintError(
                f"plan op on rank {op.rank} outside communicator of "
                f"size {self.nranks}"
            )
        if op.kind == "coll":
            if not op.coll:
                raise LintError("collective plan ops need a name")
            self.ops.append(op)
            return self
        if op.peer != PROC_NULL:
            valid_peer = (
                0 <= op.peer < self.nranks
                or (op.kind == "recv" and op.peer == ANY_SOURCE)
            )
            if not valid_peer:
                raise LintError(
                    f"plan op peer {op.peer} outside communicator of "
                    f"size {self.nranks}"
                )
        if op.peer != PROC_NULL:  # PROC_NULL ops are no-ops, drop them
            self.ops.append(op)
        return self

    def send(self, rank: int, dest: int, tag: int, **kw) -> "CommPlan":
        return self.add(PlanOp("send", rank, dest, tag, **kw))

    def recv(self, rank: int, source: int, tag: int, **kw) -> "CommPlan":
        return self.add(PlanOp("recv", rank, source, tag, **kw))

    def collective(self, rank: int, name: str, **kw) -> "CommPlan":
        """Append a collective call (barrier, reduction, ...) to a rank."""
        return self.add(PlanOp("coll", rank, PROC_NULL, 0, coll=name, **kw))

    def program(self, rank: int) -> list[PlanOp]:
        return [op for op in self.ops if op.rank == rank]


# -- Cartesian helpers (mirror repro.mpi.cart's row-major convention) -------


def _cart_coords(rank: int, dims: tuple[int, ...]) -> tuple[int, ...]:
    out = []
    for dim in reversed(dims):
        out.append(rank % dim)
        rank //= dim
    return tuple(reversed(out))


def _cart_rank(coords, dims, periods) -> int:
    coords = list(coords)
    for axis, (c, dim, periodic) in enumerate(zip(coords, dims, periods)):
        if 0 <= c < dim:
            continue
        if not periodic:
            return PROC_NULL
        coords[axis] = c % dim
    rank = 0
    for c, dim in zip(coords, dims):
        rank = rank * dim + c
    return rank


def cart_shift(rank, dims, periods, axis, disp=1) -> tuple[int, int]:
    """(source, dest) of ``MPI_Cart_shift`` without a communicator."""
    here = _cart_coords(rank, dims)
    up = list(here)
    up[axis] += disp
    down = list(here)
    down[axis] -= disp
    return _cart_rank(down, dims, periods), _cart_rank(up, dims, periods)


def halo_exchange_plan(
    dims,
    periods=None,
    *,
    mode: str = "sequential",
) -> CommPlan:
    """The static plan of the built-in ghost exchange.

    ``mode="sequential"`` mirrors :func:`~repro.core.exchange.
    exchange_ghosts` (blocking, buffered, axis-by-axis);
    ``mode="overlapped"`` mirrors :func:`~repro.core.exchange.
    exchange_ghosts_nonblocking` (post all receives, then all sends).
    """
    dims = tuple(int(d) for d in dims)
    if not dims or any(d <= 0 for d in dims):
        raise LintError(f"cartesian dims must be positive: {dims}")
    periods = tuple(bool(p) for p in (periods or (True,) * len(dims)))
    if len(periods) != len(dims):
        raise LintError(f"periods {periods} do not match dims {dims}")
    if mode not in ("sequential", "overlapped"):
        raise LintError(f"exchange mode must be sequential|overlapped, got {mode!r}")
    nranks = math.prod(dims)
    plan = CommPlan(nranks)
    blocking = mode == "sequential"
    for rank in range(nranks):
        if not blocking:
            for axis in range(len(dims)):
                source_down, dest_up = cart_shift(rank, dims, periods, axis)
                plan.recv(rank, source_down, _face_tag(axis, +1),
                          blocking=False, where=f"axis{axis}/-1")
                plan.recv(rank, dest_up, _face_tag(axis, -1),
                          blocking=False, where=f"axis{axis}/+1")
        for axis in range(len(dims)):
            source_down, dest_up = cart_shift(rank, dims, periods, axis)
            plan.send(rank, dest_up, _face_tag(axis, +1),
                      blocking=blocking, where=f"axis{axis}/+1")
            plan.send(rank, source_down, _face_tag(axis, -1),
                      blocking=blocking, where=f"axis{axis}/-1")
            if blocking:
                plan.recv(rank, source_down, _face_tag(axis, +1),
                          where=f"axis{axis}/-1")
                plan.recv(rank, dest_up, _face_tag(axis, -1),
                          where=f"axis{axis}/+1")
    return plan


# -- the checker ------------------------------------------------------------


def check_plan(plan: CommPlan, *, report: LintReport | None = None) -> LintReport:
    """Run matching + deadlock + collective-ordering analysis over one plan."""
    report = report if report is not None else LintReport()
    _check_matching(plan, report)
    _check_deadlock(plan, report)
    _check_collective_order(plan, report)
    report.record_fact("mpi.plan.nranks", plan.nranks)
    report.record_fact("mpi.plan.messages", sum(
        1 for op in plan.ops if op.kind == "send"
    ))
    report.record_fact("mpi.plan.collectives", sum(
        1 for op in plan.ops if op.kind == "coll"
    ))
    return report


def _check_matching(plan: CommPlan, report: LintReport) -> None:
    sends: dict[tuple, list[PlanOp]] = {}
    recvs: dict[tuple, list[PlanOp]] = {}
    wildcards: list[PlanOp] = []
    for op in plan.ops:
        if op.kind == "coll":
            continue
        if op.kind == "send":
            sends.setdefault((op.rank, op.peer, op.tag), []).append(op)
        elif op.peer == ANY_SOURCE or op.tag == ANY_TAG:
            wildcards.append(op)
        else:
            recvs.setdefault((op.peer, op.rank, op.tag), []).append(op)

    for op in wildcards:
        report.add(
            D.MPI_WILDCARD, f"rank{op.rank}",
            f"{op.describe()} matches in arrival order",
            hint="name the source and tag explicitly for deterministic "
                 "halo exchanges",
        )

    def _wildcard_accepts(op: PlanOp, src: int, tag: int) -> bool:
        return (op.peer in (ANY_SOURCE, src)) and (op.tag in (ANY_TAG, tag))

    for key in sorted(set(sends) | set(recvs)):
        src, dst, tag = key
        n_send = len(sends.get(key, ()))
        n_recv = len(recvs.get(key, ()))
        n_recv += sum(
            1 for op in wildcards if op.rank == dst and _wildcard_accepts(op, src, tag)
        )
        if n_send > n_recv:
            example = sends[key][0]
            if n_recv > 0:
                report.add(
                    D.MPI_DUP_MATCH, f"rank{src}",
                    f"{n_send} sends but only {n_recv} receives on "
                    f"edge {src}->{dst} tag {tag} ({example.describe()})",
                    hint="each message needs exactly one receive",
                )
            else:
                other_tags = sorted(
                    t for (s, d, t), ops in recvs.items()
                    if s == src and d == dst and t != tag
                )
                if other_tags:
                    report.add(
                        D.MPI_TAG_MISMATCH, f"rank{src}",
                        f"{example.describe()} has no matching receive, but "
                        f"rank {dst} receives from {src} under tag(s) "
                        f"{other_tags}",
                        hint="align the send and receive tag maps",
                    )
                else:
                    report.add(
                        D.MPI_UNMATCHED_SEND, f"rank{src}",
                        f"{example.describe()} is never received "
                        f"by rank {dst}",
                        hint="post a matching receive or drop the send",
                    )
        elif n_recv > n_send and key in recvs:
            example = recvs[key][0]
            missing = n_recv - n_send
            other_tags = sorted(
                t for (s, d, t), ops in sends.items()
                if s == src and d == dst and t != tag
                and len(ops) > len(recvs.get((s, d, t), ()))
            )
            if n_send == 0 and other_tags:
                report.add(
                    D.MPI_TAG_MISMATCH, f"rank{dst}",
                    f"{example.describe()} has no matching send, but rank "
                    f"{src} sends to {dst} under tag(s) {other_tags}",
                    hint="align the send and receive tag maps",
                )
            else:
                report.add(
                    D.MPI_UNMATCHED_RECV, f"rank{dst}",
                    f"{missing} receive(s) on edge {src}->{dst} tag {tag} "
                    f"never get a message ({example.describe()})",
                    hint="every posted receive must be fed by a send",
                )


def _check_deadlock(plan: CommPlan, report: LintReport) -> None:
    """Abstract execution: advance ranks until quiescent or stuck."""
    programs = {rank: plan.program(rank) for rank in range(plan.nranks)}
    pc = {rank: 0 for rank in range(plan.nranks)}
    in_flight: dict[tuple, int] = {}  # (src, dst, tag) -> count
    posted: list[PlanOp] = []  # nonblocking receives awaiting messages

    def _try_consume(rank: int, source: int, tag: int) -> bool:
        for (src, dst, t), count in sorted(in_flight.items()):
            if count <= 0 or dst != rank:
                continue
            if source in (ANY_SOURCE, src) and tag in (ANY_TAG, t):
                in_flight[(src, dst, t)] -= 1
                return True
        return False

    def _recv_posted_at(rank: int, tag: int, source: int) -> bool:
        """Is a matching receive posted or imminent at ``rank``?"""
        for op in posted:
            if op.rank == rank and op.peer in (ANY_SOURCE, source) \
                    and op.tag in (ANY_TAG, tag):
                return True
        program = programs[rank]
        if pc[rank] < len(program):
            op = program[pc[rank]]
            return (
                op.kind == "recv"
                and op.peer in (ANY_SOURCE, source)
                and op.tag in (ANY_TAG, tag)
            )
        return False

    progress = True
    while progress:
        progress = False
        # drain posted nonblocking receives first (arrival order)
        for op in list(posted):
            if _try_consume(op.rank, op.peer, op.tag):
                posted.remove(op)
                progress = True
        for rank in range(plan.nranks):
            program = programs[rank]
            while pc[rank] < len(program):
                op = program[pc[rank]]
                if op.kind == "coll":
                    # cross-rank collective blocking is analyzed by the
                    # ordering check; the abstract scheduler passes through
                    pc[rank] += 1
                    progress = True
                    continue
                if op.kind == "send":
                    if op.buffered or not op.blocking:
                        pass  # eager: completes immediately
                    elif not _recv_posted_at(op.peer, op.tag, rank):
                        break  # rendezvous send blocks
                    key = (rank, op.peer, op.tag)
                    in_flight[key] = in_flight.get(key, 0) + 1
                elif not op.blocking:
                    posted.append(op)  # irecv: post and move on
                elif not _try_consume(rank, op.peer, op.tag):
                    break  # blocking recv with nothing to match
                pc[rank] += 1
                progress = True

    stuck = {
        rank: programs[rank][pc[rank]]
        for rank in range(plan.nranks)
        if pc[rank] < len(programs[rank])
    }
    if not stuck:
        return
    chain = "; ".join(op.describe() for _, op in sorted(stuck.items()))
    report.add(
        D.MPI_DEADLOCK, f"ranks {sorted(stuck)}",
        f"{len(stuck)} rank(s) block forever: {chain}",
        hint="break the cycle: post receives before blocking sends, or "
             "use the nonblocking overlapped exchange",
    )


def _check_collective_order(plan: CommPlan, report: LintReport) -> None:
    """Every rank must issue the same collectives in the same order.

    Rank 0's sequence is the reference; each other rank is compared
    against it and the first divergence (different collective, or a
    shorter/longer sequence) is reported. A skewed order hangs or
    corrupts a real job — e.g. rank 0 calling ``allreduce`` while rank 1
    sits in ``barrier`` pairs the wrong collectives with each other.
    """
    sequences = {
        rank: [op for op in plan.program(rank) if op.kind == "coll"]
        for rank in range(plan.nranks)
    }
    if not any(sequences.values()):
        return
    reference = sequences[0]
    for rank in range(1, plan.nranks):
        sequence = sequences[rank]
        for pos, (ref, got) in enumerate(zip(reference, sequence)):
            if ref.coll != got.coll:
                report.add(
                    D.MPI_COLLECTIVE_ORDER, f"rank{rank}",
                    f"collective #{pos} diverges from rank 0: rank 0 calls "
                    f"{ref.coll}() but {got.describe()}",
                    hint="issue collectives in the same order on every rank",
                )
                break
        else:
            if len(sequence) != len(reference):
                short, long_ = sorted(
                    [(len(sequence), rank), (len(reference), 0)]
                )
                extra = (reference if long_[1] == 0 else sequence)[short[0]]
                report.add(
                    D.MPI_COLLECTIVE_ORDER, f"rank{rank}",
                    f"rank {rank} issues {len(sequence)} collective(s) but "
                    f"rank 0 issues {len(reference)}; rank {long_[1]} is "
                    f"alone in {extra.coll}() at position {short[0]}",
                    hint="every rank must participate in every collective",
                )
