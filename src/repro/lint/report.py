"""Lint reporters: human text and SARIF-like JSON.

The JSON schema follows SARIF 2.1.0's shape (``runs[].tool.driver.
rules`` + ``runs[].results``) closely enough for SARIF-aware viewers,
with the repo's checked facts and severity counts attached under
``properties`` — the part SARIF reserves for tool-specific payloads.
"""

from __future__ import annotations

import hashlib

from repro._version import __version__
from repro.lint.diagnostics import (
    RULES,
    SARIF_LEVELS,
    Diagnostic,
    LintReport,
    Severity,
)


def stable_fingerprint(diag: Diagnostic) -> str:
    """A run-order-insensitive identity for one finding.

    Keyed on the rule, the logical location, and the diagnostic's
    canonical ``key`` (the affine access / subject in canonical form)
    — *not* on the message wording — so re-running the lint, reordering
    analyzers, or rewording a message template's prose keeps (or
    changes) fingerprints for the right reasons. Diffs across runs can
    match results on ``partialFingerprints`` alone.
    """
    subject = diag.key if diag.key else diag.message
    payload = f"{diag.rule}|{diag.location}|{subject}"
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:24]


def render_text(report: LintReport, *, title: str = "lint report") -> str:
    """The terminal rendering: diagnostics table + facts + verdict."""
    from repro.util.tables import Table

    lines = []
    if report.diagnostics:
        table = Table(["severity", "rule", "location", "message"], title=title)
        for diag in sorted(
            report.diagnostics, key=lambda d: (-d.severity, d.rule, d.location)
        ):
            table.add_row(
                [diag.severity.label, diag.rule, diag.location, diag.message]
            )
        lines.append(table.render())
        hints = [d for d in report.diagnostics if d.hint]
        if hints:
            lines.append("")
            lines.extend(
                f"  hint[{d.rule}]: {d.hint}"
                for d in sorted(hints, key=lambda d: (-d.severity, d.rule))
            )
    else:
        lines.append(f"{title}: no diagnostics")
    if report.facts:
        lines.append("")
        lines.append("checked facts:")
        lines.extend(
            f"  {key} = {value}" for key, value in sorted(report.facts.items())
        )
    counts = report.counts()
    lines.append("")
    lines.append(
        "verdict: "
        + (", ".join(f"{n} {label}(s)" for label, n in counts.items() if n)
           or "clean")
    )
    return "\n".join(lines)


def to_sarif(report: LintReport) -> dict:
    """A SARIF-2.1.0-shaped dict of the report."""
    used = {d.rule for d in report.diagnostics}
    rules = [
        {
            "id": rule.id,
            "shortDescription": {"text": rule.summary},
            "defaultConfiguration": {
                "level": SARIF_LEVELS[rule.severity],
            },
            "properties": {"layer": rule.layer},
        }
        for rule_id, rule in sorted(RULES.items())
        if rule_id in used
    ]
    # deterministic, run-order-insensitive result listing: sort by
    # (rule, fingerprint, message) so two runs that found the same
    # things produce byte-identical SARIF regardless of analyzer order
    ordered = sorted(
        report.diagnostics,
        key=lambda d: (d.rule, stable_fingerprint(d), d.message),
    )
    results = [
        {
            "ruleId": diag.rule,
            "level": SARIF_LEVELS[diag.severity],
            "message": {"text": diag.message},
            "locations": [
                {
                    "logicalLocations": [
                        {"fullyQualifiedName": diag.location}
                    ]
                }
            ],
            "partialFingerprints": {
                "reproLint/v1": stable_fingerprint(diag),
            },
            **({"properties": {"hint": diag.hint}} if diag.hint else {}),
        }
        for diag in ordered
    ]
    return {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.lint",
                        "version": __version__,
                        "rules": rules,
                    }
                },
                "results": results,
                "properties": {
                    "facts": dict(sorted(report.facts.items())),
                    "counts": report.counts(),
                    "clean": report.clean,
                },
            }
        ],
    }


def max_severity_label(report: LintReport) -> str:
    severity = report.max_severity
    return severity.label if severity is not None else "clean"


def exit_code(report: LintReport) -> int:
    """CI-gating semantics: nonzero only on error-severity diagnostics."""
    return 1 if any(
        d.severity >= Severity.ERROR for d in report.diagnostics
    ) else 0
