"""End-to-end lint of a Gray-Scott configuration.

:func:`lint_workflow` is what ``grayscott lint`` runs: from a settings
object alone it lints

- the built-in kernels (application + 1-variable diagnostic), traced
  through the JIT exactly as a run would compile them — including the
  paper's Listing 4 invariant, recorded as facts
  (``kernel:_kernel_gray_scott.unique_loads = 14`` / ``…stores = 2``);
- the ghost-exchange plan the settings select (decomposition from
  ``ranks``, periodicity from ``boundary``, sequential vs overlapped
  from ``exchange``);
- the ADIOS writer script of the output phase (one ``U``/``V``/``step``
  put per output step per rank, coverage-checked over the global
  shape).

If an observability tracer is active (:func:`repro.observe.trace.
active`), diagnostic counts land in its metrics registry so lint
results appear alongside traces and run metrics.
"""

from __future__ import annotations

import numpy as np

from repro.lint import diagnostics as D
from repro.lint.adiosproto import check_writer_script, writer_script_for
from repro.lint.diagnostics import LintReport, check_rule_ids
from repro.lint.kernels import check_occupancy, lint_kernel
from repro.lint.mpiplan import check_plan, halo_exchange_plan
from repro.observe import trace as observe

#: per-axis size of the scratch arrays kernels are traced over; any
#: value >= 4 yields the same affine trace (the tracer pins the
#: interior workitem), 12 matches the Listing 4 harness
TRACE_EXTENT = 12


def _builtin_kernel_args(settings):
    """(kernel, args) pairs for the kernels a run would launch."""
    from repro.core.stencil import (
        kernel_args,
        make_gray_scott_kernel,
        make_laplacian_kernel,
    )

    dtype = np.dtype(settings.precision)
    shape = (TRACE_EXTENT,) * 3
    u, v = (np.ones(shape, dtype=dtype, order="F") for _ in range(2))
    u_new, v_new = (np.zeros(shape, dtype=dtype, order="F") for _ in range(2))
    gs_args = kernel_args(
        u, v, u_new, v_new, settings.params(),
        seed=settings.seed, step=0,
    )
    lap_args = (u, u_new, shape, settings.Du, settings.dt)
    return [
        (make_gray_scott_kernel(), gs_args),
        (make_laplacian_kernel(), lap_args),
    ]


def _check_module_passes(settings, passes, report: LintReport) -> None:
    """Optimizer-backed module lint: what would the pass pipeline buy?

    Builds the workflow's stencil-IR module, runs ``passes`` over it,
    and reports missed cross-launch optimizations as informational
    diagnostics: IR-FUSION-MISSED when fusion was legal and removed
    re-loads, IR-CSE when the merged module still held repeated pure
    subexpressions. Facts record the op-count deltas either way.
    """
    from repro.ir.build import workflow_module
    from repro.ir.passes import PassManager, parse_pipeline

    pipeline = parse_pipeline(passes)
    module = workflow_module(settings)
    rewritten, pipe_report = PassManager(pipeline).run(module)
    before, after = module.op_counts(), rewritten.op_counts()
    where = f"module:{module.name}"
    report.record_fact(
        f"{where}.passes", ",".join(p.name for p in pipeline)
    )
    for kind in sorted(before):
        report.record_fact(f"{where}.{kind}_ops", f"{before[kind]} -> {after[kind]}")

    by_pass = {r.pass_name: r for r in pipe_report.reports}
    fuse = by_pass.get("fuse")
    loads_removed = before["load"] - after["load"]
    if fuse is not None and fuse.applied and loads_removed > 0:
        report.add(
            D.IR_FUSION_MISSED, where,
            f"launches {' + '.join(f.name for f in module.funcs)} re-load "
            f"shared inputs; fusing them removes {loads_removed} of "
            f"{before['load']} loads per cell",
            hint="fuse the kernels (or rely on cache residency at small "
                 "shapes); `grayscott ir optimize` quantifies the traffic",
            key=f"fuse:{'+'.join(f.name for f in module.funcs)}",
        )
    arith_removed = before["arith"] - after["arith"]
    if arith_removed > 0:
        report.add(
            D.IR_CSE, where,
            f"{arith_removed} of {before['arith']} arith op(s) per cell "
            f"recompute values the merged module already holds",
            hint="common-subexpression merge across the fused body cuts "
                 "per-cell flops",
            key=f"cse:{arith_removed}/{before['arith']}",
        )


def lint_workflow(settings, *, rules=None, passes=None) -> LintReport:
    """Lint kernels + exchange plan + writer script for one settings.

    ``passes`` (a pass-pipeline spec like ``"fuse,rle,cse"``) addition-
    ally runs the stencil-IR rewrite pipeline over the workflow module
    and reports cross-launch optimization opportunities (IR-FUSION-
    MISSED, IR-CSE) as informational diagnostics.
    """
    report = LintReport()

    for kernel, args in _builtin_kernel_args(settings):
        lint_kernel(kernel, args, ghost=1, report=report)

    if passes is not None:
        _check_module_passes(settings, passes, report)

    if settings.backend != "cpu":
        # a GPU backend was selected: check its codegen's CU occupancy
        check_occupancy(settings.backend, report=report)

    nranks = max(int(settings.ranks), 1)
    if nranks > 1:
        from repro.mpi.cart import dims_create

        dims = dims_create(nranks, 3)
    else:
        dims = (1, 1, 1)
    periodic = settings.boundary == "periodic"
    plan = halo_exchange_plan(
        dims, periods=(periodic,) * 3, mode=settings.exchange
    )
    check_plan(plan, report=report)

    check_writer_script(writer_script_for(settings), report=report)

    if rules is not None:
        report = report.select_rules(check_rule_ids(rules))

    tracer = observe.active()
    if tracer is not None:
        report.to_metrics(tracer.metrics)
    return report
