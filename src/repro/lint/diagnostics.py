"""The unified diagnostic model shared by every analyzer.

A :class:`Diagnostic` is one finding: a stable rule id, a severity, the
layer it came from (``gpu``, ``mpi``, ``adios``, ``core``), a logical
location (kernel name, rank, variable — there is no source file to
point at, the subjects are *plans* and *traces*), a human message, and
an optional fix hint. Analyzers append diagnostics to a shared
:class:`LintReport`, which also carries checked **facts** — invariants
the analyzers verified and recorded (e.g. the Gray-Scott kernel's
"14 unique loads / 2 stores" from the paper's Listing 4) so a clean
report still proves something.

Rule ids are registered in :data:`RULES` with their layer, default
severity, and a one-line summary; the registry drives ``--rules``
validation, the SARIF ``rules`` array, and ``docs/LINTING.md``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.util.errors import LintError


class Severity(enum.IntEnum):
    """Ordered severity; comparisons follow the int value."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[str(text).upper()]
        except KeyError:
            raise LintError(
                f"unknown severity {text!r}; expected info|warning|error"
            ) from None


#: SARIF result levels for each severity
SARIF_LEVELS = {
    Severity.INFO: "note",
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
}


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    id: str
    layer: str
    severity: Severity
    summary: str


RULES: dict[str, Rule] = {}


def _rule(id: str, layer: str, severity: Severity, summary: str) -> Rule:
    rule = Rule(id=id, layer=layer, severity=severity, summary=summary)
    RULES[id] = rule
    return rule


# -- kernel-IR rules (repro.lint.kernels) -----------------------------------
KRN_BOUNDS = _rule(
    "KRN-BOUNDS", "gpu", Severity.ERROR,
    "stencil offset reaches outside the ghost region (out-of-bounds / halo overrun)",
)
KRN_GHOST_WRITE = _rule(
    "KRN-GHOST-WRITE", "gpu", Severity.WARNING,
    "store lands in the halo region; the next exchange will overwrite it",
)
KRN_RACE = _rule(
    "KRN-RACE", "gpu", Severity.ERROR,
    "two distinct workitems write the same output cell (write-write race)",
)
KRN_STRIDE = _rule(
    "KRN-STRIDE", "gpu", Severity.WARNING,
    "uncoalesced access: the contiguous axis is not covered unit-stride",
)
KRN_TYPE_MIX = _rule(
    "KRN-TYPE-MIX", "gpu", Severity.WARNING,
    "kernel mixes float32 and float64 arrays (hidden converts, like @code_warntype)",
)
KRN_INT_ESCAPE = _rule(
    "KRN-INT-ESCAPE", "gpu", Severity.WARNING,
    "traced integer escapes into floating-point dataflow (sitofp in the hot loop)",
)
KRN_RAND = _rule(
    "KRN-RAND", "gpu", Severity.INFO,
    "device RNG call in the kernel body (costs LDS/scratch on AMDGPU, Table 3)",
)
GPU_OCCUPANCY = _rule(
    "GPU-OCCUPANCY", "gpu", Severity.INFO,
    "backend codegen leaves CU wavefront slots empty (memory-bound kernels "
    "lose bandwidth below ~75% occupancy)",
)

# -- stencil-IR rules (repro.ir analyses, reported via repro.lint) ----------
IR_REDUNDANT_LOAD = _rule(
    "IR-REDUNDANT-LOAD", "gpu", Severity.WARNING,
    "a load reads an address already live in a register (redundant-load "
    "elimination would remove it)",
)
IR_DEAD_STORE = _rule(
    "IR-DEAD-STORE", "gpu", Severity.WARNING,
    "a store is overwritten before any possible read (dead-store "
    "elimination would remove it)",
)
IR_FUSION_MISSED = _rule(
    "IR-FUSION-MISSED", "gpu", Severity.INFO,
    "adjacent kernel launches re-load shared inputs; stencil fusion is "
    "legal and would eliminate the re-loads",
)
IR_CSE = _rule(
    "IR-CSE", "gpu", Severity.INFO,
    "floating-point subexpressions are computed more than once per cell "
    "(common-subexpression merge would cut flops)",
)

# -- MPI plan rules (repro.lint.mpiplan) ------------------------------------
MPI_DEADLOCK = _rule(
    "MPI-DEADLOCK", "mpi", Severity.ERROR,
    "blocking cycle: ranks wait on each other and no message can arrive",
)
MPI_UNMATCHED_SEND = _rule(
    "MPI-UNMATCHED-SEND", "mpi", Severity.ERROR,
    "send has no matching receive at the destination",
)
MPI_UNMATCHED_RECV = _rule(
    "MPI-UNMATCHED-RECV", "mpi", Severity.ERROR,
    "receive has no matching send from the source",
)
MPI_TAG_MISMATCH = _rule(
    "MPI-TAG-MISMATCH", "mpi", Severity.ERROR,
    "send/recv pair agrees on peers but not on tags",
)
MPI_DUP_MATCH = _rule(
    "MPI-DUP-MATCH", "mpi", Severity.ERROR,
    "more sends than receives on one (source, dest, tag) edge",
)
MPI_WILDCARD = _rule(
    "MPI-WILDCARD", "mpi", Severity.WARNING,
    "wildcard receive (ANY_SOURCE/ANY_TAG) makes matching nondeterministic",
)
MPI_COLLECTIVE_ORDER = _rule(
    "MPI-COLLECTIVE-ORDER", "mpi", Severity.ERROR,
    "ranks issue collectives in different orders (cross-rank collective mismatch)",
)

# -- ADIOS protocol rules (repro.lint.adiosproto) ---------------------------
ADIOS_PUT_OUTSIDE_STEP = _rule(
    "ADIOS-PUT-OUTSIDE-STEP", "adios", Severity.ERROR,
    "put() outside begin_step/end_step",
)
ADIOS_NESTED_BEGIN = _rule(
    "ADIOS-NESTED-BEGIN", "adios", Severity.ERROR,
    "begin_step while a step is already open",
)
ADIOS_END_UNOPENED = _rule(
    "ADIOS-END-UNOPENED", "adios", Severity.ERROR,
    "end_step without begin_step",
)
ADIOS_CLOSE_IN_STEP = _rule(
    "ADIOS-CLOSE-IN-STEP", "adios", Severity.ERROR,
    "close() inside an open step",
)
ADIOS_UNCLOSED_STEP = _rule(
    "ADIOS-UNCLOSED-STEP", "adios", Severity.WARNING,
    "writer program ends with a step still open",
)
ADIOS_STEP_SKEW = _rule(
    "ADIOS-STEP-SKEW", "adios", Severity.ERROR,
    "ranks complete different numbers of steps (collective mismatch)",
)
ADIOS_UNKNOWN_VAR = _rule(
    "ADIOS-UNKNOWN-VAR", "adios", Severity.ERROR,
    "put() of a variable with no declared global shape",
)
ADIOS_BAD_SELECTION = _rule(
    "ADIOS-BAD-SELECTION", "adios", Severity.ERROR,
    "block selection rank does not match the variable's global shape",
)
ADIOS_OOB_BLOCK = _rule(
    "ADIOS-OOB-BLOCK", "adios", Severity.ERROR,
    "block selection lies (partly) outside the global shape",
)
ADIOS_OVERLAP = _rule(
    "ADIOS-OVERLAP", "adios", Severity.ERROR,
    "two blocks of one step overlap; readback is writer-order dependent",
)
ADIOS_GAP = _rule(
    "ADIOS-GAP", "adios", Severity.WARNING,
    "step's blocks leave part of the global shape unwritten",
)


def check_rule_ids(rules) -> tuple[str, ...]:
    """Validate a rule-id selection; raises :class:`LintError` on typos."""
    chosen = tuple(rules)
    unknown = [r for r in chosen if r not in RULES]
    if unknown:
        raise LintError(
            f"unknown rule id(s) {unknown}; known: {sorted(RULES)}"
        )
    return chosen


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding."""

    rule: str
    severity: Severity
    layer: str
    location: str
    message: str
    hint: str = ""
    #: canonical fingerprint key: the finding's *subject* in a stable
    #: form (e.g. the affine access ``u[z + 2, y, x]``), independent of
    #: message wording — the SARIF ``partialFingerprints`` input. Empty
    #: means the message itself is the subject.
    key: str = ""

    def render(self) -> str:
        text = f"{self.severity.label}[{self.rule}] {self.location}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text


@dataclass
class LintReport:
    """Diagnostics plus checked facts, accumulated across analyzers."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: invariants the analyzers verified while producing no diagnostic,
    #: e.g. ``kernel._kernel_gray_scott.unique_loads -> 14``
    facts: dict[str, object] = field(default_factory=dict)

    def add(
        self,
        rule: Rule,
        location: str,
        message: str,
        *,
        hint: str = "",
        severity: Severity | None = None,
        key: str = "",
    ) -> Diagnostic:
        diag = Diagnostic(
            rule=rule.id,
            severity=severity if severity is not None else rule.severity,
            layer=rule.layer,
            location=location,
            message=message,
            hint=hint,
            key=key,
        )
        self.diagnostics.append(diag)
        return diag

    def record_fact(self, key: str, value) -> None:
        self.facts[key] = value

    # -- queries ----------------------------------------------------------
    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def max_severity(self) -> Severity | None:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    @property
    def clean(self) -> bool:
        """No warnings and no errors (informational notes allowed)."""
        return not any(d.severity >= Severity.WARNING for d in self.diagnostics)

    def by_rule(self) -> dict[str, list[Diagnostic]]:
        out: dict[str, list[Diagnostic]] = {}
        for diag in self.diagnostics:
            out.setdefault(diag.rule, []).append(diag)
        return out

    def select_rules(self, rules) -> "LintReport":
        """A copy restricted to ``rules`` (facts are kept)."""
        chosen = set(check_rule_ids(rules))
        out = LintReport(facts=dict(self.facts))
        out.diagnostics = [d for d in self.diagnostics if d.rule in chosen]
        return out

    def counts(self) -> dict[str, int]:
        out = {s.label: 0 for s in Severity}
        for diag in self.diagnostics:
            out[diag.severity.label] += 1
        return out

    # -- observe integration ----------------------------------------------
    def to_metrics(self, registry) -> None:
        """Fold diagnostic counts into a metrics registry.

        One ``lint.diagnostics`` counter per (rule, severity, layer), so
        lint results ride alongside trace metrics in ``--metrics-out``.
        """
        for diag in self.diagnostics:
            registry.counter(
                "lint.diagnostics",
                rule=diag.rule,
                severity=diag.severity.label,
                layer=diag.layer,
            ).inc()
        registry.gauge("lint.errors").set(len(self.errors))
        registry.gauge("lint.warnings").set(len(self.warnings))
