"""Cross-layer static analysis (``repro.lint``).

The paper's central methodological move is *static inspection*: it
counts the 14 loads / 2 stores in the Julia kernel's LLVM-IR
(Listing 4) to show the high-level language added no hidden memory
traffic, and its portability hazards — type instability, halo-index
bugs, mismatched nonblocking exchanges — are exactly what Julia's
``@code_warntype``/JET.jl catch before a 512-node run. This package is
that diagnostics layer for the reproduction: three analyzers over the
repo's *plans and traces*, none of which execute the workload.

- :mod:`repro.lint.kernels` — bounds/halo, write-write races,
  coalescing, and type-stability checks over the tracing JIT's
  :class:`~repro.gpu.jit.KernelTrace`;
- :mod:`repro.lint.mpiplan` — deadlock and matching analysis of static
  send/recv plans (:func:`halo_exchange_plan` builds the production
  ghost-exchange plan from ``dims``/``periods`` alone);
- :mod:`repro.lint.adiosproto` — symbolic execution of writer scripts
  against the begin_step/put/end_step state machine plus per-step
  selection coverage of the global shape.

Findings share one :class:`Diagnostic` model (rule id, severity,
layer, location, fix hint) collected into a :class:`LintReport`, with
text and SARIF-like JSON reporters and metrics-registry integration.
``grayscott lint <settings.json>`` runs everything end-to-end; rule
documentation lives in ``docs/LINTING.md``.
"""

from repro.lint.adiosproto import (
    WriterOp,
    WriterScript,
    check_writer_script,
    writer_script_for,
)
from repro.lint.diagnostics import (
    RULES,
    Diagnostic,
    LintReport,
    Rule,
    Severity,
    check_rule_ids,
)
from repro.lint.kernels import (
    analyze_ir_func,
    analyze_kernel_trace,
    check_ir_func,
    check_occupancy,
    lint_kernel,
)
from repro.lint.mpiplan import (
    CommPlan,
    PlanOp,
    cart_shift,
    check_plan,
    halo_exchange_plan,
)
from repro.lint.report import exit_code, render_text, to_sarif
from repro.lint.runner import lint_workflow

__all__ = [
    "RULES",
    "CommPlan",
    "Diagnostic",
    "LintReport",
    "PlanOp",
    "Rule",
    "Severity",
    "WriterOp",
    "WriterScript",
    "analyze_ir_func",
    "analyze_kernel_trace",
    "cart_shift",
    "check_ir_func",
    "check_occupancy",
    "check_plan",
    "check_rule_ids",
    "check_writer_script",
    "exit_code",
    "halo_exchange_plan",
    "lint_kernel",
    "lint_workflow",
    "render_text",
    "to_sarif",
    "writer_script_for",
]
