"""ADIOS step-protocol verifier: state machine + selection coverage.

A :class:`WriterScript` is the symbolic program of a parallel writer:
per-rank sequences of ``begin_step`` / ``put`` / ``end_step`` /
``close`` operations plus the declared global shape of every variable.
:func:`check_writer_script` executes it against the same state machine
:class:`repro.adios.engines.BP5Writer` enforces at runtime — but
statically, before any byte is written:

- protocol violations (**ADIOS-PUT-OUTSIDE-STEP**, **ADIOS-NESTED-
  BEGIN**, **ADIOS-END-UNOPENED**, **ADIOS-CLOSE-IN-STEP**,
  **ADIOS-UNCLOSED-STEP**) mirror the writer's
  :class:`~repro.util.errors.EngineStateError` conditions;
- **ADIOS-STEP-SKEW** catches ranks completing different step counts —
  the collective ``end_step`` would hang or corrupt the index;
- per-step selection coverage over the global shape: blocks outside
  the shape (**ADIOS-OOB-BLOCK**), overlapping blocks
  (**ADIOS-OVERLAP**), and uncovered cells (**ADIOS-GAP**), verified
  cell-exactly via an occupancy grid for shapes up to
  :data:`OCCUPANCY_LIMIT` cells and by volume accounting above it.

:func:`writer_script_for` derives the script the Gray-Scott workflow
would execute from a settings object alone (decomposition via
``dims_create`` + :class:`~repro.core.domain.LocalDomain`, one
``U``/``V``/``step`` put per output step), so ``grayscott lint``
verifies the real writer plan end-to-end.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.lint import diagnostics as D
from repro.lint.diagnostics import LintReport
from repro.util.errors import LintError

#: largest global-shape volume checked cell-exactly (8M cells ~ 8 MB)
OCCUPANCY_LIMIT = 1 << 23

BEGIN_STEP = "begin_step"
PUT = "put"
END_STEP = "end_step"
CLOSE = "close"


@dataclass(frozen=True)
class WriterOp:
    """One symbolic writer call."""

    op: str
    var: str = ""
    start: tuple[int, ...] = ()
    count: tuple[int, ...] = ()

    def describe(self) -> str:
        if self.op == PUT:
            return f"put({self.var}, start={self.start}, count={self.count})"
        return f"{self.op}()"


@dataclass
class WriterScript:
    """Per-rank writer programs + declared variable shapes."""

    nranks: int
    #: variable -> global shape; () declares a scalar (no coverage check)
    shapes: dict[str, tuple[int, ...]] = field(default_factory=dict)
    ops: dict[int, list[WriterOp]] = field(default_factory=dict)

    def _rank(self, rank: int) -> list[WriterOp]:
        if not 0 <= rank < self.nranks:
            raise LintError(
                f"writer op on rank {rank} outside {self.nranks} ranks"
            )
        return self.ops.setdefault(rank, [])

    def begin_step(self, rank: int) -> "WriterScript":
        self._rank(rank).append(WriterOp(BEGIN_STEP))
        return self

    def put(self, rank: int, var: str, start=(), count=()) -> "WriterScript":
        self._rank(rank).append(
            WriterOp(PUT, var, tuple(int(s) for s in start),
                     tuple(int(c) for c in count))
        )
        return self

    def end_step(self, rank: int) -> "WriterScript":
        self._rank(rank).append(WriterOp(END_STEP))
        return self

    def close(self, rank: int) -> "WriterScript":
        self._rank(rank).append(WriterOp(CLOSE))
        return self


def writer_script_for(settings) -> WriterScript:
    """The script the Gray-Scott workflow would run for ``settings``."""
    from repro.core.domain import LocalDomain
    from repro.mpi.cart import dims_create

    nranks = max(int(settings.ranks), 1)
    dims = dims_create(nranks, 3) if nranks > 1 else (1, 1, 1)
    shape = settings.shape
    script = WriterScript(
        nranks=nranks,
        shapes={"U": shape, "V": shape, "step": ()},
    )
    nsteps_out = settings.steps // settings.plotgap
    for rank in range(nranks):
        coords = _coords_rowmajor(rank, dims)
        domain = LocalDomain.for_coords(shape, dims, coords)
        for _ in range(nsteps_out):
            script.begin_step(rank)
            script.put(rank, "U", domain.start, domain.count)
            script.put(rank, "V", domain.start, domain.count)
            script.put(rank, "step")
            script.end_step(rank)
        script.close(rank)
    return script


def _coords_rowmajor(rank: int, dims) -> tuple[int, ...]:
    out = []
    for dim in reversed(dims):
        out.append(rank % dim)
        rank //= dim
    return tuple(reversed(out))


# -- the checker ------------------------------------------------------------


def check_writer_script(
    script: WriterScript, *, report: LintReport | None = None
) -> LintReport:
    report = report if report is not None else LintReport()
    #: (var, step) -> list of (rank, WriterOp)
    blocks: dict[tuple[str, int], list[tuple[int, WriterOp]]] = {}
    steps_completed: dict[int, int] = {}

    for rank in range(script.nranks):
        where = f"rank{rank}"
        in_step = False
        closed = False
        step = -1
        for op in script.ops.get(rank, []):
            if closed:
                report.add(
                    D.ADIOS_PUT_OUTSIDE_STEP, where,
                    f"{op.describe()} after close()",
                    hint="no calls are legal on a closed writer",
                )
                continue
            if op.op == BEGIN_STEP:
                if in_step:
                    report.add(
                        D.ADIOS_NESTED_BEGIN, where,
                        f"begin_step while step {step} is still open",
                        hint="end_step before opening the next step",
                    )
                    continue
                in_step = True
                step += 1
            elif op.op == PUT:
                if not in_step:
                    report.add(
                        D.ADIOS_PUT_OUTSIDE_STEP, where,
                        f"{op.describe()} outside begin_step/end_step",
                        hint="wrap puts in a begin_step/end_step pair",
                    )
                    continue
                _check_put(script, rank, step, op, report, where)
                blocks.setdefault((op.var, step), []).append((rank, op))
            elif op.op == END_STEP:
                if not in_step:
                    report.add(
                        D.ADIOS_END_UNOPENED, where,
                        "end_step without begin_step",
                        hint="every end_step needs a begin_step",
                    )
                    continue
                in_step = False
            elif op.op == CLOSE:
                if in_step:
                    report.add(
                        D.ADIOS_CLOSE_IN_STEP, where,
                        f"close() inside open step {step}",
                        hint="call end_step before close",
                    )
                    in_step = False
                closed = True
            else:
                raise LintError(f"unknown writer op {op.op!r}")
        if in_step:
            report.add(
                D.ADIOS_UNCLOSED_STEP, where,
                f"program ends with step {step} still open",
                hint="end_step (and close) before the program ends",
            )
        steps_completed[rank] = step + (0 if in_step else 1)

    counts = set(steps_completed.values())
    if len(counts) > 1:
        detail = ", ".join(
            f"rank{r}={n}" for r, n in sorted(steps_completed.items())
        )
        report.add(
            D.ADIOS_STEP_SKEW, f"ranks 0..{script.nranks - 1}",
            f"ranks complete different step counts ({detail})",
            hint="end_step is collective; every rank must step in lockstep",
        )

    for (var, step), entries in sorted(blocks.items()):
        shape = script.shapes.get(var)
        if not shape:  # scalars and unknown vars: no coverage semantics
            continue
        _check_coverage(var, step, shape, entries, report)

    report.record_fact("adios.script.nranks", script.nranks)
    report.record_fact(
        "adios.script.steps", max(steps_completed.values(), default=0)
    )
    return report


def _check_put(script, rank, step, op, report, where) -> None:
    if op.var not in script.shapes:
        report.add(
            D.ADIOS_UNKNOWN_VAR, where,
            f"step {step}: {op.describe()} has no declared global shape",
            hint="declare the variable (define_variable) before putting it",
        )
        return
    shape = script.shapes[op.var]
    if not shape:
        return  # scalar put: no selection
    if len(op.start) != len(shape) or len(op.count) != len(shape):
        report.add(
            D.ADIOS_BAD_SELECTION, where,
            f"step {step}: {op.describe()} does not match "
            f"{op.var!r} shape {shape}",
            hint="start/count must have one entry per global dimension",
        )
        return
    for axis, (s, c, n) in enumerate(zip(op.start, op.count, shape)):
        if s < 0 or c <= 0 or s + c > n:
            report.add(
                D.ADIOS_OOB_BLOCK, where,
                f"step {step}: {op.describe()} leaves the global shape "
                f"{shape} on axis {axis} (cells [{s}, {s + c}))",
                hint="clamp the block to the variable's global shape",
            )
            return


def _intersects(a: WriterOp, b: WriterOp) -> bool:
    return all(
        sa < sb + cb and sb < sa + ca
        for sa, ca, sb, cb in zip(a.start, a.count, b.start, b.count)
    )


def _check_coverage(var, step, shape, entries, report) -> None:
    where = f"{var}/step{step}"
    valid = [
        (rank, op) for rank, op in entries
        if len(op.start) == len(shape)
        and len(op.count) == len(shape)
        and all(
            s >= 0 and c > 0 and s + c <= n
            for s, c, n in zip(op.start, op.count, shape)
        )
    ]
    total = math.prod(shape)
    if total <= OCCUPANCY_LIMIT:
        occupancy = np.zeros(shape, dtype=np.int16)
        for _, op in valid:
            sel = tuple(slice(s, s + c) for s, c in zip(op.start, op.count))
            occupancy[sel] += 1
        overlapped = int((occupancy > 1).sum())
        uncovered = int((occupancy == 0).sum())
    else:  # volume accounting only, for enormous shapes
        volume = sum(math.prod(op.count) for _, op in valid)
        overlapped = 0
        for i, (_, a) in enumerate(valid):
            if any(_intersects(a, b) for _, b in valid[i + 1:]):
                overlapped = 1
                break
        uncovered = max(0, total - volume) if not overlapped else 0
    if overlapped:
        pairs = [
            (ra, rb)
            for i, (ra, a) in enumerate(valid)
            for rb, b in (e for e in valid[i + 1:])
            if _intersects(a, b)
        ]
        report.add(
            D.ADIOS_OVERLAP, where,
            f"blocks overlap on {overlapped or 'some'} cell(s) "
            f"(writer rank pairs {sorted(set(pairs))[:4]})",
            hint="readback order over overlapping blocks is undefined; "
                 "make per-rank selections disjoint",
        )
    if uncovered:
        report.add(
            D.ADIOS_GAP, where,
            f"{uncovered} of {total} cells are never written this step",
            hint="gaps read back as zeros; cover the full global shape "
                 "or shrink it",
        )
