"""Synthetic clients for load-testing :class:`repro.serve.SimService`.

The generator replays many concurrent clients against one service:
each client issues a deterministic, seeded request schedule mixing
repeats of a hot configuration (cache hits) with unique parameter
variations (cache misses), with bursty exponential inter-arrival
gaps. The :class:`LoadReport` separates hit and miss latency
distributions (p50/p99) and measures saturation throughput — the
numbers ``benchmarks/bench_serve.py`` and the ``serve_load``
perfsuite case report.

Everything is seeded: the same (seed, clients, requests,
hit_fraction) produces the same request schedule, so runs are
comparable across machines and commits.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

from repro.core.execute import MODES, JobSpec
from repro.util.errors import AdmissionError, ConfigError


def generate_specs(
    settings,
    count: int,
    *,
    mode: str = "workflow",
    analyze: bool = True,
    virtual_ranks: int = 0,
) -> list[JobSpec]:
    """``count`` distinct :class:`JobSpec` variations of one base config.

    Spec 0 is the base itself (the load mix's hot key); the rest
    perturb the feed/kill rates ``F``/``k`` by tiny distinct deltas, so
    every spec hashes to a different canonical key while staying in the
    same Gray-Scott pattern regime.
    """
    if mode not in MODES:
        raise ConfigError(f"mode must be one of {MODES}, got {mode!r}")
    if count < 1:
        raise ConfigError(f"need >= 1 spec, got {count}")
    specs = []
    for i in range(count):
        varied = settings if i == 0 else settings.with_overrides(
            F=settings.F + 1e-5 * i, k=settings.k + 1e-6 * i
        )
        specs.append(
            JobSpec(
                settings=varied,
                mode=mode,
                analyze=analyze,
                virtual_ranks=virtual_ranks,
            )
        )
    return specs


@dataclass
class LoadReport:
    """Outcome of one load run, split by how requests were answered."""

    clients: int
    requests: int
    hit_fraction: float
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    cache_hits: int = 0
    coalesced: int = 0
    wall_seconds: float = 0.0
    hit_latencies: list[float] = field(default_factory=list)
    miss_latencies: list[float] = field(default_factory=list)

    @staticmethod
    def _percentile(samples: list[float], q: float) -> float | None:
        if not samples:
            return None
        return float(np.percentile(np.asarray(samples), q))

    @property
    def hit_p50(self) -> float | None:
        return self._percentile(self.hit_latencies, 50)

    @property
    def hit_p99(self) -> float | None:
        return self._percentile(self.hit_latencies, 99)

    @property
    def miss_p50(self) -> float | None:
        return self._percentile(self.miss_latencies, 50)

    @property
    def miss_p99(self) -> float | None:
        return self._percentile(self.miss_latencies, 99)

    @property
    def throughput(self) -> float:
        """Completed jobs per second over the whole run (saturation rate)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.completed / self.wall_seconds

    @property
    def hit_miss_p99_ratio(self) -> float | None:
        """hit p99 / miss p99 — the cache's tail-latency advantage.

        The service contract (docs/SERVICE.md) wants this <= 0.1: a
        cache hit's p99 at least 10x below a cache miss's p99.
        """
        hit, miss = self.hit_p99, self.miss_p99
        if hit is None or miss is None or miss <= 0.0:
            return None
        return hit / miss

    def as_dict(self) -> dict:
        return {
            "clients": self.clients,
            "requests": self.requests,
            "hit_fraction": self.hit_fraction,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "wall_seconds": self.wall_seconds,
            "throughput_jobs_per_second": self.throughput,
            "hit_p50_seconds": self.hit_p50,
            "hit_p99_seconds": self.hit_p99,
            "miss_p50_seconds": self.miss_p50,
            "miss_p99_seconds": self.miss_p99,
            "hit_miss_p99_ratio": self.hit_miss_p99_ratio,
        }

    def render(self) -> str:
        from repro.util.tables import Table

        def ms(value: float | None) -> str:
            return "-" if value is None else f"{value * 1e3:.3f}"

        table = Table(
            ["quantity", "value"],
            title=(
                f"serve load: {self.clients} clients x {self.requests} "
                f"requests, hit fraction {self.hit_fraction:.2f}"
            ),
        )
        table.add_row(["completed", self.completed])
        table.add_row(["failed", self.failed])
        table.add_row(["rejected (admission)", self.rejected])
        table.add_row(["cache hits", self.cache_hits])
        table.add_row(["coalesced", self.coalesced])
        table.add_row(["wall seconds", f"{self.wall_seconds:.3f}"])
        table.add_row(["throughput (jobs/s)", f"{self.throughput:.1f}"])
        table.add_row(["hit latency p50/p99 (ms)",
                       f"{ms(self.hit_p50)} / {ms(self.hit_p99)}"])
        table.add_row(["miss latency p50/p99 (ms)",
                       f"{ms(self.miss_p50)} / {ms(self.miss_p99)}"])
        ratio = self.hit_miss_p99_ratio
        table.add_row(
            ["hit/miss p99 ratio",
             "-" if ratio is None else f"{ratio:.4f} (want <= 0.1)"]
        )
        return table.render()


def _schedule(
    specs: list[JobSpec],
    clients: int,
    requests: int,
    hit_fraction: float,
    seed: int,
) -> list[list[JobSpec]]:
    """Per-client request lists: hot-key repeats mixed with unique misses.

    A draw below ``hit_fraction`` requests the hot spec (``specs[0]``);
    otherwise the next unused variation, cycling once exhausted (cycled
    repeats naturally become hits too, as they would in production).
    The very first scheduled request is forced to the hot spec so it is
    warm before any client repeats it.
    """
    rng = np.random.default_rng(seed)
    cold = iter(range(1, len(specs)))
    sequence: list[JobSpec] = []
    for i in range(clients * requests):
        if i == 0 or rng.random() < hit_fraction:
            sequence.append(specs[0])
        else:
            index = next(cold, None)
            if index is None:
                cold = iter(range(1, len(specs)))
                index = next(cold, 0)
            sequence.append(specs[index])
    return [sequence[c::clients] for c in range(clients)]


async def drive_load(
    service,
    specs: list[JobSpec],
    *,
    clients: int = 8,
    requests: int = 8,
    hit_fraction: float = 0.75,
    pace: float = 0.0,
    seed: int = 20230707,
    admission: str = "wait",
) -> LoadReport:
    """Replay the synthetic client mix against a *started* service.

    ``pace`` scales bursty inter-arrival gaps: each client draws
    exponential think times but sends roughly half its requests
    back-to-back (gap zero), so arrivals cluster. ``pace=0`` is a
    closed-loop hammer — the saturation measurement. ``admission``
    chooses the full-queue behavior: ``"wait"`` blocks on backpressure,
    ``"reject"`` counts :class:`AdmissionError` refusals and moves on.
    """
    if admission not in ("wait", "reject"):
        raise ConfigError(f"admission must be wait|reject, got {admission!r}")
    report = LoadReport(clients=clients, requests=requests,
                        hit_fraction=hit_fraction)
    schedules = _schedule(specs, clients, requests, hit_fraction, seed)
    lock = asyncio.Lock()

    async def client(client_id: int, mine: list[JobSpec]) -> None:
        rng = np.random.default_rng(seed + 1 + client_id)
        for spec in mine:
            if pace > 0.0 and rng.random() >= 0.5:
                await asyncio.sleep(pace * float(rng.exponential()))
            try:
                record = await service.run(spec, wait=admission == "wait")
            except AdmissionError:
                async with lock:
                    report.rejected += 1
                continue
            except Exception:
                async with lock:
                    report.failed += 1
                continue
            async with lock:
                report.completed += 1
                if record.cached:
                    report.cache_hits += 1
                    report.hit_latencies.append(record.latency_seconds)
                else:
                    report.miss_latencies.append(record.latency_seconds)
                if record.coalesced:
                    report.coalesced += 1

    loop = asyncio.get_running_loop()
    started = loop.time()
    await asyncio.gather(
        *(client(c, mine) for c, mine in enumerate(schedules))
    )
    report.wall_seconds = loop.time() - started
    return report


def run_load(
    settings,
    *,
    clients: int = 8,
    requests: int = 8,
    hit_fraction: float = 0.75,
    workers: int = 2,
    backend: str = "thread",
    mode: str = "workflow",
    virtual_ranks: int = 0,
    max_pending: int = 64,
    pace: float = 0.0,
    seed: int = 20230707,
    workdir=None,
    stream: str | None = None,
    jit_cache: str | None = None,
) -> tuple[LoadReport, dict]:
    """Full synchronous load run: service up, drive, service down.

    Returns ``(LoadReport, service stats dict)``. This is the entry
    point for ``benchmarks/bench_serve.py`` and the ``serve_load``
    perfsuite case; tests drive :func:`drive_load` directly for
    finer-grained control.
    """
    misses = max(1, round(clients * requests * (1.0 - hit_fraction)))
    specs = generate_specs(
        settings, 1 + misses, mode=mode, virtual_ranks=virtual_ranks
    )

    async def _main() -> tuple[LoadReport, dict]:
        from repro.serve.service import SimService

        async with SimService(
            workers=workers,
            backend=backend,
            max_pending=max_pending,
            workdir=workdir,
            stream=stream,
            jit_cache=jit_cache,
        ) as service:
            report = await drive_load(
                service,
                specs,
                clients=clients,
                requests=requests,
                hit_fraction=hit_fraction,
                pace=pace,
                seed=seed,
            )
            return report, service.stats()

    return asyncio.run(_main())
