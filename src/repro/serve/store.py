"""ResultStore: the service's canonical-hash result cache.

Identical configurations hash identically
(:meth:`repro.core.execute.JobSpec.canonical_key`), so the store can
answer a repeated request without recomputing — and because the entry
carries the *rendered report text of the cold run*, a cache hit is
byte-identical to the original answer, not merely equivalent.

The store is a bounded LRU: `capacity` entries, least-recently-used
eviction, with hit/miss/eviction counters for the service stats and
the load benchmark. It is synchronous and thread-safe (one lock around
the OrderedDict); the asyncio service calls it from the event loop.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.util.errors import ServeError


@dataclass
class CacheEntry:
    """One cached run: the result object plus the cold run's bytes."""

    key: str
    result: object
    #: the report text rendered exactly once, when the entry was stored
    rendered: str
    #: wall seconds the cold execution cost (what a hit saves)
    cost_seconds: float
    hits: int = 0
    #: insertion sequence number (monotonic per store)
    seq: int = 0
    #: extra presentation payloads, e.g. provenance JSON
    extras: dict = field(default_factory=dict)


class ResultStore:
    """Bounded LRU cache of :class:`CacheEntry`, keyed on canonical hash."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ServeError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._seq = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: str) -> CacheEntry | None:
        """The entry for ``key`` (refreshing recency), or None (a miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            entry.hits += 1
            self.hits += 1
            return entry

    def peek(self, key: str) -> CacheEntry | None:
        """The entry without touching recency or counters."""
        with self._lock:
            return self._entries.get(key)

    def put(
        self,
        key: str,
        result: object,
        rendered: str,
        *,
        cost_seconds: float = 0.0,
        extras: dict | None = None,
    ) -> CacheEntry:
        """Store a cold run's outcome; evicts the LRU entry at capacity.

        Re-putting an existing key replaces the entry (the new bytes
        win) without counting an eviction.
        """
        with self._lock:
            self._seq += 1
            entry = CacheEntry(
                key=key,
                result=result,
                rendered=rendered,
                cost_seconds=cost_seconds,
                seq=self._seq,
                extras=dict(extras or {}),
            )
            replaced = key in self._entries
            self._entries[key] = entry
            self._entries.move_to_end(key)
            if not replaced and len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            return entry

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def saved_seconds(self) -> float:
        """Total compute seconds answered from cache instead of rerun."""
        with self._lock:
            return sum(e.cost_seconds * e.hits for e in self._entries.values())

    def stats(self) -> dict:
        with self._lock:
            entries = len(self._entries)
        return {
            "entries": entries,
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
