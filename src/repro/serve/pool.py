"""A persistent, future-based worker pool for the service.

:func:`repro.par.run_tasks` is batch-synchronous: it spins workers up,
drains a fixed task list, and joins them. A service needs the opposite
lifecycle — workers that outlive any one request and a ``submit() ->
Future`` interface the asyncio front end can await. :class:`WorkerPool`
provides that while reusing :mod:`repro.par`'s discipline: the same
fork-preferring context selection, the same tracer detachment inside
workers, and the same :mod:`repro.par.shm` zero-copy transport for
large NumPy results.

A collector thread drains the result queue and resolves
``concurrent.futures.Future`` objects, which ``asyncio.wrap_future``
bridges into the event loop. Worker death with tasks in flight fails
the affected futures with :class:`~repro.util.errors.ServeError`
instead of hanging them.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import threading
import traceback
from concurrent.futures import Future
from typing import Callable

from repro.par import shm
from repro.util.errors import ServeError


def _pool_worker(
    worker_id: int, fn: Callable, task_q, result_q, jit_cache=None
) -> None:
    # Detach any tracer a forked worker inherited: recording into the
    # parent's copy would be silently discarded (see repro.par.pool).
    from repro.observe import trace as observe

    observe.deactivate()
    if jit_cache is not None:
        # Warm-start the tracing JIT so the worker's first request hits
        # persisted plans instead of paying full cold-trace cost (the
        # service's warm-start story; see docs/PERFORMANCE.md).
        from repro.gpu import jitcache

        jitcache.warm_start(jit_cache)
    while True:
        item = task_q.get()
        if item is None:
            break
        task_id, payload = item
        try:
            result_q.put((task_id, True, shm.encode(fn(payload))))
        except Exception:
            result_q.put((task_id, False, traceback.format_exc()))


class WorkerPool:
    """``workers`` persistent processes evaluating one pickled function.

    >>> pool = WorkerPool(execute_and_render, workers=4)
    >>> future = pool.submit(spec)     # concurrent.futures.Future
    >>> result = future.result()
    >>> pool.close()
    """

    def __init__(
        self,
        fn: Callable,
        *,
        workers: int = 2,
        context: str | None = None,
        jit_cache: str | None = None,
    ):
        if workers < 1:
            raise ServeError(f"worker pool needs >= 1 worker, got {workers}")
        if context is None:
            methods = multiprocessing.get_all_start_methods()
            context = "fork" if "fork" in methods else methods[0]
        if jit_cache is None:
            from repro.gpu import jitcache

            jit_cache = jitcache.configured_path()
        ctx = multiprocessing.get_context(context)
        self.workers = workers
        self.jit_cache = jit_cache
        self._task_q = ctx.Queue()
        self._result_q = ctx.Queue()
        self._procs = [
            ctx.Process(
                target=_pool_worker,
                args=(w, fn, self._task_q, self._result_q, jit_cache),
                daemon=True,
            )
            for w in range(workers)
        ]
        for proc in self._procs:
            proc.start()
        self._lock = threading.Lock()
        self._pending: dict[int, Future] = {}
        self._next_id = 0
        self._closed = False
        self.submitted = 0
        self.completed = 0
        self._collector = threading.Thread(
            target=self._collect, name="serve-pool-collector", daemon=True
        )
        self._collector.start()

    # -- front-end side ------------------------------------------------------
    def submit(self, payload) -> Future:
        """Queue one task; the Future resolves from the collector thread."""
        future: Future = Future()
        with self._lock:
            if self._closed:
                raise ServeError("submit() on a closed worker pool")
            task_id = self._next_id
            self._next_id += 1
            self._pending[task_id] = future
            self.submitted += 1
        self._task_q.put((task_id, payload))
        return future

    @property
    def in_flight(self) -> int:
        with self._lock:
            return len(self._pending)

    # -- collector side ------------------------------------------------------
    def _collect(self) -> None:
        while True:
            try:
                msg = self._result_q.get(timeout=0.5)
            except queue_mod.Empty:
                if self._closed and not self._pending:
                    return
                self._check_workers()
                continue
            if msg is None:
                return
            task_id, ok, payload = msg
            with self._lock:
                future = self._pending.pop(task_id, None)
            if future is None:  # pragma: no cover - cancelled/unknown id
                if ok:
                    shm.discard(payload)
                continue
            self.completed += 1
            if ok:
                future.set_result(shm.decode(payload))
            else:
                future.set_exception(
                    ServeError(f"service job failed in a worker:\n{payload.rstrip()}")
                )

    def _check_workers(self) -> None:
        dead = [
            w for w, proc in enumerate(self._procs)
            if not proc.is_alive() and proc.exitcode not in (0, None)
        ]
        if not dead:
            return
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
            self._closed = True
        error = ServeError(
            f"pool worker(s) {dead} died with nonzero exit codes; "
            "failing all in-flight jobs"
        )
        for future in pending:
            if not future.done():
                future.set_exception(error)

    # -- shutdown ------------------------------------------------------------
    def close(self, *, timeout: float = 10.0) -> None:
        """Stop accepting work, drain workers, join everything (idempotent)."""
        with self._lock:
            if getattr(self, "_shut_down", False):
                return
            self._shut_down = True
            self._closed = True
        for _ in self._procs:
            self._task_q.put(None)
        for proc in self._procs:
            proc.join(timeout)
        self._result_q.put(None)
        self._collector.join(timeout)
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(1.0)
        with self._lock:
            stranded = list(self._pending.values())
            self._pending.clear()
        for future in stranded:  # pragma: no cover - close with work queued
            if not future.done():
                future.set_exception(ServeError("worker pool closed"))

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
