"""repro.serve: the simulator as an always-on cached service.

The ROADMAP's "millions of users" direction: instead of one-shot CLI
invocations that re-execute identical configurations from scratch, a
long-running asyncio service accepts :class:`~repro.core.execute.
JobSpec` requests, answers repeats from a :class:`ResultStore` keyed on
the spec's canonical content hash (byte-identical reports, never
recomputed), coalesces identical in-flight requests, applies admission
control with bounded backpressure, executes misses on a
:mod:`repro.par`-style worker pool, and streams job lifecycle /metrics
events to attached clients over the :mod:`repro.adios.sst` broker.

Layers:

- :mod:`repro.serve.store` — the canonical-hash result cache;
- :mod:`repro.serve.pool` — the persistent process worker pool;
- :mod:`repro.serve.service` — the asyncio front end;
- :mod:`repro.serve.loadgen` — synthetic clients for the
  ``bench_serve`` load benchmark and the CI smoke job.

See docs/SERVICE.md for architecture, cache-key semantics, and the
backpressure policy.
"""

from repro.serve.loadgen import LoadReport, generate_specs, run_load
from repro.serve.pool import WorkerPool
from repro.serve.service import JobRecord, ServiceStats, SimService
from repro.serve.store import CacheEntry, ResultStore
from repro.util.errors import AdmissionError, ServeError

__all__ = [
    "AdmissionError",
    "CacheEntry",
    "JobRecord",
    "LoadReport",
    "ResultStore",
    "ServeError",
    "ServiceStats",
    "SimService",
    "WorkerPool",
    "generate_specs",
    "run_load",
]
