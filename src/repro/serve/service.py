"""SimService: the asyncio job queue in front of the simulation engine.

Request lifecycle::

    submit(spec)
      |-- admission control: queue full -> AdmissionError (or await)
      |-- cache lookup (ResultStore, canonical hash) -> immediate answer,
      |     byte-identical to the cold run, never recomputed
      |-- coalescing: an identical spec already in flight -> attach to it
      `-- enqueue -> dispatcher -> backend executes
            backend: "process" (WorkerPool), "thread", or "inline"
            done -> store in cache, resolve every attached waiter

Backpressure policy (docs/SERVICE.md): the admission queue is bounded
at ``max_pending``. ``submit(..., wait=True)`` blocks the caller until
a slot frees (cooperative backpressure); ``wait=False`` (default)
raises :class:`~repro.util.errors.AdmissionError` immediately
(fail-fast admission control). Telemetry published over the
:mod:`repro.adios.sst` broker is *lossy by design*: when no client
drains the stream and its queue limit is reached, events are dropped
and counted — the service never stalls on its own observability.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from repro.core.execute import JobSpec, execute_job
from repro.serve.store import ResultStore
from repro.util.errors import AdmissionError, ServeError

#: schema id of records published on the service event stream
EVENTS_SCHEMA = "repro.serve.events/1"

#: job states
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
REJECTED = "rejected"


def execute_and_render(spec: JobSpec) -> dict:
    """The worker-side unit of service work: engine + one-time render.

    Runs the job through the presentation-free engine, then renders the
    report text exactly once. The service caches these bytes, which is
    what makes every later cache hit byte-identical to this cold run.
    Module-level so it pickles into spawn-context pool workers.
    """
    from repro.core import present

    result = execute_job(spec)
    return {
        "result": result,
        "rendered": present.render_result(result),
        "provenance": present.result_provenance(result),
    }


@dataclass
class JobRecord:
    """One submitted request as the service tracks it."""

    job_id: int
    spec: JobSpec
    key: str
    state: str = QUEUED
    #: answered from ResultStore without execution
    cached: bool = False
    #: attached to an identical in-flight job instead of executing
    coalesced: bool = False
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    rendered: str | None = None
    provenance: dict | None = None
    result: object | None = None
    error: str | None = None
    #: resolved when the job reaches DONE/FAILED
    future: asyncio.Future = field(repr=False, default=None)

    @property
    def latency_seconds(self) -> float | None:
        """Submit-to-answer latency (None while unfinished)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    @property
    def ok(self) -> bool:
        return self.state == DONE


@dataclass
class ServiceStats:
    """Counter snapshot rendered by ``stats()`` / the CLI table."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    coalesced: int = 0
    events_published: int = 0
    events_dropped: int = 0

    def as_dict(self) -> dict:
        return dict(vars(self))


class _EventPublisher:
    """Lossy SST telemetry: publish if the stream has room, else drop.

    Wraps :class:`repro.observe.stream.LiveMetricsPublisher` (the
    existing adios.sst live feed) with the service's never-stall
    policy: one peek at the writer's backlog decides publish-or-drop.
    """

    def __init__(self, stream: str, queue_limit: int = 8):
        from repro.observe.stream import LiveMetricsPublisher

        self._publisher = LiveMetricsPublisher(
            stream, queue_limit=queue_limit
        )
        self.published = 0
        self.dropped = 0

    def publish(self, record: dict) -> bool:
        writer = self._publisher.writer
        if writer.backlog() >= writer.queue_limit:
            self.dropped += 1
            return False
        self._publisher.publish(record)
        self.published += 1
        return True

    def close(self) -> None:
        # abort(), not close(): a normal close blocks on a saturated
        # queue until a reader drains it, and telemetry may have no
        # reader at all. abort posts EOS without blocking and releases
        # the stream name immediately.
        self._publisher.writer.abort()


class SimService:
    """An always-on, cached, admission-controlled simulation service.

    >>> service = SimService(backend="thread", workers=4)
    >>> await service.start()
    >>> record = await service.submit(JobSpec(settings))
    >>> await service.wait(record)
    >>> record.cached, record.rendered
    >>> await service.close()

    ``backend``:

    - ``"process"`` — a persistent :class:`repro.serve.pool.WorkerPool`
      of worker processes (the :mod:`repro.par` compute pool; real
      concurrency, production shape);
    - ``"thread"`` — an executor thread per worker (cheap startup;
      NumPy releases the GIL for the solve inner loops);
    - ``"inline"`` — execute on the event loop (deterministic tests).
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        backend: str = "thread",
        max_pending: int = 64,
        cache_capacity: int = 256,
        workdir=None,
        stream: str | None = None,
        stream_queue_limit: int = 8,
        jit_cache: str | None = None,
    ):
        if backend not in ("process", "thread", "inline"):
            raise ServeError(
                f"backend must be process|thread|inline (got {backend!r})"
            )
        if workers < 1:
            raise ServeError(f"service needs >= 1 worker, got {workers}")
        if max_pending < 1:
            raise ServeError(f"max_pending must be >= 1, got {max_pending}")
        self.backend = backend
        self.workers = workers
        self.max_pending = max_pending
        self.workdir = workdir
        self.jit_cache = jit_cache
        self.store = ResultStore(cache_capacity)
        self.stats_counters = ServiceStats()
        self.stream = stream
        self._stream_queue_limit = stream_queue_limit
        self._events: _EventPublisher | None = None
        self._queue: asyncio.Queue | None = None
        self._dispatchers: list[asyncio.Task] = []
        self._inflight: dict[str, JobRecord] = {}
        self._waiters: dict[str, list[JobRecord]] = {}
        self._pool = None
        self._executor = None
        self._next_id = 0
        self._started = False
        self._closed = False
        #: latency samples in seconds, split by how they were answered
        self.hit_latencies: list[float] = []
        self.miss_latencies: list[float] = []

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> "SimService":
        """Bring the queue, dispatchers, backend, and telemetry up."""
        if self._started:
            raise ServeError("service already started")
        self._started = True
        self._queue = asyncio.Queue(maxsize=self.max_pending)
        if self.jit_cache is not None and self.backend != "process":
            # thread/inline backends share this process's TraceMemo, so
            # warm it here; process workers warm themselves on spawn.
            from repro.gpu import jitcache

            jitcache.warm_start(self.jit_cache)
        if self.backend == "process":
            from repro.serve.pool import WorkerPool

            self._pool = WorkerPool(
                execute_and_render,
                workers=self.workers,
                jit_cache=self.jit_cache,
            )
        elif self.backend == "thread":
            from concurrent.futures import ThreadPoolExecutor

            self._executor = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="serve-worker",
            )
        if self.stream is not None:
            self._events = _EventPublisher(
                self.stream, self._stream_queue_limit
            )
        self._dispatchers = [
            asyncio.create_task(self._dispatch_loop(), name=f"serve-d{i}")
            for i in range(self.workers)
        ]
        self._publish({"event": "service.start", "backend": self.backend,
                       "workers": self.workers})
        return self

    async def close(self) -> None:
        """Graceful shutdown: finish queued work, stop everything."""
        if not self._started or self._closed:
            return
        self._closed = True
        for _ in self._dispatchers:
            await self._queue.put(None)
        await asyncio.gather(*self._dispatchers)
        if self._pool is not None:
            self._pool.close()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        self._publish({"event": "service.stop",
                       "stats": self.stats_counters.as_dict()})
        if self._events is not None:
            self._events.close()

    async def __aenter__(self) -> "SimService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- submission ----------------------------------------------------------
    async def submit(self, spec: JobSpec, *, wait: bool = False) -> JobRecord:
        """Accept (or refuse) one request; returns its tracking record.

        Cache hits and coalesced attachments return immediately-done
        (or soon-done) records without consuming a queue slot. A miss
        needs a slot: with ``wait=False`` a full queue raises
        :class:`AdmissionError`; ``wait=True`` blocks until admitted —
        the caller *is* the backpressure.
        """
        if not self._started or self._closed:
            raise ServeError("submit() on a service that is not running")
        key = spec.canonical_key()
        record = self._new_record(spec, key)
        self.stats_counters.submitted += 1

        entry = self.store.get(key)
        if entry is not None:
            # answered from cache: the stored cold-run bytes, verbatim
            self.stats_counters.cache_hits += 1
            record.cached = True
            self._finish(record, entry.result, entry.rendered,
                         entry.extras.get("provenance"))
            self._publish({"event": "job.hit", "job": record.job_id,
                           "key": key[:16]})
            return record

        self.stats_counters.cache_misses += 1
        leader = self._inflight.get(key)
        if leader is not None:
            # identical spec already executing: attach, don't recompute
            self.stats_counters.coalesced += 1
            record.coalesced = True
            self._waiters.setdefault(key, []).append(record)
            self._publish({"event": "job.coalesced", "job": record.job_id,
                           "leader": leader.job_id, "key": key[:16]})
            return record

        self._inflight[key] = record
        if wait:
            await self._queue.put(record)
        else:
            try:
                self._queue.put_nowait(record)
            except asyncio.QueueFull:
                del self._inflight[key]
                record.state = REJECTED
                self.stats_counters.rejected += 1
                # the miss never ran; don't let it skew the miss counter
                self.stats_counters.cache_misses -= 1
                self._publish({"event": "job.rejected",
                               "job": record.job_id, "key": key[:16]})
                raise AdmissionError(
                    f"admission queue full ({self.max_pending} pending); "
                    "retry later or submit(wait=True)"
                ) from None
        self._publish({"event": "job.queued", "job": record.job_id,
                       "key": key[:16]})
        return record

    async def wait(self, record: JobRecord) -> JobRecord:
        """Block until the record resolves; re-raises a failed job's error."""
        await record.future
        return record

    async def run(self, spec: JobSpec, *, wait: bool = True) -> JobRecord:
        """submit + wait in one call."""
        record = await self.submit(spec, wait=wait)
        return await self.wait(record)

    # -- dispatch ------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            record = await self._queue.get()
            if record is None:
                return
            record.state = RUNNING
            record.started_at = time.perf_counter()
            self._publish({"event": "job.start", "job": record.job_id,
                           "key": record.key[:16]})
            spec = self._sandboxed(record.spec)
            try:
                payload = await self._execute(spec)
            except Exception as exc:  # noqa: BLE001 - job boundary
                self._fail(record, exc)
            else:
                cost = time.perf_counter() - record.started_at
                self.store.put(
                    record.key, payload["result"], payload["rendered"],
                    cost_seconds=cost,
                    extras={"provenance": payload["provenance"]},
                )
                self._finish(record, payload["result"], payload["rendered"],
                             payload["provenance"])

    def _sandboxed(self, spec: JobSpec) -> JobSpec:
        """Redirect a workflow job's dataset under the service workdir.

        Keyed by canonical hash, so identical jobs share a path and
        distinct jobs never collide. Virtual jobs write nothing and
        pass through. The record keeps the *original* spec — the cache
        key is computed before sandboxing.
        """
        if self.workdir is None or spec.mode != "workflow":
            return spec
        from pathlib import Path

        root = Path(self.workdir)
        root.mkdir(parents=True, exist_ok=True)
        target = root / f"{spec.canonical_key()[:16]}.bp"
        sandboxed = spec.with_output(str(target))
        if spec.settings.checkpoint:
            sandboxed = JobSpec(
                settings=sandboxed.settings.with_overrides(
                    checkpoint=str(root / f"{spec.canonical_key()[:16]}.ckpt.bp")
                ),
                mode=spec.mode, analyze=spec.analyze, resume=spec.resume,
            )
        return sandboxed

    async def _execute(self, spec: JobSpec) -> dict:
        if self.backend == "process":
            return await asyncio.wrap_future(self._pool.submit(spec))
        if self.backend == "thread":
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                self._executor, execute_and_render, spec
            )
        return execute_and_render(spec)

    # -- resolution ----------------------------------------------------------
    def _new_record(self, spec: JobSpec, key: str) -> JobRecord:
        self._next_id += 1
        return JobRecord(
            job_id=self._next_id,
            spec=spec,
            key=key,
            submitted_at=time.perf_counter(),
            future=asyncio.get_running_loop().create_future(),
        )

    def _resolve_one(self, record: JobRecord, result, rendered, provenance,
                     *, error: Exception | None = None) -> None:
        record.finished_at = time.perf_counter()
        if error is None:
            record.state = DONE
            record.result = result
            record.rendered = rendered
            record.provenance = provenance
            record.future.set_result(record)
            self.stats_counters.completed += 1
        else:
            record.state = FAILED
            record.error = str(error)
            record.future.set_exception(error)
            self.stats_counters.failed += 1
        latency = record.latency_seconds
        if record.cached:
            self.hit_latencies.append(latency)
        else:
            self.miss_latencies.append(latency)

    def _attached(self, record: JobRecord) -> list[JobRecord]:
        self._inflight.pop(record.key, None)
        return [record, *self._waiters.pop(record.key, [])]

    def _finish(self, record: JobRecord, result, rendered, provenance) -> None:
        for waiter in self._attached(record):
            self._resolve_one(waiter, result, rendered, provenance)
        self._publish({"event": "job.done", "job": record.job_id,
                       "key": record.key[:16], "cached": record.cached,
                       "latency_seconds": record.latency_seconds})

    def _fail(self, record: JobRecord, error: Exception) -> None:
        for waiter in self._attached(record):
            self._resolve_one(waiter, None, None, None, error=error)
        self._publish({"event": "job.failed", "job": record.job_id,
                       "key": record.key[:16], "error": str(error)})

    # -- telemetry -----------------------------------------------------------
    def _publish(self, body: dict) -> None:
        if self._events is None:
            return
        record = {"schema": EVENTS_SCHEMA, "time": time.perf_counter()}
        record.update(body)
        self._events.publish(record)
        self.stats_counters.events_published = self._events.published
        self.stats_counters.events_dropped = self._events.dropped

    # -- reporting -----------------------------------------------------------
    def stats(self) -> dict:
        """Counters + cache stats + latency quantiles, JSON-ready."""
        import numpy as np

        def quantiles(samples: list[float]) -> dict:
            if not samples:
                return {"count": 0, "p50": None, "p99": None}
            arr = np.asarray(samples)
            return {
                "count": int(arr.size),
                "p50": float(np.percentile(arr, 50)),
                "p99": float(np.percentile(arr, 99)),
            }

        return {
            **self.stats_counters.as_dict(),
            "store": self.store.stats(),
            "latency": {
                "hit": quantiles(self.hit_latencies),
                "miss": quantiles(self.miss_latencies),
            },
        }

    def render_stats(self) -> str:
        from repro.util.tables import Table

        stats = self.stats()
        table = Table(
            ["quantity", "value"],
            title=f"serve: {self.backend} backend, {self.workers} worker(s)",
        )
        for name in ("submitted", "completed", "failed", "rejected",
                     "cache_hits", "cache_misses", "coalesced"):
            table.add_row([name.replace("_", " "), stats[name]])
        store = stats["store"]
        table.add_row(["cache entries", f"{store['entries']}/{store['capacity']}"])
        table.add_row(["cache hit rate", f"{store['hit_rate'] * 100:.1f}%"])
        for kind in ("hit", "miss"):
            lat = stats["latency"][kind]
            if lat["count"]:
                table.add_row(
                    [f"{kind} latency p50/p99 (ms)",
                     f"{lat['p50'] * 1e3:.3f} / {lat['p99'] * 1e3:.3f}"]
                )
        if self._events is not None:
            table.add_row(
                ["events published/dropped",
                 f"{stats['events_published']}/{stats['events_dropped']}"]
            )
        return table.render()
