"""Reference evaluator for the stencil IR.

Executes a :class:`~repro.ir.core.StencilFunc` cell by cell over the
guarded interior, in op order — the same arithmetic, in the same order,
as the scalar kernel body the func was traced from, so results are
**bitwise identical** to :meth:`repro.gpu.kernel.Kernel.execute` with
``force_interpreter=True``. The rewrite-pass property tests lean on
this: any legal pipeline must leave the evaluated output bit-identical,
because every pass only removes recomputation (CSE/RLE/DSE) or
interleaves bodies whose cells are independent (fusion legality).
"""

from __future__ import annotations

from repro.gpu.jit import Affine
from repro.gpu.rand import counter_uniform
from repro.ir.core import ArithOp, LoadOp, Module, RandOp, StencilFunc, StoreOp
from repro.util.errors import IrError

_BINOPS = {
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
    "fdiv": lambda a, b: a / b,
}


def _symbol_extents(func: StencilFunc, arrays) -> dict[str, int]:
    """Infer each launch symbol's iteration extent from the arrays.

    A symbol iterates an array axis wherever some access subscripts
    that axis with exactly ``1*symbol + const``; the axis extent of the
    (supplied) array bounds the symbol.
    """
    extents: dict[str, int] = {}
    for op in func.ops:
        if isinstance(op, (LoadOp, StoreOp)):
            data = arrays.get(op.array)
            if data is None:
                continue
            for axis, expr in enumerate(op.exprs):
                if len(expr.linear_part) == 1 and axis < data.ndim:
                    sym, coeff = expr.linear_part[0]
                    if coeff == 1:
                        extent = int(data.shape[axis])
                        prior = extents.get(sym)
                        extents[sym] = extent if prior is None else min(
                            prior, extent
                        )
    missing = [s for s in func.symbols if s not in extents]
    if missing:
        raise IrError(
            f"cannot infer iteration extents for symbols {missing} of "
            f"@{func.name}; no unit-coefficient array subscript uses them"
        )
    return extents


def evaluate_func(func: StencilFunc, arrays: dict) -> None:
    """Run one func over every interior cell, mutating ``arrays``.

    ``arrays`` maps the func's array names to numpy arrays (ghosted,
    Fortran-ordered like the kernels'). Iterates the guarded interior
    ``[ghost, n - ghost)`` per symbol — the cells the kernel's boundary
    guard admits.
    """
    for name in func.array_dtypes:
        if name not in arrays:
            raise IrError(f"@{func.name}: no array supplied for {name!r}")
    extents = _symbol_extents(func, arrays)
    symbols = list(func.symbols)
    ghost = func.ghost
    ranges = [range(ghost, extents[s] - ghost) for s in symbols]

    def run_cell(assign: dict[str, int]) -> None:
        env: dict[str, float] = {}

        def resolve(operand: str) -> float:
            if operand.startswith("%"):
                return env[operand]
            return float(operand)

        for op in func.ops:
            if isinstance(op, LoadOp):
                address = tuple(e.evaluate(assign) for e in op.exprs)
                env[op.result] = float(arrays[op.array][address])
            elif isinstance(op, ArithOp):
                env[op.result] = _BINOPS[op.op](
                    resolve(op.lhs), resolve(op.rhs)
                )
            elif isinstance(op, RandOp):
                keys = [
                    k.evaluate(assign) if isinstance(k, Affine) else int(k)
                    for k in op.keys
                ]
                env[op.result] = counter_uniform(*keys)
            elif isinstance(op, StoreOp):
                address = tuple(e.evaluate(assign) for e in op.exprs)
                arrays[op.array][address] = resolve(op.value)

    # nested loops over the symbol box, last symbol fastest
    def walk(depth: int, assign: dict[str, int]) -> None:
        if depth == len(symbols):
            run_cell(assign)
            return
        sym = symbols[depth]
        for value in ranges[depth]:
            assign[sym] = value
            walk(depth + 1, assign)

    walk(0, {})


def evaluate_module(module: Module, arrays: dict) -> None:
    """Run every func of the module in launch order over ``arrays``."""
    for func in module.funcs:
        evaluate_func(func, arrays)
