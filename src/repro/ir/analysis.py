"""Dataflow analyses over the stencil IR.

Each analysis is a pure function of one :class:`~repro.ir.core.
StencilFunc` (or a func pair, for cross-launch dependences) returning
plain result records. :class:`AnalysisContext` memoizes them so the
lint rules and the rewrite passes share one computation instead of
each re-walking the ops — the unification this layer exists for.

Analyses:

- :func:`reaching_definitions` — SSA def/use chains plus store
  liveness: a store overwritten (must-alias) before any may-alias load
  is dead.
- :func:`halo_analysis` — halo-bounds inference: stencil offsets
  vs. ghost depth, halo stores, absolute out-of-bounds subscripts.
- :func:`race_analysis` — write-write races by affine address-equality
  solving over a sample grid of workitems (the lint KRN-RACE engine).
- :func:`stride_analysis` — coalescing of the contiguous (Fortran
  leading) axis.
- :func:`redundant_loads` — loads of one address not folded into one
  SSA value, with the store-interference legality scan RLE needs.
- :func:`cse_candidates` — value numbering over arith + rand ops.
- :func:`cross_dependences` — flow/anti/output dependences between two
  funcs, the fusion legality input.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro.gpu.jit import MemoryAccess
from repro.ir.core import ArithOp, LoadOp, RandOp, StencilFunc, StoreOp

#: how many workitems per symbol the race solver enumerates; affine
#: collisions over a box are visible within any window this wide that
#: covers coefficient differences up to +/- RACE_SAMPLE - 1
RACE_SAMPLE = 4

_COMMUTATIVE = {"fadd", "fmul"}


def _symbols_of(acc: MemoryAccess) -> set[str]:
    return {sym for expr in acc.exprs for sym, _ in expr.linear_part}


def _access_key(acc: MemoryAccess) -> tuple:
    return (acc.array, acc.linear_signature(), acc.stencil_offset())


def may_alias(a: MemoryAccess, b: MemoryAccess) -> bool:
    """Whether two accesses can touch the same cell *within one workitem*.

    Same array with equal linear signatures aliases iff the constant
    offsets are equal; differing linear signatures are conservatively
    assumed to alias.
    """
    if a.array != b.array:
        return False
    if a.linear_signature() != b.linear_signature():
        return True
    return a.stencil_offset() == b.stencil_offset()


def must_alias(a: MemoryAccess, b: MemoryAccess) -> bool:
    """Provably the same cell for every workitem."""
    return (
        a.array == b.array
        and a.linear_signature() == b.linear_signature()
        and a.stencil_offset() == b.stencil_offset()
    )


class AnalysisContext:
    """Memoized analyses over one func (shared by lint + passes)."""

    def __init__(self, func: StencilFunc):
        self.func = func
        self._results: dict[str, object] = {}

    def cached(self, name: str, compute):
        if name not in self._results:
            self._results[name] = compute(self.func)
        return self._results[name]

    @property
    def reaching(self) -> "ReachingDefs":
        return self.cached("reaching", reaching_definitions)

    @property
    def halo(self) -> list["HaloFinding"]:
        return self.cached("halo", halo_analysis)

    @property
    def races(self) -> list["RaceFinding"]:
        return self.cached("races", race_analysis)

    @property
    def strides(self) -> list["StrideFinding"]:
        return self.cached("strides", stride_analysis)

    @property
    def redundant(self) -> list["RedundantLoad"]:
        return self.cached("redundant", redundant_loads)

    @property
    def cse(self) -> list["CseGroup"]:
        return self.cached("cse", cse_candidates)


# ---------------------------------------------------------------------------
# reaching definitions / store liveness
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DeadStore:
    """A store whose value is overwritten before any possible read."""

    index: int
    store: StoreOp
    overwritten_by: int


@dataclass(frozen=True)
class ReachingDefs:
    """SSA def/use indices plus store liveness over one func."""

    defs: dict[str, int]
    uses: dict[str, tuple[int, ...]]
    dead_stores: tuple[DeadStore, ...]

    def unused_results(self) -> list[str]:
        """SSA values defined but never used (dead value computations)."""
        return [name for name in self.defs if not self.uses.get(name)]


def reaching_definitions(func: StencilFunc) -> ReachingDefs:
    defs: dict[str, int] = {}
    uses: dict[str, list[int]] = {}

    def note_use(operand: str, index: int) -> None:
        if operand.startswith("%"):
            uses.setdefault(operand, []).append(index)

    for index, op in enumerate(func.ops):
        if isinstance(op, (LoadOp, ArithOp, RandOp)):
            defs.setdefault(op.result, index)
            uses.setdefault(op.result, [])
        if isinstance(op, ArithOp):
            note_use(op.lhs, index)
            note_use(op.rhs, index)
        elif isinstance(op, StoreOp):
            note_use(op.value, index)

    dead: list[DeadStore] = []
    ops = func.ops
    for index, op in enumerate(ops):
        if not isinstance(op, StoreOp):
            continue
        access = op.access
        for later in range(index + 1, len(ops)):
            other = ops[later]
            if isinstance(other, LoadOp) and may_alias(access, other.access):
                break  # a possible reader: the store is live
            if isinstance(other, StoreOp):
                if must_alias(access, other.access):
                    dead.append(DeadStore(index, op, later))
                    break
                if may_alias(access, other.access):
                    break  # partial overwrite: conservatively live
        # stores surviving to the end of the func are externally visible
    return ReachingDefs(
        defs=defs,
        uses={name: tuple(ix) for name, ix in uses.items()},
        dead_stores=tuple(dead),
    )


# ---------------------------------------------------------------------------
# halo-bounds inference
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HaloFinding:
    """One bounds problem: a stencil overrun, halo store, or OOB index."""

    category: str  # "stencil-overrun" | "halo-store" | "absolute-oob"
    kind: str  # "load" | "store"
    access: MemoryAccess
    axis: int
    offset: int
    extent: int  # halo depth, or axis extent for absolute-oob


def halo_analysis(func: StencilFunc) -> list[HaloFinding]:
    """Compare every access's per-axis offsets against the halo depth.

    A symbolic axis's constant is a stencil offset relative to the
    guarded interior workitem (which roams the whole interior), so
    ``|offset| <= ghost`` is the containment condition; a symbol-free
    axis is an absolute subscript checked against the array extent.
    """
    ghost = func.ghost
    findings: list[HaloFinding] = []
    for kind, accesses in (
        ("load", func.unique_loads), ("store", func.unique_stores)
    ):
        for acc in accesses:
            shape = func.array_shapes.get(acc.array, ())
            for axis, expr in enumerate(acc.exprs):
                off = expr.const
                if expr.linear_part:
                    if abs(off) > ghost:
                        findings.append(HaloFinding(
                            "stencil-overrun", kind, acc, axis, off, ghost
                        ))
                    elif kind == "store" and off != 0:
                        findings.append(HaloFinding(
                            "halo-store", kind, acc, axis, off, ghost
                        ))
                elif axis < len(shape) and not 0 <= off < shape[axis]:
                    findings.append(HaloFinding(
                        "absolute-oob", kind, acc, axis, off, shape[axis]
                    ))
    return findings


# ---------------------------------------------------------------------------
# write-write races
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RaceFinding:
    """Two distinct workitems writing one cell of one array."""

    array: str
    address: tuple[int, ...]
    point_a: tuple[int, ...]
    point_b: tuple[int, ...]
    access_a: MemoryAccess
    access_b: MemoryAccess
    symbols: tuple[str, ...]


def race_analysis(func: StencilFunc) -> list[RaceFinding]:
    """Solve affine address equality between distinct workitems.

    All stores to one array are evaluated at every workitem of a small
    sample grid; two *distinct* workitems producing the same concrete
    address is a write-write race. Affine addresses collide within a
    window of ``RACE_SAMPLE`` per symbol whenever they collide at all
    (for the coefficient magnitudes kernels actually use), so the
    enumeration is a sound, cheap stand-in for an ILP solve.
    """
    by_array: dict[str, list[MemoryAccess]] = {}
    for acc in func.unique_stores:
        by_array.setdefault(acc.array, []).append(acc)

    # the launch footprint is inferred from *every* symbol the accesses
    # observe (loads included): a store that ignores one of them is
    # written by all workitems along that symbol — the classic race
    symbols = sorted(
        {sym for acc in [*func.unique_loads, *func.unique_stores]
         for sym in _symbols_of(acc)}
    )
    grid = list(product(range(RACE_SAMPLE), repeat=len(symbols)))
    findings: list[RaceFinding] = []
    for array, accesses in by_array.items():
        seen: dict[tuple, tuple] = {}  # address -> (workitem, access)
        reported = set()
        for acc in accesses:
            for point in grid:
                assignment = dict(zip(symbols, point))
                address = tuple(e.evaluate(assignment) for e in acc.exprs)
                prior = seen.get(address)
                if prior is None:
                    seen[address] = (point, acc)
                    continue
                prior_point, prior_acc = prior
                if prior_point == point:
                    continue
                key = (prior_acc.linear_signature(), acc.linear_signature(),
                       prior_acc.stencil_offset(), acc.stencil_offset())
                if key in reported:
                    continue
                reported.add(key)
                findings.append(RaceFinding(
                    array=array,
                    address=address,
                    point_a=prior_point,
                    point_b=point,
                    access_a=prior_acc,
                    access_b=acc,
                    symbols=tuple(symbols),
                ))
    return findings


# ---------------------------------------------------------------------------
# coalescing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StrideFinding:
    """A non-unit-stride (or constant) contiguous-axis access pattern."""

    category: str  # "strided" | "constant-leading"
    access: MemoryAccess
    stride: int  # max |coeff| on the leading axis (0 when symbol-free)


def stride_analysis(func: StencilFunc) -> list[StrideFinding]:
    """The contiguous axis (Fortran axis 0) should be unit-stride.

    Any launch symbol with coefficient +/-1 on the leading axis counts
    as coalesced; a strided coefficient or a symbol-free leading axis
    on a multi-symbol access does not.
    """
    flagged = set()
    findings: list[StrideFinding] = []
    for acc in [*func.unique_loads, *func.unique_stores]:
        if not acc.exprs or not _symbols_of(acc):
            continue
        key = (acc.array, acc.linear_signature())
        if key in flagged:
            continue
        leading = acc.exprs[0]
        coeffs = [c for _, c in leading.linear_part]
        if any(abs(c) > 1 for c in coeffs):
            flagged.add(key)
            findings.append(StrideFinding(
                "strided", acc, max(abs(c) for c in coeffs)
            ))
        elif not coeffs and len(acc.exprs) > 1:
            flagged.add(key)
            findings.append(StrideFinding("constant-leading", acc, 0))
    return findings


# ---------------------------------------------------------------------------
# redundant loads (the RLE analysis)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RedundantLoad:
    """Later loads of an address already live in an SSA value.

    ``duplicates`` are op indices whose load can be replaced by
    ``canonical``'s result — already legality-checked: no may-alias
    store intervenes between the canonical load and the duplicate.
    """

    canonical: int
    duplicates: tuple[int, ...]


def redundant_loads(func: StencilFunc) -> list[RedundantLoad]:
    available: dict[tuple, int] = {}  # access key -> canonical op index
    groups: dict[int, list[int]] = {}
    order: list[int] = []
    for index, op in enumerate(func.ops):
        if isinstance(op, StoreOp):
            store_acc = op.access
            for key in list(available):
                canonical = func.ops[available[key]]
                assert isinstance(canonical, LoadOp)
                if may_alias(store_acc, canonical.access):
                    del available[key]  # the stored value may differ
            continue
        if not isinstance(op, LoadOp):
            continue
        key = _access_key(op.access)
        if key in available:
            canonical = available[key]
            if canonical not in groups:
                groups[canonical] = []
                order.append(canonical)
            groups[canonical].append(index)
        else:
            available[key] = index
    return [
        RedundantLoad(canonical, tuple(groups[canonical]))
        for canonical in order
    ]


# ---------------------------------------------------------------------------
# common subexpressions (value numbering)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CseGroup:
    """Ops computing one value: a canonical def plus duplicate defs."""

    canonical: int
    duplicates: tuple[int, ...]


def cse_candidates(func: StencilFunc) -> list[CseGroup]:
    """Value numbering over arith and rand ops.

    Both are pure: arith over SSA values, rand over its coordinate keys
    (the counter RNG makes equal keys produce equal samples). fadd and
    fmul keys are commutative-canonicalized.
    """
    value_of: dict[str, tuple] = {}  # ssa name -> value number (a key)
    first_def: dict[tuple, int] = {}
    groups: dict[int, list[int]] = {}
    order: list[int] = []

    def operand_value(operand: str) -> tuple:
        if operand.startswith("%"):
            return value_of.get(operand, ("opaque", operand))
        return ("const", operand)

    for index, op in enumerate(func.ops):
        if isinstance(op, ArithOp):
            lhs, rhs = operand_value(op.lhs), operand_value(op.rhs)
            if op.op in _COMMUTATIVE:
                lhs, rhs = sorted((lhs, rhs))
            key = ("arith", op.op, lhs, rhs)
        elif isinstance(op, RandOp):
            key = ("rand", op.keys)
        elif isinstance(op, LoadOp):
            # loads get an opaque value number (RLE owns load merging)
            value_of[op.result] = ("load", index)
            continue
        else:
            continue
        if key in first_def:
            canonical = first_def[key]
            if canonical not in groups:
                groups[canonical] = []
                order.append(canonical)
            groups[canonical].append(index)
            value_of[op.result] = key
        else:
            first_def[key] = index
            value_of[op.result] = key
    return [CseGroup(c, tuple(groups[c])) for c in order]


# ---------------------------------------------------------------------------
# cross-launch dependences (the fusion legality input)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Dependence:
    """One producer/consumer edge between two funcs on one array."""

    array: str
    producer: MemoryAccess
    consumer: MemoryAccess
    exact: bool  # same linear signature and offset (cell-local)


@dataclass(frozen=True)
class CrossDeps:
    """Flow/anti/output dependences from func ``a`` to func ``b``."""

    flow: tuple[Dependence, ...]  # a stores X, b loads X
    anti: tuple[Dependence, ...]  # a loads X, b stores X
    output: tuple[Dependence, ...]  # both store X


def cross_dependences(a: StencilFunc, b: StencilFunc) -> CrossDeps:
    """Dependences assuming equal array names alias the same buffer."""
    flow: list[Dependence] = []
    anti: list[Dependence] = []
    output: list[Dependence] = []
    for sa in a.unique_stores:
        for lb in b.unique_loads:
            if sa.array == lb.array:
                flow.append(Dependence(sa.array, sa, lb, must_alias(sa, lb)))
        for sb in b.unique_stores:
            if sa.array == sb.array:
                output.append(Dependence(sa.array, sa, sb, must_alias(sa, sb)))
    for la in a.unique_loads:
        for sb in b.unique_stores:
            if la.array == sb.array:
                anti.append(Dependence(la.array, sb, la, must_alias(la, sb)))
    return CrossDeps(tuple(flow), tuple(anti), tuple(output))
