"""Builders: trace the workflow's kernels into a named-array module.

The lint runner traces kernels over anonymous scratch arrays (names
``arg0``…), which is fine for per-kernel rules but loses the buffer
identities cross-kernel analyses need: fusion legality hinges on which
launches touch the *same* buffer. These builders trace the built-in
Gray-Scott kernels over named scratch arrays (``u``, ``v``, ``u_new``,
``v_new``, ``lap``) so :func:`repro.ir.analysis.cross_dependences` sees
the workflow's real dataflow.
"""

from __future__ import annotations

import numpy as np

from repro.core.params import GrayScottParams
from repro.gpu.jit import trace_kernel
from repro.ir.core import Module, StencilFunc, from_trace

#: per-axis extent of the scratch arrays (any value >= 4 yields the
#: same affine trace; matches the lint runner's TRACE_EXTENT)
TRACE_EXTENT = 12


class NamedArray(np.ndarray):
    """ndarray view carrying a ``name`` the tracer picks up."""

    name: str


def named(data: np.ndarray, name: str) -> NamedArray:
    view = data.view(NamedArray)
    view.name = name
    return view


def _scratch(name: str, dtype, *, extent: int = TRACE_EXTENT) -> NamedArray:
    return named(
        np.ones((extent,) * 3, dtype=dtype, order="F"), name
    )


def gray_scott_func(
    params: GrayScottParams | None = None,
    *,
    dtype="float64",
    seed: int = 42,
    extent: int = TRACE_EXTENT,
) -> StencilFunc:
    """Trace the application kernel into a func over u/v/u_new/v_new."""
    from repro.core.stencil import kernel_args, make_gray_scott_kernel

    params = params if params is not None else GrayScottParams()
    dtype = np.dtype(dtype)
    u = _scratch("u", dtype, extent=extent)
    v = _scratch("v", dtype, extent=extent)
    u_new = _scratch("u_new", dtype, extent=extent)
    v_new = _scratch("v_new", dtype, extent=extent)
    args = kernel_args(u, v, u_new, v_new, params, seed=seed, step=0)
    trace = trace_kernel(make_gray_scott_kernel(), args)
    return from_trace(trace, ghost=1)


def laplacian_func(
    params: GrayScottParams | None = None,
    *,
    dtype="float64",
    extent: int = TRACE_EXTENT,
) -> StencilFunc:
    """Trace the 1-variable diagnostic kernel over u -> lap."""
    from repro.core.stencil import make_laplacian_kernel

    params = params if params is not None else GrayScottParams()
    dtype = np.dtype(dtype)
    u = _scratch("u", dtype, extent=extent)
    lap = _scratch("lap", dtype, extent=extent)
    shape = (extent,) * 3
    args = (u, lap, shape, params.Du, params.dt)
    trace = trace_kernel(make_laplacian_kernel(), args)
    return from_trace(trace, ghost=1)


def workflow_module(settings=None, *, extent: int = TRACE_EXTENT) -> Module:
    """The per-step launch sequence as a module: application + diagnostic.

    ``settings`` (a :class:`~repro.core.settings.GrayScottSettings`)
    supplies precision, params, and seed when given; defaults match the
    lint runner's trace harness otherwise. Both kernels read ``u``, and
    each writes its own output buffer — the module-level reuse stencil
    fusion + RLE recover.
    """
    if settings is not None:
        params = settings.params()
        dtype = settings.precision
        seed = settings.seed
    else:
        params = GrayScottParams()
        dtype = "float64"
        seed = 42
    gs = gray_scott_func(params, dtype=dtype, seed=seed, extent=extent)
    lap = laplacian_func(params, dtype=dtype, extent=extent)
    return Module(name="gray_scott_step", funcs=(gs, lap))
