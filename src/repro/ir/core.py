"""The stencil IR: an SSA op list per kernel, a module per workflow.

The tracing JIT (:mod:`repro.gpu.jit`) already recovers the facts the
paper reads off Julia's LLVM-IR in Listing 4 — affine load/store
addresses, CSE'd load SSA values, fp op counts, device RNG calls. This
module promotes that flat trace into a small IR the analysis and
rewrite passes share:

- a :class:`StencilFunc` is one kernel body over the guarded interior
  region: a straight-line SSA op list (``stencil.load`` /
  ``arith.<op>`` / ``stencil.rand`` / ``stencil.store``) whose array
  subscripts are :class:`~repro.gpu.jit.Affine` expressions in the
  launch symbols, plus region metadata (halo depth, array dtypes and
  shapes, an optional tile);
- a :class:`Module` is the sequence of funcs a workflow launches per
  step — the unit stencil fusion rewrites.

:func:`from_trace` builds a func from a :class:`~repro.gpu.jit.
KernelTrace`; :meth:`StencilFunc.verify` checks SSA well-formedness so
every rewrite pass can assert it preserved the invariants. The text
rendering is MLIR-flavored on purpose: the xdsl-style pass pipeline in
:mod:`repro.ir.passes` is the counterfactual engine behind
``grayscott ir`` ("what would fusion buy at 1024^3?").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Union

import numpy as np

from repro.gpu.jit import Affine, MemoryAccess
from repro.util.errors import IrError

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.jit import KernelTrace


# ---------------------------------------------------------------------------
# ops
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LoadOp:
    """``%r = stencil.load array[exprs]`` — one CSE'd global load."""

    result: str
    array: str
    exprs: tuple[Affine, ...]

    @property
    def access(self) -> MemoryAccess:
        return MemoryAccess(self.array, self.exprs)


@dataclass(frozen=True)
class ArithOp:
    """``%r = arith.<op> lhs, rhs`` — fadd/fsub/fmul/fdiv on doubles.

    Operands are SSA names (``%n``) or float literals (``repr`` form).
    """

    result: str
    op: str
    lhs: str
    rhs: str


@dataclass(frozen=True)
class RandOp:
    """``%r = stencil.rand(keys)`` — one counter-RNG draw.

    Keys are :class:`Affine` cell coordinates or plain ints (seed,
    step); the sample is a pure function of the keys, so two RandOps
    with equal keys are the same value (CSE-legal).
    """

    result: str
    keys: tuple


@dataclass(frozen=True)
class StoreOp:
    """``stencil.store array[exprs], value`` — one global store."""

    array: str
    exprs: tuple[Affine, ...]
    value: str

    @property
    def access(self) -> MemoryAccess:
        return MemoryAccess(self.array, self.exprs)


Op = Union[LoadOp, ArithOp, RandOp, StoreOp]


def _access_key(acc: MemoryAccess) -> tuple:
    return (acc.array, acc.linear_signature(), acc.stencil_offset())


# ---------------------------------------------------------------------------
# funcs and modules
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StencilFunc:
    """One stencil kernel as a region: SSA ops + halo/array metadata."""

    name: str
    ops: tuple[Op, ...]
    symbols: tuple[str, ...]
    ghost: int = 1
    array_dtypes: dict[str, str] = field(default_factory=dict)
    array_shapes: dict[str, tuple[int, ...]] = field(default_factory=dict)
    type_escapes: tuple[tuple[str, str], ...] = ()
    #: workgroup tile extents set by the tiling pass (None = untiled)
    tile: tuple[int, ...] | None = None
    #: source kernel names (more than one after fusion)
    provenance: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.provenance:
            object.__setattr__(self, "provenance", (self.name,))

    # -- access views (the KernelTrace-compatible interface) ------------

    @property
    def loads(self) -> list[MemoryAccess]:
        return [op.access for op in self.ops if isinstance(op, LoadOp)]

    @property
    def stores(self) -> list[MemoryAccess]:
        return [op.access for op in self.ops if isinstance(op, StoreOp)]

    @property
    def unique_loads(self) -> list[MemoryAccess]:
        seen, out = set(), []
        for acc in self.loads:
            key = _access_key(acc)
            if key not in seen:
                seen.add(key)
                out.append(acc)
        return out

    @property
    def unique_stores(self) -> list[MemoryAccess]:
        seen, out = set(), []
        for acc in self.stores:
            key = _access_key(acc)
            if key not in seen:
                seen.add(key)
                out.append(acc)
        return out

    @property
    def arith_ops(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for op in self.ops:
            if isinstance(op, ArithOp):
                counts[op.op] = counts.get(op.op, 0) + 1
        return counts

    @property
    def flops(self) -> int:
        return sum(self.arith_ops.values())

    @property
    def rand_calls(self) -> int:
        return sum(1 for op in self.ops if isinstance(op, RandOp))

    @property
    def itemsize(self) -> int:
        """Widest array element size (the traffic-model default)."""
        sizes = [np.dtype(d).itemsize for d in self.array_dtypes.values()]
        return max(sizes) if sizes else 8

    def loads_by_array(self) -> dict[str, set[tuple[int, ...]]]:
        """Per-array unique stencil load offsets — the cache-model input."""
        result: dict[str, set[tuple[int, ...]]] = {}
        for acc in self.unique_loads:
            offset = acc.stencil_offset()
            if offset is not None:
                result.setdefault(acc.array, set()).add(offset)
        return result

    def stores_by_array(self) -> dict[str, set[tuple[int, ...]]]:
        result: dict[str, set[tuple[int, ...]]] = {}
        for acc in self.unique_stores:
            offset = acc.stencil_offset()
            if offset is not None:
                result.setdefault(acc.array, set()).add(offset)
        return result

    def op_counts(self) -> dict[str, int]:
        """Dimensionless op census: the pass-report numerator."""
        return {
            "load": sum(1 for op in self.ops if isinstance(op, LoadOp)),
            "arith": sum(1 for op in self.ops if isinstance(op, ArithOp)),
            "rand": sum(1 for op in self.ops if isinstance(op, RandOp)),
            "store": sum(1 for op in self.ops if isinstance(op, StoreOp)),
        }

    def with_ops(self, ops) -> "StencilFunc":
        return replace(self, ops=tuple(ops))

    # -- verification ----------------------------------------------------

    def verify(self) -> list[str]:
        """SSA well-formedness problems (empty list = valid).

        Checks: unique result names; every ``%`` operand defined before
        use and every literal operand parseable; access arity matching
        the declared array shapes; index symbols drawn from the func's
        symbol set; a well-formed tile.
        """
        problems: list[str] = []
        defined: set[str] = set()
        symbols = set(self.symbols)

        def check_operand(operand: str, where: str) -> None:
            if operand.startswith("%"):
                if operand not in defined:
                    problems.append(f"{where}: use of undefined value {operand}")
                return
            try:
                float(operand)
            except ValueError:
                problems.append(f"{where}: malformed literal {operand!r}")

        def check_exprs(array: str, exprs, where: str) -> None:
            shape = self.array_shapes.get(array)
            if shape is not None and len(exprs) != len(shape):
                problems.append(
                    f"{where}: {len(exprs)} subscripts into {array} of rank "
                    f"{len(shape)}"
                )
            for expr in exprs:
                for sym, _ in expr.linear_part:
                    if sym not in symbols:
                        problems.append(
                            f"{where}: unknown launch symbol {sym!r}"
                        )

        for index, op in enumerate(self.ops):
            where = f"op {index}"
            if isinstance(op, (LoadOp, ArithOp, RandOp)):
                if op.result in defined:
                    problems.append(f"{where}: redefinition of {op.result}")
            if isinstance(op, LoadOp):
                check_exprs(op.array, op.exprs, where)
            elif isinstance(op, ArithOp):
                if op.op not in ("fadd", "fsub", "fmul", "fdiv"):
                    problems.append(f"{where}: unknown arith op {op.op!r}")
                check_operand(op.lhs, where)
                check_operand(op.rhs, where)
            elif isinstance(op, RandOp):
                for key in op.keys:
                    if isinstance(key, Affine):
                        for sym, _ in key.linear_part:
                            if sym not in symbols:
                                problems.append(
                                    f"{where}: unknown launch symbol {sym!r}"
                                )
                    elif not isinstance(key, (int, np.integer)):
                        problems.append(
                            f"{where}: rand key {key!r} is neither Affine nor int"
                        )
            elif isinstance(op, StoreOp):
                check_exprs(op.array, op.exprs, where)
                check_operand(op.value, where)
            else:
                problems.append(f"{where}: unknown op {type(op).__name__}")
            if isinstance(op, (LoadOp, ArithOp, RandOp)):
                defined.add(op.result)

        if self.tile is not None:
            if len(self.tile) != 3 or any(
                not isinstance(t, (int, np.integer)) or t < 1 for t in self.tile
            ):
                problems.append(f"tile {self.tile!r} is not 3 positive extents")
        if self.ghost < 0:
            problems.append(f"negative halo depth {self.ghost}")
        return problems

    # -- rendering -------------------------------------------------------

    def render(self) -> str:
        """MLIR-flavored text form (stable: the golden-test surface)."""
        params = ", ".join(
            f"{name}: {dtype}[{' x '.join(str(s) for s in self.array_shapes.get(name, ()))}]"
            for name, dtype in self.array_dtypes.items()
        )
        head = f"stencil.func @{self.name}({params}) halo<{self.ghost}>"
        if self.tile is not None:
            head += f" tile<{' x '.join(str(t) for t in self.tile)}>"
        lines = [head + " {"]
        for op in self.ops:
            if isinstance(op, LoadOp):
                subs = ", ".join(str(e) for e in op.exprs)
                lines.append(f"  {op.result} = stencil.load {op.array}[{subs}]")
            elif isinstance(op, ArithOp):
                lines.append(f"  {op.result} = arith.{op.op} {op.lhs}, {op.rhs}")
            elif isinstance(op, RandOp):
                keys = ", ".join(
                    str(k) for k in op.keys
                )
                lines.append(f"  {op.result} = stencil.rand({keys})")
            elif isinstance(op, StoreOp):
                subs = ", ".join(str(e) for e in op.exprs)
                lines.append(f"  stencil.store {op.array}[{subs}], {op.value}")
        lines.append("}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        def expr_json(expr: Affine) -> dict:
            return {
                "terms": [[sym, c] for sym, c in expr.linear_part],
                "const": expr.const,
                "repr": str(expr),
            }

        ops_json: list[dict] = []
        for op in self.ops:
            if isinstance(op, LoadOp):
                ops_json.append({
                    "op": "load", "result": op.result, "array": op.array,
                    "exprs": [expr_json(e) for e in op.exprs],
                })
            elif isinstance(op, ArithOp):
                ops_json.append({
                    "op": op.op, "result": op.result,
                    "lhs": op.lhs, "rhs": op.rhs,
                })
            elif isinstance(op, RandOp):
                ops_json.append({
                    "op": "rand", "result": op.result,
                    "keys": [
                        expr_json(k) if isinstance(k, Affine) else int(k)
                        for k in op.keys
                    ],
                })
            elif isinstance(op, StoreOp):
                ops_json.append({
                    "op": "store", "array": op.array, "value": op.value,
                    "exprs": [expr_json(e) for e in op.exprs],
                })
        return {
            "name": self.name,
            "symbols": list(self.symbols),
            "ghost": self.ghost,
            "tile": list(self.tile) if self.tile is not None else None,
            "provenance": list(self.provenance),
            "arrays": {
                name: {
                    "dtype": dtype,
                    "shape": list(self.array_shapes.get(name, ())),
                }
                for name, dtype in self.array_dtypes.items()
            },
            "op_counts": self.op_counts(),
            "ops": ops_json,
        }


@dataclass(frozen=True)
class Module:
    """The funcs one workflow step launches, in launch order."""

    name: str
    funcs: tuple[StencilFunc, ...]

    def func(self, name: str) -> StencilFunc:
        for f in self.funcs:
            if f.name == name:
                return f
        raise IrError(f"module {self.name!r} has no func {name!r}")

    def with_funcs(self, funcs) -> "Module":
        return replace(self, funcs=tuple(funcs))

    def verify(self) -> list[str]:
        problems: list[str] = []
        for f in self.funcs:
            problems.extend(f"@{f.name}: {p}" for p in f.verify())
        # launch-order metadata consistency: a buffer shared between
        # funcs must agree on dtype and shape
        dtypes: dict[str, tuple[str, str]] = {}
        shapes: dict[str, tuple[str, tuple[int, ...]]] = {}
        for f in self.funcs:
            for array, dtype in f.array_dtypes.items():
                prior = dtypes.setdefault(array, (f.name, dtype))
                if prior[1] != dtype:
                    problems.append(
                        f"array {array!r} is {prior[1]} in @{prior[0]} but "
                        f"{dtype} in @{f.name}"
                    )
            for array, shape in f.array_shapes.items():
                prior_s = shapes.setdefault(array, (f.name, shape))
                if prior_s[1] != shape:
                    problems.append(
                        f"array {array!r} has shape {prior_s[1]} in "
                        f"@{prior_s[0]} but {shape} in @{f.name}"
                    )
        return problems

    def render(self) -> str:
        header = f"// module {self.name}: {len(self.funcs)} func(s)"
        return "\n\n".join([header, *(f.render() for f in self.funcs)])

    def to_json(self) -> dict:
        return {
            "module": self.name,
            "funcs": [f.to_json() for f in self.funcs],
        }

    def op_counts(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for f in self.funcs:
            for kind, n in f.op_counts().items():
                totals[kind] = totals.get(kind, 0) + n
        return totals


# ---------------------------------------------------------------------------
# construction from a JIT trace
# ---------------------------------------------------------------------------


def _ops_from_accesses(trace: "KernelTrace") -> list[Op]:
    """Synthesize an op list from a trace's bare access lists.

    Hand-built traces (tests, external tooling) may carry only
    ``loads``/``stores`` without structured ``ops`` records. Mirror the
    tracer: CSE repeated loads of one address into one SSA value, then
    store a literal (the stored *value* is unknown, but every
    access-level analysis — halo, races, strides — only reads the
    affine subscripts).
    """
    ops: list[Op] = []
    counter = 0
    seen: dict[tuple, str] = {}
    for acc in trace.loads:
        key = _access_key(acc)
        if key in seen:
            continue
        counter += 1
        seen[key] = f"%{counter}"
        ops.append(LoadOp(f"%{counter}", acc.array, tuple(acc.exprs)))
    for acc in trace.stores:
        ops.append(StoreOp(acc.array, tuple(acc.exprs), "0.0"))
    return ops


def from_trace(
    trace: "KernelTrace", *, ghost: int = 1, name: str | None = None
) -> StencilFunc:
    """Promote one :class:`KernelTrace` into a verified stencil func.

    The trace's structured op records are converted 1:1 (loads arrive
    already CSE'd — the tracer folds repeated loads of one address into
    one SSA value, exactly like the LLVM listing the paper inspects).
    Traces with bare access lists and no op records fall back to
    :func:`_ops_from_accesses`.
    """
    ops: list[Op] = []
    symbols: set[str] = set()

    def note_exprs(exprs) -> None:
        for expr in exprs:
            for sym, _ in expr.linear_part:
                symbols.add(sym)

    for record in trace.ops:
        kind = record[0]
        if kind == "load":
            _, ssa, array, exprs = record
            note_exprs(exprs)
            ops.append(LoadOp(ssa, array, tuple(exprs)))
        elif kind == "arith":
            _, ssa, op_name, lhs, rhs = record
            ops.append(ArithOp(ssa, op_name, lhs, rhs))
        elif kind == "rand":
            _, ssa, keys = record
            note_exprs(k for k in keys if isinstance(k, Affine))
            ops.append(RandOp(ssa, tuple(keys)))
        elif kind == "store":
            _, array, exprs, value = record
            note_exprs(exprs)
            ops.append(StoreOp(array, tuple(exprs), value))
        else:  # pragma: no cover - tracer and IR grow in lockstep
            raise IrError(f"unknown trace op record {kind!r}")

    if not ops and (trace.loads or trace.stores):
        ops = _ops_from_accesses(trace)
        for acc in [*trace.loads, *trace.stores]:
            note_exprs(acc.exprs)

    func = StencilFunc(
        name=name if name is not None else trace.kernel_name,
        ops=tuple(ops),
        symbols=tuple(sorted(symbols)),
        ghost=int(ghost),
        array_dtypes=dict(trace.array_dtypes),
        array_shapes=dict(trace.array_shapes),
        type_escapes=tuple(trace.type_escapes),
    )
    problems = func.verify()
    if problems:
        raise IrError(
            f"trace of {trace.kernel_name!r} lowered to invalid IR: "
            + "; ".join(problems)
        )
    return func
