"""Counterfactual performance prediction over (post-rewrite) IR.

Turns "what would fusion buy on an MI250x at 1024^3?" — the question
the paper's Tables 2/3 gap analysis circles — into a computation: build
the workflow module, run a pass pipeline, and feed both the original
and the rewritten IR to the same traffic models
(:class:`~repro.gpu.cache.StencilTrafficModel` analytically,
:class:`~repro.gpu.cache.TraceCacheSim` exactly at test sizes).

The analytic path charges each launch its streaming passes in
isolation — the conservative large-array regime where nothing survives
in cache between launches — so eliminating a launch's loads always
shows up. The simulator path keeps one LRU state across launches, so it
also answers when *cache residency alone* would have saved the traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.frontier import GcdSpec
from repro.gpu.cache import StencilTrafficModel, TraceCacheSim, TrafficEstimate
from repro.ir.core import Module
from repro.ir.passes import DEFAULT_PIPELINE, PassManager, PipelineReport


@dataclass(frozen=True)
class FuncCost:
    """One launch's modeled op counts, traffic, and seconds."""

    name: str
    unique_loads: int
    unique_stores: int
    flops: int
    rand_calls: int
    traffic: TrafficEstimate
    seconds: float

    def to_json(self) -> dict:
        return {
            "func": self.name,
            "unique_loads": self.unique_loads,
            "unique_stores": self.unique_stores,
            "flops": self.flops,
            "rand_calls": self.rand_calls,
            "fetch_bytes": self.traffic.fetch_bytes,
            "write_bytes": self.traffic.write_bytes,
            "seconds": self.seconds,
        }


@dataclass(frozen=True)
class ModuleCost:
    """Summed launch costs for one module at one shape."""

    shape: tuple[int, int, int]
    itemsize: int
    funcs: tuple[FuncCost, ...] = ()

    @property
    def fetch_bytes(self) -> float:
        return sum(f.traffic.fetch_bytes for f in self.funcs)

    @property
    def write_bytes(self) -> float:
        return sum(f.traffic.write_bytes for f in self.funcs)

    @property
    def total_bytes(self) -> float:
        return self.fetch_bytes + self.write_bytes

    @property
    def seconds(self) -> float:
        return sum(f.seconds for f in self.funcs)

    def to_json(self) -> dict:
        return {
            "shape": list(self.shape),
            "itemsize": self.itemsize,
            "fetch_bytes": self.fetch_bytes,
            "write_bytes": self.write_bytes,
            "total_bytes": self.total_bytes,
            "seconds": self.seconds,
            "funcs": [f.to_json() for f in self.funcs],
        }


def predict_module(
    module: Module,
    *,
    shape: tuple[int, int, int],
    itemsize: int | None = None,
    spec: GcdSpec | None = None,
) -> ModuleCost:
    """Analytic per-launch traffic + memory-bound seconds for a module."""
    spec = spec or GcdSpec()
    model = StencilTrafficModel(spec)
    costs = []
    for func in module.funcs:
        size = itemsize if itemsize is not None else func.itemsize
        traffic = model.estimate_func(func, shape, size)
        seconds = traffic.total_bytes / spec.hbm_peak_bytes_per_s
        costs.append(FuncCost(
            name=func.name,
            unique_loads=len(func.unique_loads),
            unique_stores=len(func.unique_stores),
            flops=func.flops,
            rand_calls=func.rand_calls,
            traffic=traffic,
            seconds=seconds,
        ))
    return ModuleCost(
        shape=tuple(shape),
        itemsize=itemsize if itemsize is not None else (
            max((f.itemsize for f in module.funcs), default=8)
        ),
        funcs=tuple(costs),
    )


def simulate_module(
    module: Module,
    *,
    shape: tuple[int, int, int],
    itemsize: int | None = None,
    capacity_bytes: int | None = None,
    line_bytes: int = 64,
    associativity: int = 16,
    engine: str = "auto",
    spec: GcdSpec | None = None,
) -> ModuleCost:
    """Exact LRU simulation of the module's launches, state carried over.

    One :class:`TraceCacheSim` spans every launch, so an unfused module
    is only charged re-fetches the cache actually incurs — the honest
    baseline a fusion counterfactual must beat.
    """
    spec = spec or GcdSpec()
    sim = TraceCacheSim(
        capacity_bytes if capacity_bytes is not None else spec.tcc_bytes,
        line_bytes,
        associativity,
    )
    costs = []
    for func in module.funcs:
        size = itemsize if itemsize is not None else func.itemsize
        traffic = sim.multi_sweep_func(func, shape, size, engine=engine)
        seconds = traffic.total_bytes / spec.hbm_peak_bytes_per_s
        costs.append(FuncCost(
            name=func.name,
            unique_loads=len(func.unique_loads),
            unique_stores=len(func.unique_stores),
            flops=func.flops,
            rand_calls=func.rand_calls,
            traffic=traffic,
            seconds=seconds,
        ))
    return ModuleCost(
        shape=tuple(shape),
        itemsize=itemsize if itemsize is not None else (
            max((f.itemsize for f in module.funcs), default=8)
        ),
        funcs=tuple(costs),
    )


@dataclass(frozen=True)
class Counterfactual:
    """Before/after costs of one pass pipeline on one module."""

    module: str
    passes: tuple[str, ...]
    pipeline: PipelineReport
    before: ModuleCost
    after: ModuleCost
    op_counts_before: dict[str, int] = field(default_factory=dict)
    op_counts_after: dict[str, int] = field(default_factory=dict)

    @property
    def bytes_saved(self) -> float:
        return self.before.total_bytes - self.after.total_bytes

    @property
    def speedup(self) -> float:
        if self.after.seconds == 0:
            return 1.0
        return self.before.seconds / self.after.seconds

    def to_json(self) -> dict:
        return {
            "module": self.module,
            "passes": list(self.passes),
            "pipeline": self.pipeline.to_json(),
            "before": self.before.to_json(),
            "after": self.after.to_json(),
            "op_counts_before": dict(self.op_counts_before),
            "op_counts_after": dict(self.op_counts_after),
            "bytes_saved": self.bytes_saved,
            "speedup": self.speedup,
        }

    def render(self) -> str:
        lines = [
            f"counterfactual for module {self.module} at "
            f"{'x'.join(str(n) for n in self.before.shape)} "
            f"(passes: {', '.join(self.passes)})",
            self.pipeline.render(),
            f"  ops     {self.op_counts_before} -> {self.op_counts_after}",
            f"  fetch   {self.before.fetch_bytes / 1e9:.3f} GB -> "
            f"{self.after.fetch_bytes / 1e9:.3f} GB",
            f"  write   {self.before.write_bytes / 1e9:.3f} GB -> "
            f"{self.after.write_bytes / 1e9:.3f} GB",
            f"  seconds {self.before.seconds * 1e3:.3f} ms -> "
            f"{self.after.seconds * 1e3:.3f} ms  "
            f"(speedup {self.speedup:.2f}x)",
        ]
        return "\n".join(lines)


def counterfactual(
    module: Module,
    *,
    shape: tuple[int, int, int],
    passes=DEFAULT_PIPELINE,
    itemsize: int | None = None,
    spec: GcdSpec | None = None,
    exact: bool = False,
    capacity_bytes: int | None = None,
) -> Counterfactual:
    """Run ``passes`` over ``module`` and cost both sides identically."""
    manager = PassManager(passes)
    rewritten, pipeline = manager.run(module)
    if exact:
        before = simulate_module(
            module, shape=shape, itemsize=itemsize, spec=spec,
            capacity_bytes=capacity_bytes,
        )
        after = simulate_module(
            rewritten, shape=shape, itemsize=itemsize, spec=spec,
            capacity_bytes=capacity_bytes,
        )
    else:
        before = predict_module(
            module, shape=shape, itemsize=itemsize, spec=spec
        )
        after = predict_module(
            rewritten, shape=shape, itemsize=itemsize, spec=spec
        )
    return Counterfactual(
        module=module.name,
        passes=tuple(
            p if isinstance(p, str) else p.name
            for p in (passes if not isinstance(passes, str) else
                      [s.strip() for s in passes.split(",") if s.strip()])
        ),
        pipeline=pipeline,
        before=before,
        after=after,
        op_counts_before=module.op_counts(),
        op_counts_after=rewritten.op_counts(),
    )
