"""repro.ir: the shared stencil IR + analysis/rewrite pass pipeline.

Promotes the tracing JIT's :class:`~repro.gpu.jit.KernelTrace` to an
SSA IR (:mod:`repro.ir.core`) shared by the kernel lint (analyses in
:mod:`repro.ir.analysis` back the KRN-* rules) and the predictive
performance models (rewrites in :mod:`repro.ir.passes` produce the
post-optimization IR that :mod:`repro.ir.perfmodel` costs). See
``docs/IR.md`` for the grammar, pass list, and legality conditions.
"""

from repro.ir.analysis import (
    AnalysisContext,
    cross_dependences,
    cse_candidates,
    halo_analysis,
    may_alias,
    race_analysis,
    reaching_definitions,
    redundant_loads,
    stride_analysis,
)
from repro.ir.build import gray_scott_func, laplacian_func, workflow_module
from repro.ir.core import (
    ArithOp,
    LoadOp,
    Module,
    RandOp,
    StencilFunc,
    StoreOp,
    from_trace,
)
from repro.ir.interp import evaluate_func, evaluate_module
from repro.ir.passes import (
    DEFAULT_PIPELINE,
    PassManager,
    PipelineReport,
    parse_pipeline,
)
from repro.ir.perfmodel import counterfactual, predict_module, simulate_module

__all__ = [
    "AnalysisContext",
    "ArithOp",
    "DEFAULT_PIPELINE",
    "LoadOp",
    "Module",
    "PassManager",
    "PipelineReport",
    "RandOp",
    "StencilFunc",
    "StoreOp",
    "counterfactual",
    "cross_dependences",
    "cse_candidates",
    "evaluate_func",
    "evaluate_module",
    "from_trace",
    "gray_scott_func",
    "halo_analysis",
    "laplacian_func",
    "may_alias",
    "parse_pipeline",
    "predict_module",
    "race_analysis",
    "reaching_definitions",
    "redundant_loads",
    "simulate_module",
    "stride_analysis",
    "workflow_module",
]
