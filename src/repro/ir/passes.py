"""Rewrite passes with legality checks, and the PassManager.

Every pass maps a :class:`~repro.ir.core.Module` to a new Module plus
:class:`PassReport` records saying what it did and — when it declined —
why the rewrite was illegal. Rewrites never execute anything: legality
is decided from the analyses in :mod:`repro.ir.analysis`, and the
property tests assert bit-identity of simulated results across every
legal pipeline.

Passes (spec names for ``--passes``):

- ``fuse`` — stencil fusion of launch-adjacent funcs. Legal when the
  funcs share symbols and halo depth, every flow dependence is exact
  (producer stores the very cell the consumer loads, so the value is
  forwarded in-register), and there are no anti or inexact output
  dependences (a later launch overwriting an input the earlier one
  reads at neighbor offsets cannot be interleaved cell-by-cell).
- ``rle`` — redundant-load elimination: a load of an address already
  live in an SSA value is replaced by that value; legal when no
  may-alias store intervenes. (Within one trace the JIT already folds
  these; fusion re-introduces them across kernel boundaries.)
- ``cse`` — common-subexpression merge over arith and rand ops by
  value numbering (fadd/fmul commute; rand is pure in its keys).
- ``dse`` — dead-store elimination (a store must-alias-overwritten
  before any may-alias read) plus transitively dead value computations.
- ``tile=TXxTYxTZ`` — loop tiling: records workgroup tile extents the
  traffic/occupancy models consume; legal only for race-free funcs
  (tiling reorders the sweep, which a racy func can observe).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.ir import analysis as A
from repro.ir.core import (
    ArithOp,
    LoadOp,
    Module,
    RandOp,
    StencilFunc,
    StoreOp,
)
from repro.util.errors import IrError

DEFAULT_PIPELINE = ("fuse", "rle", "cse", "dse")


@dataclass(frozen=True)
class PassReport:
    """What one pass did to one target (a func or the module)."""

    pass_name: str
    target: str
    applied: bool
    ops_before: int
    ops_after: int
    notes: tuple[str, ...] = ()
    removed: dict[str, int] = field(default_factory=dict)

    @property
    def reduction_ratio(self) -> float:
        """Dimensionless op-count reduction (0 = no change)."""
        if self.ops_before == 0:
            return 0.0
        return 1.0 - self.ops_after / self.ops_before

    def to_json(self) -> dict:
        return {
            "pass": self.pass_name,
            "target": self.target,
            "applied": self.applied,
            "ops_before": self.ops_before,
            "ops_after": self.ops_after,
            "reduction_ratio": round(self.reduction_ratio, 6),
            "removed": dict(self.removed),
            "notes": list(self.notes),
        }


@dataclass
class PipelineReport:
    """Every pass's reports, in execution order, plus wall time."""

    reports: list[PassReport] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def applied_passes(self) -> list[str]:
        return [r.pass_name for r in self.reports if r.applied]

    def removed_total(self, kind: str) -> int:
        return sum(r.removed.get(kind, 0) for r in self.reports)

    def render(self) -> str:
        lines = ["pass pipeline:"]
        for r in self.reports:
            status = "applied" if r.applied else "no-op"
            detail = ", ".join(
                f"-{n} {kind}" for kind, n in r.removed.items() if n
            )
            line = (
                f"  {r.pass_name:<12} @{r.target:<28} {status:<8} "
                f"ops {r.ops_before} -> {r.ops_after}"
            )
            if detail:
                line += f"  ({detail})"
            lines.append(line)
            for note in r.notes:
                lines.append(f"      note: {note}")
        lines.append(f"  wall time: {self.seconds * 1e3:.2f} ms")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "passes": [r.to_json() for r in self.reports],
            "seconds": self.seconds,
        }


def _substitute(ops, repl: dict[str, str]) -> list:
    """Rewrite SSA operand names through a replacement map."""
    if not repl:
        return list(ops)

    def sub(name: str) -> str:
        while name in repl:
            name = repl[name]
        return name

    out = []
    for op in ops:
        if isinstance(op, ArithOp):
            out.append(ArithOp(op.result, op.op, sub(op.lhs), sub(op.rhs)))
        elif isinstance(op, StoreOp):
            out.append(StoreOp(op.array, op.exprs, sub(op.value)))
        else:
            out.append(op)
    return out


class Pass:
    """Base: a named Module -> (Module, [PassReport]) rewrite."""

    name = "pass"

    def run(self, module: Module) -> tuple[Module, list[PassReport]]:
        raise NotImplementedError


class _FuncPass(Pass):
    """A pass applied independently to every func of the module."""

    def run(self, module: Module) -> tuple[Module, list[PassReport]]:
        funcs, reports = [], []
        for func in module.funcs:
            new_func, report = self.run_func(func)
            funcs.append(new_func)
            reports.append(report)
        return module.with_funcs(funcs), reports

    def run_func(self, func: StencilFunc) -> tuple[StencilFunc, PassReport]:
        raise NotImplementedError


class RedundantLoadElimination(_FuncPass):
    name = "rle"

    def run_func(self, func: StencilFunc) -> tuple[StencilFunc, PassReport]:
        groups = A.redundant_loads(func)
        before = len(func.ops)
        if not groups:
            return func, PassReport(self.name, func.name, False, before, before)
        repl: dict[str, str] = {}
        drop: set[int] = set()
        for group in groups:
            canonical = func.ops[group.canonical]
            for dup in group.duplicates:
                repl[func.ops[dup].result] = canonical.result
                drop.add(dup)
        ops = _substitute(
            (op for i, op in enumerate(func.ops) if i not in drop), repl
        )
        new_func = func.with_ops(ops)
        return new_func, PassReport(
            self.name, func.name, True, before, len(ops),
            removed={"load": len(drop)},
        )


class CommonSubexpressionMerge(_FuncPass):
    name = "cse"

    def run_func(self, func: StencilFunc) -> tuple[StencilFunc, PassReport]:
        groups = A.cse_candidates(func)
        before = len(func.ops)
        if not groups:
            return func, PassReport(self.name, func.name, False, before, before)
        repl: dict[str, str] = {}
        drop: set[int] = set()
        removed: dict[str, int] = {}
        for group in groups:
            canonical = func.ops[group.canonical]
            for dup in group.duplicates:
                dup_op = func.ops[dup]
                repl[dup_op.result] = canonical.result
                drop.add(dup)
                kind = "rand" if isinstance(dup_op, RandOp) else "arith"
                removed[kind] = removed.get(kind, 0) + 1
        ops = _substitute(
            (op for i, op in enumerate(func.ops) if i not in drop), repl
        )
        new_func = func.with_ops(ops)
        return new_func, PassReport(
            self.name, func.name, True, before, len(ops), removed=removed
        )


class DeadStoreElimination(_FuncPass):
    name = "dse"

    def run_func(self, func: StencilFunc) -> tuple[StencilFunc, PassReport]:
        before = len(func.ops)
        reaching = A.reaching_definitions(func)
        drop = {dead.index for dead in reaching.dead_stores}
        notes = tuple(
            f"store {dead.store.access} overwritten by op "
            f"{dead.overwritten_by} before any read"
            for dead in reaching.dead_stores
        )
        ops = [op for i, op in enumerate(func.ops) if i not in drop]
        removed = {"store": len(drop)} if drop else {}
        # transitively dead value computations (loads/arith/rand whose
        # results no remaining op consumes)
        while True:
            used: set[str] = set()
            for op in ops:
                if isinstance(op, ArithOp):
                    used.update(o for o in (op.lhs, op.rhs) if o.startswith("%"))
                elif isinstance(op, StoreOp):
                    if op.value.startswith("%"):
                        used.add(op.value)
            dead_values = [
                i for i, op in enumerate(ops)
                if isinstance(op, (LoadOp, ArithOp, RandOp))
                and op.result not in used
            ]
            if not dead_values:
                break
            for i in dead_values:
                op = ops[i]
                kind = (
                    "load" if isinstance(op, LoadOp)
                    else "rand" if isinstance(op, RandOp) else "arith"
                )
                removed[kind] = removed.get(kind, 0) + 1
            ops = [op for i, op in enumerate(ops) if i not in set(dead_values)]
        applied = len(ops) != before
        new_func = func.with_ops(ops) if applied else func
        return new_func, PassReport(
            self.name, func.name, applied, before, len(ops),
            notes=notes, removed=removed,
        )


class StencilFusion(Pass):
    """Fuse launch-adjacent funcs into one per-cell body."""

    name = "fuse"

    def run(self, module: Module) -> tuple[Module, list[PassReport]]:
        funcs = list(module.funcs)
        reports: list[PassReport] = []
        index = 0
        while index + 1 < len(funcs):
            a, b = funcs[index], funcs[index + 1]
            fused, notes = self._try_fuse(a, b)
            before = len(a.ops) + len(b.ops)
            if fused is None:
                reports.append(PassReport(
                    self.name, f"{a.name}+{b.name}", False, before, before,
                    notes=tuple(notes),
                ))
                index += 1
                continue
            reports.append(PassReport(
                self.name, fused.name, True, before, len(fused.ops),
                notes=tuple(notes),
            ))
            funcs[index:index + 2] = [fused]
            # stay at `index`: the fused func may fuse with its successor
        return module.with_funcs(funcs), reports

    @staticmethod
    def _try_fuse(
        a: StencilFunc, b: StencilFunc
    ) -> tuple[StencilFunc | None, list[str]]:
        notes: list[str] = []
        if a.symbols != b.symbols:
            return None, [
                f"iteration symbols differ: {a.symbols} vs {b.symbols}"
            ]
        if a.ghost != b.ghost:
            return None, [f"halo depths differ: {a.ghost} vs {b.ghost}"]
        for array in set(a.array_dtypes) & set(b.array_dtypes):
            if a.array_dtypes[array] != b.array_dtypes[array]:
                return None, [f"array {array!r} changes dtype across funcs"]
            sa, sb = a.array_shapes.get(array), b.array_shapes.get(array)
            if sa is not None and sb is not None and sa != sb:
                return None, [f"array {array!r} changes shape across funcs"]

        deps = A.cross_dependences(a, b)
        # Anti dependences: b overwrites an array a reads. Interleaving
        # per cell would let b's store at cell p be observed by a's
        # loads at later cells p' (any nonzero stencil offset reaches a
        # written cell in some sweep order) — illegal.
        if deps.anti:
            d = deps.anti[0]
            return None, [
                f"anti dependence on {d.array!r}: the later func stores "
                f"{d.producer} while the earlier loads {d.consumer}"
            ]
        for d in deps.output:
            if not d.exact:
                return None, [
                    f"inexact output dependence on {d.array!r}: "
                    f"{d.producer} vs {d.consumer}"
                ]
        # Flow dependences: b loads what a stores. Exact (same cell)
        # means the value can be forwarded in-register; any other
        # offset needs a's full sweep to finish first — illegal.
        store_values: dict[tuple, str] = {}
        for op in a.ops:
            if isinstance(op, StoreOp):
                store_values[
                    (op.array, op.access.linear_signature(),
                     op.access.stencil_offset())
                ] = op.value
        for d in deps.flow:
            if not d.exact:
                return None, [
                    f"inexact flow dependence on {d.array!r}: producer "
                    f"stores {d.producer}, consumer loads {d.consumer} "
                    f"(needs the full sweep, not a fused cell)"
                ]
        # rename b's SSA space above a's, then forward exact flow deps
        peak = 0
        for op in a.ops:
            if isinstance(op, (LoadOp, ArithOp, RandOp)):
                if op.result.startswith("%"):
                    try:
                        peak = max(peak, int(op.result[1:]))
                    except ValueError:
                        pass

        def rename(ssa: str) -> str:
            if ssa.startswith("%"):
                try:
                    return f"%{int(ssa[1:]) + peak}"
                except ValueError:
                    return f"{ssa}.f"
            return ssa

        b_ops: list = []
        repl: dict[str, str] = {}
        forwarded = 0
        for op in b.ops:
            if isinstance(op, LoadOp):
                key = (op.array, op.access.linear_signature(),
                       op.access.stencil_offset())
                new_result = rename(op.result)
                if key in store_values:
                    repl[new_result] = store_values[key]
                    forwarded += 1
                    continue
                b_ops.append(LoadOp(new_result, op.array, op.exprs))
            elif isinstance(op, ArithOp):
                b_ops.append(ArithOp(
                    rename(op.result), op.op, rename(op.lhs), rename(op.rhs)
                ))
            elif isinstance(op, RandOp):
                b_ops.append(RandOp(rename(op.result), op.keys))
            elif isinstance(op, StoreOp):
                b_ops.append(StoreOp(op.array, op.exprs, rename(op.value)))
        b_ops = _substitute(b_ops, repl)
        if forwarded:
            notes.append(
                f"forwarded {forwarded} load(s) of producer-stored cells "
                f"in-register"
            )

        fused = StencilFunc(
            name=f"{a.name}+{b.name}",
            ops=tuple([*a.ops, *b_ops]),
            symbols=a.symbols,
            ghost=a.ghost,
            array_dtypes={**a.array_dtypes, **b.array_dtypes},
            array_shapes={**a.array_shapes, **b.array_shapes},
            type_escapes=tuple([*a.type_escapes, *b.type_escapes]),
            tile=a.tile if a.tile is not None else b.tile,
            provenance=tuple([*a.provenance, *b.provenance]),
        )
        problems = fused.verify()
        if problems:  # pragma: no cover - guards future rewrite bugs
            raise IrError(
                f"fusion of {a.name!r}+{b.name!r} produced invalid IR: "
                + "; ".join(problems)
            )
        return fused, notes


class LoopTiling(_FuncPass):
    """Record workgroup tile extents for the traffic/occupancy models."""

    name = "tile"

    def __init__(self, tile: tuple[int, int, int]):
        self.tile = tile

    def run_func(self, func: StencilFunc) -> tuple[StencilFunc, PassReport]:
        before = len(func.ops)
        races = A.race_analysis(func)
        if races:
            race = races[0]
            return func, PassReport(
                self.name, func.name, False, before, before,
                notes=(
                    f"illegal: write-write race on {race.array!r} — tiling "
                    f"reorders the sweep, which a racy func can observe",
                ),
            )
        from dataclasses import replace

        new_func = replace(func, tile=tuple(int(t) for t in self.tile))
        radius = max(
            (abs(c) for acc in func.unique_loads
             for c in (acc.stencil_offset() or ())),
            default=0,
        )
        notes = (
            f"tile {'x'.join(str(t) for t in self.tile)} with stencil "
            f"radius {radius}: halo cells re-fetched per tile face",
        )
        return new_func, PassReport(
            self.name, func.name, True, before, before, notes=notes
        )


def parse_pipeline(spec) -> list[Pass]:
    """Build a pass list from a spec like ``"fuse,rle,cse,tile=8x8x8"``.

    Accepts a comma-separated string or an iterable of names.
    """
    if isinstance(spec, str):
        names = [part.strip() for part in spec.split(",") if part.strip()]
    else:
        names = [str(part) for part in spec]
    passes: list[Pass] = []
    for name in names:
        if name == "fuse":
            passes.append(StencilFusion())
        elif name == "rle":
            passes.append(RedundantLoadElimination())
        elif name == "cse":
            passes.append(CommonSubexpressionMerge())
        elif name == "dse":
            passes.append(DeadStoreElimination())
        elif name == "tile" or name.startswith("tile="):
            if "=" not in name:
                raise IrError(
                    "tile pass needs extents, e.g. tile=8x8x8"
                )
            try:
                extents = tuple(
                    int(part) for part in name.split("=", 1)[1].split("x")
                )
            except ValueError:
                extents = ()
            if len(extents) != 3 or any(t < 1 for t in extents):
                raise IrError(
                    f"bad tile spec {name!r}: need 3 positive extents "
                    f"like tile=8x8x8"
                )
            passes.append(LoopTiling(extents))
        else:
            raise IrError(
                f"unknown pass {name!r} (known: fuse, rle, cse, dse, "
                f"tile=TXxTYxTZ)"
            )
    return passes


class PassManager:
    """Run a pass pipeline over a module, collecting reports."""

    def __init__(self, passes=DEFAULT_PIPELINE):
        self.passes = (
            passes if passes and isinstance(passes[0], Pass)
            else parse_pipeline(passes)
        )

    def run(self, module: Module) -> tuple[Module, PipelineReport]:
        pipeline = PipelineReport()
        start = time.perf_counter()
        for pass_ in self.passes:
            module, reports = pass_.run(module)
            pipeline.reports.extend(reports)
        pipeline.seconds = time.perf_counter() - start
        problems = module.verify()
        if problems:  # pragma: no cover - guards future rewrite bugs
            raise IrError(
                "pass pipeline produced invalid IR: " + "; ".join(problems)
            )
        return module, pipeline

    def run_func(self, func: StencilFunc) -> tuple[StencilFunc, PipelineReport]:
        """Convenience: run over a single-func module."""
        module = Module(name=func.name, funcs=(func,))
        module, pipeline = self.run(module)
        if len(module.funcs) != 1:  # pragma: no cover - single func in
            raise IrError("single-func pipeline changed func count")
        return module.funcs[0], pipeline
