"""The Frontier machine description (paper Table 1).

Every constant below is copied from Table 1 of the paper (or the cited
TOP500 entry) and is consumed by the GPU, network, and file-system
performance models. Nothing in this module measures anything; it is the
single authoritative record of the modeled hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.units import GB, TB, GiB


@dataclass(frozen=True)
class GcdSpec:
    """One Graphics Compute Die of an AMD MI250x.

    Frontier exposes each MI250x as two GCDs; the paper runs one MPI
    process per GCD and calls a GCD a "GPU" throughout.
    """

    name: str = "MI250x GCD"
    hbm_bytes: int = 64 * GiB
    #: Peak HBM2E bandwidth per GCD (Table 1: 1,600 GB/s per GCD).
    hbm_peak_bytes_per_s: float = 1600 * GB
    #: TCC (L2) capacity per GCD; drives the stencil working-set model.
    tcc_bytes: int = 8 * (1 << 20)
    #: Cache line size used by the TCC model.
    cache_line_bytes: int = 64
    #: Max threads (workitems) per dimension in a 3D launch.
    max_workitems_per_dim: int = 1024
    #: Max workitems per workgroup.
    max_workgroup_size: int = 1024
    #: GPU clock used only to convert counter samples to rates.
    clock_hz: float = 1.7e9


@dataclass(frozen=True)
class NodeSpec:
    """One Frontier compute node (Table 1)."""

    cpu: str = "AMD EPYC 7A53"
    cpu_cores: int = 64
    ddr_bytes: int = 512 * GiB
    ddr_peak_bytes_per_s: float = 205 * GB
    gpus_per_node: int = 4
    gcds_per_node: int = 8
    gcd: GcdSpec = field(default_factory=GcdSpec)
    #: GPU-to-GPU Infinity Fabric bandwidth (Table 1: 50-100 GB/s).
    gpu_gpu_bytes_per_s: float = 50 * GB
    #: GPU-to-CPU Infinity Fabric bandwidth (Table 1: 36 GB/s).
    gpu_cpu_bytes_per_s: float = 36 * GB
    #: Injection bandwidth of the Slingshot NIC per node (4x 25 GB/s).
    nic_bytes_per_s: float = 100 * GB
    #: Slingshot NICs per node (the 100 GB/s above is their aggregate);
    #: 8 ranks share these 4 ports, the contention the virtual-SPMD
    #: ``nic_contention`` mode models as a capacity-4 resource.
    nics_per_node: int = 4


@dataclass(frozen=True)
class FileSystemSpec:
    """Lustre Orion (Table 1)."""

    name: str = "Lustre Orion"
    capacity_bytes: int = 679 * 10**15
    metadata_nodes: int = 40
    oss_nodes: int = 450
    peak_write_bytes_per_s: float = 5.5 * TB
    peak_read_bytes_per_s: float = 4.5 * TB


@dataclass(frozen=True)
class SoftwareStack:
    """Software versions used in the study (Table 1)."""

    julia: str = "1.9.2"
    amdgpu_jl: str = "0.4.15"
    rocm: str = "5.4.0"
    mpi_jl: str = "0.20.12"
    cray_mpich: str = "8.1.23"
    adios2_jl: str = "1.2.1"
    adios2: str = "2.8.3"


@dataclass(frozen=True)
class MachineSpec:
    """A whole machine: nodes + file system + software stack."""

    name: str = "Frontier"
    nodes: int = 9408
    node: NodeSpec = field(default_factory=NodeSpec)
    filesystem: FileSystemSpec = field(default_factory=FileSystemSpec)
    software: SoftwareStack = field(default_factory=SoftwareStack)
    hpl_eflops: float = 1.194

    @property
    def total_gcds(self) -> int:
        return self.nodes * self.node.gcds_per_node

    def nodes_for_ranks(self, nranks: int, *, ranks_per_node: int | None = None) -> int:
        """Number of nodes a job of ``nranks`` (1 rank per GCD) occupies."""
        per_node = ranks_per_node or self.node.gcds_per_node
        if nranks <= 0:
            raise ValueError("nranks must be positive")
        return -(-nranks // per_node)  # ceil division

    def describe(self) -> str:
        """Render the Table 1 summary."""
        from repro.util.tables import Table
        from repro.util.units import format_bytes, format_bandwidth

        t = Table(["Characteristic", "Value"], title=f"{self.name} characteristics")
        n = self.node
        fs = self.filesystem
        sw = self.software
        rows = [
            ("Nodes", f"{self.nodes:,}"),
            ("CPU", n.cpu),
            ("Cores", n.cpu_cores),
            ("CPU Memory", format_bytes(n.ddr_bytes, binary=True)),
            ("CPU Bandwidth", format_bandwidth(n.ddr_peak_bytes_per_s)),
            ("GPU", f"{n.gpus_per_node}x AMD MI250X ({n.gcds_per_node}x GCDs)"),
            ("GPU Memory", format_bytes(n.gcd.hbm_bytes, binary=True) + " per GCD"),
            ("GPU Bandwidth", format_bandwidth(n.gcd.hbm_peak_bytes_per_s) + " per GCD"),
            ("GPU-to-GPU", format_bandwidth(n.gpu_gpu_bytes_per_s) + " Infinity Fabric"),
            ("GPU-to-CPU", format_bandwidth(n.gpu_cpu_bytes_per_s) + " Infinity Fabric"),
            ("File system", fs.name),
            ("FS capacity", format_bytes(fs.capacity_bytes)),
            ("FS nodes", f"{fs.metadata_nodes} metadata, {fs.oss_nodes} OSS"),
            ("FS write speed", format_bandwidth(fs.peak_write_bytes_per_s)),
            ("FS read speed", format_bandwidth(fs.peak_read_bytes_per_s)),
            ("Julia", sw.julia),
            ("AMDGPU.jl", sw.amdgpu_jl),
            ("ROCm", sw.rocm),
            ("MPI.jl", sw.mpi_jl),
            ("Cray-MPICH", sw.cray_mpich),
            ("ADIOS2.jl", sw.adios2_jl),
            ("ADIOS2", sw.adios2),
        ]
        for row in rows:
            t.add_row(row)
        return t.render()


#: The machine used throughout the paper's evaluation.
FRONTIER = MachineSpec()


def extrapolated_machine(base: MachineSpec = FRONTIER, *, nodes: int) -> MachineSpec:
    """A what-if machine: ``base`` scaled out to ``nodes`` nodes.

    Per-node and per-link characteristics are unchanged — only the node
    count (and the name, so reports show the extrapolation) grows. Used
    by million-rank virtual runs that model a rank space larger than
    the real machine (Frontier tops out at 9,408 x 8 = 75,264 GCDs).
    """
    if nodes <= base.nodes:
        return base
    from dataclasses import replace

    return replace(base, name=f"{base.name}x{nodes}", nodes=nodes)
