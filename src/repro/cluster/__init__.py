"""Machine model for the Frontier exascale system (paper Table 1).

:mod:`repro.cluster.frontier` encodes the hardware and software
characteristics the paper reports; :mod:`repro.cluster.placement` maps
MPI ranks onto nodes and GCDs the way the paper's runs did (one GCD per
MPI process, eight GCDs per node).
"""

from repro.cluster.frontier import (
    FRONTIER,
    GcdSpec,
    NodeSpec,
    FileSystemSpec,
    MachineSpec,
    SoftwareStack,
)
from repro.cluster.placement import Placement, RankLocation

__all__ = [
    "FRONTIER",
    "GcdSpec",
    "NodeSpec",
    "FileSystemSpec",
    "MachineSpec",
    "SoftwareStack",
    "Placement",
    "RankLocation",
]
