"""Rank-to-hardware placement.

The paper runs one MPI process per GCD, eight per node, filling nodes
in rank order (the ``srun`` default used by the artifact's job
scripts). The network model asks the placement whether two ranks share
a node (Infinity-Fabric/NUMA path) or not (Slingshot path), and the
file-system model asks how many nodes (= BP5 subfiles) a job spans.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.frontier import MachineSpec, FRONTIER


@dataclass(frozen=True)
class RankLocation:
    """Where one MPI rank lives."""

    rank: int
    node: int
    gcd: int  # GCD index within the node

    @property
    def gpu(self) -> int:
        """The physical MI250x index within the node (2 GCDs per GPU)."""
        return self.gcd // 2


class Placement:
    """Placement of ``nranks`` onto a machine.

    ``strategy="block"`` (default, the ``srun`` default the paper's jobs
    use) fills each node before moving on; ``strategy="roundrobin"``
    (``--distribution=cyclic``) deals ranks across nodes — it destroys
    halo locality, which the placement-ablation bench quantifies.

    >>> p = Placement(16)
    >>> p.location(0).node, p.location(8).node
    (0, 1)
    >>> p.same_node(0, 7), p.same_node(0, 8)
    (True, False)
    """

    STRATEGIES = ("block", "roundrobin")

    def __init__(
        self,
        nranks: int,
        machine: MachineSpec = FRONTIER,
        *,
        ranks_per_node: int | None = None,
        strategy: str = "block",
    ) -> None:
        if nranks <= 0:
            raise ValueError("nranks must be positive")
        if strategy not in self.STRATEGIES:
            raise ValueError(
                f"strategy must be one of {self.STRATEGIES}, got {strategy!r}"
            )
        self.machine = machine
        self.nranks = nranks
        self.strategy = strategy
        self.ranks_per_node = ranks_per_node or machine.node.gcds_per_node
        if self.ranks_per_node <= 0:
            raise ValueError("ranks_per_node must be positive")
        if self.ranks_per_node > machine.node.gcds_per_node:
            raise ValueError(
                f"ranks_per_node={self.ranks_per_node} exceeds "
                f"{machine.node.gcds_per_node} GCDs per node"
            )
        self.nnodes = -(-nranks // self.ranks_per_node)
        if self.nnodes > machine.nodes:
            raise ValueError(
                f"job needs {self.nnodes} nodes but {machine.name} has "
                f"{machine.nodes}"
            )

    def location(self, rank: int) -> RankLocation:
        if not 0 <= rank < self.nranks:
            raise ValueError(f"rank {rank} out of range [0, {self.nranks})")
        if self.strategy == "block":
            node = rank // self.ranks_per_node
            gcd = rank % self.ranks_per_node
        else:  # roundrobin: deal ranks across the job's nodes
            node = rank % self.nnodes
            gcd = rank // self.nnodes
        return RankLocation(rank=rank, node=node, gcd=gcd)

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        return self.location(rank_a).node == self.location(rank_b).node

    def node_of(self, rank: int) -> int:
        return self.location(rank).node

    def ranks_on_node(self, node: int) -> list[int]:
        if not 0 <= node < self.nnodes:
            raise ValueError(f"node {node} out of range [0, {self.nnodes})")
        if self.strategy == "block":
            lo = node * self.ranks_per_node
            hi = min(lo + self.ranks_per_node, self.nranks)
            return list(range(lo, hi))
        return [r for r in range(self.nranks) if r % self.nnodes == node]

    @property
    def system_fraction(self) -> float:
        """Fraction of the machine this job occupies (paper: 5.44% at 512)."""
        return self.nnodes / self.machine.nodes
