"""The deterministic discrete-event virtual-time engine.

The three calibrated performance models (``gpu.perf`` roofline,
``mpi.netmodel`` LogGP, ``adios.fsmodel`` Lustre) each predict seconds.
Before this module existed the drivers summed those scalars serially,
which cannot express the compute/comm/I/O *overlap* that dominates real
Frontier runs. :class:`Engine` gives the models one shared virtual
clock to post timed events onto instead:

- the **event queue** is keyed on :class:`~repro.util.timers.SimClock`
  time with a monotonically increasing sequence number as tie-break,
  so two events at the same virtual instant always fire in the order
  they were scheduled — determinism is structural, not seeded;
- **resources** (:class:`Resource`) model contended hardware — a GCD,
  a NIC link, a Lustre OSS — with integer capacity and FIFO queueing;
- **processes** (:class:`Process`) are cooperative generators: they
  ``yield`` :class:`Delay`/:class:`Acquire`/:class:`Release`/
  :class:`Wait` commands and compose with plain ``yield from``
  (see :func:`use`), so a virtual rank is ~free — thousands of modeled
  ranks run in one thread;
- every labelled :class:`Delay` **mirrors into** :mod:`repro.observe`
  as a sim-clock tracer span, so a modeled 4,096-rank run exports a
  Perfetto timeline through the existing exporters.

Nothing here measures anything; all durations come from the calibrated
models. See ``docs/SCHEDULER.md`` for the event model and determinism
guarantees.
"""

from __future__ import annotations

import gc
import heapq
import math
from collections import deque
from dataclasses import dataclass
from types import GeneratorType
from typing import Callable, Generator, Iterable

from repro.observe import trace as observe
from repro.util.errors import SchedError
from repro.util.timers import SimClock

# ---------------------------------------------------------------------------
# commands a process may yield
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Delay:
    """Hold virtual time for ``seconds``.

    A labelled delay is mirrored to the tracer as a sim-clock span on
    ``lane`` (default: the yielding process's lane); an unlabelled
    delay advances time silently.
    """

    seconds: float
    label: str | None = None
    cat: str = "core"
    lane: tuple[str, str] | None = None
    args: dict | None = None


@dataclass(frozen=True)
class Acquire:
    """Block until ``tokens`` of ``resource`` are granted (FIFO)."""

    resource: "Resource"
    tokens: int = 1


@dataclass(frozen=True)
class Release:
    """Return ``tokens`` to ``resource``, waking queued acquirers."""

    resource: "Resource"
    tokens: int = 1


@dataclass(frozen=True)
class Wait:
    """Block until ``signal`` fires; resumes with the fired value."""

    signal: "Signal"


@dataclass(frozen=True)
class Join:
    """Block until ``process`` finishes; resumes with its result."""

    process: "Process"


_COMMANDS = (Delay, Acquire, Release, Wait, Join)

#: queue-entry sentinel: "call fn with no argument" (distinct from None,
#: which is a legitimate resume value)
_NO_ARG = object()


# ---------------------------------------------------------------------------
# synchronization primitives
# ---------------------------------------------------------------------------


class Signal:
    """A one-shot broadcast event in virtual time."""

    __slots__ = ("engine", "name", "fired", "value", "_waiters")

    def __init__(self, engine: "Engine", name: str = "signal"):
        self.engine = engine
        self.name = name
        self.fired = False
        self.value = None
        self._waiters: deque[Process] = deque()

    def fire(self, value=None) -> None:
        if self.fired:
            raise SchedError(f"signal {self.name!r} fired twice")
        self.fired = True
        self.value = value
        while self._waiters:
            process = self._waiters.popleft()
            self.engine._resume(process, value)

    def _wait(self, process: "Process") -> None:
        if self.fired:
            self.engine._resume_fast(process, self.value)
        else:
            self._waiters.append(process)


class Barrier:
    """Max-style synchronization: all parties leave at the last arrival.

    Reusable across generations (one halo exchange or collective per
    step reuses a single barrier). ``yield from barrier.wait()``.
    """

    def __init__(self, engine: "Engine", parties: int, name: str = "barrier"):
        if parties < 1:
            raise SchedError(f"barrier needs >= 1 party, got {parties}")
        self.engine = engine
        self.parties = parties
        self.name = name
        self.generation = 0
        self._arrived = 0
        self._signal: Signal | None = None

    def wait(self) -> Generator:
        self._arrived += 1
        if self._arrived == self.parties:
            # last arrival: everyone leaves *now* (the max arrival time)
            signal = self._signal
            self._arrived = 0
            self._signal = None
            self.generation += 1
            if signal is not None:
                signal.fire(self.engine.now)
            return
        if self._signal is None:
            self._signal = Signal(
                self.engine, f"{self.name}#{self.generation}"
            )
        yield Wait(self._signal)


# ---------------------------------------------------------------------------
# resources
# ---------------------------------------------------------------------------


@dataclass
class ResourceStats:
    """Contention accounting for one resource."""

    acquires: int = 0
    waits: int = 0
    wait_seconds: float = 0.0
    busy_seconds: float = 0.0


class Resource:
    """A capacity-limited facility (GCD, link, OSS) with FIFO queueing."""

    __slots__ = (
        "engine", "name", "capacity", "available", "lane", "stats", "_waiters"
    )

    def __init__(
        self,
        engine: "Engine",
        name: str,
        capacity: int = 1,
        *,
        lane: tuple[str, str] | None = None,
    ):
        if capacity < 1:
            raise SchedError(f"resource {name!r} needs capacity >= 1, got {capacity}")
        self.engine = engine
        self.name = name
        self.capacity = capacity
        self.available = capacity
        #: (process, thread) the mirrored spans of this resource land on
        self.lane = lane or (name, "busy")
        self.stats = ResourceStats()
        self._waiters: deque[tuple[Process, int, float]] = deque()

    @property
    def in_use(self) -> int:
        return self.capacity - self.available

    def _acquire(self, process: "Process", tokens: int) -> None:
        if tokens < 1 or tokens > self.capacity:
            raise SchedError(
                f"cannot acquire {tokens} of {self.name!r} "
                f"(capacity {self.capacity})"
            )
        if self.available >= tokens and not self._waiters:
            self.available -= tokens
            self.stats.acquires += 1
            self.engine._resume_fast(process)
        else:
            self.stats.waits += 1
            self._waiters.append((process, tokens, self.engine.now))

    def _release(self, tokens: int) -> None:
        if self.available + tokens > self.capacity:
            raise SchedError(
                f"over-release of {self.name!r}: {tokens} returned with "
                f"{self.available}/{self.capacity} already available"
            )
        self.available += tokens
        while self._waiters and self.available >= self._waiters[0][1]:
            process, want, queued_at = self._waiters.popleft()
            self.available -= want
            self.stats.acquires += 1
            self.stats.wait_seconds += self.engine.now - queued_at
            self.engine._resume(process)


# ---------------------------------------------------------------------------
# processes
# ---------------------------------------------------------------------------


class Process:
    """One cooperative virtual process driving a generator.

    The per-event bookkeeping is deliberately allocation-free: the
    blocked-on marker stores the yielded command itself (formatted
    lazily by :meth:`describe`), and the one in-flight delay reuses a
    slot on the process frame instead of a fresh closure — a process
    can only ever have a single outstanding delay.
    """

    __slots__ = (
        "engine", "name", "lane", "result", "started_at", "finished_at",
        "_done", "_gen", "_blocked_on", "_delay_start",
    )

    def __init__(
        self,
        engine: "Engine",
        name: str,
        gen: Generator,
        *,
        lane: tuple[str, str] | None = None,
    ):
        self.engine = engine
        self.name = name
        self.lane = lane or (name, "core")
        self.result = None
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self._done: Signal | None = None
        self._gen = gen
        self._blocked_on = "start"
        self._delay_start = 0.0

    @property
    def finished(self) -> bool:
        return self.finished_at is not None

    @property
    def done(self) -> Signal:
        """The completion signal, created on first use.

        Most processes are never joined (a 64k-rank job spawns one per
        overlap-mode halo), so the signal — and its f-string name — are
        built lazily.
        """
        signal = self._done
        if signal is None:
            signal = Signal(self.engine, f"{self.name}.done")
            if self.finished:
                signal.fired = True
                signal.value = self.result
            self._done = signal
        return signal

    def _blocked_desc(self) -> str | None:
        blocked = self._blocked_on
        if blocked is None or isinstance(blocked, str):
            return blocked
        cls = blocked.__class__
        if cls is Delay:
            return f"delay({blocked.label or blocked.seconds})"
        if cls is Acquire:
            return f"acquire({blocked.resource.name})"
        if cls is Wait:
            return f"wait({blocked.signal.name})"
        if cls is Join:
            return f"join({blocked.process.name})"
        return repr(blocked)

    def describe(self) -> str:
        state = (
            "finished"
            if self.finished
            else f"blocked on {self._blocked_desc() or 'nothing'}"
        )
        return f"{self.name}: {state}"

    # -- engine internals ---------------------------------------------------
    def _step(self, value=None) -> None:
        self._blocked_on = None
        if self.started_at is None:
            self.started_at = self.engine.now
        try:
            command = self._gen.send(value)
        except StopIteration as stop:
            self.result = stop.value
            self.finished_at = self.engine.now
            # release the generator frame: a 64k-rank overlap run spawns
            # hundreds of thousands of short-lived processes, and keeping
            # their frames alive is what made cyclic GC dominate
            self._gen = None
            if self._done is not None:
                self._done.fire(self.result)
            return
        self._dispatch(command)

    def _dispatch(self, command) -> None:
        # exact-class dispatch: the five command dataclasses are final
        # in practice, and `is` beats isinstance chains on the hot path
        engine = self.engine
        cls = command.__class__
        if cls is Delay:
            seconds = command.seconds
            # `0 <= s < inf` is False for NaN too
            if not 0.0 <= seconds < math.inf:
                raise SchedError(
                    f"process {self.name!r} yielded invalid delay "
                    f"{seconds!r}"
                )
            self._blocked_on = command
            self._delay_start = engine.clock.now
            engine.schedule(seconds, self._after_delay, command)
        elif cls is Acquire:
            self._blocked_on = command
            command.resource._acquire(self, command.tokens)
        elif cls is Release:
            command.resource._release(command.tokens)
            engine._resume_fast(self)
        elif cls is Wait:
            self._blocked_on = command
            command.signal._wait(self)
        elif cls is Join:
            self._blocked_on = command
            command.process.done._wait(self)
        elif isinstance(command, _COMMANDS):  # a subclassed command
            self._dispatch_slow(command)
        else:
            raise SchedError(
                f"process {self.name!r} yielded {command!r}; expected one "
                f"of {[c.__name__ for c in _COMMANDS]}"
            )

    def _dispatch_slow(self, command) -> None:
        """isinstance-based dispatch for subclassed commands (rare)."""
        engine = self.engine
        if isinstance(command, Delay):
            if not math.isfinite(command.seconds) or command.seconds < 0:
                raise SchedError(
                    f"process {self.name!r} yielded invalid delay "
                    f"{command.seconds!r}"
                )
            self._blocked_on = command
            self._delay_start = engine.clock.now
            engine.schedule(command.seconds, self._after_delay, command)
        elif isinstance(command, Acquire):
            self._blocked_on = command
            command.resource._acquire(self, command.tokens)
        elif isinstance(command, Release):
            command.resource._release(command.tokens)
            engine._resume_fast(self)
        elif isinstance(command, Wait):
            self._blocked_on = command
            command.signal._wait(self)
        else:  # Join
            self._blocked_on = command
            command.process.done._wait(self)

    def _after_delay(self, command: Delay) -> None:
        if command.label is not None:
            lane = command.lane or self.lane
            self.engine._mirror_span(
                command.label,
                cat=command.cat,
                lane=lane,
                start=self._delay_start,
                seconds=command.seconds,
                args=command.args,
            )
        self._step(self.engine.clock.now)


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------


# queue entries are plain (time, seq, fn, arg) tuples: seq is unique, so
# neither the callable nor the argument is ever compared, and tuple
# ordering keeps the hot heappush/heappop path free of dataclass __lt__
# dispatch (~35% of event cost at half a million events per modeled
# 4,096-rank point). Carrying the argument in the entry is what lets
# `_resume` enqueue a bound method directly instead of allocating a
# closure per resumption.


class Engine:
    """Deterministic discrete-event engine over one :class:`SimClock`.

    ``tracer`` mirrors labelled events as sim-clock spans; when None the
    engine looks up :func:`repro.observe.trace.active` lazily, so runs
    inside an ``observe.session()`` are traced with zero configuration
    and untraced runs pay one attribute read per event.
    """

    #: event-pop strategies: ``"batch"`` drains every event sharing the
    #: current timestamp in one amortized pass, ``"scalar"`` is the
    #: one-heappop-per-event reference loop (bit-identical dispatch
    #: order — asserted by the engine-tier property tests)
    POPS = ("batch", "scalar")

    def __init__(
        self,
        *,
        name: str = "sched",
        clock: SimClock | None = None,
        tracer: observe.Tracer | None = None,
        mirror: bool = True,
        events_gauge: bool = True,
        profiler=None,
        pop: str = "batch",
    ):
        if pop not in self.POPS:
            raise SchedError(f"unknown pop strategy {pop!r}; use {self.POPS}")
        self.name = name
        self.pop = pop
        self.clock = clock if clock is not None else SimClock()
        self.tracer = tracer
        self.mirror = mirror
        #: a :class:`repro.sched.profiler.SimProfiler` sampling the
        #: process table at virtual-time intervals (None = no sampling;
        #: the run loop then pays a single float compare per clock
        #: advance against +inf)
        self.profiler = profiler
        #: shard engines of a process-parallel run disable the
        #: events-processed gauge: their partial counts would collide
        #: on the parent engine's label after the trace merge
        self.events_gauge = events_gauge
        self.events_processed = 0
        self.spans_mirrored = 0
        #: tier-usage accounting, mirrored to the observe metrics
        #: registry after every :meth:`run` (see docs/SCHEDULER.md)
        self.heap_pushes = 0
        self.batch_pops = 0
        self._queue: list[tuple[float, int, Callable, object]] = []
        self._seq = 0
        self._inline_depth = 0
        self._resources: dict[str, Resource] = {}
        self._processes: list[Process] = []
        self._compact_at = 4096

    # -- time ---------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.clock.now

    # -- construction -------------------------------------------------------
    def resource(
        self, name: str, capacity: int = 1, *, lane: tuple[str, str] | None = None
    ) -> Resource:
        """Get-or-create a named resource (capacity fixed at creation)."""
        existing = self._resources.get(name)
        if existing is not None:
            if existing.capacity != capacity:
                raise SchedError(
                    f"resource {name!r} exists with capacity "
                    f"{existing.capacity}, requested {capacity}"
                )
            return existing
        created = Resource(self, name, capacity, lane=lane)
        self._resources[name] = created
        return created

    def resources(self) -> dict[str, Resource]:
        return dict(self._resources)

    def signal(self, name: str = "signal") -> Signal:
        return Signal(self, name)

    def barrier(self, parties: int, name: str = "barrier") -> Barrier:
        return Barrier(self, parties, name)

    def spawn(
        self,
        name: str,
        gen: Generator,
        *,
        lane: tuple[str, str] | None = None,
    ) -> Process:
        """Register a generator as a process; it starts at the current time."""
        if type(gen) is not GeneratorType and not isinstance(gen, Generator):
            raise SchedError(
                f"spawn({name!r}) needs a generator (did you call the "
                "process function?)"
            )
        process = Process(self, name, gen, lane=lane)
        procs = self._processes
        procs.append(process)
        if len(procs) >= self._compact_at:
            self.compact_finished()
        self.schedule(0.0, process._step)
        return process

    def compact_finished(self) -> int:
        """Drop finished processes from the registry; returns live count.

        Keeps the registry (and the cyclic GC's live set) proportional
        to *running* processes. Called automatically when spawning past
        a doubling threshold, and by :class:`~repro.sched.profiler.
        SimProfiler` when finished frames start dominating its samples.
        """
        procs = self._processes
        procs[:] = [p for p in procs if not p.finished]
        self._compact_at = max(4096, 2 * len(procs) + 1024)
        return len(procs)

    # -- scheduling ---------------------------------------------------------
    def schedule(self, delay: float, fn: Callable, arg=_NO_ARG) -> int:
        """Run ``fn`` at ``now + delay``; returns the tie-break sequence.

        When ``arg`` is given, ``fn(arg)`` is called instead of ``fn()``
        — carrying the argument in the queue entry lets hot callers
        enqueue bound methods without allocating a closure per event.
        """
        if not 0.0 <= delay < math.inf:  # False for NaN too
            raise SchedError(f"cannot schedule {delay!r} into the virtual past")
        self._seq += 1
        self.heap_pushes += 1
        heapq.heappush(
            self._queue, (self.clock.now + delay, self._seq, fn, arg)
        )
        return self._seq

    def _resume(self, process: Process, value=None) -> None:
        """Queue a process continuation at the current virtual time."""
        self._seq += 1
        self.heap_pushes += 1
        heapq.heappush(
            self._queue, (self.clock.now, self._seq, process._step, value)
        )

    def _resume_fast(self, process: Process, value=None) -> None:
        """Continue a process *now*, without a queue round-trip.

        Used where the continuation is at the current instant and no
        other process can legally observe the intermediate state: an
        immediately granted acquire, a release, a wait on an
        already-fired signal. Virtual timestamps are unchanged — only
        the heap push/pop pair is saved (roughly a third of all events
        in an overlap-mode virtual run). The depth guard bounds
        pathological acquire/release-only loops; past it, continuations
        fall back to the queue.
        """
        if self._inline_depth < 64:
            self._inline_depth += 1
            try:
                process._step(value)
            finally:
                self._inline_depth -= 1
        else:
            self._resume(process, value)

    # -- execution ----------------------------------------------------------
    def run(self, *, until: float | None = None) -> float:
        """Drain the event queue (or stop at ``until``); returns the time.

        ``pop="batch"`` (the default) drains every event sharing the
        current timestamp in one amortized pass — the per-event ``until``
        and clock-advance checks are hoisted out of the same-instant
        run, which is where a virtual-SPMD event storm spends its life
        (every rank resuming at one barrier instant is a single batch).
        ``pop="scalar"`` is the retained one-heappop-per-event reference
        loop; both dispatch events in identical (time, seq) order.
        """
        if self.pop == "scalar":
            return self._run_scalar(until)
        return self._run_batch(until)

    def _run_scalar(self, until: float | None) -> float:
        """Reference drain loop: one heappop + dispatch per event."""
        queue = self._queue
        clock = self.clock
        heappop = heapq.heappop
        no_arg = _NO_ARG
        events = 0
        profiler = self.profiler
        next_sample = math.inf if profiler is None else profiler.next_sample
        # Pause the cyclic collector for the drain: finished processes
        # release their frames (refcounting frees them promptly), so the
        # collector finds no garbage here — it just rescans the tens of
        # thousands of live rank objects on every threshold trigger,
        # which measured ~40% of a 16k-rank run's wall time.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while queue:
                if until is not None and queue[0][0] > until:
                    if until >= next_sample:
                        next_sample = profiler.advance(self, until)
                    clock.advance_to(until, strict=True)
                    return clock.now
                when, _, fn, arg = heappop(queue)
                # same-timestamp events dispatch in a batch without
                # touching the clock (the common case: resumptions and
                # zero-latency deliveries at the current instant)
                if when > clock.now:
                    # sample the idle gap before crossing it: the
                    # profiler attributes it to the states processes
                    # are blocked in right now
                    if when >= next_sample:
                        next_sample = profiler.advance(self, when)
                    clock.advance_to(when, strict=True)
                events += 1
                if arg is no_arg:
                    fn()
                else:
                    fn(arg)
        finally:
            if gc_was_enabled:
                gc.enable()
            self.events_processed += events
        self._report_run()
        return self.clock.now

    def _run_batch(self, until: float | None) -> float:
        """Batch drain loop: one amortized pass per distinct timestamp.

        Equal-time heap entries are popped into a batch and dispatched
        back-to-back. Dispatch can only push events at ``>= now`` with
        larger sequence numbers, so anything it adds at the *current*
        instant lands in the next batch — total (time, seq) dispatch
        order is exactly the scalar loop's.
        """
        queue = self._queue
        clock = self.clock
        heappop = heapq.heappop
        no_arg = _NO_ARG
        events = 0
        batches = 0
        batch: list = []
        profiler = self.profiler
        next_sample = math.inf if profiler is None else profiler.next_sample
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while queue:
                when = queue[0][0]
                if until is not None and when > until:
                    if until >= next_sample:
                        next_sample = profiler.advance(self, until)
                    clock.advance_to(until, strict=True)
                    return clock.now
                if when > clock.now:
                    if when >= next_sample:
                        next_sample = profiler.advance(self, when)
                    clock.advance_to(when, strict=True)
                # drain the run of equal-time entries in one pass; the
                # per-event until/clock checks above are paid once per
                # *timestamp*, not once per event
                batch.clear()
                append = batch.append
                while queue and queue[0][0] == when:
                    append(heappop(queue))
                batches += 1
                events += len(batch)
                for _, _, fn, arg in batch:
                    if arg is no_arg:
                        fn()
                    else:
                        fn(arg)
        finally:
            if gc_was_enabled:
                gc.enable()
            self.events_processed += events
            self.batch_pops += batches
        self._report_run()
        return self.clock.now

    def _report_run(self) -> None:
        """Mirror engine accounting into the observe metrics registry."""
        tracer = self._tracer()
        if tracer is None or not self.events_gauge:
            return
        metrics = tracer.metrics
        metrics.gauge(
            "sched.events_processed", engine=self.name
        ).set(self.events_processed)
        pushes = metrics.counter("sched.heap_pushes", engine=self.name)
        if self.heap_pushes > pushes.value:
            pushes.inc(self.heap_pushes - pushes.value)
        pops = metrics.counter("sched.batch_pops", engine=self.name)
        if self.batch_pops > pops.value:
            pops.inc(self.batch_pops - pops.value)

    def unfinished(self) -> list[Process]:
        """Processes that did not run to completion (stuck or not started)."""
        return [p for p in self._processes if not p.finished]

    def check_quiescent(self) -> None:
        """Raise if any process is stuck — the virtual-deadlock guard."""
        stuck = self.unfinished()
        if stuck:
            detail = "; ".join(p.describe() for p in stuck[:8])
            more = f" (+{len(stuck) - 8} more)" if len(stuck) > 8 else ""
            raise SchedError(
                f"engine {self.name!r} quiesced with {len(stuck)} stuck "
                f"process(es): {detail}{more}"
            )

    # -- observe mirroring --------------------------------------------------
    def _tracer(self) -> observe.Tracer | None:
        if not self.mirror:
            return None
        return self.tracer if self.tracer is not None else observe.active()

    def _mirror_span(
        self,
        name: str,
        *,
        cat: str,
        lane: tuple[str, str],
        start: float,
        seconds: float,
        args: dict | None = None,
    ) -> None:
        tracer = self._tracer()
        if tracer is None:
            return
        tracer.add_span(
            name,
            cat=cat,
            clock=observe.SIM,
            process=lane[0],
            thread=lane[1],
            start=start,
            seconds=seconds,
            args=args,
        )
        self.spans_mirrored += 1


# ---------------------------------------------------------------------------
# composable process idioms
# ---------------------------------------------------------------------------


def delay(
    seconds: float,
    label: str | None = None,
    *,
    cat: str = "core",
    lane: tuple[str, str] | None = None,
    args: dict | None = None,
) -> Generator:
    """``yield from delay(...)`` — hold virtual time (optionally traced)."""
    yield Delay(seconds, label=label, cat=cat, lane=lane, args=args)


def use(
    resource: Resource,
    seconds: float,
    *,
    label: str | None = None,
    cat: str = "core",
    tokens: int = 1,
    args: dict | None = None,
) -> Generator:
    """Acquire → hold → release: the canonical timed-resource pattern.

    The busy span is attributed to the *resource's* lane, so a GCD or
    OSS row in the exported timeline shows exactly when the facility
    was occupied and by what.
    """
    yield Acquire(resource, tokens)
    resource.stats.busy_seconds += seconds
    yield Delay(
        seconds,
        label=label if label is not None else resource.name,
        cat=cat,
        lane=resource.lane,
        args=args,
    )
    yield Release(resource, tokens)


class UsePlan:
    """Precomputed :func:`use` — one Acquire/Delay/Release triple, reused.

    Virtual-SPMD programs call :func:`use` with *identical* arguments
    hundreds of thousands of times (every kernel launch and halo
    exchange of every rank). The commands are frozen dataclasses, so
    the three objects can be built once and yielded forever; at 64k
    ranks this removes the bulk of the engine's allocation (and hence
    cyclic-GC) pressure.
    """

    __slots__ = ("resource", "seconds", "_acquire", "_delay", "_release")

    def __init__(
        self,
        resource: Resource,
        seconds: float,
        *,
        label: str | None = None,
        cat: str = "core",
        tokens: int = 1,
        args: dict | None = None,
    ):
        self.resource = resource
        self.seconds = seconds
        self._acquire = Acquire(resource, tokens)
        self._delay = Delay(
            seconds,
            label=label if label is not None else resource.name,
            cat=cat,
            lane=resource.lane,
            args=args,
        )
        self._release = Release(resource, tokens)

    def use(self) -> Generator:
        """Semantically identical to :func:`use` with the plan's args."""
        yield self._acquire
        self.resource.stats.busy_seconds += self.seconds
        yield self._delay
        yield self._release


def series(generators: Iterable[Generator]) -> Generator:
    """Run sub-generators one after another (``yield from`` each)."""
    for gen in generators:
        yield from gen
