"""repro.sched — the discrete-event virtual-time engine.

Unifies the three calibrated performance models (GPU roofline, LogGP
network, Lustre file system) behind one deterministic event queue so
compute, halo exchange, and parallel I/O can genuinely *overlap* in
virtual time — and so thousands of modeled ranks run as cooperative
generators instead of threads. See ``docs/SCHEDULER.md``.
"""

from repro.sched.engine import (
    Acquire,
    Barrier,
    Delay,
    Engine,
    Join,
    Process,
    Release,
    Resource,
    Signal,
    UsePlan,
    Wait,
    delay,
    series,
    use,
)
from repro.sched.profiler import SimProfiler, collapse_label
from repro.sched.vector import (
    EpochEventQueue,
    EpochResult,
    EpochSpec,
    EpochWrites,
    emit_epoch_spans,
    simulate_epoch,
)
from repro.sched.vspmd import (
    VirtualComm,
    VirtualJob,
    VirtualOp,
    VspmdResult,
    record_ops,
    record_plan,
    replay_allreduce,
    run_virtual_spmd,
)

__all__ = [
    "Acquire",
    "Barrier",
    "Delay",
    "Engine",
    "EpochEventQueue",
    "EpochResult",
    "EpochSpec",
    "EpochWrites",
    "Join",
    "Process",
    "Release",
    "Resource",
    "Signal",
    "SimProfiler",
    "UsePlan",
    "Wait",
    "collapse_label",
    "delay",
    "emit_epoch_spans",
    "series",
    "simulate_epoch",
    "use",
    "VirtualComm",
    "VirtualJob",
    "VirtualOp",
    "VspmdResult",
    "record_ops",
    "record_plan",
    "replay_allreduce",
    "run_virtual_spmd",
]
