"""Virtual SPMD: thousands of modeled ranks without threads.

The thread-backed :func:`repro.mpi.executor.run_spmd` runs the *real*
solver but tops out at a few dozen ranks per process. This module runs
**modeled** ranks instead: each virtual rank is a cooperative generator
on the :class:`~repro.sched.engine.Engine`, so a 4,096-rank job is just
4,096 generators sharing one virtual clock — no threads, no GIL, no
per-rank fields.

A rank program is a generator function ``fn(comm)`` over a
:class:`VirtualComm`, composing with ``yield from``::

    def program(comm):
        for step in range(20):
            yield from comm.compute(0.111, label="kernel")
            yield from comm.barrier()
        total = yield from comm.allreduce(comm.rank, op="sum")
        return total

Every communication call is appended to the job's per-rank **op log**,
and :func:`record_plan` replays a program *without* an engine to build
the static :class:`~repro.lint.mpiplan.CommPlan` — so ``repro.lint``
checks (matching, deadlock, collective ordering) run against exactly
the program the virtual job would execute.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Callable, Generator

from repro.sched.engine import Barrier, Engine, Signal, Wait, use
from repro.util.errors import SchedError

#: reduction operators supported by :meth:`VirtualComm.allreduce`
REDUCE_OPS: dict[str, Callable] = {
    "sum": sum,
    "min": min,
    "max": max,
    "prod": math.prod,
}


def replay_allreduce(values, op: str = "sum"):
    """Reduce rank-ordered contributions off the engine.

    The sharded and vector execution tiers never run the final
    allreduce as engine events; the parent replays it with the exact
    fold :meth:`VirtualComm.allreduce` performs — the same operator
    from :data:`REDUCE_OPS` applied to the contributions in rank order
    — so the replayed result is bit-identical to the collective's.
    """
    if op not in REDUCE_OPS:
        raise SchedError(
            f"unknown reduction {op!r}; supported: {sorted(REDUCE_OPS)}"
        )
    return REDUCE_OPS[op]([float(v) for v in values])


@dataclass(frozen=True)
class VirtualOp:
    """One entry of a rank's communication op log (program order)."""

    kind: str  # "barrier" | "allreduce" | "send" | "recv"
    rank: int
    #: collective name for collectives; peer rank for point-to-point
    detail: str = ""
    peer: int = -1
    tag: int = 0


class VirtualJob:
    """Shared state of one virtual SPMD job (engine, barrier, mailboxes)."""

    def __init__(
        self,
        nranks: int,
        *,
        engine: Engine | None = None,
        p2p_seconds: Callable[[int, int, float], float] | None = None,
    ):
        if nranks < 1:
            raise SchedError(f"virtual job needs >= 1 rank, got {nranks}")
        self.nranks = nranks
        self.engine = engine if engine is not None else Engine(name="vspmd")
        self.barrier = Barrier(self.engine, nranks, name="vspmd.barrier")
        #: cost model for send(nbytes); default zero-latency delivery
        self.p2p_seconds = p2p_seconds or (lambda src, dst, nbytes: 0.0)
        self.op_log: list[list[VirtualOp]] = [[] for _ in range(nranks)]
        self._mailboxes: dict[tuple[int, int, int], deque] = {}
        self._recv_signals: dict[tuple[int, int, int], deque[Signal]] = {}
        self._reduce_slots: dict[int, dict] = {}
        self._reduce_round = [0] * nranks

    def comm(self, rank: int) -> "VirtualComm":
        if not 0 <= rank < self.nranks:
            raise SchedError(f"rank {rank} outside virtual job of {self.nranks}")
        return VirtualComm(self, rank)

    # -- p2p plumbing -------------------------------------------------------
    def _deliver(self, src: int, dst: int, tag: int, payload) -> None:
        key = (src, dst, tag)
        waiting = self._recv_signals.get(key)
        if waiting:
            waiting.popleft().fire(payload)
        else:
            self._mailboxes.setdefault(key, deque()).append(payload)

    def _deliver_packed(self, item: tuple) -> None:
        """Single-argument :meth:`_deliver` for closure-free scheduling."""
        self._deliver(*item)


class VirtualComm:
    """One virtual rank's communicator-like handle.

    All blocking operations are generators — ``yield from`` them inside
    a rank program. Modeled compute goes through :meth:`compute`, which
    occupies the rank's GCD resource so overlap/contention are visible
    in the exported timeline.
    """

    def __init__(self, job: VirtualJob, rank: int):
        self.job = job
        self.rank = rank
        self.size = job.nranks
        self.engine = job.engine
        self._gcd = self.engine.resource(
            f"gcd{rank}", lane=(f"gcd{rank}", "kernel")
        )

    def _log(self, kind: str, detail: str = "", peer: int = -1, tag: int = 0):
        self.job.op_log[self.rank].append(
            VirtualOp(kind, self.rank, detail, peer, tag)
        )

    # -- modeled work -------------------------------------------------------
    def compute(
        self, seconds: float, *, label: str = "compute", args: dict | None = None
    ) -> Generator:
        """Occupy this rank's GCD for a modeled duration."""
        yield from use(
            self._gcd, seconds, label=label, cat="gpu", args=args
        )

    # -- collectives --------------------------------------------------------
    def barrier(self) -> Generator:
        self._log("barrier", "barrier")
        yield from self.job.barrier.wait()

    def allreduce(self, value, op: str = "sum") -> Generator:
        """All ranks contribute; all resume with the reduced value."""
        if op not in REDUCE_OPS:
            raise SchedError(
                f"unknown reduction {op!r}; supported: {sorted(REDUCE_OPS)}"
            )
        self._log("allreduce", f"allreduce[{op}]")
        job = self.job
        round_id = job._reduce_round[self.rank]
        job._reduce_round[self.rank] += 1
        slot = job._reduce_slots.setdefault(
            round_id, {"values": {}, "read": 0, "op": op}
        )
        if slot["op"] != op:
            raise SchedError(
                f"allreduce round {round_id} mixes ops "
                f"{slot['op']!r} and {op!r} (collective order skew)"
            )
        if self.rank in slot["values"]:
            raise SchedError(
                f"rank {self.rank} contributed twice to allreduce round "
                f"{round_id} (collective order skew)"
            )
        slot["values"][self.rank] = value
        yield from job.barrier.wait()
        # ranks contribute in deterministic rank order regardless of
        # arrival order, so floating-point reductions are reproducible.
        # The reduction itself runs once per round (the first reader
        # computes, everyone else reads the cached result) — with n
        # ranks each sorting the contributions this was the engine's
        # only O(n^2 log n) step and dominated 64k-rank runs.
        if "result" not in slot:
            ordered = [slot["values"][r] for r in sorted(slot["values"])]
            slot["result"] = REDUCE_OPS[op](ordered)
        result = slot["result"]
        slot["read"] += 1
        if slot["read"] == job.nranks:
            del job._reduce_slots[round_id]
        return result

    # -- point-to-point -----------------------------------------------------
    def send(self, dest: int, *, nbytes: float = 0.0, tag: int = 0, payload=None):
        """Nonblocking modeled send: delivery after the link delay."""
        if not 0 <= dest < self.size:
            raise SchedError(f"send to rank {dest} outside job of {self.size}")
        self._log("send", peer=dest, tag=tag)
        seconds = self.job.p2p_seconds(self.rank, dest, nbytes)
        src = self.rank
        if seconds == 0.0:
            # mailbox fast path: a zero-latency send delivers directly
            # (same virtual instant) without a heap event — at 64k ranks
            # this halves the event count of exchange-heavy programs
            self.job._deliver(src, dest, tag, payload)
        else:
            self.engine.schedule(
                seconds, self.job._deliver_packed, (src, dest, tag, payload)
            )

    def recv(self, source: int, *, tag: int = 0) -> Generator:
        """Blocking receive; resumes with the payload at arrival time."""
        if not 0 <= source < self.size:
            raise SchedError(
                f"recv from rank {source} outside job of {self.size}"
            )
        self._log("recv", peer=source, tag=tag)
        key = (source, self.rank, tag)
        box = self.job._mailboxes.get(key)
        if box:
            return box.popleft()
        signal = self.engine.signal(f"recv{key}")
        self.job._recv_signals.setdefault(key, deque()).append(signal)
        payload = yield Wait(signal)
        return payload


@dataclass
class VspmdResult:
    """Outcome of one virtual SPMD job."""

    job: VirtualJob
    results: list
    rank_finish_seconds: list[float]
    elapsed_seconds: float

    @property
    def engine(self) -> Engine:
        return self.job.engine


def run_virtual_spmd(
    fn: Callable[[VirtualComm], Generator],
    nranks: int,
    *,
    engine: Engine | None = None,
    p2p_seconds: Callable[[int, int, float], float] | None = None,
) -> VspmdResult:
    """Run ``fn(comm)`` as ``nranks`` virtual processes; no threads.

    Raises :class:`~repro.util.errors.SchedError` if any rank is stuck
    when the event queue drains (virtual deadlock — e.g. mismatched
    barriers), mirroring the runtime behaviour the static
    MPI-COLLECTIVE-ORDER lint predicts.
    """
    job = VirtualJob(nranks, engine=engine, p2p_seconds=p2p_seconds)
    processes = [
        job.engine.spawn(
            f"vrank{rank}",
            fn(job.comm(rank)),
            lane=(f"vrank{rank}", "core"),
        )
        for rank in range(nranks)
    ]
    elapsed = job.engine.run()
    job.engine.check_quiescent()
    return VspmdResult(
        job=job,
        results=[p.result for p in processes],
        rank_finish_seconds=[float(p.finished_at) for p in processes],
        elapsed_seconds=elapsed,
    )


# ---------------------------------------------------------------------------
# static plan extraction (for repro.lint)
# ---------------------------------------------------------------------------


class _RecordingComm(VirtualComm):
    """Engine-less comm: logs ops, resolves every operation immediately.

    Used by :func:`record_plan` to symbolically execute a rank program;
    ``compute`` costs nothing, collectives do not synchronize, and
    ``allreduce`` returns its own contribution.
    """

    def __init__(self, job: VirtualJob, rank: int):
        # deliberately skip VirtualComm.__init__: no engine resources
        self.job = job
        self.rank = rank
        self.size = job.nranks

    def compute(self, seconds, *, label="compute", args=None):
        return
        yield  # pragma: no cover - makes this a generator

    def barrier(self):
        self._log("barrier", "barrier")
        return
        yield  # pragma: no cover

    def allreduce(self, value, op: str = "sum"):
        if op not in REDUCE_OPS:
            raise SchedError(
                f"unknown reduction {op!r}; supported: {sorted(REDUCE_OPS)}"
            )
        self._log("allreduce", f"allreduce[{op}]")
        return value
        yield  # pragma: no cover

    def send(self, dest, *, nbytes=0.0, tag=0, payload=None):
        self._log("send", peer=dest, tag=tag)

    def recv(self, source, *, tag: int = 0):
        self._log("recv", peer=source, tag=tag)
        return None
        yield  # pragma: no cover


def record_ops(
    fn: Callable[[VirtualComm], Generator], nranks: int
) -> list[list[VirtualOp]]:
    """Symbolically execute a rank program; returns per-rank op logs."""
    job = VirtualJob.__new__(VirtualJob)
    job.nranks = nranks
    job.op_log = [[] for _ in range(nranks)]
    for rank in range(nranks):
        comm = _RecordingComm(job, rank)
        gen = fn(comm)
        if isinstance(gen, Generator):
            for _ in gen:  # drive to exhaustion; commands are inert
                pass
    return job.op_log


def record_plan(fn: Callable[[VirtualComm], Generator], nranks: int):
    """The static :class:`~repro.lint.mpiplan.CommPlan` of a program.

    Point-to-point ops become plan sends/recvs (virtual sends are
    buffered and nonblocking-delivered, like the engine's), collectives
    become plan collectives — feeding the matching, deadlock, and
    collective-ordering checks.
    """
    from repro.lint.mpiplan import CommPlan

    plan = CommPlan(nranks)
    for rank, ops in enumerate(record_ops(fn, nranks)):
        for op in ops:
            if op.kind == "send":
                plan.send(rank, op.peer, op.tag, buffered=True)
            elif op.kind == "recv":
                plan.recv(rank, op.peer, op.tag)
            else:
                plan.collective(rank, op.detail)
    return plan
