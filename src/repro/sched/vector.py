"""NumPy epoch event queues: the vector tier of the virtual SPMD engine.

The discrete-event engine (:mod:`repro.sched.engine`) dispatches one
Python callback per event. The virtual SPMD workload it mostly runs
(:mod:`repro.core.virtual`) is far more regular than that generality
requires: between two output-step barriers every rank executes the
same program — an optional JIT compile, ``plotgap`` x (kernel, halo
exchange), an optional BP5 write on the node leader — and ranks never
interact except at the barrier. One such barrier-to-barrier window is
an **epoch**.

:func:`simulate_epoch` advances a whole epoch with a handful of NumPy
array operations instead of ~4 heap events per rank per step. The
float arithmetic replicates the scalar engine's op-for-op:

- a kernel-then-exchange step is ``t = (t + kernel) + comm`` (two
  IEEE-754 additions per rank, the same two the engine's ``Delay``
  commands perform);
- an overlapped step is ``t = max(t + kernel, t + comm)`` — the
  engine's ``Join`` resumes the rank at whichever of the kernel delay
  and the spawned halo process finishes later;
- an overlapped write drains concurrently (``end = start + seconds``)
  and the final segment's ``Join`` is ``t = max(t, end)`` on the
  leader.

NumPy float64 elementwise arithmetic is IEEE double — identical to
CPython float arithmetic — so the produced timestamps are bit-identical
to the generator engine's, which the property tests in
``tests/sched/test_vector.py`` pin.

Tracing replays through an :class:`EpochEventQueue`: a structured array
of ``(when, seq, rank, op)`` plus parallel seconds/tag columns, filled
by the vector loops and drained in ``(when, seq)`` order — the same
(time, FIFO) order the scalar heap dispatches in — into
:class:`~repro.observe.trace.SpanRecord` batches
(:func:`emit_epoch_spans`). Untraced runs skip the queue entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import SchedError

#: structured layout of one queued epoch event
EPOCH_EVENT_DTYPE = np.dtype(
    [
        ("when", "f8"),  # sim-clock start of the span
        ("seq", "i8"),  # global push order — the heap's FIFO tie-break
        ("rank", "i8"),  # owning rank (node id for write events)
        ("op", "u1"),  # opcode, one of the OP_* constants
    ]
)

#: epoch event opcodes
OP_JIT = 0
OP_KERNEL = 1
OP_HALO = 2
OP_WRITE = 3


class EpochEventQueue:
    """Append-only batches of homogeneous epoch events.

    Each :meth:`push` stores one vectorized batch (same opcode, one
    entry per rank); :meth:`sorted_events` concatenates the batches and
    orders them by ``(when, seq)``, reproducing the dispatch order of
    the scalar heap for the same schedule.
    """

    def __init__(self) -> None:
        self._chunks: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._seq = 0

    def __len__(self) -> int:
        return self._seq

    def push(self, op: int, when, seconds, ranks, *, tag: int = 0) -> None:
        """Queue one batch: ``op`` at ``when`` for ``seconds`` per rank.

        ``tag`` carries per-batch metadata (the output step of a write
        batch); ``seconds`` broadcasts over the batch.
        """
        when = np.ascontiguousarray(when, dtype=np.float64)
        n = when.size
        if n == 0:
            return
        events = np.empty(n, dtype=EPOCH_EVENT_DTYPE)
        events["when"] = when
        events["seq"] = np.arange(self._seq, self._seq + n, dtype=np.int64)
        events["rank"] = ranks
        events["op"] = op
        seconds_col = np.empty(n, dtype=np.float64)
        seconds_col[:] = seconds
        tags = np.full(n, tag, dtype=np.int64)
        self._seq += n
        self._chunks.append((events, seconds_col, tags))

    def sorted_events(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(events, seconds, tags)`` in global ``(when, seq)`` order."""
        if not self._chunks:
            empty = np.empty(0, dtype=EPOCH_EVENT_DTYPE)
            return empty, np.empty(0), np.empty(0, dtype=np.int64)
        events = np.concatenate([chunk[0] for chunk in self._chunks])
        seconds = np.concatenate([chunk[1] for chunk in self._chunks])
        tags = np.concatenate([chunk[2] for chunk in self._chunks])
        order = np.argsort(events, order=("when", "seq"))
        return events[order], seconds[order], tags[order]


@dataclass
class EpochWrites:
    """The node-leader BP5 writes drained during one epoch."""

    index: np.ndarray  #: leader positions within the epoch's rank slice
    nodes: np.ndarray  #: node id per leader (the write span's ``node`` arg)
    seconds: np.ndarray  #: modeled write seconds per leader
    output_step: int  #: which output the writes belong to


@dataclass
class EpochSpec:
    """One epoch of one contiguous rank slice, ready to vectorize."""

    ranks: np.ndarray  #: global rank ids of the slice
    starts: np.ndarray  #: per-rank epoch start times (barrier-coupled)
    kernel: np.ndarray  #: per-rank kernel seconds per step
    comm: np.ndarray  #: per-rank halo-exchange seconds per step
    nsteps: int
    overlap: bool
    jit_seconds: float = 0.0  #: one-time compile charged at epoch start
    writes: EpochWrites | None = None
    final: bool = False  #: join the pending write before arriving


@dataclass
class EpochResult:
    arrivals: np.ndarray  #: per-rank barrier-arrival times
    write_ends: np.ndarray | None  #: per-leader write end times
    events: int  #: engine-equivalent event count of the epoch


def simulate_epoch(
    spec: EpochSpec, *, queue: EpochEventQueue | None = None
) -> EpochResult:
    """Advance one epoch for every rank of the slice at once.

    Returns the per-rank arrival times at the closing barrier and (for
    overlapped writes) the per-leader drain end times the caller needs
    for the next epoch's ``Join`` coupling. With a ``queue``, every
    traced span of the epoch is recorded for :func:`emit_epoch_spans`.
    """
    n = int(spec.starts.size)
    if spec.kernel.size != n or spec.comm.size != n or spec.ranks.size != n:
        raise SchedError(
            "epoch arrays disagree on rank count: "
            f"starts={n} kernel={spec.kernel.size} "
            f"comm={spec.comm.size} ranks={spec.ranks.size}"
        )
    # one spawn event per rank, plus the bridge delay of every rank
    # whose epoch starts after t=0 (the scalar shard engine's unlabeled
    # Delay(start))
    t = spec.starts.astype(np.float64, copy=True)
    events = n + int(np.count_nonzero(t))
    if spec.jit_seconds > 0.0:
        if queue is not None:
            queue.push(OP_JIT, t, spec.jit_seconds, spec.ranks)
        t = t + spec.jit_seconds
        events += n
    writes = spec.writes
    write_ends = None
    if writes is not None and writes.index.size:
        write_starts = t[writes.index]
        if queue is not None:
            queue.push(
                OP_WRITE,
                write_starts,
                writes.seconds,
                writes.nodes,
                tag=writes.output_step,
            )
        write_ends = write_starts + writes.seconds
        if spec.overlap:
            # the leader spawns the drain and keeps stepping
            events += 2 * int(writes.index.size)
        else:
            t[writes.index] = write_ends
            events += int(writes.index.size)
    kernel = spec.kernel
    comm = spec.comm
    if spec.overlap:
        for _ in range(spec.nsteps):
            if queue is not None:
                queue.push(OP_HALO, t, comm, spec.ranks)
                queue.push(OP_KERNEL, t, kernel, spec.ranks)
            # Join(halo): resume at whichever finishes later; both ends
            # are single additions from the common step start, exactly
            # as the engine schedules them
            t = np.maximum(t + kernel, t + comm)
        events += 4 * n * spec.nsteps
    else:
        for _ in range(spec.nsteps):
            kernel_end = t + kernel
            if queue is not None:
                queue.push(OP_KERNEL, t, kernel, spec.ranks)
                queue.push(OP_HALO, kernel_end, comm, spec.ranks)
            t = kernel_end + comm
        events += 2 * n * spec.nsteps
    if spec.final and spec.overlap and write_ends is not None:
        # Join(pending write) before the allreduce arrival
        t[writes.index] = np.maximum(t[writes.index], write_ends)
        events += int(writes.index.size)
    return EpochResult(arrivals=t, write_ends=write_ends, events=events)


def emit_epoch_spans(
    queue: EpochEventQueue, tracer, *, kernel_name: str, backend: str
) -> int:
    """Replay the queued epoch events into ``tracer`` as span records.

    Records are emitted in ``(when, seq)`` order through the tracer's
    bulk :meth:`~repro.observe.trace.Tracer.add_spans` path. The span
    fields replicate the scalar engine's mirroring exactly — same
    names, categories, lanes, and args as the ``Delay`` commands of
    :class:`~repro.gpu.proxy.VirtualGcd` and the BP5 write plan — so
    the span *multiset* of a vector run equals the generator run's.
    """
    from repro.observe.trace import SIM, SpanRecord

    events, seconds, tags = queue.sorted_events()
    if not events.size:
        return 0
    whens = events["when"]
    ranks = events["rank"]
    ops = events["op"]
    gcd_names: dict[int, str] = {}
    vrank_names: dict[int, str] = {}
    backend_args = (("backend", backend),)
    records = []
    append = records.append
    for i in range(events.size):
        op = ops[i]
        rank = int(ranks[i])
        start = float(whens[i])
        span_seconds = float(seconds[i])
        if op == OP_KERNEL:
            process = gcd_names.get(rank)
            if process is None:
                process = gcd_names[rank] = f"gcd{rank}"
            append(
                SpanRecord(
                    name=kernel_name, cat="gpu", clock=SIM, process=process,
                    thread="kernel", start=start, seconds=span_seconds,
                    args=(("gcd", rank),),
                )
            )
        elif op == OP_HALO:
            process = vrank_names.get(rank)
            if process is None:
                process = vrank_names[rank] = f"vrank{rank}"
            append(
                SpanRecord(
                    name="halo", cat="mpi", clock=SIM, process=process,
                    thread="mpi", start=start, seconds=span_seconds,
                )
            )
        elif op == OP_WRITE:
            append(
                SpanRecord(
                    name="bp5.write", cat="adios", clock=SIM,
                    process="lustre-oss", thread="write", start=start,
                    seconds=span_seconds,
                    args=(("node", rank), ("output_step", int(tags[i]))),
                )
            )
        elif op == OP_JIT:
            process = gcd_names.get(rank)
            if process is None:
                process = gcd_names[rank] = f"gcd{rank}"
            append(
                SpanRecord(
                    name="jit.compile", cat="gpu", clock=SIM, process=process,
                    thread="kernel", start=start, seconds=span_seconds,
                    args=backend_args,
                )
            )
        else:  # pragma: no cover - push() only accepts OP_* opcodes
            raise SchedError(f"unknown epoch opcode {op!r}")
    tracer.add_spans(records)
    return len(records)
