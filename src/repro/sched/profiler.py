"""Sampling profiler for virtual time.

A traced virtual run records every labelled delay — at 64k ranks that
is tens of millions of spans, which is exactly the cost the streaming
sinks in :mod:`repro.observe.stream` exist to absorb. Often the
question is coarser: *what were the ranks doing over time?* The
:class:`SimProfiler` answers it the way ``perf record`` does for real
programs — by sampling. At a configurable virtual-time interval it
walks the engine's process table and counts, per (process name, state)
pair, how many virtual processes were in that state: blocked on a
kernel delay, queued on a GCD acquire, waiting at a barrier.

The output is flame-graph-ready **folded stacks**: one line per
``name;state`` with the total sample count, the input format of
Brendan Gregg's ``flamegraph.pl`` and of speedscope. With the default
``collapse=True`` digit runs in names collapse to ``*`` so all 65,536
``rank12345`` processes aggregate into one ``rank*`` row — the profile
stays a few dozen lines no matter the rank count.

Cost model: the engine's hot event loop pays one float compare per
clock advance (nothing at all per same-time event batch); the walk of
the process table happens only at sample instants, so the overhead is
``samples x live processes``, controlled entirely by ``interval``.

Usage::

    profiler = SimProfiler(interval=0.001)
    engine = Engine(name="virtual", profiler=profiler)
    ... spawn ranks, engine.run() ...
    profiler.write_folded("profile.folded")
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.util.errors import SchedError

_DIGITS = re.compile(r"\d+")


def collapse_label(label: str) -> str:
    """Fold digit runs to ``*`` so per-rank labels aggregate."""
    return _DIGITS.sub("*", label)


class SimProfiler:
    """Sample the process table of an :class:`~repro.sched.Engine`.

    ``interval`` is virtual seconds between samples; the first sample
    fires at ``interval`` (at t=0 nothing has started). Attach by
    passing ``profiler=`` to the engine constructor or assigning
    ``engine.profiler`` before :meth:`~repro.sched.Engine.run`.
    """

    def __init__(self, interval: float, *, collapse: bool = True):
        if not interval > 0:
            raise SchedError(
                f"profiler interval must be > 0 virtual seconds, got {interval}"
            )
        self.interval = float(interval)
        self.collapse = collapse
        #: virtual time of the next pending sample (engine hot-loop key)
        self.next_sample = self.interval
        self.samples_taken = 0
        #: (name, state) -> occupancy count summed over all samples
        self.stacks: dict[tuple[str, str], int] = {}
        self._label_cache: dict[str, str] = {}

    # -- engine hook --------------------------------------------------------
    def advance(self, engine, until: float) -> float:
        """Take every sample due in ``(next_sample, until]``; returns the new
        ``next_sample``.

        Called by the engine just before it advances its clock past
        ``next_sample`` — the sampled states are the processes' blocked
        states during the idle gap, which is precisely what a sampling
        profiler of a discrete-event simulation should attribute time
        to.
        """
        while self.next_sample <= until:
            self._sample(engine)
            self.next_sample += self.interval
        return self.next_sample

    def _fold(self, label: str) -> str:
        folded = self._label_cache.get(label)
        if folded is None:
            folded = collapse_label(label) if self.collapse else label
            self._label_cache[label] = folded
        return folded

    def _sample(self, engine) -> None:
        self.samples_taken += 1
        stacks = self.stacks
        finished = 0
        live = 0
        for process in engine._processes:
            if process.finished:
                finished += 1
                continue
            live += 1
            desc = process._blocked_desc() or "running"
            key = (self._fold(process.name), self._fold(desc))
            stacks[key] = stacks.get(key, 0) + 1
        # keep sampling O(live processes): at 262k ranks the table is
        # dominated by finished halo/write frames between the engine's
        # own compaction thresholds — compact eagerly once dead frames
        # outnumber the ranks we actually sample
        if finished > live:
            engine.compact_finished()

    # -- output -------------------------------------------------------------
    def folded(self) -> list[str]:
        """Flame-graph folded stacks: ``name;state count`` lines, sorted."""
        return [
            f"{name};{state} {count}"
            for (name, state), count in sorted(self.stacks.items())
        ]

    def write_folded(self, path) -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text("\n".join(self.folded()) + "\n")
        return target

    def to_json(self) -> dict:
        return {
            "schema": "repro.sched.profile/1",
            "interval_seconds": self.interval,
            "samples": self.samples_taken,
            "stacks": [
                {"name": name, "state": state, "count": count}
                for (name, state), count in sorted(self.stacks.items())
            ],
        }

    def render(self, *, width: int = 40) -> str:
        """ASCII occupancy summary (the ``observe flamegraph`` view)."""
        return render_stacks(
            self.stacks, samples=self.samples_taken, width=width
        )


def load_folded(path) -> dict[tuple[str, str], int]:
    """Parse a folded-stacks file back into ``(name, state) -> count``."""
    target = Path(path)
    if not target.exists():
        raise SchedError(f"profile file not found: {target}")
    stacks: dict[tuple[str, str], int] = {}
    for lineno, line in enumerate(target.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            stack, count = line.rsplit(" ", 1)
            name, state = stack.split(";", 1)
            stacks[(name, state)] = stacks.get((name, state), 0) + int(count)
        except ValueError as exc:
            raise SchedError(
                f"{target}:{lineno} is not a folded stack "
                f"('name;state count'): {line!r}"
            ) from exc
    return stacks


def render_stacks(
    stacks: dict[tuple[str, str], int],
    *,
    samples: int | None = None,
    width: int = 40,
) -> str:
    """ASCII occupancy bars for folded stacks, heaviest first."""
    if not stacks:
        return "no samples"
    total = sum(stacks.values())
    head = f"{total} process-samples"
    if samples is not None:
        head = f"{samples} samples, {head}"
    lines = [head]
    ranked = sorted(stacks.items(), key=lambda kv: (-kv[1], kv[0]))
    top = ranked[0][1]
    for (name, state), count in ranked:
        bar = "#" * max(1, round(width * count / top))
        share = 100.0 * count / total
        lines.append(f"{share:6.2f}%  {name};{state:<28} {bar}")
    return "\n".join(lines)
