"""Exception hierarchy for the repro package.

Every subpackage raises subclasses of :class:`ReproError` so callers can
catch library failures without swallowing unrelated bugs.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """Invalid configuration: settings files, parameter combinations."""


class CalibrationError(ReproError):
    """A performance-model calibration constant is missing or invalid."""


class MPIError(ReproError):
    """Base class for errors raised by the MPI substrate."""


class TruncationError(MPIError):
    """A received message does not fit in the posted receive buffer.

    Mirrors ``MPI_ERR_TRUNCATE``: the matching message was longer than
    the receive buffer supplied by the caller.
    """


class DatatypeError(MPIError):
    """A derived datatype does not describe the supplied buffer."""


class CommAbort(MPIError):
    """The simulated job was aborted (another rank raised)."""


class AdiosError(ReproError):
    """Base class for errors raised by the ADIOS2-workalike I/O layer."""


class EngineStateError(AdiosError):
    """An engine method was called in the wrong state.

    For example ``put`` outside ``begin_step``/``end_step``, or reading
    from a writer engine.
    """


class VariableError(AdiosError):
    """A variable definition or selection is inconsistent."""


class CorruptFileError(AdiosError):
    """A BP5 subfile or metadata index failed validation on read."""


class TimerError(ReproError):
    """A timing query was made against unrecorded data.

    For example :meth:`~repro.util.timers.Stopwatch.mean` of a section
    that never ran.
    """


class ObserveError(ReproError):
    """Base class for errors raised by the observability layer.

    Raised for clock-domain violations (mixing wall and modeled time in
    one trace lane), metric kind conflicts, and malformed trace files.
    """


class LintError(ReproError):
    """Base class for errors raised by the static-analysis layer.

    Raised for malformed analyzer inputs (unknown rule ids, plans that
    reference ranks outside the communicator) — never for findings,
    which are reported as diagnostics.
    """


class SchedError(ReproError):
    """Base class for errors raised by the discrete-event engine.

    Raised for structural scheduling bugs — negative or non-finite
    delays, resource over-release, processes stuck at quiescence
    (virtual deadlock) — never for modeled outcomes.
    """


class ParError(ReproError):
    """Base class for errors raised by the process-parallel layer.

    Raised for pool configuration mistakes (negative ``jobs``), worker
    crashes (the first failing task's traceback is carried in the
    message), and shared-memory transport faults.
    """


class ServeError(ReproError):
    """Base class for errors raised by the simulation service layer.

    Raised for service misconfiguration, worker-pool faults, and jobs
    submitted against a closed service.
    """


class AdmissionError(ServeError):
    """The service refused a job: the admission queue is saturated.

    This is the *admission control* half of the backpressure policy —
    a non-waiting submit against a full queue fails fast instead of
    queueing unboundedly (waiting submits block instead; see
    docs/SERVICE.md).
    """


class GpuError(ReproError):
    """Base class for errors raised by the GPU simulator."""


class LaunchError(GpuError):
    """Invalid kernel launch configuration (grid/workgroup shape)."""


class DeviceMemoryError(GpuError):
    """Device allocation exceeded the modeled HBM capacity."""


class IrError(ReproError):
    """Base class for errors raised by the stencil IR layer.

    Raised for malformed IR (verifier failures surfaced as exceptions),
    unknown pass names in a pipeline spec, and rewrite requests whose
    legality preconditions cannot even be evaluated.
    """
