"""Deterministic random-number streams.

Reproducibility rule for the whole package: *no module touches global
NumPy random state*. Every consumer derives an independent
``numpy.random.Generator`` from a root seed plus a structured key
(purpose string, rank, step, ...) via ``numpy``'s ``SeedSequence``
spawn-key mechanism. Two Gray-Scott runs with the same root seed and
decomposition produce bitwise-identical noise fields regardless of the
number of ranks executing them (see ``RngStream.for_cells``).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np


def _key_to_ints(key: tuple) -> tuple[int, ...]:
    """Map a mixed key of ints/strings to a tuple of uint32 words."""
    words: list[int] = []
    for part in key:
        if isinstance(part, (int, np.integer)):
            if part < 0:
                raise ValueError(f"negative key component: {part}")
            words.append(int(part) & 0xFFFFFFFF)
            words.append((int(part) >> 32) & 0xFFFFFFFF)
        elif isinstance(part, str):
            words.append(zlib.crc32(part.encode("utf-8")) & 0xFFFFFFFF)
        else:
            raise TypeError(f"rng key components must be int or str, got {part!r}")
    return tuple(words)


def seed_for(root_seed: int, *key: int | str) -> np.random.SeedSequence:
    """Derive a ``SeedSequence`` for a structured key under a root seed."""
    return np.random.SeedSequence(root_seed, spawn_key=_key_to_ints(key))


def task_stream(root_seed: int, task_index: int, *key: int | str) -> "RngStream":
    """A spawn-safe per-task stream for process-parallel fan-out.

    Keyed by the **task index**, never the worker id, so a sweep run
    under ``repro.par.run_tasks`` draws identical numbers at ``jobs=1``
    and ``jobs=N`` for any N: which worker executes a task carries no
    entropy. Task functions that need randomness should derive every
    generator from this stream (or any other pure function of the root
    seed, as the model layers already do) rather than from process-local
    state.
    """
    if task_index < 0:
        raise ValueError(f"task_index must be >= 0, got {task_index}")
    return RngStream(root_seed, ("par.task", task_index) + tuple(key))


@dataclass(frozen=True)
class RngStream:
    """A named, hierarchical random stream.

    ``RngStream(seed, "noise")`` is the noise stream of a run;
    ``stream.child(rank)`` or ``stream.generator(step=3)`` derive
    independent substreams. All derivations are pure functions of
    (root_seed, key) — no hidden state.
    """

    root_seed: int
    key: tuple = ()

    def child(self, *key: int | str) -> "RngStream":
        """A substream extending this stream's key."""
        return RngStream(self.root_seed, self.key + tuple(key))

    def generator(self, *key: int | str) -> np.random.Generator:
        """A ``Generator`` for this stream (optionally with extra key)."""
        seq = seed_for(self.root_seed, *(self.key + tuple(key)))
        return np.random.Generator(np.random.Philox(seq))

    def uniform_field(
        self,
        shape: tuple[int, ...],
        *key: int | str,
        low: float = -1.0,
        high: float = 1.0,
    ) -> np.ndarray:
        """A uniform random field, keyed so it is decomposition-invariant.

        Used for the Gray-Scott noise term ``n * r`` where ``r`` must be
        "a uniformly distributed random number between -1 and 1 for each
        time and spatial coordinate" (paper Section 3.1). Callers pass a
        *global* step key and slice the field per-rank, or key by global
        cell offsets.
        """
        gen = self.generator(*key)
        return gen.uniform(low, high, size=shape)
