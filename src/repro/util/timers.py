"""Wall-clock and simulated-clock timing.

Two distinct notions of time run through the package:

- **Wall time** (:class:`WallTimer`, :class:`Stopwatch`): how long the
  Python code actually takes. Used by the mini-scale benchmarks.
- **Simulated time** (:class:`SimClock`): the modeled Frontier time a
  performance model predicts (kernel durations from the roofline model,
  message latencies from the network model, write times from the Lustre
  model). Used by the Frontier-scale experiment reproductions.

Keeping them in separate types prevents the classic modeling bug of
adding a modeled duration to a measured one.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field, replace

from repro.util.errors import TimerError


class WallTimer:
    """Context manager measuring elapsed wall time in seconds.

    >>> with WallTimer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "WallTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start


@dataclass
class Stopwatch:
    """Accumulating named-section wall timer.

    >>> sw = Stopwatch()
    >>> with sw.section("compute"):
    ...     pass
    >>> "compute" in sw.totals
    True
    """

    totals: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    def section(self, name: str):
        return _Section(self, name)

    def add(self, name: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot add negative time")
        self.totals[name] = self.totals.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + 1

    def mean(self, name: str) -> float:
        if name not in self.counts or self.counts[name] == 0:
            recorded = ", ".join(sorted(self.totals)) or "none"
            raise TimerError(
                f"no samples recorded for section {name!r} "
                f"(recorded sections: {recorded})"
            )
        return self.totals[name] / self.counts[name]

    def render(self, title: str = "wall-time sections") -> str:
        """Summary table of every recorded section (used by the CLI)."""
        from repro.util.tables import Table

        table = Table(["section", "calls", "total (s)", "mean (ms)"], title=title)
        for name in sorted(self.totals, key=self.totals.get, reverse=True):
            table.add_row(
                [
                    name,
                    self.counts[name],
                    f"{self.totals[name]:.4f}",
                    f"{self.mean(name) * 1e3:.3f}",
                ]
            )
        return table.render()


class _Section:
    def __init__(self, stopwatch: Stopwatch, name: str) -> None:
        self._sw = stopwatch
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Section":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._sw.add(self._name, time.perf_counter() - self._start)


@dataclass
class SimClock:
    """A monotonically advancing *modeled* clock.

    Performance models call :meth:`advance` with modeled durations;
    :attr:`now` is the modeled timestamp. ``advance_to`` supports
    max-style synchronization (e.g. a barrier completes at the max of
    participant arrival times).
    """

    now: float = 0.0

    def advance(self, seconds: float) -> float:
        """Advance by a modeled duration; returns the new timestamp."""
        if not math.isfinite(seconds) or seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds}")
        self.now += seconds
        return self.now

    def advance_to(self, timestamp: float, *, strict: bool = False) -> float:
        """Advance to at least ``timestamp``; the clock never runs backwards.

        A past timestamp is a no-op (max-style synchronization) unless
        ``strict=True``, in which case it raises — the discrete-event
        engine drives its clock strictly, so a backwards event exposes
        a scheduling bug instead of being silently absorbed.
        """
        if math.isnan(timestamp):
            raise ValueError("cannot advance clock to NaN")
        if timestamp < self.now:
            if strict:
                raise ValueError(
                    f"clock cannot run backwards: advance_to({timestamp}) "
                    f"at now={self.now}"
                )
            return self.now
        self.now = timestamp
        return self.now

    def copy(self) -> "SimClock":
        """A detached copy; preserves subclass fields by construction."""
        return replace(self)
