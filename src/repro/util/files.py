"""Atomic file writes: write-then-rename, shared by every on-disk artifact.

Three subsystems used to hand-roll the same tmp-file-plus-rename dance
(the BP5 metadata index, the selfperf ``BENCH_*.json`` writers, the
SARIF reporter); the persistent JIT cache made a fourth. This module is
the single implementation: the payload lands in a uniquely-named
temporary file *in the destination directory* (same filesystem, so the
rename cannot degrade to a copy) and ``os.replace`` publishes it — a
reader never observes a torn or partially-written file, and two writers
racing the same path leave whichever complete version replaced last.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def atomic_write_bytes(path: str | os.PathLike, data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically (write temp + rename).

    Returns the destination as a :class:`~pathlib.Path`. On any failure
    the temporary file is removed and the original destination (if any)
    is left untouched.
    """
    target = Path(path)
    fd, tmp = tempfile.mkstemp(
        dir=str(target.parent), prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return target


def atomic_write_text(
    path: str | os.PathLike, text: str, *, encoding: str = "utf-8"
) -> Path:
    """Text-mode :func:`atomic_write_bytes`."""
    return atomic_write_bytes(path, text.encode(encoding))
