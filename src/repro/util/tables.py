"""Minimal monospace table rendering for benchmark reports.

The benchmark harness prints each paper table/figure as rows of text;
this renderer keeps columns aligned without pulling in a dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable


@dataclass
class Table:
    """An aligned text table.

    >>> t = Table(["Kernel", "GB/s"], title="Table 2")
    >>> t.add_row(["HIP", 1163])
    >>> print(t.render())  # doctest: +ELLIPSIS
    Table 2
    ...
    """

    headers: list[str]
    title: str = ""
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, row: Iterable[Any]) -> None:
        cells = [self._fmt(cell) for cell in row]
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    @staticmethod
    def _fmt(cell: Any) -> str:
        if isinstance(cell, bool):
            return str(cell)
        if isinstance(cell, int):
            return f"{cell:,}" if abs(cell) >= 1000 else str(cell)
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            if abs(cell) >= 1000:
                return f"{cell:,.0f}"
            if abs(cell) >= 1:
                return f"{cell:.2f}"
            return f"{cell:.4g}"
        return str(cell)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: list[str]) -> str:
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

        parts = []
        if self.title:
            parts.append(self.title)
        parts.append(line(self.headers))
        parts.append("  ".join("-" * w for w in widths))
        parts.extend(line(row) for row in self.rows)
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.render()
