"""Shared utilities: units, RNG streams, timers, tables, errors.

These helpers are deliberately dependency-light; every other subpackage
builds on them.
"""

from repro.util.errors import (
    ReproError,
    CalibrationError,
    ConfigError,
)
from repro.util.units import (
    KB,
    MB,
    GB,
    TB,
    KiB,
    MiB,
    GiB,
    TiB,
    format_bytes,
    format_bandwidth,
    format_seconds,
    parse_bytes,
)
from repro.util.rngs import RngStream, seed_for
from repro.util.timers import WallTimer, SimClock, Stopwatch
from repro.util.tables import Table
from repro.util.files import atomic_write_bytes, atomic_write_text

__all__ = [
    "ReproError",
    "CalibrationError",
    "ConfigError",
    "KB",
    "MB",
    "GB",
    "TB",
    "KiB",
    "MiB",
    "GiB",
    "TiB",
    "format_bytes",
    "format_bandwidth",
    "format_seconds",
    "parse_bytes",
    "RngStream",
    "seed_for",
    "WallTimer",
    "SimClock",
    "Stopwatch",
    "Table",
    "atomic_write_bytes",
    "atomic_write_text",
]
