"""Byte/bandwidth/time units and human-readable formatting.

The paper mixes decimal units (GB/s bandwidths, file-system TB/s) with
binary sizes (HBM capacity); we keep both families explicit so model
code never multiplies the wrong constant.
"""

from __future__ import annotations

import re

# Decimal (SI) byte units — used for bandwidths throughout the paper.
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

# Binary (IEC) byte units — used for memory capacities.
KiB = 1 << 10
MiB = 1 << 20
GiB = 1 << 30
TiB = 1 << 40

_SI_SUFFIXES = [(TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")]
_IEC_SUFFIXES = [(TiB, "TiB"), (GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB")]

_PARSE_RE = re.compile(
    r"^\s*(?P<num>[0-9]*\.?[0-9]+)\s*(?P<unit>[KMGT]i?B|B)?\s*$", re.IGNORECASE
)

_UNIT_FACTORS = {
    "b": 1,
    "kb": KB,
    "mb": MB,
    "gb": GB,
    "tb": TB,
    "kib": KiB,
    "mib": MiB,
    "gib": GiB,
    "tib": TiB,
}


def format_bytes(nbytes: float, *, binary: bool = False, precision: int = 2) -> str:
    """Render a byte count with the largest suffix that keeps value >= 1.

    >>> format_bytes(25_080_000_000)
    '25.08 GB'
    >>> format_bytes(8 * GiB, binary=True)
    '8.00 GiB'
    """
    if nbytes < 0:
        raise ValueError(f"byte count must be non-negative, got {nbytes}")
    suffixes = _IEC_SUFFIXES if binary else _SI_SUFFIXES
    for factor, suffix in suffixes:
        if nbytes >= factor:
            return f"{nbytes / factor:.{precision}f} {suffix}"
    return f"{nbytes:.0f} B"


def format_bandwidth(bytes_per_second: float, *, precision: int = 1) -> str:
    """Render a bandwidth in the paper's GB/s (or TB/s) convention.

    >>> format_bandwidth(1_163_000_000_000)
    '1163.0 GB/s'
    """
    if bytes_per_second < 0:
        raise ValueError("bandwidth must be non-negative")
    if bytes_per_second >= 10 * TB:
        return f"{bytes_per_second / TB:.{precision}f} TB/s"
    if bytes_per_second >= MB:
        return f"{bytes_per_second / GB:.{precision}f} GB/s"
    return f"{bytes_per_second / KB:.{precision}f} KB/s"


def format_seconds(seconds: float, *, precision: int = 2) -> str:
    """Render a duration with a natural unit (us/ms/s/min).

    >>> format_seconds(0.02874)
    '28.74 ms'
    """
    if seconds < 0:
        raise ValueError("duration must be non-negative")
    if seconds < 1e-3:
        return f"{seconds * 1e6:.{precision}f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.{precision}f} ms"
    if seconds < 120.0:
        return f"{seconds:.{precision}f} s"
    return f"{seconds / 60.0:.{precision}f} min"


def parse_bytes(text: str | int | float) -> int:
    """Parse a human byte string such as ``"64 GiB"`` or ``"5.5TB"``.

    Bare numbers are taken as bytes. Raises ``ValueError`` on garbage.
    """
    if isinstance(text, (int, float)):
        if text < 0:
            raise ValueError(f"byte count must be non-negative, got {text}")
        return int(text)
    match = _PARSE_RE.match(text)
    if match is None:
        raise ValueError(f"cannot parse byte size: {text!r}")
    value = float(match.group("num"))
    unit = (match.group("unit") or "B").lower()
    return int(value * _UNIT_FACTORS[unit])
