"""Trace and metrics exporters.

Three output shapes:

- :func:`to_chrome_trace` — the Chrome trace-event JSON format, which
  Perfetto (https://ui.perfetto.dev) and ``chrome://tracing`` load
  directly. Wall-clock lanes and modeled (sim-clock) lanes are exported
  as *separate processes* — ``rank0`` vs. ``gcd0 [modeled]`` — so the
  two clock domains are never laid onto one another, and each lane's
  events are sorted to monotonic timestamps.
- :func:`metrics_to_json` / :func:`write_metrics_json` — the flat
  metrics record (``repro.observe.metrics/1`` schema).
- :func:`ascii_timeline` — the Figure-5-style terminal rendering, the
  generalized form of ``RocprofReport.render_trace`` (which now
  delegates here).

:func:`validate_chrome_trace` is the schema checker the tests and the
``grayscott trace`` summarizer share: it verifies the ``ph``/``ts``/
``dur``/``pid``/``tid`` fields, per-lane timestamp monotonicity, and
the one-clock-per-lane invariant.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.observe.metrics import MetricsRegistry
from repro.observe.trace import SIM, WALL, SpanRecord, Tracer
from repro.util.errors import ObserveError
from repro.util.units import format_seconds

_US = 1e6  # Chrome trace timestamps are microseconds


# ---------------------------------------------------------------------------
# Chrome / Perfetto trace-event JSON
# ---------------------------------------------------------------------------


def _process_label(process: str, clock: str) -> str:
    return process if clock == WALL else f"{process} [modeled]"


def to_chrome_trace(tracer: Tracer) -> dict:
    """Export every span as Chrome trace-event JSON (Perfetto-loadable)."""
    lanes = tracer.lanes()
    # stable pid/tid assignment: processes sorted by (clock, name) so all
    # wall-clock ranks come first, then the modeled device processes
    processes: dict[str, int] = {}
    threads: dict[tuple[str, str], int] = {}
    # every span in a lane shares the clock domain by construction
    lane_clock = {lane: records[0].clock for lane, records in lanes.items()}
    ordered = sorted(lanes, key=lambda ln: (lane_clock[ln], ln))
    events: list[dict] = []
    for lane in ordered:
        process, thread = lane
        clock = lane_clock[lane]
        label = _process_label(process, clock)
        if label not in processes:
            processes[label] = len(processes) + 1
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": processes[label],
                    "tid": 0,
                    "args": {"name": label},
                }
            )
        pid = processes[label]
        if (label, thread) not in threads:
            threads[(label, thread)] = (
                len([t for t in threads if t[0] == label]) + 1
            )
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": threads[(label, thread)],
                    "args": {"name": thread},
                }
            )
        tid = threads[(label, thread)]
        for record in lanes[lane]:  # already sorted by start
            event = {
                "name": record.name,
                "cat": f"{record.cat},{record.clock}",
                "ph": record.ph,
                "ts": record.start * _US,
                "pid": pid,
                "tid": tid,
                "args": {**record.args_dict(), "clock": record.clock},
            }
            if record.ph == "X":
                event["dur"] = record.seconds * _US
            else:
                event["s"] = "t"
            events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": "repro.observe.trace/1",
            "clock_domains": {
                WALL: "measured wall time",
                SIM: "modeled Frontier time (SimClock)",
            },
        },
    }


def write_chrome_trace(tracer: Tracer, path) -> Path:
    target = Path(path)
    target.write_text(json.dumps(to_chrome_trace(tracer), indent=1))
    return target


def load_chrome_trace(path) -> dict:
    """Load a trace as a validated Chrome trace object.

    Accepts a monolithic Chrome JSON file, or any streamed-shard source
    from :mod:`repro.observe.stream` — a shard directory, its
    ``manifest.json``, or a single ``.jsonl`` shard file — which is
    merged to the equivalent Chrome object on the fly.
    """
    from repro.observe.stream import is_shard_source, merge_shards

    target = Path(path)
    if is_shard_source(target):
        obj = merge_shards(target)
    else:
        if not target.exists():
            raise ObserveError(f"trace file not found: {target}")
        try:
            obj = json.loads(target.read_text())
        except json.JSONDecodeError as exc:
            raise ObserveError(
                f"trace file is not valid JSON: {exc}"
            ) from exc
    problems = validate_chrome_trace(obj)
    if problems:
        raise ObserveError(
            f"invalid Chrome trace {target}: " + "; ".join(problems[:5])
        )
    return obj


def validate_chrome_trace(obj) -> list[str]:
    """Schema-check a Chrome trace; returns a list of problems.

    ``obj`` may be the trace object itself, or a path — monolithic
    JSON, a ``.jsonl`` shard, a shard directory, or a manifest (the
    streamed forms are merged before checking). Checks the required
    fields per event phase, that per-lane ``ts`` values are
    monotonically non-decreasing, and that no (pid, tid) lane mixes
    the two clock domains.
    """
    if isinstance(obj, (str, Path)):
        from repro.observe.stream import (
            VALIDATE_STREAM_THRESHOLD,
            is_shard_source,
            load_manifest,
            merge_shards,
            validate_shard_stream,
        )

        target = Path(obj)
        if is_shard_source(target):
            if target.suffix != ".jsonl":
                # million-span shard directories are schema-checked by
                # streaming instead of materializing the merged trace
                try:
                    declared = int(load_manifest(target).get("spans", 0))
                except ObserveError as exc:
                    return [str(exc)]
                if declared > VALIDATE_STREAM_THRESHOLD:
                    return validate_shard_stream(target)
            try:
                obj = merge_shards(target)
            except ObserveError as exc:
                return [str(exc)]
        else:
            try:
                obj = json.loads(target.read_text())
            except OSError as exc:
                return [f"cannot read {target}: {exc}"]
            except json.JSONDecodeError as exc:
                return [f"{target} is not valid JSON: {exc}"]
    problems: list[str] = []
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        return ["top level must be an object with a 'traceEvents' list"]
    events = obj["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' must be a list"]
    last_ts: dict[tuple, float] = {}
    lane_clocks: dict[tuple, str] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index} is not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "i", "M"):
            problems.append(f"event {index} has unsupported phase {ph!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"event {index} missing integer {key!r}")
        if ph == "M":
            continue  # metadata events carry no timestamps
        if not isinstance(event.get("name"), str):
            problems.append(f"event {index} missing 'name'")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"event {index} missing numeric 'ts'")
            continue
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(
                    f"event {index} ({event.get('name')}) missing "
                    "nonnegative 'dur'"
                )
        lane = (event.get("pid"), event.get("tid"))
        if ts < last_ts.get(lane, float("-inf")):
            problems.append(
                f"event {index} ({event.get('name')}) breaks per-lane "
                f"timestamp monotonicity on pid/tid {lane}"
            )
        last_ts[lane] = ts
        clock = (event.get("args") or {}).get("clock")
        if clock is not None:
            known = lane_clocks.setdefault(lane, clock)
            if known != clock:
                problems.append(
                    f"lane pid/tid {lane} mixes clock domains "
                    f"({known!r} and {clock!r})"
                )
    return problems


def summarize_chrome_trace(obj, *, width: int = 72) -> str:
    """Human summary of a loaded Chrome trace (the ``grayscott trace`` cmd)."""
    from repro.util.tables import Table

    events = [e for e in obj.get("traceEvents", []) if e.get("ph") == "X"]
    meta = {
        (e["pid"], e.get("tid", 0)): e["args"]["name"]
        for e in obj.get("traceEvents", [])
        if e.get("ph") == "M" and e.get("name") == "thread_name"
    }
    process_names = {
        e["pid"]: e["args"]["name"]
        for e in obj.get("traceEvents", [])
        if e.get("ph") == "M" and e.get("name") == "process_name"
    }
    by_cat: dict[str, list[dict]] = {}
    for event in events:
        cat = str(event.get("cat", "?")).split(",")[0]
        by_cat.setdefault(cat, []).append(event)
    table = Table(
        ["category", "spans", "total time", "share"],
        title=f"trace summary ({len(events)} spans)",
    )
    grand_total = sum(e["dur"] for e in events) or 1.0
    for cat in sorted(by_cat):
        cat_events = by_cat[cat]
        total = sum(e["dur"] for e in cat_events)
        table.add_row(
            [
                cat,
                len(cat_events),
                format_seconds(total / _US),
                f"{100 * total / grand_total:.1f}%",
            ]
        )
    lanes = Table(["process", "lane", "spans", "busy"], title="lanes")
    by_lane: dict[tuple, list[dict]] = {}
    for event in events:
        by_lane.setdefault((event["pid"], event["tid"]), []).append(event)
    for lane in sorted(by_lane):
        lane_events = by_lane[lane]
        lanes.add_row(
            [
                process_names.get(lane[0], f"pid{lane[0]}"),
                meta.get(lane, f"tid{lane[1]}"),
                len(lane_events),
                format_seconds(sum(e["dur"] for e in lane_events) / _US),
            ]
        )
    rows = []
    for lane in sorted(by_lane):
        label = (
            f"{process_names.get(lane[0], lane[0])}/"
            f"{meta.get(lane, lane[1])}"
        )
        intervals = [
            (e["ts"] / _US, (e["ts"] + e["dur"]) / _US) for e in by_lane[lane]
        ]
        rows.append((label, "#", intervals))
    return "\n\n".join(
        [table.render(), lanes.render(), ascii_timeline(rows, width=width)]
    )


# ---------------------------------------------------------------------------
# metrics JSON
# ---------------------------------------------------------------------------


def metrics_to_json(registry: MetricsRegistry) -> dict:
    return registry.to_json()


def write_metrics_json(registry: MetricsRegistry, path) -> Path:
    target = Path(path)
    target.write_text(json.dumps(metrics_to_json(registry), indent=1))
    return target


# ---------------------------------------------------------------------------
# ASCII timelines
# ---------------------------------------------------------------------------


def ascii_timeline(rows, *, width: int = 72, title: str | None = None) -> str:
    """Render labelled interval rows as a fixed-width text timeline.

    ``rows`` is a list of ``(label, glyph, intervals)`` with intervals
    as ``(start, end)`` pairs in one shared timebase. Rows with no
    intervals are skipped; an entirely empty timeline renders as
    ``"(empty trace)"``. This is the shared renderer behind
    ``RocprofReport.render_trace`` and the ``grayscott trace`` command.
    """
    populated = [(label, glyph, iv) for label, glyph, iv in rows if iv]
    if not populated:
        return "(empty trace)"
    t_end = max(end for _, _, intervals in populated for _, end in intervals)
    t_end = t_end or 1.0
    count = sum(len(intervals) for _, _, intervals in populated)
    header = title or f"trace over {format_seconds(t_end)} ({count} events)"
    label_width = max(len(label) for label, _, _ in populated)
    label_width = max(label_width, 12)
    lines = [header]
    for label, glyph, intervals in populated:
        row = [" "] * width
        for start, end in intervals:
            lo = int(start / t_end * (width - 1))
            hi = max(lo + 1, int(end / t_end * (width - 1)) + 1)
            for pos in range(lo, min(hi, width)):
                row[pos] = glyph
        lines.append(f"{label:>{label_width}} |{''.join(row)}|")
    return "\n".join(lines)


#: default glyph per built-in span category
_CATEGORY_GLYPHS = {"core": "-", "gpu": "#", "mpi": "~", "adios": "="}


def tracer_timeline(tracer: Tracer, *, width: int = 72) -> str:
    """ASCII timeline of a live tracer, one row per lane per domain.

    Wall-clock and sim-clock lanes get separate sections since their
    timebases are not comparable.
    """
    sections = []
    for clock, heading in ((WALL, "wall clock"), (SIM, "modeled clock")):
        rows = []
        for (process, thread), records in sorted(tracer.lanes().items()):
            spans = [r for r in records if r.clock == clock and r.ph == "X"]
            if not spans:
                continue
            glyph = _CATEGORY_GLYPHS.get(spans[0].cat, "*")
            rows.append(
                (
                    f"{process}/{thread}",
                    glyph,
                    [(r.start, r.end) for r in spans],
                )
            )
        if rows:
            count = sum(len(iv) for _, _, iv in rows)
            t_end = max(end for _, _, iv in rows for _, end in iv)
            sections.append(
                ascii_timeline(
                    rows,
                    width=width,
                    title=(
                        f"{heading}: {format_seconds(t_end)} "
                        f"({count} spans)"
                    ),
                )
            )
    return "\n\n".join(sections) if sections else "(empty trace)"


def spans_to_rows(
    spans: list[SpanRecord], *, key=lambda r: r.thread, glyphs=None
) -> list[tuple]:
    """Group spans into ascii_timeline rows by an arbitrary key."""
    grouped: dict[str, list[SpanRecord]] = {}
    for record in spans:
        grouped.setdefault(key(record), []).append(record)
    glyphs = glyphs or {}
    return [
        (
            label,
            glyphs.get(label, "#"),
            [(r.start, r.end) for r in grouped[label]],
        )
        for label in grouped
    ]
