"""repro.observe — unified cross-layer tracing and metrics.

The instrumentation spine of the package: one :class:`Tracer` collects
spans from the GPU simulator, the MPI substrate, the ADIOS I/O layer,
and the solver/workflow drivers, keeping the two clock domains (wall
time vs. modeled :class:`~repro.util.timers.SimClock` time) on separate
lanes; a :class:`MetricsRegistry` accumulates counters, gauges, and
histograms alongside.

Typical use (also what ``grayscott run --trace-out`` does)::

    from repro import observe
    from repro.observe.export import write_chrome_trace, write_metrics_json

    with observe.session() as tracer:
        report = Workflow(settings).run()
    write_chrome_trace(tracer, "trace.json")     # load in ui.perfetto.dev
    write_metrics_json(tracer.metrics, "metrics.json")

Tracing is disabled unless a tracer is installed; every hook in the
runtime layers checks :func:`active` first, so a disabled run pays one
attribute read per hook site. See ``docs/OBSERVABILITY.md``.
"""

from repro.observe.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.observe.trace import (
    SIM,
    WALL,
    SpanRecord,
    Tracer,
    activate,
    active,
    deactivate,
    session,
)

__all__ = [
    "SIM",
    "WALL",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "Tracer",
    "activate",
    "active",
    "deactivate",
    "session",
]
