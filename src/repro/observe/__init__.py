"""repro.observe — unified cross-layer tracing and metrics.

The instrumentation spine of the package: one :class:`Tracer` collects
spans from the GPU simulator, the MPI substrate, the ADIOS I/O layer,
and the solver/workflow drivers, keeping the two clock domains (wall
time vs. modeled :class:`~repro.util.timers.SimClock` time) on separate
lanes; a :class:`MetricsRegistry` accumulates counters, gauges, and
histograms alongside.

Typical use (also what ``grayscott run --trace-out`` does)::

    from repro import observe
    from repro.observe.export import write_chrome_trace, write_metrics_json

    with observe.session() as tracer:
        report = Workflow(settings).run()
    write_chrome_trace(tracer, "trace.json")     # load in ui.perfetto.dev
    write_metrics_json(tracer.metrics, "metrics.json")

Tracing is disabled unless a tracer is installed; every hook in the
runtime layers checks :func:`active` first, so a disabled run pays one
attribute read per hook site. See ``docs/OBSERVABILITY.md``.

For runs too large to buffer, :mod:`repro.observe.stream` replaces
"accumulate then dump" with streaming sinks attached to the tracer: a
sharded Perfetto-JSONL writer (:class:`ShardedPerfettoWriter`), a
crash-telemetry ring buffer (:class:`FlightRecorder`), and periodic
live metrics snapshots (:class:`MetricsAggregator`).
"""

from repro.observe.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.observe.stream import (
    FlightRecorder,
    MetricsAggregator,
    ShardedPerfettoWriter,
    merge_shards,
    write_merged,
)
from repro.observe.trace import (
    SIM,
    WALL,
    SpanRecord,
    Tracer,
    TraceSink,
    activate,
    active,
    deactivate,
    session,
)

__all__ = [
    "SIM",
    "WALL",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsAggregator",
    "MetricsRegistry",
    "ShardedPerfettoWriter",
    "SpanRecord",
    "TraceSink",
    "Tracer",
    "activate",
    "active",
    "deactivate",
    "merge_shards",
    "session",
    "write_merged",
]
