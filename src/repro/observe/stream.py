"""Streaming telemetry: bounded-memory trace export and live metrics.

The PR-1 tracer accumulates every span in memory and dumps one
monolithic Chrome JSON at exit — fine at 4,096 modeled ranks,
impossible at the 262,144-rank ROADMAP target. This module replaces
"accumulate then dump" with incremental sinks attached to a
:class:`~repro.observe.trace.Tracer` (``retain=False`` keeps the span
list empty):

- :class:`ShardedPerfettoWriter` — spans flush to rotating JSONL shard
  files as they close; a ``manifest.json`` indexes the shards; and
  :func:`merge_shards` reassembles a monolithic Chrome trace
  **byte-identical** to what :func:`repro.observe.export.
  write_chrome_trace` would have produced from a retained tracer.
- :class:`FlightRecorder` — a per-lane ring buffer keeping only the
  last N spans per lane plus every error/slow span; dumpable on demand
  or on exception (crash telemetry for long campaigns).
- :class:`MetricsAggregator` — periodic snapshots of a registry
  (counter rates, gauge values, histogram p50/p95/p99), optionally
  published over the :mod:`repro.adios.sst` streaming engine so an
  attached :class:`~repro.adios.sst.SSTReader` watches a run in
  flight (:class:`LiveMetricsPublisher` / :func:`read_live_snapshot`).

Shard format (``repro.observe.shards/1``)
-----------------------------------------

Each shard is a JSONL file: one span per line, a JSON object with the
full :class:`~repro.observe.trace.SpanRecord` payload (``name``,
``cat``, ``clock``, ``process``, ``thread``, ``start``, ``seconds``,
``ph``, ``args``). Lines appear in the order the spans were recorded,
so replaying every shard of a manifest in order reconstructs the exact
per-lane span sequences of the original tracer — which is what makes
the merged export byte-identical to the monolithic one. A directory
target gets ``manifest.json``; a ``*.jsonl`` target is a single
unrotated shard with no manifest.

Process-parallel runs (:mod:`repro.par`) extend this: each worker
writes its *own* shard files into the parent's stream directory and
ships back only the manifest entries; the parent adopts them with
:meth:`ShardedPerfettoWriter.adopt_shards` instead of replaying span
lists — the million-rank trace never materializes in any one process.
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from threading import Lock

from repro.observe.metrics import MetricsRegistry
from repro.observe.trace import SpanRecord, Tracer, TraceSink
from repro.util.errors import ObserveError

#: schema identifier written to shard manifests
SHARD_SCHEMA = "repro.observe.shards/1"

#: schema identifier of live metrics snapshots
LIVE_SCHEMA = "repro.observe.live/1"

#: the index file of a shard directory
MANIFEST_NAME = "manifest.json"

#: span fields serialized to each JSONL line, in order
_SPAN_FIELDS = (
    "name", "cat", "clock", "process", "thread", "start", "seconds", "ph",
)


# ---------------------------------------------------------------------------
# span <-> JSONL record
# ---------------------------------------------------------------------------


def span_to_record(span: SpanRecord) -> dict:
    """The JSONL payload of one span (args flattened to a dict)."""
    record = {field: getattr(span, field) for field in _SPAN_FIELDS}
    record["args"] = span.args_dict()
    return record


def record_to_span_kwargs(record: dict) -> dict:
    """The :meth:`Tracer.add_span` keyword arguments of one JSONL record."""
    if not isinstance(record, dict):
        raise ObserveError(f"shard record is not an object: {record!r}")
    missing = [f for f in _SPAN_FIELDS if f not in record]
    if missing:
        raise ObserveError(f"shard record missing fields {missing}")
    kwargs = {field: record[field] for field in _SPAN_FIELDS}
    kwargs["args"] = record.get("args") or {}
    return kwargs


# ---------------------------------------------------------------------------
# the sharded / streaming Perfetto-JSONL writer
# ---------------------------------------------------------------------------


class ShardedPerfettoWriter(TraceSink):
    """Flush spans to rotating JSONL shards as they close.

    ``target`` is either a directory (sharded mode: ``<prefix>NNNNN.
    jsonl`` files plus ``manifest.json``) or a ``*.jsonl`` path (a
    single unrotated shard, no manifest). Spans buffer in memory up to
    ``flush_threshold`` and are then appended to the current shard;
    a shard rotates once it holds ``shard_spans`` spans. Peak
    tracer-resident span count is therefore bounded by the flush
    threshold regardless of run size (:attr:`max_buffered` records the
    observed high-water mark).
    """

    def __init__(
        self,
        target,
        *,
        flush_threshold: int = 4096,
        shard_spans: int = 131072,
        prefix: str = "trace-",
        manifest: bool | None = None,
    ):
        if flush_threshold < 1:
            raise ObserveError(
                f"flush_threshold must be >= 1, got {flush_threshold}"
            )
        if shard_spans < 1:
            raise ObserveError(f"shard_spans must be >= 1, got {shard_spans}")
        target = Path(target)
        self.single_file = target.suffix == ".jsonl"
        if self.single_file:
            self.dir = target.parent if str(target.parent) else Path(".")
            self._single_path = target
        else:
            self.dir = target
            self._single_path = None
        self.dir.mkdir(parents=True, exist_ok=True)
        self.flush_threshold = int(flush_threshold)
        self.shard_spans = int(shard_spans)
        self.prefix = prefix
        self.write_manifest = (
            manifest if manifest is not None else not self.single_file
        )
        if self.single_file and self.write_manifest:
            raise ObserveError(
                "a single-file .jsonl stream carries no manifest"
            )
        self.total_spans = 0
        self.max_buffered = 0
        self.closed = False
        self._lock = Lock()
        self._buffer: list[SpanRecord] = []
        self._entries: list[dict] = []
        self._shard_index = 0
        self._shard_count = 0
        self._handle = None
        # truncate a pre-existing single-file target so repeated runs
        # do not append to stale spans
        if self.single_file:
            self._single_path.write_text("")

    # -- TraceSink ---------------------------------------------------------
    def record(self, span: SpanRecord) -> None:
        with self._lock:
            if self.closed:
                raise ObserveError(
                    f"span recorded on closed stream {self.target}"
                )
            self._buffer.append(span)
            if len(self._buffer) > self.max_buffered:
                self.max_buffered = len(self._buffer)
            if len(self._buffer) >= self.flush_threshold:
                self._flush_buffer()

    def record_many(self, spans: list[SpanRecord]) -> None:
        """Bulk :meth:`record` — one lock hold for a whole span batch.

        Fed by :meth:`Tracer.add_spans` (the vector engine tier emits
        epochs as batches). The batch is folded into the buffer in
        flush-threshold slices so shard rotation and the buffered
        high-water mark behave exactly as per-span recording.
        """
        with self._lock:
            if self.closed:
                raise ObserveError(
                    f"span recorded on closed stream {self.target}"
                )
            threshold = self.flush_threshold
            pos = 0
            while pos < len(spans):
                take = threshold - len(self._buffer)
                self._buffer.extend(spans[pos:pos + take])
                pos += take
                if len(self._buffer) > self.max_buffered:
                    self.max_buffered = len(self._buffer)
                if len(self._buffer) >= threshold:
                    self._flush_buffer()

    def flush(self) -> None:
        with self._lock:
            self._flush_buffer()

    def close(self) -> None:
        """Flush, seal the open shard, and write the manifest."""
        with self._lock:
            if self.closed:
                return
            self._finish_shard()
            if self.write_manifest:
                self._write_manifest()
            self.closed = True

    # -- worker / merge hooks ----------------------------------------------
    def finish(self) -> list[dict]:
        """Seal the stream without a manifest; returns the shard entries.

        This is the worker half of the process-parallel protocol: a
        pool worker finishes its private sink and ships the (file,
        span-count) entries back for the parent to adopt.
        """
        with self._lock:
            self._finish_shard()
            self.closed = True
            return list(self._entries)

    def adopt_shards(self, entries: list[dict]) -> None:
        """Fold a worker's shard entries into this stream's manifest.

        The worker wrote its shard files directly into this stream's
        directory (under a unique prefix); adoption just seals the
        parent's open shard and appends the entries in order, so the
        merged replay order equals the order span lists would have
        merged in.
        """
        with self._lock:
            if self.closed:
                raise ObserveError("cannot adopt shards on a closed stream")
            if self.single_file:
                raise ObserveError(
                    "a single-file .jsonl stream cannot adopt worker shards"
                )
            self._finish_shard()
            for entry in entries:
                self._entries.append(
                    {"file": entry["file"], "spans": int(entry["spans"])}
                )
                self.total_spans += int(entry["spans"])
            # the next parent span starts a fresh shard *after* the
            # adopted ones, preserving global replay order
            self._shard_index = max(self._shard_index, len(self._entries))

    # -- internals ---------------------------------------------------------
    @property
    def target(self) -> Path:
        return self._single_path if self.single_file else self.dir

    def _shard_path(self) -> Path:
        if self.single_file:
            return self._single_path
        return self.dir / f"{self.prefix}{self._shard_index:05d}.jsonl"

    def _flush_buffer(self) -> None:
        if not self._buffer:
            return
        if self._handle is None:
            self._handle = open(self._shard_path(), "a")
        dumps = json.dumps
        lines = [
            dumps(span_to_record(span), separators=(",", ":"))
            for span in self._buffer
        ]
        self._handle.write("\n".join(lines) + "\n")
        self._handle.flush()
        self._shard_count += len(self._buffer)
        self.total_spans += len(self._buffer)
        self._buffer.clear()
        if not self.single_file and self._shard_count >= self.shard_spans:
            self._finish_shard()

    def _finish_shard(self) -> None:
        self._flush_buffer()
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        if self._shard_count and not self.single_file:
            self._entries.append(
                {"file": self._shard_path().name, "spans": self._shard_count}
            )
            self._shard_index += 1
            self._shard_count = 0

    def _write_manifest(self) -> None:
        manifest = {
            "schema": SHARD_SCHEMA,
            "spans": self.total_spans,
            "shards": self._entries,
        }
        (self.dir / MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=1) + "\n"
        )

    def __enter__(self) -> "ShardedPerfettoWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def stream_sink(tracer: Tracer | None) -> ShardedPerfettoWriter | None:
    """The tracer's directory-mode shard sink, if it carries one.

    Single-file ``.jsonl`` sinks are excluded: worker processes cannot
    append to one file concurrently, so the parallel paths fall back to
    span-list shipping for them (the parent sink still streams).
    """
    if tracer is None:
        return None
    for sink in tracer.sinks:
        if isinstance(sink, ShardedPerfettoWriter) and not sink.single_file:
            return sink
    return None


def worker_shard_spec(sink: ShardedPerfettoWriter, tag: str) -> dict:
    """The picklable recipe a pool worker uses to build its own sink."""
    return {
        "dir": str(sink.dir),
        "prefix": f"{sink.prefix}{tag}-",
        "flush_threshold": sink.flush_threshold,
        "shard_spans": sink.shard_spans,
    }


def open_worker_sink(spec: dict) -> ShardedPerfettoWriter:
    """Build the worker-side sink named by :func:`worker_shard_spec`."""
    return ShardedPerfettoWriter(
        spec["dir"],
        flush_threshold=spec["flush_threshold"],
        shard_spans=spec["shard_spans"],
        prefix=spec["prefix"],
        manifest=False,
    )


# ---------------------------------------------------------------------------
# reading shards back
# ---------------------------------------------------------------------------


def load_manifest(path) -> dict:
    """Load and schema-check a shard manifest."""
    target = Path(path)
    if target.is_dir():
        target = target / MANIFEST_NAME
    if not target.exists():
        raise ObserveError(f"shard manifest not found: {target}")
    try:
        manifest = json.loads(target.read_text())
    except json.JSONDecodeError as exc:
        raise ObserveError(f"manifest is not valid JSON: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("schema") != SHARD_SCHEMA:
        raise ObserveError(
            f"{target} is not a {SHARD_SCHEMA} manifest "
            f"(schema: {manifest.get('schema') if isinstance(manifest, dict) else None!r})"
        )
    shards = manifest.get("shards")
    if not isinstance(shards, list):
        raise ObserveError(f"manifest {target} has no 'shards' list")
    manifest["_dir"] = str(target.parent)
    return manifest


def is_shard_source(path) -> bool:
    """True if ``path`` names streamed shards rather than a Chrome JSON."""
    target = Path(path)
    return (
        target.is_dir()
        or target.suffix == ".jsonl"
        or target.name == MANIFEST_NAME
    )


def _iter_shard_file(path: Path):
    if not path.exists():
        raise ObserveError(f"shard file not found: {path}")
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ObserveError(
                    f"{path}:{lineno} is not valid JSON: {exc}"
                ) from exc
            yield record_to_span_kwargs(record)


def iter_span_records(source):
    """Yield ``add_span`` kwargs from a shard dir / manifest / .jsonl file.

    Records stream in manifest order, one shard at a time — reading a
    million-span trace never holds more than one line in memory.
    """
    target = Path(source)
    if target.suffix == ".jsonl":
        yield from _iter_shard_file(target)
        return
    manifest = load_manifest(target)
    base = Path(manifest["_dir"])
    for entry in manifest["shards"]:
        yield from _iter_shard_file(base / entry["file"])


def rebuild_tracer(source) -> Tracer:
    """Replay streamed shards into a fresh retained tracer."""
    tracer = Tracer()
    for kwargs in iter_span_records(source):
        tracer.add_span(**kwargs)
    return tracer


def merge_shards(source) -> dict:
    """Reassemble streamed shards into one monolithic Chrome trace.

    The result is byte-identical (via :func:`write_merged`) to what the
    monolithic exporter would have written from the same run's retained
    tracer: shards replay in manifest order, reconstructing the exact
    per-lane span sequences, and the export path is shared.
    """
    from repro.observe.export import to_chrome_trace

    return to_chrome_trace(rebuild_tracer(source))


def write_merged(source, out) -> Path:
    """Merge shards and write the Chrome trace JSON; returns the path."""
    target = Path(out)
    # the exact serialization write_chrome_trace uses — byte-identity
    # with the monolithic exporter depends on it
    target.write_text(json.dumps(merge_shards(source), indent=1))
    return target


#: above this many manifest spans, :func:`repro.observe.export.
#: validate_chrome_trace` streams the shards instead of merging them
VALIDATE_STREAM_THRESHOLD = 1_000_000

#: stop a streaming validation after this many problems
_MAX_STREAM_PROBLEMS = 50


def validate_shard_stream(source) -> list[str]:
    """Schema-check streamed shards without materializing the trace.

    The bounded-memory complement of :func:`repro.observe.export.
    validate_chrome_trace` for million-span shard directories: every
    line must decode to a full span record, durations must be
    nonnegative, clock domains must be known and never mixed within a
    lane, and the shard span counts must add up to the manifest's
    total. Per-lane timestamp monotonicity needs no separate check
    here — the merged exporter sorts each lane by start time, so any
    stream with valid timestamps merges to a monotonic trace.
    """
    from repro.observe.trace import _CLOCKS

    target = Path(source)
    problems: list[str] = []
    expected = None
    if target.suffix != ".jsonl":
        try:
            expected = int(load_manifest(target).get("spans", 0))
        except ObserveError as exc:
            return [str(exc)]
    lane_clocks: dict[tuple[str, str], str] = {}
    count = 0
    truncated = False
    try:
        for kwargs in iter_span_records(target):
            count += 1
            clock = kwargs["clock"]
            if clock not in _CLOCKS:
                problems.append(
                    f"span {count} ({kwargs.get('name')!r}) has unknown "
                    f"clock {clock!r}"
                )
            if not isinstance(kwargs["start"], (int, float)):
                problems.append(f"span {count} missing numeric 'start'")
            seconds = kwargs["seconds"]
            if kwargs["ph"] == "X" and (
                not isinstance(seconds, (int, float)) or seconds < 0
            ):
                problems.append(
                    f"span {count} ({kwargs.get('name')!r}) missing "
                    "nonnegative 'seconds'"
                )
            lane = (kwargs["process"], kwargs["thread"])
            known = lane_clocks.setdefault(lane, clock)
            if known != clock:
                problems.append(
                    f"lane {lane} mixes clock domains "
                    f"({known!r} and {clock!r})"
                )
            if len(problems) >= _MAX_STREAM_PROBLEMS:
                problems.append("... (validation truncated)")
                truncated = True
                break
    except ObserveError as exc:
        problems.append(str(exc))
        truncated = True
    if expected is not None and not truncated and count != expected:
        problems.append(
            f"manifest declares {expected} spans but shards hold {count}"
        )
    return problems


def tail_spans(source, n: int = 20) -> list[dict]:
    """The last ``n`` span records of a stream (for ``observe tail``)."""
    window: deque[dict] = deque(maxlen=max(1, int(n)))
    for kwargs in iter_span_records(source):
        window.append(kwargs)
    return list(window)


# ---------------------------------------------------------------------------
# the flight recorder
# ---------------------------------------------------------------------------


class FlightRecorder(TraceSink):
    """Crash telemetry: keep the recent past, never the whole run.

    Retains a ring of the last ``per_lane`` spans for every lane, plus
    *every* span flagged as an error (a truthy ``error`` arg) or slower
    than ``slow_seconds``. Memory is bounded by ``lanes x per_lane +
    kept``, independent of run length. :meth:`dump` rebuilds a retained
    tracer in original record order; :meth:`guard` dumps automatically
    when the guarded block raises.
    """

    def __init__(
        self,
        *,
        per_lane: int = 64,
        slow_seconds: float | None = None,
        keep=None,
    ):
        if per_lane < 1:
            raise ObserveError(f"per_lane must be >= 1, got {per_lane}")
        self.per_lane = int(per_lane)
        self.slow_seconds = slow_seconds
        self.keep = keep
        self.evicted = 0
        self.recorded = 0
        self._lock = Lock()
        self._seq = 0
        self._rings: dict[tuple[str, str], deque] = {}
        self._kept: list[tuple[int, SpanRecord]] = []

    def _retain_always(self, span: SpanRecord) -> bool:
        if span.arg("error"):
            return True
        if (
            self.slow_seconds is not None
            and span.ph == "X"
            and span.seconds >= self.slow_seconds
        ):
            return True
        return bool(self.keep and self.keep(span))

    def record(self, span: SpanRecord) -> None:
        with self._lock:
            self._seq += 1
            self.recorded += 1
            if self._retain_always(span):
                self._kept.append((self._seq, span))
                return
            ring = self._rings.get(span.lane)
            if ring is None:
                ring = self._rings[span.lane] = deque(maxlen=self.per_lane)
            if len(ring) == self.per_lane:
                self.evicted += 1
            ring.append((self._seq, span))

    def __len__(self) -> int:
        with self._lock:
            return len(self._kept) + sum(len(r) for r in self._rings.values())

    def spans(self) -> list[SpanRecord]:
        """Retained spans, in original record order."""
        with self._lock:
            entries = list(self._kept)
            for ring in self._rings.values():
                entries.extend(ring)
        entries.sort(key=lambda pair: pair[0])
        return [span for _, span in entries]

    def dump(self) -> Tracer:
        """Rebuild the retained window as a fresh tracer (exportable)."""
        tracer = Tracer()
        for span in self.spans():
            tracer.add_span(
                span.name,
                cat=span.cat,
                clock=span.clock,
                process=span.process,
                thread=span.thread,
                start=span.start,
                seconds=span.seconds,
                args=span.args_dict(),
                ph=span.ph,
            )
        return tracer

    def dump_chrome(self, path) -> Path:
        from repro.observe.export import write_chrome_trace

        return write_chrome_trace(self.dump(), path)

    @contextmanager
    def guard(self, path):
        """Dump the flight record to ``path`` if the block raises."""
        try:
            yield self
        except BaseException:
            self.dump_chrome(path)
            raise


# ---------------------------------------------------------------------------
# live metrics
# ---------------------------------------------------------------------------


class MetricsAggregator:
    """Periodic bounded snapshots of a :class:`MetricsRegistry`.

    Each :meth:`snapshot` reports every counter's value *and rate since
    the previous snapshot*, every gauge's current value, and each
    histogram's count/p50/p95/p99 — a fixed-size record regardless of
    how many samples the histograms pooled. With a ``publisher`` the
    snapshot is also pushed over the SST streaming engine so a live
    client can watch the run.
    """

    def __init__(self, registry: MetricsRegistry, *, publisher=None):
        self.registry = registry
        self.publisher = publisher
        self.snapshots = 0
        self._last_time: float | None = None
        self._last_counts: dict[tuple, float] = {}

    def snapshot(self, *, now: float | None = None) -> dict:
        """One live record; ``now`` defaults to the monotonic wall clock.

        Pass an explicit ``now`` (e.g. virtual seconds) to make rates
        deterministic.
        """
        if now is None:
            now = time.monotonic()
        interval = (
            None if self._last_time is None else float(now - self._last_time)
        )
        counters = []
        for metric in self.registry.counters():
            key = (metric.name, metric.labels)
            rate = None
            if interval is not None and interval > 0:
                rate = (metric.value - self._last_counts.get(key, 0.0)) / interval
            self._last_counts[key] = metric.value
            counters.append(
                {
                    "name": metric.name,
                    "labels": dict(metric.labels),
                    "value": metric.value,
                    "rate": rate,
                }
            )
        gauges = [
            {"name": m.name, "labels": dict(m.labels), "value": m.value}
            for m in self.registry.gauges()
        ]
        histograms = [
            {"name": m.name, "labels": dict(m.labels), **m.snapshot()}
            for m in self.registry.histograms()
        ]
        self._last_time = now
        self.snapshots += 1
        record = {
            "schema": LIVE_SCHEMA,
            "seq": self.snapshots,
            "time": float(now),
            "interval_seconds": interval,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }
        if self.publisher is not None:
            self.publisher.publish(record)
        return record

    def close(self) -> None:
        if self.publisher is not None:
            self.publisher.close()


class LiveMetricsPublisher:
    """Push metrics snapshots over the :mod:`repro.adios.sst` engine.

    Each snapshot is one SST step carrying a single ``snapshot``
    variable: the JSON record as a uint8 byte array (the shape is
    re-declared per step since snapshots vary in size). An attached
    :class:`~repro.adios.sst.SSTReader` — same process or another
    thread — consumes steps with :func:`read_live_snapshot`.
    """

    def __init__(self, stream: str = "repro.metrics", *, queue_limit: int = 8):
        from repro.adios.api import Adios

        self.stream = str(stream)
        self.adios = Adios()
        self.io = self.adios.declare_io("repro.observe.live")
        self.io.set_engine("SST")
        self.io.set_parameter("QueueLimit", queue_limit)
        self.writer = self.io.open(self.stream, "w")
        self.published = 0

    def publish(self, record: dict) -> None:
        import numpy as np

        payload = np.frombuffer(
            json.dumps(record, sort_keys=True).encode(), dtype=np.uint8
        )
        self.io.remove_variable("snapshot")
        variable = self.io.define_variable(
            "snapshot",
            np.uint8,
            shape=(payload.size,),
            start=(0,),
            count=(payload.size,),
        )
        self.writer.begin_step()
        self.writer.put(variable, payload)
        self.writer.end_step()
        self.published += 1

    def close(self) -> None:
        self.writer.close()

    def __enter__(self) -> "LiveMetricsPublisher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_live_snapshot(reader, *, timeout: float = 30.0):
    """One ``(status, record)`` step from a live-metrics SST reader.

    ``status`` is the SST step status (``OK`` / ``EndOfStream`` /
    ``Timeout``); ``record`` is the decoded snapshot dict when OK.
    """
    from repro.adios.sst import OK

    status = reader.begin_step(timeout=timeout)
    if status != OK:
        return status, None
    data = reader.get("snapshot")
    reader.end_step()
    return status, json.loads(bytes(bytearray(data)).decode())
