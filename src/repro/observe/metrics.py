"""Counters, gauges, and histograms with per-rank labels.

A :class:`MetricsRegistry` is a flat namespace of named metrics, each
distinguished by a frozen label set (``rank=0``, ``device="gcd1"``,
...). Instrumented layers get-or-create their metrics on every event —
creation is a dict lookup after the first call — so registries can be
queried at any time and merged across ranks at the end of a run.

Merge semantics (:meth:`MetricsRegistry.merge`):

- counters add,
- gauges keep the most recently set value,
- histograms pool their samples.

Every metric carries its labels; :meth:`MetricsRegistry.to_json`
produces the flat machine-readable record the CLI writes as
``--metrics-out`` and the workflow embeds into its FAIR provenance.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.util.errors import ObserveError

#: label set, frozen for use as a dict key: (("rank", "0"), ...)
LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """A monotonically increasing count (messages, bytes, launches)."""

    name: str
    labels: LabelKey = ()
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObserveError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value (allocated bytes, queue depth)."""

    name: str
    labels: LabelKey = ()
    value: float | None = None

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """A sample distribution (kernel durations, JIT compile costs)."""

    name: str
    labels: LabelKey = ()
    samples: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.samples.append(float(value))

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            raise ObserveError(f"histogram {self.name!r} has no samples")
        return self.total / len(self.samples)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile, ``q`` in [0, 100]."""
        if not self.samples:
            raise ObserveError(f"histogram {self.name!r} has no samples")
        if not 0 <= q <= 100:
            raise ObserveError(f"percentile {q} outside [0, 100]")
        ordered = sorted(self.samples)
        rank = max(0, min(len(ordered) - 1, round(q / 100 * len(ordered)) - 1))
        return ordered[rank]

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile, ``q`` in [0, 1] (see :meth:`percentile`).

        A single-sample histogram returns that sample for every ``q``,
        and the endpoints are exact: ``quantile(0)`` is the minimum,
        ``quantile(1)`` the maximum.
        """
        if not 0 <= q <= 1:
            raise ObserveError(f"quantile {q} outside [0, 1]")
        return self.percentile(q * 100)

    def summary(self) -> dict:
        if not self.samples:
            return {"count": 0}
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": min(self.samples),
            "max": max(self.samples),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
        }

    def snapshot(self) -> dict:
        """The live-metrics record: :meth:`summary` plus the p99 tail.

        This is what :class:`repro.observe.stream.MetricsAggregator`
        publishes per interval; an empty histogram snapshots to
        ``{"count": 0}`` instead of raising.
        """
        if not self.samples:
            return {"count": 0}
        return {**self.summary(), "p99": self.percentile(99)}


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Thread-safe flat registry of counters/gauges/histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: (kind, name, label key) -> metric
        self._metrics: dict[tuple[str, str, LabelKey], object] = {}
        #: name -> kind, to reject one name used as two kinds
        self._kinds: dict[str, str] = {}

    def _get(self, kind: str, name: str, labels: dict):
        key = (kind, name, _label_key(labels))
        with self._lock:
            known = self._kinds.setdefault(name, kind)
            if known != kind:
                raise ObserveError(
                    f"metric {name!r} already registered as a {known}, "
                    f"requested as a {kind}"
                )
            metric = self._metrics.get(key)
            if metric is None:
                metric = _KINDS[kind](name=name, labels=key[2])
                self._metrics[key] = metric
            return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get("histogram", name, labels)

    # -- queries ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def all_metrics(self) -> list:
        with self._lock:
            return [self._metrics[key] for key in sorted(self._metrics)]

    def counters(self) -> list[Counter]:
        return [m for m in self.all_metrics() if isinstance(m, Counter)]

    def gauges(self) -> list[Gauge]:
        return [m for m in self.all_metrics() if isinstance(m, Gauge)]

    def histograms(self) -> list[Histogram]:
        return [m for m in self.all_metrics() if isinstance(m, Histogram)]

    def counter_value(self, name: str, **labels) -> float:
        """Sum of a counter over every label set matching ``labels``."""
        want = dict(_label_key(labels))
        total = 0.0
        for metric in self.counters():
            if metric.name != name:
                continue
            have = dict(metric.labels)
            if all(have.get(k) == v for k, v in want.items()):
                total += metric.value
        return total

    # -- cross-rank merge -------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry (returns self)."""
        for metric in other.all_metrics():
            labels = dict(metric.labels)
            if isinstance(metric, Counter):
                self.counter(metric.name, **labels).inc(metric.value)
            elif isinstance(metric, Gauge):
                if metric.value is not None:
                    self.gauge(metric.name, **labels).set(metric.value)
            elif isinstance(metric, Histogram):
                self.histogram(metric.name, **labels).samples.extend(
                    metric.samples
                )
        return self

    @classmethod
    def merged(cls, registries) -> "MetricsRegistry":
        out = cls()
        for registry in registries:
            out.merge(registry)
        return out

    # -- export -----------------------------------------------------------
    def to_json(self) -> dict:
        """Machine-readable snapshot (the ``--metrics-out`` schema)."""
        counters = [
            {"name": m.name, "labels": dict(m.labels), "value": m.value}
            for m in self.counters()
        ]
        gauges = [
            {"name": m.name, "labels": dict(m.labels), "value": m.value}
            for m in self.gauges()
        ]
        histograms = [
            {"name": m.name, "labels": dict(m.labels), **m.summary()}
            for m in self.histograms()
        ]
        return {
            "schema": "repro.observe.metrics/1",
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def summary(self) -> dict:
        """Compact ``name{labels} -> value`` map for provenance records."""
        out: dict[str, float | dict] = {}
        for metric in self.all_metrics():
            labels = ",".join(f"{k}={v}" for k, v in metric.labels)
            key = f"{metric.name}{{{labels}}}" if labels else metric.name
            if isinstance(metric, Histogram):
                out[key] = metric.summary()
            else:
                out[key] = metric.value
        return out

    def render(self, title: str = "metrics") -> str:
        from repro.util.tables import Table

        table = Table(["metric", "labels", "value"], title=title)
        for metric in self.all_metrics():
            labels = ", ".join(f"{k}={v}" for k, v in metric.labels)
            if isinstance(metric, Histogram):
                if metric.count:
                    value = (
                        f"n={metric.count} mean={metric.mean:.3g} "
                        f"p95={metric.percentile(95):.3g}"
                    )
                else:
                    value = "n=0"
            else:
                value = metric.value
            table.add_row([metric.name, labels, value])
        return table.render()
