"""The cross-layer span tracer.

One :class:`Tracer` collects timeline events from every layer of a run
— GPU kernel launches, JIT compiles, H2D/D2H copies, MPI point-to-point
and collective calls, ADIOS step I/O, and solver/workflow stages — into
a single event stream that the exporters in :mod:`repro.observe.export`
turn into a Perfetto-loadable Chrome trace, a metrics JSON, or an ASCII
timeline.

Clock domains
-------------

The repo keeps two notions of time (see :mod:`repro.util.timers`): real
**wall** time, and **sim** time — the modeled Frontier clock that the
GPU/network/filesystem performance models advance. A span records which
domain its timestamps live in, and a *lane* (one ``(process, thread)``
row of the timeline) may only ever carry one domain; mixing raises
:class:`~repro.util.errors.ObserveError`. This is the tracing-level
version of the ``WallTimer``/``SimClock`` type separation: a modeled
kernel duration can never be laid onto a measured I/O lane.

Lanes
-----

``process`` groups related lanes (``"rank0"`` for a rank's host-side
work, ``"gcd0"`` for a simulated device), ``thread`` names the row
within it (``"core"``, ``"mpi"``, ``"adios"``, ``"kernel"``, ``"copy"``,
``"jit"``). The SPMD executor runs ranks as threads of one process, so
a single shared tracer (guarded by a lock) sees every rank.

Zero overhead when disabled
---------------------------

Nothing is traced unless a tracer has been installed with
:func:`activate` (or the :func:`session` context manager). Every
instrumentation site starts with ``tracer = active()`` — a module
attribute read — and does no further work when it returns ``None``, so
existing benchmarks are unaffected.

Sinks and bounded memory
------------------------

By default every span is retained in :attr:`Tracer.spans` until export
("accumulate then dump"). A tracer may instead carry **sinks** —
objects implementing the :class:`TraceSink` protocol — which observe
every span as it closes. With ``retain=False`` the in-memory list is
skipped entirely and the sinks are the only consumers: this is the
bounded-memory streaming mode of :mod:`repro.observe.stream`, where a
million-rank modeled run exports rotating shard files without ever
materializing its span list.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

from repro.observe.metrics import MetricsRegistry
from repro.util.errors import ObserveError

#: measured time (``time.perf_counter`` relative to the tracer's epoch)
WALL = "wall"
#: modeled time (a :class:`~repro.util.timers.SimClock` timestamp)
SIM = "sim"

_CLOCKS = (WALL, SIM)

#: span categories used by the built-in instrumentation
CATEGORIES = ("core", "gpu", "mpi", "adios")


@dataclass(frozen=True)
class SpanRecord:
    """One timeline entry: a duration span or an instant event."""

    name: str
    cat: str
    clock: str  # WALL | SIM
    process: str
    thread: str
    start: float  # seconds within the clock domain
    seconds: float
    args: tuple = ()  # frozen (key, value) pairs
    ph: str = "X"  # Chrome phase: "X" complete span, "i" instant

    @property
    def end(self) -> float:
        return self.start + self.seconds

    @property
    def lane(self) -> tuple[str, str]:
        return (self.process, self.thread)

    def arg(self, key: str, default=None):
        for k, v in self.args:
            if k == key:
                return v
        return default

    def args_dict(self) -> dict:
        return dict(self.args)


class TraceSink:
    """Protocol for streaming span consumers attached to a tracer.

    A sink sees every span at the moment it is recorded (under the
    tracer's lock, so implementations must not re-enter the tracer).
    The base class is a no-op; concrete sinks live in
    :mod:`repro.observe.stream` (sharded Perfetto writer, flight
    recorder, metrics aggregator).
    """

    def record(self, span: SpanRecord) -> None:  # pragma: no cover
        """Observe one closed span."""

    def flush(self) -> None:
        """Push any buffered state out (shard files, snapshots)."""

    def close(self) -> None:
        """Flush and finalize (write manifests, release files)."""


class Tracer:
    """Thread-safe collector of :class:`SpanRecord` entries + metrics."""

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        *,
        sinks: list[TraceSink] | None = None,
        retain: bool = True,
    ) -> None:
        self._lock = threading.Lock()
        self.spans: list[SpanRecord] = []
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.sinks: list[TraceSink] = list(sinks) if sinks else []
        #: keep spans in memory (False = streaming mode, sinks only)
        self.retain = retain
        if not retain and not self.sinks:
            raise ObserveError(
                "a tracer with retain=False needs at least one sink; "
                "otherwise every span would be dropped"
            )
        #: lane -> clock domain, for the never-mix invariant
        self._lane_clocks: dict[tuple[str, str], str] = {}
        self._wall_epoch = time.perf_counter()

    # -- time --------------------------------------------------------------
    def wall_now(self) -> float:
        """Wall seconds since this tracer was created (span timebase)."""
        return time.perf_counter() - self._wall_epoch

    # -- recording ---------------------------------------------------------
    def add_span(
        self,
        name: str,
        *,
        cat: str,
        clock: str,
        process: str,
        thread: str,
        start: float,
        seconds: float,
        args: dict | None = None,
        ph: str = "X",
    ) -> SpanRecord:
        """Record a finished span with explicit timestamps.

        Used directly by the performance-model layers, whose events
        carry modeled (:data:`SIM`) timestamps; wall-clock sites usually
        use the :meth:`span` context manager instead.
        """
        if clock not in _CLOCKS:
            raise ObserveError(f"unknown clock domain {clock!r}; use {_CLOCKS}")
        if seconds < 0:
            raise ObserveError(f"span {name!r} has negative duration {seconds}")
        record = SpanRecord(
            name=name,
            cat=cat,
            clock=clock,
            process=process,
            thread=thread,
            start=start,
            seconds=seconds,
            args=tuple(sorted((args or {}).items())),
            ph=ph,
        )
        with self._lock:
            known = self._lane_clocks.setdefault(record.lane, clock)
            if known != clock:
                raise ObserveError(
                    f"lane {record.lane} carries {known!r}-clock spans; "
                    f"refusing to add {clock!r}-clock span {name!r} "
                    "(one lane, one clock domain)"
                )
            if self.retain:
                self.spans.append(record)
            for sink in self.sinks:
                sink.record(record)
        return record

    def add_spans(self, records: list[SpanRecord]) -> int:
        """Record a batch of prebuilt :class:`SpanRecord` entries.

        The bulk path of the vector engine tier (:mod:`repro.sched.
        vector`): one lock acquisition for the whole batch, the same
        per-record validation :meth:`add_span` performs, and a single
        ``record_many`` call into every sink that implements it
        (falling back to per-record ``record`` otherwise).
        """
        records = list(records)
        if not records:
            return 0
        for record in records:
            if record.clock not in _CLOCKS:
                raise ObserveError(
                    f"unknown clock domain {record.clock!r}; use {_CLOCKS}"
                )
            if record.seconds < 0:
                raise ObserveError(
                    f"span {record.name!r} has negative duration "
                    f"{record.seconds}"
                )
        with self._lock:
            setdefault = self._lane_clocks.setdefault
            for record in records:
                known = setdefault(record.lane, record.clock)
                if known != record.clock:
                    raise ObserveError(
                        f"lane {record.lane} carries {known!r}-clock spans; "
                        f"refusing to add {record.clock!r}-clock span "
                        f"{record.name!r} (one lane, one clock domain)"
                    )
            if self.retain:
                self.spans.extend(records)
            for sink in self.sinks:
                record_many = getattr(sink, "record_many", None)
                if record_many is not None:
                    record_many(records)
                else:
                    record_one = sink.record
                    for record in records:
                        record_one(record)
        return len(records)

    def instant(
        self,
        name: str,
        *,
        cat: str,
        clock: str,
        process: str,
        thread: str,
        ts: float | None = None,
        args: dict | None = None,
    ) -> SpanRecord:
        """Record a zero-duration marker event."""
        if ts is None:
            if clock != WALL:
                raise ObserveError("sim-clock instants need an explicit ts")
            ts = self.wall_now()
        return self.add_span(
            name,
            cat=cat,
            clock=clock,
            process=process,
            thread=thread,
            start=ts,
            seconds=0.0,
            args=args,
            ph="i",
        )

    @contextmanager
    def span(
        self,
        name: str,
        *,
        cat: str,
        process: str,
        thread: str,
        args: dict | None = None,
    ):
        """Measure a wall-clock span around a ``with`` block.

        The span is recorded even if the block raises, so failed stages
        still show up in the timeline.
        """
        start = self.wall_now()
        try:
            yield self
        finally:
            self.add_span(
                name,
                cat=cat,
                clock=WALL,
                process=process,
                thread=thread,
                start=start,
                seconds=self.wall_now() - start,
                args=args,
            )

    # -- sinks -------------------------------------------------------------
    def add_sink(self, sink: TraceSink) -> TraceSink:
        """Attach a streaming sink; it sees every span recorded after."""
        with self._lock:
            self.sinks.append(sink)
        return sink

    def flush(self) -> None:
        """Flush every attached sink's buffered state."""
        with self._lock:
            sinks = list(self.sinks)
        for sink in sinks:
            sink.flush()

    def close(self) -> None:
        """Close every attached sink (writes shard manifests etc.)."""
        with self._lock:
            sinks = list(self.sinks)
        for sink in sinks:
            sink.close()

    # -- queries -----------------------------------------------------------
    def lanes(self) -> dict[tuple[str, str], list[SpanRecord]]:
        """Spans grouped by (process, thread), each sorted by start."""
        out: dict[tuple[str, str], list[SpanRecord]] = {}
        with self._lock:
            spans = list(self.spans)
        for record in spans:
            out.setdefault(record.lane, []).append(record)
        for records in out.values():
            records.sort(key=lambda r: (r.start, -r.seconds))
        return out

    def by_category(self) -> dict[str, list[SpanRecord]]:
        out: dict[str, list[SpanRecord]] = {}
        with self._lock:
            spans = list(self.spans)
        for record in spans:
            out.setdefault(record.cat, []).append(record)
        return out

    def select(self, *, cat: str | None = None, name: str | None = None):
        with self._lock:
            spans = list(self.spans)
        return [
            r for r in spans
            if (cat is None or r.cat == cat) and (name is None or r.name == name)
        ]

    def __len__(self) -> int:
        with self._lock:
            return len(self.spans)


# ---------------------------------------------------------------------------
# the global tracing switch
# ---------------------------------------------------------------------------

_active: Tracer | None = None
_activate_lock = threading.Lock()


def active() -> Tracer | None:
    """The installed tracer, or None when tracing is disabled."""
    return _active


def activate(tracer: Tracer | None = None) -> Tracer:
    """Install ``tracer`` (or a fresh one) as the process-wide tracer."""
    global _active
    with _activate_lock:
        if _active is not None:
            raise ObserveError(
                "a tracer is already active; deactivate() it first"
            )
        _active = tracer if tracer is not None else Tracer()
        return _active


def deactivate() -> Tracer | None:
    """Remove the installed tracer and return it (None if none was)."""
    global _active
    with _activate_lock:
        tracer, _active = _active, None
        return tracer


@contextmanager
def session(tracer: Tracer | None = None):
    """``with session() as tracer:`` — activate for the block's duration."""
    installed = activate(tracer)
    try:
        yield installed
    finally:
        deactivate()
