"""A spawn-safe process pool with deterministic result merging.

:func:`run_tasks` is the package's one parallel primitive: evaluate
``fn`` over a task list on ``jobs`` worker processes and return the
results **ordered by task index** — never by completion order — so
every caller's downstream reduction (rank-ordered sums, golden-file
renders, trace multisets) is bit-identical to a serial run. ``jobs=1``
is a plain list comprehension in the calling process: the parallel path
is opt-in and the serial path is untouched.

Scheduling is chunked work-stealing: the task list is cut into chunks
on a shared queue and idle workers pull the next chunk, so a straggler
config (a 4,096-rank ladder point next to a 1-rank point) does not
serialize the sweep. Large NumPy results return through
:mod:`repro.par.shm` shared-memory segments instead of the result pipe;
everything else rides pickle.

Workers default to the ``fork`` start method where available (task
functions may then be closures). "Spawn-safe" means the pool itself
never requires fork: pass ``context="spawn"`` and any *picklable*
task function — every hot-path task function in this package is
module-level or a bound method of a picklable model — and the pool
behaves identically.

When an :mod:`repro.observe` tracer is active in the parent, each
worker records its own private tracer (one wall span per task) and the
pool merges the captures back: per-worker wall lanes land under a
``par.w<N>`` PID prefix, modeled SIM spans merge verbatim, metrics fold
with counter/gauge/histogram semantics. See ``docs/PARALLEL.md``.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import traceback
from typing import Callable, Iterable, Sequence

from repro.observe import trace as observe
from repro.par import shm, tracemerge
from repro.util.errors import ParError


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``0`` means every core, ``None`` 1."""
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs < 0:
        raise ParError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def default_chunksize(ntasks: int, jobs: int) -> int:
    """~4 chunks per worker: fine enough to steal, coarse enough to amortize."""
    return max(1, -(-ntasks // (jobs * 4)))


def _worker_main(worker_id, fn, task_q, result_q, capture, jit_cache=None):
    # A forked worker inherits the parent's installed tracer object;
    # recording into that copy would be silently discarded. Detach it
    # and (when the parent is tracing) install a private one whose
    # capture ships back with the results.
    observe.deactivate()
    if jit_cache is not None:
        # Warm-start the tracing JIT from the parent's persistent cache.
        # The path is passed explicitly because a spawn-context worker
        # does not inherit the parent's configured module globals.
        from repro.gpu import jitcache

        jitcache.warm_start(jit_cache)
    tracer = None
    if capture:
        tracer = observe.activate(observe.Tracer())
    try:
        while True:
            chunk = task_q.get()
            if chunk is None:
                break
            # outbound chunks are shm-encoded by the parent: million-rank
            # shard payloads (starts/scale/comm vectors) ride segments,
            # not the task pipe
            chunk = shm.decode(chunk)
            out = []
            for index, task in chunk:
                try:
                    if tracer is not None:
                        with tracer.span(
                            f"task[{index}]", cat="core",
                            process="pool", thread="tasks",
                        ):
                            value = fn(task)
                    else:
                        value = fn(task)
                    out.append((index, True, shm.encode(value)))
                except Exception:
                    out.append((index, False, traceback.format_exc()))
            result_q.put(("chunk", worker_id, out))
    finally:
        captured = None
        if tracer is not None:
            observe.deactivate()
            captured = tracemerge.capture(tracer)
        result_q.put(("done", worker_id, captured))


def run_tasks(
    fn: Callable,
    tasks: Iterable,
    *,
    jobs: int | None = 1,
    chunksize: int | None = None,
    context: str | None = None,
) -> list:
    """Evaluate ``fn`` over ``tasks`` on ``jobs`` processes, in order.

    Returns ``[fn(t) for t in tasks]`` — same values, same order — with
    the work spread over a process pool when ``jobs > 1``. ``jobs=0``
    means ``os.cpu_count()``. The serial path (``jobs<=1`` or fewer
    than two tasks) runs inline with zero pool machinery.
    """
    task_list: Sequence = list(tasks)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(task_list) <= 1:
        return [fn(task) for task in task_list]
    jobs = min(jobs, len(task_list))
    if chunksize is None:
        chunksize = default_chunksize(len(task_list), jobs)

    tracer = observe.active()
    if tracer is None:
        return _run_pool(fn, task_list, jobs, chunksize, context, None)
    with tracer.span(
        "par.run_tasks", cat="core", process="par", thread="pool",
        args={"tasks": len(task_list), "jobs": jobs, "chunksize": chunksize},
    ):
        return _run_pool(fn, task_list, jobs, chunksize, context, tracer)


def _run_pool(fn, task_list, jobs, chunksize, context, tracer):
    from repro.gpu import jitcache

    jit_cache = jitcache.configured_path()
    if context is None:
        methods = multiprocessing.get_all_start_methods()
        context = "fork" if "fork" in methods else methods[0]
    ctx = multiprocessing.get_context(context)
    task_q = ctx.Queue()
    result_q = ctx.Queue()
    indexed = list(enumerate(task_list))
    for start in range(0, len(indexed), chunksize):
        task_q.put(shm.encode(indexed[start:start + chunksize]))
    for _ in range(jobs):
        task_q.put(None)

    workers = [
        ctx.Process(
            target=_worker_main,
            args=(w, fn, task_q, result_q, tracer is not None, jit_cache),
            daemon=True,
        )
        for w in range(jobs)
    ]
    for proc in workers:
        proc.start()

    results: dict[int, object] = {}
    failures: list[tuple[int, str]] = []
    done = [False] * jobs
    try:
        while not all(done):
            try:
                msg = result_q.get(timeout=1.0)
            except queue_mod.Empty:
                _check_workers_alive(workers, done)
                continue
            kind = msg[0]
            if kind == "chunk":
                for index, ok, payload in msg[2]:
                    if ok:
                        results[index] = payload
                    else:
                        failures.append((index, payload))
            elif kind == "done":
                done[msg[1]] = True
                if msg[2] is not None and tracer is not None:
                    tracemerge.merge_capture(tracer, msg[2], worker=msg[1])
        for proc in workers:
            proc.join()
    except BaseException:
        for encoded in results.values():
            shm.discard(encoded)
        _drain_tasks(task_q)
        raise
    finally:
        for proc in workers:
            if proc.is_alive():
                proc.terminate()
                proc.join()

    if failures:
        for encoded in results.values():
            shm.discard(encoded)
        _drain_tasks(task_q)
        failures.sort()
        index, tb = failures[0]
        more = f" (+{len(failures) - 1} more)" if len(failures) > 1 else ""
        raise ParError(
            f"task {index} raised in a worker{more}:\n{tb.rstrip()}"
        )
    return [shm.decode(results[i]) for i in range(len(task_list))]


def _drain_tasks(task_q) -> None:
    """Discard undelivered task chunks — and their shm segments.

    On an abandoned run (worker death, interrupt, task failure) chunks
    still sitting on the task queue hold shared-memory segments no
    worker will ever decode; unlink them so a failed million-rank run
    cannot leak /dev/shm.
    """
    while True:
        try:
            chunk = task_q.get_nowait()
        except (queue_mod.Empty, OSError, ValueError):
            return
        if chunk is not None:
            shm.discard(chunk)


def _check_workers_alive(workers, done) -> None:
    for w, proc in enumerate(workers):
        if not done[w] and not proc.is_alive() and proc.exitcode != 0:
            raise ParError(
                f"pool worker {w} died with exit code {proc.exitcode} "
                "before finishing its tasks"
            )
