"""Merging per-worker observability capture into the parent tracer.

Each pool worker runs with its own private :class:`~repro.observe.trace.Tracer`
(the registry objects hold locks and cannot cross a pickle boundary, so
the worker ships plain data: its ``SpanRecord`` list and a metrics
snapshot). The parent folds them back in:

- **SIM-clock spans** merge verbatim. Modeled timelines are worker-count
  invariant by construction (every duration is a pure function of the
  seed), so the merged multiset is identical to a serial run's.
- **WALL-clock spans** are real measurements of *that worker process*;
  their ``process`` label is remapped to ``par.w<N>.<process>`` so the
  Perfetto export gives every worker its own PID group of lanes instead
  of interleaving unrelated wall clocks in one lane.
- **metrics** merge with the registry's usual semantics: counters add,
  gauges keep the last set value, histograms pool samples. A gauge a
  worker created but never set, and a histogram that pooled no samples
  (an empty worker), still *register* on the parent — a parallel run
  must expose the same metric set a serial run would.

Streaming runs (:mod:`repro.observe.stream`) skip span shipping
entirely: each worker writes its own JSONL shards into the parent
stream's directory and returns only the manifest entries, which the
parent folds in with :func:`adopt_shards` — the merged trace never
crosses the pickle boundary.
"""

from __future__ import annotations

from repro.observe.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.observe.trace import SIM, SpanRecord, Tracer
from repro.util.errors import ObserveError


def capture(tracer: Tracer) -> tuple[list[SpanRecord], list[dict]]:
    """A picklable snapshot of one worker's tracer (spans + metrics)."""
    return list(tracer.spans), snapshot_metrics(tracer.metrics)


def snapshot_metrics(registry: MetricsRegistry) -> list[dict]:
    """Flatten a registry into picklable primitives."""
    out = []
    for metric in registry.all_metrics():
        entry = {"name": metric.name, "labels": dict(metric.labels)}
        if isinstance(metric, Counter):
            entry["kind"] = "counter"
            entry["value"] = metric.value
        elif isinstance(metric, Gauge):
            entry["kind"] = "gauge"
            entry["value"] = metric.value
        elif isinstance(metric, Histogram):
            entry["kind"] = "histogram"
            entry["samples"] = list(metric.samples)
        out.append(entry)
    return out


def merge_metrics(registry: MetricsRegistry, snapshot: list[dict]) -> None:
    """Fold a worker's metrics snapshot into the parent registry."""
    for entry in snapshot:
        labels = entry["labels"]
        if entry["kind"] == "counter":
            registry.counter(entry["name"], **labels).inc(entry["value"])
        elif entry["kind"] == "gauge":
            # register the gauge even when the worker never set it —
            # only the .set() is skipped, so a never-set gauge stays
            # None instead of clobbering a sibling worker's value
            gauge = registry.gauge(entry["name"], **labels)
            if entry["value"] is not None:
                gauge.set(entry["value"])
        elif entry["kind"] == "histogram":
            # .get(): an empty worker may snapshot a histogram with no
            # samples key at all; it must still register on the parent
            registry.histogram(entry["name"], **labels).samples.extend(
                entry.get("samples") or []
            )


def merge_spans(
    tracer: Tracer, spans: list[SpanRecord], *, worker: int | None = None
) -> None:
    """Re-record a worker's spans on the parent tracer.

    SIM spans keep their lanes (modeled time shares one timeline);
    WALL spans get the per-worker ``par.w<N>.`` process prefix.
    """
    for record in spans:
        process = record.process
        if worker is not None and record.clock != SIM:
            process = f"par.w{worker}.{process}"
        tracer.add_span(
            record.name,
            cat=record.cat,
            clock=record.clock,
            process=process,
            thread=record.thread,
            start=record.start,
            seconds=record.seconds,
            args=dict(record.args),
            ph=record.ph,
        )


def adopt_shards(tracer: Tracer, entries: list[dict]) -> None:
    """Fold a worker's streamed shard entries into the parent's sink.

    The streaming counterpart of :func:`merge_spans`: the spans are
    already on disk (the worker wrote them into the parent stream's
    directory), so only the ``(file, spans)`` manifest entries move.
    """
    from repro.observe.stream import stream_sink

    sink = stream_sink(tracer)
    if sink is None:
        raise ObserveError(
            "adopt_shards needs a tracer carrying a directory-mode "
            "ShardedPerfettoWriter sink"
        )
    sink.adopt_shards(entries)


def merge_capture(
    tracer: Tracer,
    captured: tuple[list[SpanRecord], list[dict]],
    *,
    worker: int | None = None,
) -> None:
    """Merge one worker's :func:`capture` payload into the parent."""
    spans, metrics = captured
    merge_spans(tracer, spans, worker=worker)
    merge_metrics(tracer.metrics, metrics)
