"""repro.par — process-parallel fan-out with deterministic merge.

The paper's evaluation is embarrassingly parallel at the campaign
level: the fig6/fig8 weak-scaling ladders, the cache-model sweeps, and
the virtual-SPMD runs are independent configurations. This package
spreads them over worker processes while keeping every output
bit-identical to a serial run:

- :func:`~repro.par.pool.run_tasks` — the worker pool (chunked
  work-stealing, results merged by task index, per-worker trace
  capture);
- :mod:`repro.par.shm` — shared-memory zero-copy transport for large
  NumPy payloads (pickle below :data:`~repro.par.shm.SHM_THRESHOLD`);
- :mod:`repro.par.tracemerge` — folding per-worker span/metric capture
  into one Perfetto timeline with per-worker PID lanes.

Entry points: ``--jobs N`` on the ``run`` and ``bench`` CLI commands,
``jobs=`` keywords on ``bench.sweep.run_ladder``, the fig6/fig8
drivers, ``gpu.cache.sweep_grid``, and ``VirtualWorkflow.run``. See
``docs/PARALLEL.md`` for the determinism contract.
"""

from repro.par.pool import default_chunksize, resolve_jobs, run_tasks
from repro.par.shm import SHM_THRESHOLD, ShmRef, decode, encode
from repro.util.errors import ParError

__all__ = [
    "SHM_THRESHOLD",
    "ParError",
    "ShmRef",
    "decode",
    "default_chunksize",
    "encode",
    "resolve_jobs",
    "run_tasks",
]
