"""Shared-memory zero-copy transport for NumPy payloads.

The worker pool ships task results back to the parent through a pipe.
Pickling a large ``ndarray`` copies it twice (serialize + deserialize)
and pushes every byte through the pipe; for the fan-out hot paths the
payloads are exactly such arrays (rank-time vectors, arrival arrays).
:func:`encode` walks a result object and moves every C/F-contiguous
array of at least :data:`SHM_THRESHOLD` bytes into a
``multiprocessing.shared_memory`` segment, leaving a small
:class:`ShmRef` token in its place; only the token rides the pipe.
:func:`decode` reattaches the segment on the other side and rebuilds
the array.

Handoff protocol (one segment, one producer, one consumer):

- the producer creates + fills the segment, closes its local mapping,
  and *unregisters* it from its own ``resource_tracker`` so the segment
  survives the producer process exiting before the consumer attaches;
- the consumer attaches, copies the payload out (or wraps it when
  ``copy=False``), then unlinks the segment. Unlink-after-attach means
  the name disappears immediately but the memory lives until the last
  mapping closes, so a crashed consumer cannot leak named segments that
  outlive the run.

Arrays below the threshold (and every non-array object) ride plain
pickle: the fixed ~µs cost of creating and mmap()ing a segment only
pays for itself on bulk payloads.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.util.errors import ParError

#: below this many bytes an array rides pickle, not shared memory
SHM_THRESHOLD = 64 * 1024


@dataclass(frozen=True)
class ShmRef:
    """Pickle-sized token standing in for an array left in shared memory."""

    name: str
    shape: tuple[int, ...]
    dtype: str
    order: str  # "C" or "F"


def _unregister(name: str) -> None:
    """Detach a segment from this process's resource tracker.

    Without this, the *creator's* tracker unlinks the segment when the
    creator exits — racing the consumer that has not attached yet.
    """
    try:
        resource_tracker.unregister(f"/{name.lstrip('/')}", "shared_memory")
    except Exception:
        pass  # tracker already clean (or platform tracks differently)


def share_array(arr: np.ndarray) -> ShmRef:
    """Move one array into a fresh shared-memory segment."""
    order = "F" if (arr.flags.f_contiguous and not arr.flags.c_contiguous) else "C"
    contig = np.ascontiguousarray(arr) if order == "C" else np.asfortranarray(arr)
    seg = shared_memory.SharedMemory(create=True, size=max(1, contig.nbytes))
    try:
        dst = np.ndarray(contig.shape, dtype=contig.dtype, buffer=seg.buf, order=order)
        dst[...] = contig
        ref = ShmRef(seg.name, tuple(contig.shape), contig.dtype.str, order)
    finally:
        seg.close()
    _unregister(seg.name)
    _count_segment(contig.nbytes)
    return ref


def _count_segment(nbytes: int) -> None:
    """Mirror segment traffic into the observe registry when tracing."""
    from repro.observe import trace as observe

    tracer = observe.active()
    if tracer is None:
        return
    tracer.metrics.counter("par.shm_segments").inc()
    tracer.metrics.counter("par.shm_bytes").inc(nbytes)


def fetch_array(ref: ShmRef, *, copy: bool = True) -> np.ndarray:
    """Rebuild the array behind a :class:`ShmRef` and unlink the segment.

    ``copy=False`` returns a view backed by the (now-anonymous) mapping;
    the mapping is closed when the array is garbage collected.
    """
    try:
        seg = shared_memory.SharedMemory(name=ref.name)
    except FileNotFoundError as exc:
        raise ParError(
            f"shared-memory segment {ref.name!r} vanished before the "
            "consumer attached (double decode?)"
        ) from exc
    try:
        src = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=seg.buf,
                         order=ref.order)
        if copy:
            out = src.copy(order=ref.order)
        else:
            out = src
            weakref.finalize(out, seg.close)
    finally:
        try:
            seg.unlink()
        except FileNotFoundError:
            pass
        if copy:
            seg.close()
    return out


def discard(obj) -> None:
    """Unlink every segment referenced by an (undecoded) encoded object."""
    for ref in _iter_refs(obj):
        try:
            seg = shared_memory.SharedMemory(name=ref.name)
        except FileNotFoundError:
            continue
        seg.close()
        try:
            seg.unlink()
        except FileNotFoundError:
            pass


def _iter_refs(obj):
    if isinstance(obj, ShmRef):
        yield obj
    elif isinstance(obj, (list, tuple)):
        for item in obj:
            yield from _iter_refs(item)
    elif isinstance(obj, dict):
        for item in obj.values():
            yield from _iter_refs(item)


def encode(obj, *, threshold: int = SHM_THRESHOLD):
    """Replace large arrays inside ``obj`` with :class:`ShmRef` tokens.

    Recurses through lists, tuples, and dict *values*; anything else —
    including dataclasses holding arrays — passes through untouched and
    rides pickle. Hot-path task functions that return big arrays should
    return them at the container level, not buried in objects.
    """
    if isinstance(obj, np.ndarray):
        if obj.nbytes >= threshold and obj.dtype != object:
            return share_array(obj)
        return obj
    if isinstance(obj, tuple):
        return tuple(encode(item, threshold=threshold) for item in obj)
    if isinstance(obj, list):
        return [encode(item, threshold=threshold) for item in obj]
    if isinstance(obj, dict):
        return {k: encode(v, threshold=threshold) for k, v in obj.items()}
    return obj


def decode(obj, *, copy: bool = True):
    """Inverse of :func:`encode`: resolve tokens back into arrays."""
    if isinstance(obj, ShmRef):
        return fetch_array(obj, copy=copy)
    if isinstance(obj, tuple):
        return tuple(decode(item, copy=copy) for item in obj)
    if isinstance(obj, list):
        return [decode(item, copy=copy) for item in obj]
    if isinstance(obj, dict):
        return {k: decode(v, copy=copy) for k, v in obj.items()}
    return obj
