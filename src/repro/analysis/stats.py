"""Field statistics and Gray-Scott pattern metrics.

``pattern_metrics`` quantifies the structures Pearson (1993) classifies
visually: the active-region fraction (cells where V exceeds a
threshold), the number of connected components ("spots"), and the
interface density — enough to distinguish trivial/decayed states from
spot and labyrinth regimes in the pattern-gallery example.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.util.errors import ReproError


def field_summary(field: np.ndarray) -> dict:
    """min/max/mean/std + active-cell count of one field snapshot."""
    if field.size == 0:
        raise ReproError("cannot summarize an empty field")
    data = np.asarray(field, dtype=np.float64)
    return {
        "min": float(data.min()),
        "max": float(data.max()),
        "mean": float(data.mean()),
        "std": float(data.std()),
        "active_cells": int((data > 0.1).sum()),
    }


def histogram(field: np.ndarray, *, bins: int = 32, value_range=None) -> tuple:
    """(counts, edges) histogram of a field (Fig. 7-style distributions)."""
    return np.histogram(np.asarray(field).ravel(), bins=bins, range=value_range)


def pattern_metrics(v_field: np.ndarray, *, threshold: float = 0.1) -> dict:
    """Structure metrics of the V concentration field.

    - ``active_fraction``: share of cells above threshold;
    - ``components``: connected components of the active region
      (spots ~ many small components, labyrinths ~ few large ones);
    - ``interface_density``: fraction of active cells adjacent to
      inactive ones (boundary sharpness);
    - ``largest_component_fraction``: size of the biggest structure
      relative to all active cells.
    """
    v = np.asarray(v_field, dtype=np.float64)
    active = v > threshold
    total = active.size
    n_active = int(active.sum())
    if n_active == 0:
        return {
            "active_fraction": 0.0,
            "components": 0,
            "interface_density": 0.0,
            "largest_component_fraction": 0.0,
        }
    labels, n_components = ndimage.label(active)
    sizes = ndimage.sum_labels(np.ones_like(labels), labels, range(1, n_components + 1))
    eroded = ndimage.binary_erosion(active)
    interface = int((active & ~eroded).sum())
    return {
        "active_fraction": n_active / total,
        "components": int(n_components),
        "interface_density": interface / n_active,
        "largest_component_fraction": float(sizes.max()) / n_active,
    }


def classify_pattern(v_field: np.ndarray, *, threshold: float = 0.1) -> str:
    """Coarse Pearson-style regime label from :func:`pattern_metrics`."""
    m = pattern_metrics(v_field, threshold=threshold)
    if m["active_fraction"] < 1e-4:
        return "decayed"
    if m["active_fraction"] > 0.9:
        return "uniform"
    if m["components"] >= 8 and m["largest_component_fraction"] < 0.5:
        return "spots"
    if m["interface_density"] > 0.45:
        return "labyrinth"
    return "blob"
