"""High-level dataset access for analysis sessions.

Wraps :class:`~repro.adios.engines.BP5Reader` with the vocabulary an
analyst uses in a notebook: steps, fields, slices, summaries — the
operations of the paper's Figure 9 JupyterHub session.
"""

from __future__ import annotations

import numpy as np

from repro.adios.engines import BP5Reader
from repro.analysis.slices import slice_at
from repro.analysis.stats import field_summary
from repro.util.errors import VariableError


class GrayScottDataset:
    """One Gray-Scott output dataset (a ``.bp`` directory)."""

    FIELDS = ("U", "V")

    def __init__(self, path, *, verify: bool = True):
        self.reader = BP5Reader(None, path, verify=verify)
        missing = [f for f in self.FIELDS if f not in self.reader.variables()]
        if missing:
            raise VariableError(
                f"{path}: not a Gray-Scott dataset (missing {missing})"
            )

    # -- inventory ---------------------------------------------------------
    @property
    def steps(self) -> list[int]:
        return self.reader.steps("U")

    @property
    def shape(self) -> tuple[int, ...]:
        return self.reader.variables()["U"].shape

    @property
    def attributes(self) -> dict:
        return {name: a.value for name, a in self.reader.attributes.items()}

    def sim_steps(self) -> list[int]:
        """Simulation step numbers of each output step (the `step` var)."""
        return [int(s) for s in self.reader.scalar_series("step")]

    # -- data ---------------------------------------------------------------
    def field(self, name: str, step: int | None = None, **selection) -> np.ndarray:
        if name not in self.FIELDS:
            raise VariableError(f"field must be one of {self.FIELDS}, got {name!r}")
        if step is None:
            step = self.steps[-1]
        return self.reader.read(name, step=step, **selection)

    def slice2d(
        self, name: str, *, step: int | None = None, axis: int = 2,
        index: int | None = None,
    ) -> np.ndarray:
        """A 2D slice, read via a thin box selection (no full-3D load)."""
        shape = self.shape
        if index is None:
            index = shape[axis] // 2
        start = [0, 0, 0]
        count = list(shape)
        start[axis] = index
        count[axis] = 1
        data = self.field(name, step=step, start=tuple(start), count=tuple(count))
        return slice_at(data, axis=axis, index=0)

    def minmax(self, name: str) -> tuple[float, float]:
        """Global min/max over all steps from block metadata (no data read)."""
        return self.reader.minmax(name)

    def summary(self, step: int | None = None) -> dict:
        """Per-field statistics at one output step."""
        if step is None:
            step = self.steps[-1]
        return {
            name: field_summary(self.field(name, step=step))
            for name in self.FIELDS
        }

    def close(self) -> None:
        self.reader.close()
