"""Terminal rendering of 2D slices (our stand-in for Makie heatmaps).

The paper's Figure 9 shows Makie.jl heatmaps of U/V centre slices in
JupyterHub; in a terminal-first reproduction the equivalent artifact is
a density-ramp ASCII heatmap plus a value scale.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ReproError

#: dark -> bright density ramp
RAMP = " .:-=+*#%@"


def ascii_heatmap(
    plane: np.ndarray,
    *,
    width: int = 64,
    value_range: tuple[float, float] | None = None,
    title: str = "",
) -> str:
    """Render a 2D array as an ASCII heatmap of at most ``width`` columns.

    The plane is block-averaged down to the target resolution (terminal
    cells are ~2x taller than wide, so rows are halved).
    """
    if plane.ndim != 2:
        raise ReproError(f"ascii_heatmap expects a 2D plane, got {plane.shape}")
    if width < 2:
        raise ReproError("width must be >= 2")
    data = np.asarray(plane, dtype=np.float64)
    ny, nx = data.shape
    cols = min(width, nx)
    rows = max(1, min(width // 2, ny))
    # block average to the display resolution
    col_edges = np.linspace(0, nx, cols + 1).astype(int)
    row_edges = np.linspace(0, ny, rows + 1).astype(int)
    small = np.empty((rows, cols))
    for r in range(rows):
        for c in range(cols):
            block = data[row_edges[r]:row_edges[r + 1], col_edges[c]:col_edges[c + 1]]
            small[r, c] = block.mean() if block.size else 0.0

    lo, hi = value_range if value_range else (float(data.min()), float(data.max()))
    span = hi - lo
    if span <= 0:
        norm = np.zeros_like(small)
    else:
        norm = np.clip((small - lo) / span, 0.0, 1.0)
    idx = (norm * (len(RAMP) - 1)).round().astype(int)
    lines = []
    if title:
        lines.append(title)
    lines.extend("".join(RAMP[i] for i in row) for row in idx)
    lines.append(f"scale: '{RAMP[0]}'={lo:.4g} .. '{RAMP[-1]}'={hi:.4g}")
    return "\n".join(lines)
