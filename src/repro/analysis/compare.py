"""Dataset comparison: are two runs the same, and if not, how far apart?

Used to validate reproducibility claims quantitatively: serial vs
parallel runs, CPU vs simulated-GPU backends, raw vs compressed
datasets, restarted vs uninterrupted campaigns. Reports max-norm, RMS,
and PSNR per field and per step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.reader import GrayScottDataset
from repro.util.errors import ReproError


@dataclass(frozen=True)
class FieldDelta:
    """Difference metrics of one field at one output step."""

    field: str
    step: int
    max_abs: float
    rms: float
    psnr_db: float

    @property
    def identical(self) -> bool:
        return self.max_abs == 0.0


def field_delta(a: np.ndarray, b: np.ndarray, *, field: str = "", step: int = 0) -> FieldDelta:
    """Difference metrics between two arrays of the same shape."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ReproError(f"shape mismatch: {a.shape} vs {b.shape}")
    diff = a - b
    max_abs = float(np.abs(diff).max()) if diff.size else 0.0
    rms = float(np.sqrt((diff**2).mean())) if diff.size else 0.0
    data_range = float(max(a.max() - a.min(), np.finfo(np.float64).tiny))
    psnr = float("inf") if rms == 0.0 else 20 * math.log10(data_range / rms)
    return FieldDelta(field=field, step=step, max_abs=max_abs, rms=rms, psnr_db=psnr)


def compare_datasets(
    path_a, path_b, *, fields: tuple[str, ...] = ("U", "V")
) -> list[FieldDelta]:
    """Per-step, per-field deltas between two Gray-Scott datasets.

    Steps are matched by position; both datasets must have the same
    number of output steps and global shape.
    """
    ds_a = GrayScottDataset(path_a)
    ds_b = GrayScottDataset(path_b)
    if ds_a.shape != ds_b.shape:
        raise ReproError(
            f"global shapes differ: {ds_a.shape} vs {ds_b.shape}"
        )
    if len(ds_a.steps) != len(ds_b.steps):
        raise ReproError(
            f"output step counts differ: {len(ds_a.steps)} vs {len(ds_b.steps)}"
        )
    deltas = []
    for step_a, step_b in zip(ds_a.steps, ds_b.steps):
        for field in fields:
            deltas.append(
                field_delta(
                    ds_a.field(field, step=step_a),
                    ds_b.field(field, step=step_b),
                    field=field,
                    step=step_a,
                )
            )
    return deltas


def render_comparison(deltas: list[FieldDelta]) -> str:
    from repro.util.tables import Table

    table = Table(
        ["field", "step", "max |diff|", "RMS", "PSNR (dB)"],
        title="dataset comparison",
    )
    for d in deltas:
        table.add_row(
            [d.field, d.step, d.max_abs, d.rms,
             "inf" if math.isinf(d.psnr_db) else f"{d.psnr_db:.1f}"]
        )
    verdict = (
        "datasets are bitwise identical"
        if all(d.identical for d in deltas)
        else f"max deviation {max(d.max_abs for d in deltas):.3e}"
    )
    return table.render() + f"\n{verdict}"
