"""Spectral analysis of Gray-Scott patterns.

Pearson patterns have a characteristic wavelength set by the diffusion
lengths; the radial power spectrum of a concentration slice makes it
quantitative. This is the kind of derived analysis the paper's Jupyter
stage exists for — computed from the same datasets the solver wrote.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ReproError


def radial_power_spectrum(plane: np.ndarray, *, bins: int | None = None):
    """Radially averaged 2D power spectrum of a (periodic) slice.

    Returns ``(k, power)`` where ``k`` is the wavenumber in cycles per
    domain length and ``power[j]`` the mean squared FFT magnitude over
    the annulus around ``k[j]``. The DC component is excluded.
    """
    if plane.ndim != 2:
        raise ReproError(f"spectrum expects a 2D plane, got shape {plane.shape}")
    ny, nx = plane.shape
    if min(ny, nx) < 4:
        raise ReproError(f"plane {plane.shape} too small for a spectrum")
    data = np.asarray(plane, dtype=np.float64)
    data = data - data.mean()
    power2d = np.abs(np.fft.fftn(data)) ** 2

    ky = np.fft.fftfreq(ny) * ny
    kx = np.fft.fftfreq(nx) * nx
    kmag = np.sqrt(ky[:, None] ** 2 + kx[None, :] ** 2)

    kmax = min(ny, nx) // 2
    bins = bins or kmax
    edges = np.linspace(0.5, kmax + 0.5, bins + 1)
    which = np.digitize(kmag.ravel(), edges)
    power = np.zeros(bins)
    counts = np.zeros(bins)
    flat = power2d.ravel()
    for idx in range(1, bins + 1):
        mask = which == idx
        if mask.any():
            power[idx - 1] = flat[mask].mean()
            counts[idx - 1] = mask.sum()
    centers = 0.5 * (edges[:-1] + edges[1:])
    valid = counts > 0
    return centers[valid], power[valid]


def dominant_wavelength(plane: np.ndarray) -> float:
    """Characteristic pattern wavelength in cells (domain / peak k).

    Returns ``inf`` for structureless (flat) planes.
    """
    k, power = radial_power_spectrum(plane)
    if power.max() <= 0:
        return float("inf")
    k_peak = k[int(np.argmax(power))]
    if k_peak <= 0:
        return float("inf")
    return min(plane.shape) / k_peak


def structure_evolution(dataset, *, field: str = "V", axis: int = 2) -> dict:
    """Per-output-step structure metrics of a Gray-Scott dataset.

    Returns arrays keyed ``steps``, ``mean``, ``active_fraction``,
    ``wavelength`` — the time series an analyst plots in the Figure 9
    session.
    """
    from repro.analysis.stats import pattern_metrics

    steps = dataset.steps
    means, fractions, wavelengths = [], [], []
    for step in steps:
        plane = dataset.slice2d(field, step=step, axis=axis)
        means.append(float(np.mean(plane)))
        fractions.append(pattern_metrics(plane)["active_fraction"])
        wavelengths.append(dominant_wavelength(plane))
    return {
        "steps": np.asarray(steps),
        "sim_steps": np.asarray(dataset.sim_steps()),
        "mean": np.asarray(means),
        "active_fraction": np.asarray(fractions),
        "wavelength": np.asarray(wavelengths),
    }
