"""Image export of 2D slices: the Figure 2/9 artifacts as real files.

No plotting stack is assumed; PGM (grayscale) and PPM (color) are
plain binary formats every image viewer and ParaView can open. The
color path applies a viridis-like piecewise-linear colormap.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.util.errors import ReproError

#: piecewise-linear approximation of viridis: (position, (r, g, b))
_VIRIDIS_STOPS = (
    (0.00, (68, 1, 84)),
    (0.25, (59, 82, 139)),
    (0.50, (33, 145, 140)),
    (0.75, (94, 201, 98)),
    (1.00, (253, 231, 37)),
)


def _normalize(plane: np.ndarray, value_range=None) -> np.ndarray:
    if plane.ndim != 2:
        raise ReproError(f"image export expects a 2D plane, got {plane.shape}")
    data = np.asarray(plane, dtype=np.float64)
    lo, hi = value_range if value_range else (float(data.min()), float(data.max()))
    span = hi - lo
    if span <= 0:
        return np.zeros_like(data)
    return np.clip((data - lo) / span, 0.0, 1.0)


def write_pgm(plane: np.ndarray, path, *, value_range=None) -> Path:
    """Write a grayscale binary PGM (P5) of a 2D plane."""
    norm = _normalize(plane, value_range)
    pixels = (norm * 255).round().astype(np.uint8)
    ny, nx = pixels.shape
    target = Path(path)
    with open(target, "wb") as fh:
        fh.write(f"P5\n{nx} {ny}\n255\n".encode("ascii"))
        fh.write(np.ascontiguousarray(pixels).tobytes())
    return target


def colormap(norm: np.ndarray) -> np.ndarray:
    """Map normalized [0,1] values to (..., 3) uint8 RGB (viridis-like)."""
    norm = np.asarray(norm, dtype=np.float64)
    positions = np.array([p for p, _ in _VIRIDIS_STOPS])
    channels = np.array([c for _, c in _VIRIDIS_STOPS], dtype=np.float64)
    rgb = np.empty((*norm.shape, 3))
    for ch in range(3):
        rgb[..., ch] = np.interp(norm, positions, channels[:, ch])
    return rgb.round().astype(np.uint8)


def write_ppm(plane: np.ndarray, path, *, value_range=None) -> Path:
    """Write a color binary PPM (P6) of a 2D plane."""
    pixels = colormap(_normalize(plane, value_range))
    ny, nx, _ = pixels.shape
    target = Path(path)
    with open(target, "wb") as fh:
        fh.write(f"P6\n{nx} {ny}\n255\n".encode("ascii"))
        fh.write(np.ascontiguousarray(pixels).tobytes())
    return target


def read_pgm(path) -> np.ndarray:
    """Read a binary PGM back (round-trip testing and pipelines)."""
    raw = Path(path).read_bytes()
    parts = raw.split(b"\n", 3)
    if parts[0] != b"P5":
        raise ReproError(f"{path}: not a binary PGM (magic {parts[0]!r})")
    nx, ny = (int(v) for v in parts[1].split())
    maxval = int(parts[2])
    if maxval != 255:
        raise ReproError(f"{path}: unsupported maxval {maxval}")
    pixels = np.frombuffer(parts[3][: nx * ny], dtype=np.uint8)
    if pixels.size != nx * ny:
        raise ReproError(f"{path}: truncated pixel data")
    return pixels.reshape(ny, nx)


def snapshot_dataset(
    dataset, outdir, *, field: str = "V", axis: int = 2, color: bool = True
) -> list[Path]:
    """Write one image per output step of a dataset (a Figure 2 strip).

    A common value range across steps keeps frames comparable.
    """
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    lo, hi = dataset.minmax(field)
    written = []
    for step in dataset.steps:
        plane = dataset.slice2d(field, step=step, axis=axis)
        name = f"{field.lower()}_step{step:04d}." + ("ppm" if color else "pgm")
        writer = write_ppm if color else write_pgm
        written.append(writer(plane, outdir / name, value_range=(lo, hi)))
    return written
