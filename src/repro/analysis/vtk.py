"""VTK XML ImageData export (.vti) — the VTX/ParaView claim made real.

The paper stores FIDES/VTX visualization schema attributes so ParaView
can open the ADIOS2 dataset directly (Section 3.4). We cannot ship
ParaView readers, but we can emit the equivalent artifact: a VTK XML
ImageData file holding a step's U/V fields as cell data, which ParaView
(or any VTK build) opens natively. ASCII encoding keeps the writer
dependency-free and the output inspectable.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.util.errors import ReproError


def _ascii_data_array(name: str, data: np.ndarray, indent: str) -> str:
    flat = np.asarray(data).ravel(order="F")
    body = " ".join(f"{v:.9g}" for v in flat)
    return (
        f'{indent}<DataArray type="Float64" Name="{name}" '
        f'format="ascii" NumberOfComponents="1">\n'
        f"{indent}  {body}\n"
        f"{indent}</DataArray>"
    )


def write_vti(
    fields: dict[str, np.ndarray],
    path,
    *,
    spacing: tuple[float, float, float] = (1.0, 1.0, 1.0),
    origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
) -> Path:
    """Write 3D cell-data fields as a VTK XML ImageData file.

    All fields must share one shape; the image extent is that shape in
    cells (VTK wants point extents, i.e. shape + 1).
    """
    if not fields:
        raise ReproError("write_vti needs at least one field")
    shapes = {f.shape for f in fields.values()}
    if len(shapes) != 1:
        raise ReproError(f"fields have differing shapes: {shapes}")
    shape = shapes.pop()
    if len(shape) != 3:
        raise ReproError(f"write_vti expects 3D fields, got shape {shape}")

    n0, n1, n2 = shape
    extent = f"0 {n0} 0 {n1} 0 {n2}"
    first = next(iter(fields))
    lines = [
        '<?xml version="1.0"?>',
        '<VTKFile type="ImageData" version="1.0" byte_order="LittleEndian">',
        f'  <ImageData WholeExtent="{extent}" '
        f'Origin="{origin[0]} {origin[1]} {origin[2]}" '
        f'Spacing="{spacing[0]} {spacing[1]} {spacing[2]}">',
        f'    <Piece Extent="{extent}">',
        f'      <CellData Scalars="{first}">',
    ]
    for name, data in fields.items():
        lines.append(_ascii_data_array(name, data, "        "))
    lines += [
        "      </CellData>",
        "    </Piece>",
        "  </ImageData>",
        "</VTKFile>",
    ]
    target = Path(path)
    target.write_text("\n".join(lines) + "\n")
    return target


def export_dataset_step(dataset, path, *, step: int | None = None) -> Path:
    """Write one output step of a Gray-Scott dataset as .vti."""
    if step is None:
        step = dataset.steps[-1]
    fields = {
        name: dataset.field(name, step=step) for name in dataset.FIELDS
    }
    return write_vti(fields, path)


def read_vti_field(path, name: str) -> np.ndarray:
    """Parse one field back out of an ASCII .vti (round-trip testing)."""
    import xml.etree.ElementTree as ET

    root = ET.parse(path).getroot()
    image = root.find("ImageData")
    if image is None:
        raise ReproError(f"{path}: not an ImageData VTK file")
    extent = [int(v) for v in image.get("WholeExtent").split()]
    shape = (extent[1], extent[3], extent[5])
    for array in image.iter("DataArray"):
        if array.get("Name") == name:
            values = np.array(array.text.split(), dtype=np.float64)
            return values.reshape(shape, order="F")
    raise ReproError(f"{path}: no DataArray named {name!r}")
