"""Data analysis: the "JupyterHub side" of the workflow (paper Fig. 9).

The paper closes the loop by reading the ADIOS2 datasets back in a
Julia Jupyter notebook and plotting 2D slices with Makie. This package
is that stage: a high-level dataset reader over the BP5 files the
solver wrote, slice extraction, pattern statistics (including a
Pearson-regime classifier), and terminal-friendly ASCII rendering in
place of Makie heatmaps.
"""

from repro.analysis.reader import GrayScottDataset
from repro.analysis.slices import center_slice, slice_at
from repro.analysis.stats import field_summary, pattern_metrics, histogram
from repro.analysis.render import ascii_heatmap
from repro.analysis.spectrum import (
    dominant_wavelength,
    radial_power_spectrum,
    structure_evolution,
)

__all__ = [
    "GrayScottDataset",
    "center_slice",
    "slice_at",
    "field_summary",
    "pattern_metrics",
    "histogram",
    "ascii_heatmap",
    "dominant_wavelength",
    "radial_power_spectrum",
    "structure_evolution",
]
