"""2D slice extraction from 3D fields."""

from __future__ import annotations

import numpy as np

from repro.util.errors import ReproError


def slice_at(field: np.ndarray, *, axis: int = 2, index: int | None = None) -> np.ndarray:
    """Extract the 2D plane ``index`` along ``axis`` of a 3D field.

    ``index=None`` takes the centre plane (the paper's Figure 2/9 view).
    """
    if field.ndim != 3:
        raise ReproError(f"slice_at expects a 3D field, got shape {field.shape}")
    if not 0 <= axis < 3:
        raise ReproError(f"axis must be 0..2, got {axis}")
    if index is None:
        index = field.shape[axis] // 2
    if not 0 <= index < field.shape[axis]:
        raise ReproError(
            f"index {index} outside axis {axis} of extent {field.shape[axis]}"
        )
    selector: list = [slice(None)] * 3
    selector[axis] = index
    return np.ascontiguousarray(field[tuple(selector)])


def center_slice(field: np.ndarray, axis: int = 2) -> np.ndarray:
    """The centre plane along ``axis``."""
    return slice_at(field, axis=axis, index=None)


def slice_series(fields: list[np.ndarray], *, axis: int = 2, index: int | None = None):
    """Centre slices of a time series of fields (for animations)."""
    return [slice_at(f, axis=axis, index=index) for f in fields]
