"""Wavefront occupancy: the structural story behind the codegen gap.

Table 3 shows *what* differs between the toolchains — AMDGPU.jl
launches 512-workitem workgroups carrying 29,184 B of LDS and 8,192 B
of scratch; HIP launches 256-workitem groups with neither — and the
calibrated efficiency factors encode the consequence. This module
closes the loop: from CDNA2 per-CU limits, those codegen facts *imply*
the achieved-bandwidth ratio.

A memory-bound kernel needs enough wavefronts in flight to cover HBM
latency; achieved bandwidth scales roughly with occupancy until the
saturation point. On an MI250x CU:

- 4 SIMDs x 8 wavefront slots = 32 resident wavefronts max;
- 64 KiB of LDS shared by all resident workgroups;
- a workgroup is resident as a unit (all its waves or none).

Julia: ceil(512/64) = 8 waves per group; floor(64 KiB / 29,184 B) = 2
resident groups -> 16 of 32 waves -> 50% occupancy. HIP: 4 waves per
group, no LDS limit -> full 32 waves. Occupancy ratio 0.5 — against the
calibrated efficiency ratio 0.397/0.746 = 0.53. The residual few
percent is the scratch (spill) traffic. ``tests/gpu/test_occupancy.py``
pins this agreement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.backends import BackendProfile, get_backend
from repro.util.errors import GpuError


@dataclass(frozen=True)
class CuLimits:
    """Per-CU resources of a CDNA2 (MI250x) compute unit."""

    wavefront_size: int = 64
    simds_per_cu: int = 4
    waves_per_simd: int = 8
    lds_bytes_per_cu: int = 64 * 1024
    max_workgroups_per_cu: int = 16

    @property
    def max_waves_per_cu(self) -> int:
        return self.simds_per_cu * self.waves_per_simd


@dataclass(frozen=True)
class OccupancyResult:
    """Resident-wave accounting for one kernel/backend on one CU."""

    backend: str
    waves_per_workgroup: int
    workgroups_by_lds: int
    workgroups_by_slots: int
    resident_workgroups: int
    resident_waves: int
    max_waves: int

    @property
    def occupancy(self) -> float:
        return self.resident_waves / self.max_waves

    @property
    def limiter(self) -> str:
        if self.resident_workgroups == self.workgroups_by_lds and (
            self.workgroups_by_lds < self.workgroups_by_slots
        ):
            return "LDS"
        return "wave slots"


def occupancy_for_codegen(
    name: str,
    workgroup_size: int,
    lds_bytes: int,
    limits: CuLimits | None = None,
) -> OccupancyResult:
    """Occupancy implied by raw codegen facts (wgr size + LDS bytes).

    The core accounting, independent of where the facts came from — a
    backend profile (:func:`occupancy_for`) or a rewritten stencil func
    whose tiling pass added LDS staging (:func:`occupancy_for_func`).
    """
    limits = limits or CuLimits()
    waves_per_wg = -(-workgroup_size // limits.wavefront_size)
    if waves_per_wg <= 0:
        raise GpuError(f"degenerate workgroup size {workgroup_size}")
    if lds_bytes > limits.lds_bytes_per_cu:
        raise GpuError(
            f"{name}: workgroup LDS {lds_bytes} exceeds the "
            f"CU's {limits.lds_bytes_per_cu}"
        )
    by_lds = (
        limits.lds_bytes_per_cu // lds_bytes
        if lds_bytes
        else limits.max_workgroups_per_cu
    )
    by_slots = min(
        limits.max_workgroups_per_cu,
        limits.max_waves_per_cu // waves_per_wg,
    )
    resident = max(1, min(by_lds, by_slots))
    waves = min(resident * waves_per_wg, limits.max_waves_per_cu)
    return OccupancyResult(
        backend=name,
        waves_per_workgroup=waves_per_wg,
        workgroups_by_lds=by_lds,
        workgroups_by_slots=by_slots,
        resident_workgroups=resident,
        resident_waves=waves,
        max_waves=limits.max_waves_per_cu,
    )


def occupancy_for(
    backend: str | BackendProfile, limits: CuLimits | None = None
) -> OccupancyResult:
    """Occupancy a backend's codegen (Table 3's wgr/lds) achieves."""
    backend = get_backend(backend)
    return occupancy_for_codegen(
        backend.name, backend.workgroup_size, backend.lds_bytes, limits
    )


def occupancy_for_func(
    func,
    backend: str | BackendProfile,
    limits: CuLimits | None = None,
) -> OccupancyResult:
    """Occupancy of a (post-rewrite) stencil func on a backend.

    Starts from the backend's codegen LDS and, when the tiling pass set
    ``func.tile``, adds the LDS a tiled kernel stages: one haloed tile
    of every loaded array. That makes the occupancy model answer the
    tiling counterfactual — a tile that shrinks cache traffic can still
    lose by evicting resident workgroups.
    """
    backend = get_backend(backend)
    lds = backend.lds_bytes
    if func.tile is not None:
        itemsize = func.itemsize
        loads = func.loads_by_array()
        for offsets in loads.values():
            staged = 1
            for axis in range(3):
                ext = (
                    max(o[axis] for o in offsets)
                    - min(o[axis] for o in offsets)
                )
                staged *= int(func.tile[axis]) + ext
            lds += staged * itemsize
    return occupancy_for_codegen(
        f"{backend.name}:{func.name}", backend.workgroup_size, lds, limits
    )


def predicted_efficiency_ratio() -> float:
    """Julia/HIP achieved-bandwidth ratio implied by occupancy alone."""
    julia = occupancy_for("julia")
    hip = occupancy_for("hip")
    return julia.occupancy / hip.occupancy


def render_comparison() -> str:
    from repro.bench import calibration as cal
    from repro.util.tables import Table

    table = Table(
        ["backend", "wg size", "waves/wg", "resident wgs", "waves", "occupancy",
         "limiter"],
        title="CU occupancy implied by Table 3 codegen (wgr/lds)",
    )
    for name in ("hip", "julia"):
        result = occupancy_for(name)
        table.add_row(
            [name, get_backend(name).workgroup_size, result.waves_per_workgroup,
             result.resident_workgroups, f"{result.resident_waves}/{result.max_waves}",
             f"{result.occupancy*100:.0f}%", result.limiter]
        )
    calibrated = cal.JULIA_CODEGEN_EFFICIENCY / cal.HIP_CODEGEN_EFFICIENCY
    lines = [table.render()]
    lines.append(
        f"occupancy ratio (julia/hip): {predicted_efficiency_ratio():.2f}  |  "
        f"calibrated efficiency ratio: {calibrated:.2f}"
    )
    return "\n".join(lines)
