"""TCC (L2) cache traffic models for stencil kernels.

Why the measured FETCH_SIZE in Table 3 is ~3x the "effective" minimum
of Eq. (4a): the 7-point stencil reads each cell from three different
z-planes, and at 1024^3 one double-precision plane is 8.4 MB — larger
than the 8 MB TCC of a GCD — so the z +/- 1 reuse never hits and every
plane streams through the cache three times. The paper's effective
fetch (8.59 GB) vs. rocprof fetch (25.08 GB) is exactly this ratio.

Two models live here:

- :class:`StencilTrafficModel` — the analytic working-set model used at
  Frontier scale. Given the per-array stencil offset sets recovered by
  the tracing JIT, it decides how many *streaming passes* each array
  costs (1 if the z working set fits in cache, otherwise one per
  distinct z-offset, and so on hierarchically for y).
- :class:`TraceCacheSim` — an exact set-associative LRU simulator over
  the real access stream. Too slow for 1024^3 but exact at test sizes;
  ``tests/gpu/test_cache.py`` uses it to validate the analytic model on
  both sides of the fits-in-cache boundary.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.frontier import GcdSpec
from repro.util.errors import GpuError


@dataclass(frozen=True)
class TrafficEstimate:
    """Modeled memory traffic + TCC counters for one kernel launch."""

    fetch_bytes: float
    write_bytes: float
    tcc_requests: float
    tcc_hits: float
    tcc_misses: float
    #: diagnostic: streaming passes charged per array name
    passes_by_array: dict[str, int] = field(default_factory=dict)

    @property
    def total_bytes(self) -> float:
        return self.fetch_bytes + self.write_bytes

    @property
    def hit_rate(self) -> float:
        if self.tcc_requests == 0:
            return 0.0
        return self.tcc_hits / self.tcc_requests


def effective_fetch_cells(shape: tuple[int, int, int]) -> int:
    """Cells a radius-1 7-point stencil must fetch at least once.

    Generalizes the paper's Eq. (4a) — ``L^3 - 8 - 12(L-2)`` for a cube
    — to a box: all cells except the 8 corners and the interiors of the
    12 edges, which no interior cell's stencil ever touches.
    """
    n0, n1, n2 = shape
    if min(shape) < 2:
        return int(np.prod(shape))
    edges = 4 * ((n0 - 2) + (n1 - 2) + (n2 - 2))
    return n0 * n1 * n2 - 8 - edges


def effective_write_cells(shape: tuple[int, int, int]) -> int:
    """Paper Eq. (4b): interior cells only, ``(L-2)^3`` for a cube."""
    return int(np.prod([max(0, n - 2) for n in shape]))


_SEVEN_POINT = {
    (0, 0, 0),
    (-1, 0, 0), (1, 0, 0),
    (0, -1, 0), (0, 1, 0),
    (0, 0, -1), (0, 0, 1),
}


class StencilTrafficModel:
    """Analytic working-set traffic model for one GCD.

    Arrays are Fortran-ordered (axis 0 contiguous), matching Julia.
    """

    def __init__(self, spec: GcdSpec | None = None):
        self.spec = spec or GcdSpec()

    def passes_for(
        self, shape: tuple[int, int, int], itemsize: int, offsets: set[tuple[int, ...]]
    ) -> int:
        """Streaming passes one array costs under LRU capacity limits.

        Hierarchical working-set test (axis 0 contiguous):
        - if the full z working set (distinct z-extent of the stencil,
          in planes) fits in the TCC, every line is fetched once;
        - else each distinct z-offset group streams separately, provided
          the y working set (rows) fits;
        - else every distinct (y, z) offset pair streams separately.
        """
        if not offsets:
            return 0
        n0, n1, _ = shape
        z_offsets = {o[2] for o in offsets}
        y_offsets = {o[1] for o in offsets}
        z_extent = max(z_offsets) - min(z_offsets) + 1
        y_extent = max(y_offsets) - min(y_offsets) + 1

        plane_bytes = n0 * n1 * itemsize
        row_bytes = n0 * itemsize
        cache = self.spec.tcc_bytes

        if z_extent * plane_bytes <= cache:
            return 1
        if y_extent * row_bytes <= cache:
            return len(z_offsets)
        return len(z_offsets) * len(y_offsets)

    def estimate(
        self,
        shape: tuple[int, int, int],
        itemsize: int,
        loads_by_array: dict[str, set[tuple[int, ...]]],
        stores_by_array: dict[str, set[tuple[int, ...]]],
    ) -> TrafficEstimate:
        """Traffic for one launch over arrays of a common ``shape``."""
        if len(shape) != 3:
            raise GpuError(f"traffic model expects 3D arrays, got shape {shape}")
        cells = int(np.prod(shape))
        array_bytes = cells * itemsize
        lines = math.ceil(array_bytes / self.spec.cache_line_bytes)

        fetch = 0.0
        requests = 0.0
        misses = 0.0
        passes_by_array: dict[str, int] = {}

        for name, offsets in loads_by_array.items():
            passes = self.passes_for(shape, itemsize, offsets)
            passes_by_array[name] = passes
            fetch += passes * array_bytes
            # The TCC sees one request per distinct offset per line (L1
            # absorbs within-line reuse); `passes` of them miss.
            requests += len(offsets) * lines
            misses += passes * lines

        write = 0.0
        for name, offsets in stores_by_array.items():
            write += len(offsets) * array_bytes
            requests += len(offsets) * lines
            misses += len(offsets) * lines  # streaming stores: no reuse

        return TrafficEstimate(
            fetch_bytes=fetch,
            write_bytes=write,
            tcc_requests=requests,
            tcc_hits=requests - misses,
            tcc_misses=misses,
            passes_by_array=passes_by_array,
        )

    def estimate_func(
        self,
        func,
        shape: tuple[int, int, int],
        itemsize: int | None = None,
    ) -> TrafficEstimate:
        """Traffic for one launch of a (possibly rewritten) stencil func.

        Accepts a :class:`repro.ir.core.StencilFunc` — including
        post-rewrite IR, which is the whole point: fusion/RLE shrink
        ``loads_by_array`` and the estimate answers the counterfactual.
        A tiled func (``func.tile`` set by the tiling pass) is modeled
        with tile-local working sets plus per-tile halo refetch.
        """
        itemsize = itemsize if itemsize is not None else func.itemsize
        loads = func.loads_by_array()
        stores = func.stores_by_array()
        if func.tile is None:
            return self.estimate(shape, itemsize, loads, stores)
        return self._estimate_tiled(
            shape, itemsize, loads, stores, tuple(func.tile)
        )

    def _estimate_tiled(
        self,
        shape: tuple[int, int, int],
        itemsize: int,
        loads_by_array: dict[str, set[tuple[int, ...]]],
        stores_by_array: dict[str, set[tuple[int, ...]]],
        tile: tuple[int, ...],
    ) -> TrafficEstimate:
        """Tile-local working sets: passes shrink, halo refetch grows.

        The working-set test runs over tile-plane bytes instead of
        array-plane bytes (a tile small enough to hold its z working
        set streams each array once), but every tile re-fetches its
        per-axis stencil halo, a multiplicative ``(t + ext) / t``
        factor per axis.
        """
        if len(shape) != 3:
            raise GpuError(f"traffic model expects 3D arrays, got shape {shape}")
        t = tuple(min(int(ti), int(ni)) for ti, ni in zip(tile, shape))
        cells = int(np.prod(shape))
        array_bytes = cells * itemsize
        lines = math.ceil(array_bytes / self.spec.cache_line_bytes)

        fetch = 0.0
        requests = 0.0
        misses = 0.0
        passes_by_array: dict[str, int] = {}

        for name, offsets in loads_by_array.items():
            tile_shape = (t[0], t[1], shape[2])
            passes = self.passes_for(tile_shape, itemsize, offsets)
            passes_by_array[name] = passes
            refetch = 1.0
            for axis in range(3):
                ext = (
                    max(o[axis] for o in offsets)
                    - min(o[axis] for o in offsets)
                )
                refetch *= (t[axis] + ext) / t[axis]
            fetch += passes * array_bytes * refetch
            requests += len(offsets) * lines
            misses += min(len(offsets) * lines, passes * lines * refetch)

        write = 0.0
        for name, offsets in stores_by_array.items():
            write += len(offsets) * array_bytes
            requests += len(offsets) * lines
            misses += len(offsets) * lines  # streaming stores: no reuse

        return TrafficEstimate(
            fetch_bytes=fetch,
            write_bytes=write,
            tcc_requests=requests,
            tcc_hits=max(0.0, requests - misses),
            tcc_misses=misses,
            passes_by_array=passes_by_array,
        )


#: plan entry for one access stream: (base_address, di, dj, dk, is_load)
_PlanEntry = tuple[int, int, int, int, bool]


class _VectorLruState:
    """Dense ``(num_sets, associativity)`` mirror of the per-set LRU state.

    ``tags[s, w]`` is the line cached in way ``w`` of set ``s`` (or -1),
    ``age[s, w]`` the round of its last use. Exact LRU: a hit refreshes
    the way's age; a miss replaces the minimum-age way. Empty ways carry
    an age below any imported or live age, so ``argmin`` fills them
    left-to-right first — the same fill/evict order as the per-set
    ``OrderedDict`` in :meth:`TraceCacheSim.access`.
    """

    def __init__(self, sim: "TraceCacheSim"):
        S, A = sim.num_sets, sim.associativity
        self._empty_age = -(A + 1)
        self.tags = np.full((S, A), -1, dtype=np.int64)
        self.age = np.full((S, A), self._empty_age, dtype=np.int64)
        self.round = 0
        # misses == 0 means no line was ever inserted: every set is
        # empty and the import is a no-op (the fresh-simulator fast path)
        if sim.misses == 0:
            return
        lens = np.fromiter(
            (len(resident) for resident in sim._sets), dtype=np.int64, count=S
        )
        total = int(lens.sum())
        if total == 0:
            return
        # flatten every set's LRU->MRU order once, then scatter: way w
        # of set s gets imported age w - len(set), strictly < round 0
        flat = np.fromiter(
            (line for resident in sim._sets for line in resident),
            dtype=np.int64,
            count=total,
        )
        rows = np.repeat(np.arange(S, dtype=np.int64), lens)
        starts = np.concatenate(([0], np.cumsum(lens[:-1])))
        cols = np.arange(total, dtype=np.int64) - np.repeat(starts, lens)
        self.tags[rows, cols] = flat
        self.age[rows, cols] = cols - lens[rows]

    def materialize(self, sim: "TraceCacheSim") -> None:
        """Write the dense state back as LRU-ordered ``OrderedDict``s."""
        A = self.tags.shape[1]
        order = np.argsort(self.age, axis=1, kind="stable")
        sorted_tags = np.take_along_axis(self.tags, order, axis=1)
        sorted_age = np.take_along_axis(self.age, order, axis=1)
        # empty ways carry the minimum age, so they sort first and the
        # resident lines are each row's last ``n`` entries, LRU -> MRU
        counts = (sorted_age != self._empty_age).sum(axis=1)
        sets = sim._sets
        for s, n in enumerate(counts):
            if n:
                row = sorted_tags[s, A - n:]
                sets[s] = OrderedDict((int(line), True) for line in row)
            else:
                sets[s] = OrderedDict()


class _VectorSweepUnsupported(Exception):
    """Geometry/configuration outside the vector engine's envelope."""


class TraceCacheSim:
    """Exact set-associative LRU cache over a stencil access stream.

    Replays the access stream of a radius-r stencil sweep over a
    Fortran-ordered array: for each interior cell in storage order, one
    access per load offset, then one per store. Counts line fills
    (misses) and hits; ``fetch_bytes`` is misses x line size for load
    accesses.

    Two sweep engines produce identical counters:

    - ``engine="scalar"`` — the original per-access Python loop,
      retained as the bit-exact reference for differential testing;
    - ``engine="vector"`` — a NumPy plane-batched replay (address
      streams generated per z-plane, grouped per cache set, simulated
      as lockstep LRU rounds over a dense tag matrix) that is two
      orders of magnitude faster and exact: per-set access order is
      preserved, and the only accesses it elides are provably hits
      whose LRU refresh is a no-op.

    ``engine="auto"`` (the default) picks the vector engine whenever
    the configuration is inside its envelope and falls back to the
    scalar loop otherwise. Both engines share the same cache state, so
    sweeps and :meth:`access` calls can be freely interleaved.
    """

    def __init__(
        self,
        capacity_bytes: int,
        line_bytes: int = 64,
        associativity: int = 16,
    ):
        if capacity_bytes < line_bytes * associativity:
            raise GpuError("cache smaller than a single set")
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.num_sets = capacity_bytes // (line_bytes * associativity)
        self._sets: list[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self._geom: tuple[int, int, int, int, int, int] | None = None
        #: dense LRU state retained between consecutive vector sweeps so
        #: the per-set import/export loops are skipped entirely; the
        #: scalar paths materialize it back into ``_sets`` on demand
        self._dense: _VectorLruState | None = None
        self.hits = 0
        self.misses = 0
        self.load_misses = 0

    def _materialize(self) -> None:
        """Flush retained dense LRU state back into the per-set dicts."""
        state, self._dense = self._dense, None
        if state is not None:
            state.materialize(self)

    def access(self, line: int, *, is_load: bool = True) -> bool:
        """Probe one cache line; returns True on hit."""
        if self._dense is not None:
            self._materialize()
        target = self._sets[line % self.num_sets]
        if line in target:
            target.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        if is_load:
            self.load_misses += 1
        target[line] = True
        if len(target) > self.associativity:
            target.popitem(last=False)
        return False

    @property
    def fetch_bytes(self) -> int:
        return self.load_misses * self.line_bytes

    @staticmethod
    def _validate_radius(shape: tuple[int, int, int], radius: int) -> None:
        """Reject sweeps whose halo swallows the whole array.

        ``radius >= ceil(min(shape) / 2)`` leaves no interior cell: the
        triple loop would silently run zero iterations and report a
        zero-traffic estimate that looks like a perfectly cached sweep.
        """
        if radius and 2 * radius >= min(shape):
            raise GpuError(
                f"stencil radius {radius} exceeds half the smallest array "
                f"dimension (shape {shape}): the sweep has no interior cells"
            )

    def sweep(
        self,
        shape: tuple[int, int, int],
        itemsize: int,
        load_offsets: set[tuple[int, int, int]],
        *,
        base_address: int = 0,
        store: bool = True,
        store_base_address: int | None = None,
        engine: str = "auto",
    ) -> None:
        """Replay one stencil sweep over an array of ``shape``.

        ``base_address`` lets multiple arrays coexist in the same cache
        (pass distinct, page-aligned bases). The sweep walks interior
        cells in Fortran storage order — i fastest — which is also the
        order wavefronts retire in the real kernel's x-fastest launch.
        ``engine`` selects the vectorized or scalar replay (identical
        counters; see the class docstring).
        """
        n0, n1, n2 = shape
        stride0 = itemsize
        stride1 = n0 * itemsize
        stride2 = n0 * n1 * itemsize
        offsets = sorted(load_offsets)
        radius = max(abs(c) for o in offsets for c in o) if offsets else 0
        self._validate_radius(shape, radius)
        store_base = store_base_address if store_base_address is not None else (
            base_address + 2 * stride2 * n2
        )
        plan: list[_PlanEntry] = [
            (base_address, di, dj, dk, True) for di, dj, dk in offsets
        ]
        if store:
            plan.append((store_base, 0, 0, 0, False))
        self._dispatch_sweep(shape, itemsize, plan, radius, engine)

    def multi_sweep(
        self,
        shape: tuple[int, int, int],
        itemsize: int,
        loads_by_array: dict[str, set[tuple[int, ...]]],
        stores_by_array: dict[str, set[tuple[int, ...]]],
        *,
        engine: str = "auto",
    ) -> TrafficEstimate:
        """Exact counters for one interleaved multi-array stencil sweep.

        Emulates the real kernel's access order: per interior cell, all
        arrays' loads then all stores, arrays living at page-separated
        base addresses in the same cache. Returns a
        :class:`TrafficEstimate` directly comparable with
        :meth:`StencilTrafficModel.estimate`. ``engine`` selects the
        vectorized or scalar replay (identical counters).
        """
        n0, n1, n2 = shape
        array_bytes = n0 * n1 * n2 * itemsize
        # page-align each array's base well apart
        span = -(-array_bytes // 4096) * 4096 + 4096
        bases: dict[str, int] = {}
        for name in list(loads_by_array) + [
            s for s in stores_by_array if s not in loads_by_array
        ]:
            bases[name] = len(bases) * span

        plan: list[_PlanEntry] = []
        for name, offsets in loads_by_array.items():
            for di, dj, dk in sorted(offsets):
                plan.append((bases[name], di, dj, dk, True))
        n_load_accesses = len(plan)
        for name, offsets in stores_by_array.items():
            for di, dj, dk in sorted(offsets):
                plan.append((bases[name], di, dj, dk, False))
        radius = max(
            (abs(d) for _, di, dj, dk, _ in plan for d in (di, dj, dk)),
            default=0,
        )
        self._validate_radius(shape, radius)
        ncells = max(0, n0 - 2 * radius) * max(0, n1 - 2 * radius) * max(
            0, n2 - 2 * radius
        )
        requests = ncells * len(plan)
        write_accesses = ncells * (len(plan) - n_load_accesses)
        fetch_misses_before = self.load_misses
        self._dispatch_sweep(shape, itemsize, plan, radius, engine)
        fetch = (self.load_misses - fetch_misses_before) * self.line_bytes
        return TrafficEstimate(
            fetch_bytes=float(fetch),
            write_bytes=float(write_accesses * itemsize),
            tcc_requests=float(requests),
            tcc_hits=float(self.hits),
            tcc_misses=float(self.misses),
            passes_by_array={},
        )

    def multi_sweep_func(
        self,
        func,
        shape: tuple[int, int, int],
        itemsize: int | None = None,
        *,
        engine: str = "auto",
    ) -> TrafficEstimate:
        """Exact counters for one launch of a (post-rewrite) stencil func.

        Accepts a :class:`repro.ir.core.StencilFunc`; the access stream
        is derived from the func's (possibly rewritten) load/store
        offset sets, so simulating the same func before and after a
        pass pipeline measures exactly what the rewrite changed. A
        tiled func replays a tile-blocked traversal (scalar engine).
        """
        itemsize = itemsize if itemsize is not None else func.itemsize
        loads = func.loads_by_array()
        stores = func.stores_by_array()
        if func.tile is None:
            return self.multi_sweep(
                shape, itemsize, loads, stores, engine=engine
            )
        return self._multi_sweep_tiled(
            shape, itemsize, loads, stores, tuple(func.tile)
        )

    def _multi_sweep_tiled(
        self,
        shape: tuple[int, int, int],
        itemsize: int,
        loads_by_array: dict[str, set[tuple[int, ...]]],
        stores_by_array: dict[str, set[tuple[int, ...]]],
        tile: tuple[int, ...],
    ) -> TrafficEstimate:
        """Tile-blocked exact replay: tiles in Fortran order, cells within.

        Same plan construction as :meth:`multi_sweep`; only the cell
        visit order changes — which is precisely what tiling does, and
        what the LRU state observes.
        """
        n0, n1, n2 = shape
        array_bytes = n0 * n1 * n2 * itemsize
        span = -(-array_bytes // 4096) * 4096 + 4096
        bases: dict[str, int] = {}
        for name in list(loads_by_array) + [
            s for s in stores_by_array if s not in loads_by_array
        ]:
            bases[name] = len(bases) * span

        plan: list[_PlanEntry] = []
        for name, offsets in loads_by_array.items():
            for di, dj, dk in sorted(offsets):
                plan.append((bases[name], di, dj, dk, True))
        n_load_accesses = len(plan)
        for name, offsets in stores_by_array.items():
            for di, dj, dk in sorted(offsets):
                plan.append((bases[name], di, dj, dk, False))
        radius = max(
            (abs(d) for _, di, dj, dk, _ in plan for d in (di, dj, dk)),
            default=0,
        )
        self._validate_radius(shape, radius)
        if self._dense is not None:
            self._materialize()
        stride = (itemsize, n0 * itemsize, n0 * n1 * itemsize)
        lo, hi = radius, tuple(n - radius for n in shape)
        t = tuple(max(1, int(x)) for x in tile)
        ncells = 0
        fetch_misses_before = self.load_misses
        hits_before, misses_before = self.hits, self.misses
        for tk in range(lo, hi[2], t[2]):
            for tj in range(lo, hi[1], t[1]):
                for ti in range(lo, hi[0], t[0]):
                    for k in range(tk, min(tk + t[2], hi[2])):
                        for j in range(tj, min(tj + t[1], hi[1])):
                            for i in range(ti, min(ti + t[0], hi[0])):
                                ncells += 1
                                cell = (
                                    i * stride[0] + j * stride[1]
                                    + k * stride[2]
                                )
                                for base, di, dj, dk, is_load in plan:
                                    addr = (
                                        base + cell + di * stride[0]
                                        + dj * stride[1] + dk * stride[2]
                                    )
                                    self.access(
                                        addr // self.line_bytes,
                                        is_load=is_load,
                                    )
        fetch = (self.load_misses - fetch_misses_before) * self.line_bytes
        write_accesses = ncells * (len(plan) - n_load_accesses)
        return TrafficEstimate(
            fetch_bytes=float(fetch),
            write_bytes=float(write_accesses * itemsize),
            tcc_requests=float(ncells * len(plan)),
            tcc_hits=float(self.hits - hits_before),
            tcc_misses=float(self.misses - misses_before),
            passes_by_array={},
        )

    # ------------------------------------------------------------------
    # engine dispatch

    def _dispatch_sweep(
        self,
        shape: tuple[int, int, int],
        itemsize: int,
        plan: list[_PlanEntry],
        radius: int,
        engine: str,
    ) -> None:
        if engine not in ("auto", "vector", "scalar"):
            raise GpuError(f"unknown sweep engine {engine!r}")
        if engine == "scalar":
            self._sweep_scalar(shape, itemsize, plan, radius)
            return
        try:
            self._sweep_vector(shape, itemsize, plan, radius)
        except _VectorSweepUnsupported:
            if engine == "vector":
                raise GpuError(
                    "sweep geometry is outside the vector engine envelope "
                    "(negative addresses or oversized set index); use "
                    "engine='scalar'"
                ) from None
            self._sweep_scalar(shape, itemsize, plan, radius)

    def _sweep_scalar(
        self,
        shape: tuple[int, int, int],
        itemsize: int,
        plan: list[_PlanEntry],
        radius: int,
    ) -> None:
        """The original per-access triple loop (bit-exact reference)."""
        if self._dense is not None:
            self._materialize()
        n0, n1, n2 = shape
        stride0 = itemsize
        stride1 = n0 * itemsize
        stride2 = n0 * n1 * itemsize
        lo = radius
        for k in range(lo, n2 - lo):
            for j in range(lo, n1 - lo):
                for i in range(lo, n0 - lo):
                    cell = i * stride0 + j * stride1 + k * stride2
                    for base, di, dj, dk, is_load in plan:
                        addr = (
                            base + cell
                            + di * stride0 + dj * stride1 + dk * stride2
                        )
                        self.access(addr // self.line_bytes, is_load=is_load)

    def _sweep_vector(
        self,
        shape: tuple[int, int, int],
        itemsize: int,
        plan: list[_PlanEntry],
        radius: int,
    ) -> None:
        """Plane-batched exact replay; counters identical to the scalar loop.

        Per z-plane: (1) generate each plan entry's line stream — in the
        common ``itemsize < line_bytes`` regime only the first access of
        each run of same-line accesses is materialized, the rest are
        provably hits (guarded by :func:`_run_skip_is_exact`); (2) sort
        accesses by ``(cache set, stream position)`` so each set's
        sub-stream keeps its temporal order; (3) merge consecutive
        same-line accesses within a set (always-exact guaranteed hits);
        (4) replay round ``r`` = every set's ``r``-th access in lockstep
        against the dense LRU tag/age matrix.
        """
        n0, n1, n2 = shape
        s0 = itemsize
        s1 = n0 * itemsize
        s2 = n0 * n1 * itemsize
        LB = self.line_bytes
        S = self.num_sets
        lo = radius
        ni, nj, nk = n0 - 2 * lo, n1 - 2 * lo, n2 - 2 * lo
        E = len(plan)
        if E == 0 or ni <= 0 or nj <= 0 or nk <= 0:
            return
        if S >= 1 << 30 or E * nj * ni >= 1 << 31:
            raise _VectorSweepUnsupported
        base_e = np.array(
            [
                b + (lo + di) * s0 + (lo + dj) * s1 + (lo + dk) * s2
                for b, di, dj, dk, _ in plan
            ],
            dtype=np.int64,
        )
        if int(base_e.min()) < 0:
            raise _VectorSweepUnsupported
        is_load_e = np.array([is_load for *_, is_load in plan], dtype=bool)
        compress = s0 < LB and _run_skip_is_exact(base_e, s0, LB, S)

        # seq bit layout (low 32 bits of the pack): plane | row | cell
        # | entry, each field padded to a power of two so the replay
        # recovers coordinates with shifts and masks instead of int64
        # division chains
        be = max(1, (E - 1).bit_length())
        bt = max(1, (ni - 1).bit_length())
        bu = max(1, (nj - 1).bit_length())
        if be + bt + bu > 30:
            raise _VectorSweepUnsupported
        planes_per_chunk = 1 << (31 - be - bt - bu)
        self._geom = (s0, s1, s2, be, bt, bu)

        state = self._dense if self._dense is not None else _VectorLruState(self)
        self._dense = None
        row_u = np.arange(nj, dtype=np.int64)
        u_col = (row_u << (bt + be))[:, None]
        t_full = np.arange(ni, dtype=np.int64)
        set_mask_ok = S & (S - 1) == 0
        lb_shift = LB.bit_length() - 1 if LB & (LB - 1) == 0 else None
        extra_hits = 0

        # Accumulate per-plane compressed access streams into chunks of
        # bounded size, then replay each chunk grouped by set. Grouping
        # over many planes at once keeps the lockstep rounds close to
        # num_sets wide (per-plane set skew averages out), which is
        # where the dense LRU update is efficient. Splitting into
        # chunks never changes counters: per-set order is preserved
        # regardless of where the stream is cut.
        chunk_target = 1_000_000
        pending: list[np.ndarray] = []
        pending_n = 0
        k_base = 0  # chunk-relative plane numbering keeps seq in 31 bits

        def flush(k_next: int) -> None:
            nonlocal pending, pending_n, k_base
            if pending:
                self._replay_grouped_chunk(
                    np.concatenate(pending), base_e, is_load_e, k_base, state
                )
            pending = []
            pending_n = 0
            k_base = k_next

        for k in range(nk):
            if k - k_base >= planes_per_chunk:
                flush(k)
            for e in range(E):
                c0 = base_e[e] + k * s2 + row_u * s1  # (nj,) row base bytes
                if compress:
                    l0 = c0 // LB
                    n_bounds = (c0 + (ni - 1) * s0) // LB - l0  # per row
                    m = np.arange(int(n_bounds.max()) + 1, dtype=np.int64)
                    lines = l0[:, None] + m[None, :]
                    # cell index of the m-th line's first touch (ceil div)
                    t = -((c0[:, None] - lines * LB) // s0)
                    t[:, 0] = 0
                    valid = m[None, :] <= n_bounds[:, None]
                    extra_hits += nj * ni - int(valid.sum())
                else:
                    if lb_shift is not None:
                        lines = (c0[:, None] + t_full[None, :] * s0) >> lb_shift
                    else:
                        lines = (c0[:, None] + t_full[None, :] * s0) // LB
                    t = t_full[None, :]
                    valid = None
                sets = lines & (S - 1) if set_mask_ok else lines % S
                seq = (
                    ((k - k_base) << (bu + bt + be)) | u_col | (t << be) | e
                )
                pack = (sets << 32) | seq
                pending.append(pack[valid] if valid is not None else pack.ravel())
                pending_n += pending[-1].size
            if pending_n >= chunk_target:
                flush(k + 1)
        flush(nk)
        # retain the dense state: a consecutive vector sweep resumes it
        # directly, and scalar paths materialize it lazily on first use
        self._dense = state
        self.hits += extra_hits
        self._geom = None

    def _replay_grouped_chunk(
        self,
        pk: np.ndarray,
        base_e: np.ndarray,
        is_load_e: np.ndarray,
        k_base: int,
        state: _VectorLruState,
    ) -> None:
        """Sort one chunk's packed accesses by (set, position) and replay.

        Round ``r`` applies every set's ``r``-th access in lockstep to
        the dense tag/age matrices; only miss rows need an LRU-victim
        ``argmin``. Counter updates land directly on ``self``.
        """
        if pk.size == 0:
            return
        s0, s1, s2, be, bt, bu = self._geom
        LB = self.line_bytes
        S = self.num_sets
        pk.sort(kind="quicksort")  # by (set, stream position)
        set_g = pk >> 32
        eidx = pk & ((1 << be) - 1)
        tg = (pk >> be) & ((1 << bt) - 1)
        ug = (pk >> (be + bt)) & ((1 << bu) - 1)
        kk = (pk & 0xFFFFFFFF) >> (be + bt + bu)
        addr = np.take(base_e + k_base * s2, eidx)
        addr += kk * s2
        addr += ug * s1
        addr += tg * s0
        if LB & (LB - 1) == 0:
            lines_g = addr >> (LB.bit_length() - 1)
        else:
            lines_g = addr // LB
        isload_g = np.take(is_load_e, eidx)
        dup = np.empty(lines_g.shape, dtype=bool)
        dup[0] = False
        np.logical_and(
            set_g[1:] == set_g[:-1], lines_g[1:] == lines_g[:-1], out=dup[1:]
        )
        ndup = int(dup.sum())
        if ndup:
            keep = ~dup
            set_g = set_g[keep]
            lines_g = lines_g[keep]
            isload_g = isload_g[keep]
            self.hits += ndup
        counts = np.bincount(set_g, minlength=S)
        starts = np.concatenate(([0], np.cumsum(counts[:-1])))
        # sets ordered by stream length, longest first: round r is one
        # lockstep access for each of the first m_r of them
        order = np.argsort(counts, kind="stable")[::-1]
        neg_desc = -counts[order]  # ascending; #(counts > r) by bisect
        starts_desc = starts[order]
        tags, age = state.tags, state.age
        A = tags.shape[1]
        sub = np.empty((S, A), dtype=np.int64)
        matched = np.empty((S, A), dtype=bool)
        flat_base = np.arange(S, dtype=np.int64) * A
        hits = misses = load_misses = 0
        for r in range(int(counts.max())):
            m_r = int(np.searchsorted(neg_desc, -r, side="left"))
            rows = order[:m_r]
            pos = starts_desc[:m_r] + r
            lr = lines_g[pos]
            np.take(tags, rows, axis=0, out=sub[:m_r])
            np.equal(sub[:m_r], lr[:, None], out=matched[:m_r])
            way = matched[:m_r].argmax(axis=1)
            hit = matched.reshape(-1)[flat_base[:m_r] + way]
            nh = int(hit.sum())
            hits += nh
            age[rows[hit], way[hit]] = state.round
            if m_r - nh:
                miss = ~hit
                mrows = rows[miss]
                victim = age[mrows].argmin(axis=1)
                tags[mrows, victim] = lr[miss]
                age[mrows, victim] = state.round
                misses += m_r - nh
                load_misses += int(isload_g[pos[miss]].sum())
            state.round += 1
        self.hits += hits
        self.misses += misses
        self.load_misses += load_misses


def _run_skip_is_exact(
    base_e: np.ndarray, s0: int, line_bytes: int, num_sets: int
) -> bool:
    """Whether run-length skipping of same-line accesses is provably exact.

    A skipped access (same line as the same entry's access one cell
    earlier) is a guaranteed hit whose MRU refresh is a no-op **unless**
    some access interleaved between the two maps to the same set but a
    different line — then the skip would lose a recency update. The
    interleaved accesses sit at most one cell away, so their byte
    distance to the skipped access is ``base_e[b] - base_e[a] + w*s0``
    for ``w`` in {-1, 0, 1}; a distance ``d`` can only produce line
    deltas ``d // line_bytes`` or ``d // line_bytes + 1``. The skip is
    exact when no such delta is a nonzero multiple of ``num_sets``.
    """
    for a in range(len(base_e)):
        for b in range(len(base_e)):
            if a == b:
                continue
            for w in (-1, 0, 1):
                d = int(base_e[b] - base_e[a]) + w * s0
                for delta in (d // line_bytes, d // line_bytes + 1):
                    if delta != 0 and delta % num_sets == 0:
                        return False
    return True


def seven_point_offsets() -> set[tuple[int, int, int]]:
    """The paper's 7-point Laplacian stencil offsets (Eq. 3)."""
    return set(_SEVEN_POINT)


# ---------------------------------------------------------------------------
# grid sweeps (Table 2/3-style campaigns), optionally process-parallel
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepCase:
    """One independent (shape, access-set) cell of a cache sweep grid."""

    shape: tuple[int, int, int]
    itemsize: int
    loads_by_array: dict
    stores_by_array: dict
    capacity_bytes: int
    line_bytes: int = 64
    associativity: int = 16
    engine: str = "auto"


@dataclass(frozen=True)
class SweepCellResult:
    """A :class:`SweepCase`'s traffic estimate plus raw TCC counters."""

    case: SweepCase
    estimate: TrafficEstimate
    hits: int
    misses: int
    load_misses: int


def run_sweep_case(case: SweepCase) -> SweepCellResult:
    """Simulate one grid cell on a fresh simulator (picklable task fn)."""
    sim = TraceCacheSim(
        case.capacity_bytes, case.line_bytes, case.associativity
    )
    estimate = sim.multi_sweep(
        case.shape, case.itemsize, case.loads_by_array,
        case.stores_by_array, engine=case.engine,
    )
    return SweepCellResult(case, estimate, sim.hits, sim.misses, sim.load_misses)


def sweep_grid(cases, *, jobs: int = 1) -> list[SweepCellResult]:
    """Simulate every cell of a sweep grid, optionally process-parallel.

    Each cell gets a fresh simulator, so cells are independent and the
    grid fans out over a :func:`repro.par.run_tasks` pool at ``jobs >
    1``; results come back in input order and are bit-identical to a
    serial evaluation (``jobs=0`` means one worker per core).
    """
    case_list = list(cases)
    if jobs == 1:
        return [run_sweep_case(case) for case in case_list]
    from repro.par import run_tasks

    return run_tasks(run_sweep_case, case_list, jobs=jobs, chunksize=1)
