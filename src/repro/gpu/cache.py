"""TCC (L2) cache traffic models for stencil kernels.

Why the measured FETCH_SIZE in Table 3 is ~3x the "effective" minimum
of Eq. (4a): the 7-point stencil reads each cell from three different
z-planes, and at 1024^3 one double-precision plane is 8.4 MB — larger
than the 8 MB TCC of a GCD — so the z +/- 1 reuse never hits and every
plane streams through the cache three times. The paper's effective
fetch (8.59 GB) vs. rocprof fetch (25.08 GB) is exactly this ratio.

Two models live here:

- :class:`StencilTrafficModel` — the analytic working-set model used at
  Frontier scale. Given the per-array stencil offset sets recovered by
  the tracing JIT, it decides how many *streaming passes* each array
  costs (1 if the z working set fits in cache, otherwise one per
  distinct z-offset, and so on hierarchically for y).
- :class:`TraceCacheSim` — an exact set-associative LRU simulator over
  the real access stream. Too slow for 1024^3 but exact at test sizes;
  ``tests/gpu/test_cache.py`` uses it to validate the analytic model on
  both sides of the fits-in-cache boundary.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.frontier import GcdSpec
from repro.util.errors import GpuError


@dataclass(frozen=True)
class TrafficEstimate:
    """Modeled memory traffic + TCC counters for one kernel launch."""

    fetch_bytes: float
    write_bytes: float
    tcc_requests: float
    tcc_hits: float
    tcc_misses: float
    #: diagnostic: streaming passes charged per array name
    passes_by_array: dict[str, int] = field(default_factory=dict)

    @property
    def total_bytes(self) -> float:
        return self.fetch_bytes + self.write_bytes

    @property
    def hit_rate(self) -> float:
        if self.tcc_requests == 0:
            return 0.0
        return self.tcc_hits / self.tcc_requests


def effective_fetch_cells(shape: tuple[int, int, int]) -> int:
    """Cells a radius-1 7-point stencil must fetch at least once.

    Generalizes the paper's Eq. (4a) — ``L^3 - 8 - 12(L-2)`` for a cube
    — to a box: all cells except the 8 corners and the interiors of the
    12 edges, which no interior cell's stencil ever touches.
    """
    n0, n1, n2 = shape
    if min(shape) < 2:
        return int(np.prod(shape))
    edges = 4 * ((n0 - 2) + (n1 - 2) + (n2 - 2))
    return n0 * n1 * n2 - 8 - edges


def effective_write_cells(shape: tuple[int, int, int]) -> int:
    """Paper Eq. (4b): interior cells only, ``(L-2)^3`` for a cube."""
    return int(np.prod([max(0, n - 2) for n in shape]))


_SEVEN_POINT = {
    (0, 0, 0),
    (-1, 0, 0), (1, 0, 0),
    (0, -1, 0), (0, 1, 0),
    (0, 0, -1), (0, 0, 1),
}


class StencilTrafficModel:
    """Analytic working-set traffic model for one GCD.

    Arrays are Fortran-ordered (axis 0 contiguous), matching Julia.
    """

    def __init__(self, spec: GcdSpec | None = None):
        self.spec = spec or GcdSpec()

    def passes_for(
        self, shape: tuple[int, int, int], itemsize: int, offsets: set[tuple[int, ...]]
    ) -> int:
        """Streaming passes one array costs under LRU capacity limits.

        Hierarchical working-set test (axis 0 contiguous):
        - if the full z working set (distinct z-extent of the stencil,
          in planes) fits in the TCC, every line is fetched once;
        - else each distinct z-offset group streams separately, provided
          the y working set (rows) fits;
        - else every distinct (y, z) offset pair streams separately.
        """
        if not offsets:
            return 0
        n0, n1, _ = shape
        z_offsets = {o[2] for o in offsets}
        y_offsets = {o[1] for o in offsets}
        z_extent = max(z_offsets) - min(z_offsets) + 1
        y_extent = max(y_offsets) - min(y_offsets) + 1

        plane_bytes = n0 * n1 * itemsize
        row_bytes = n0 * itemsize
        cache = self.spec.tcc_bytes

        if z_extent * plane_bytes <= cache:
            return 1
        if y_extent * row_bytes <= cache:
            return len(z_offsets)
        return len(z_offsets) * len(y_offsets)

    def estimate(
        self,
        shape: tuple[int, int, int],
        itemsize: int,
        loads_by_array: dict[str, set[tuple[int, ...]]],
        stores_by_array: dict[str, set[tuple[int, ...]]],
    ) -> TrafficEstimate:
        """Traffic for one launch over arrays of a common ``shape``."""
        if len(shape) != 3:
            raise GpuError(f"traffic model expects 3D arrays, got shape {shape}")
        cells = int(np.prod(shape))
        array_bytes = cells * itemsize
        lines = math.ceil(array_bytes / self.spec.cache_line_bytes)

        fetch = 0.0
        requests = 0.0
        misses = 0.0
        passes_by_array: dict[str, int] = {}

        for name, offsets in loads_by_array.items():
            passes = self.passes_for(shape, itemsize, offsets)
            passes_by_array[name] = passes
            fetch += passes * array_bytes
            # The TCC sees one request per distinct offset per line (L1
            # absorbs within-line reuse); `passes` of them miss.
            requests += len(offsets) * lines
            misses += passes * lines

        write = 0.0
        for name, offsets in stores_by_array.items():
            write += len(offsets) * array_bytes
            requests += len(offsets) * lines
            misses += len(offsets) * lines  # streaming stores: no reuse

        return TrafficEstimate(
            fetch_bytes=fetch,
            write_bytes=write,
            tcc_requests=requests,
            tcc_hits=requests - misses,
            tcc_misses=misses,
            passes_by_array=passes_by_array,
        )


class TraceCacheSim:
    """Exact set-associative LRU cache over a stencil access stream.

    Replays the access stream of a radius-r stencil sweep over a
    Fortran-ordered array: for each interior cell in storage order, one
    access per load offset, then one per store. Counts line fills
    (misses) and hits; ``fetch_bytes`` is misses x line size for load
    accesses.
    """

    def __init__(
        self,
        capacity_bytes: int,
        line_bytes: int = 64,
        associativity: int = 16,
    ):
        if capacity_bytes < line_bytes * associativity:
            raise GpuError("cache smaller than a single set")
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.num_sets = capacity_bytes // (line_bytes * associativity)
        self._sets: list[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0
        self.load_misses = 0

    def access(self, line: int, *, is_load: bool = True) -> bool:
        """Probe one cache line; returns True on hit."""
        target = self._sets[line % self.num_sets]
        if line in target:
            target.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        if is_load:
            self.load_misses += 1
        target[line] = True
        if len(target) > self.associativity:
            target.popitem(last=False)
        return False

    @property
    def fetch_bytes(self) -> int:
        return self.load_misses * self.line_bytes

    def sweep(
        self,
        shape: tuple[int, int, int],
        itemsize: int,
        load_offsets: set[tuple[int, int, int]],
        *,
        base_address: int = 0,
        store: bool = True,
        store_base_address: int | None = None,
    ) -> None:
        """Replay one stencil sweep over an array of ``shape``.

        ``base_address`` lets multiple arrays coexist in the same cache
        (pass distinct, page-aligned bases). The sweep walks interior
        cells in Fortran storage order — i fastest — which is also the
        order wavefronts retire in the real kernel's x-fastest launch.
        """
        n0, n1, n2 = shape
        stride0 = itemsize
        stride1 = n0 * itemsize
        stride2 = n0 * n1 * itemsize
        offsets = sorted(load_offsets)
        radius = max(abs(c) for o in offsets for c in o) if offsets else 0
        lo = radius
        store_base = store_base_address if store_base_address is not None else (
            base_address + 2 * stride2 * n2
        )
        for k in range(lo, n2 - lo):
            for j in range(lo, n1 - lo):
                for i in range(lo, n0 - lo):
                    cell = i * stride0 + j * stride1 + k * stride2
                    for di, dj, dk in offsets:
                        addr = base_address + cell + di * stride0 + dj * stride1 + dk * stride2
                        self.access(addr // self.line_bytes, is_load=True)
                    if store:
                        self.access((store_base + cell) // self.line_bytes, is_load=False)


    def multi_sweep(
        self,
        shape: tuple[int, int, int],
        itemsize: int,
        loads_by_array: dict[str, set[tuple[int, ...]]],
        stores_by_array: dict[str, set[tuple[int, ...]]],
    ) -> TrafficEstimate:
        """Exact counters for one interleaved multi-array stencil sweep.

        Emulates the real kernel's access order: per interior cell, all
        arrays' loads then all stores, arrays living at page-separated
        base addresses in the same cache. Returns a
        :class:`TrafficEstimate` directly comparable with
        :meth:`StencilTrafficModel.estimate`.
        """
        n0, n1, n2 = shape
        stride0 = itemsize
        stride1 = n0 * itemsize
        stride2 = n0 * n1 * itemsize
        array_bytes = n0 * n1 * n2 * itemsize
        # page-align each array's base well apart
        span = -(-array_bytes // 4096) * 4096 + 4096
        bases: dict[str, int] = {}
        for name in list(loads_by_array) + [
            s for s in stores_by_array if s not in loads_by_array
        ]:
            bases[name] = len(bases) * span

        load_plan = [
            (bases[name], sorted(offsets))
            for name, offsets in loads_by_array.items()
        ]
        store_plan = [
            (bases[name], sorted(offsets))
            for name, offsets in stores_by_array.items()
        ]
        radius = max(
            (abs(c) for _, offs in load_plan + store_plan for o in offs for c in o),
            default=0,
        )
        requests = 0
        write_accesses = 0
        fetch_misses_before = self.load_misses
        lo = radius
        for k in range(lo, n2 - lo):
            for j in range(lo, n1 - lo):
                for i in range(lo, n0 - lo):
                    cell = i * stride0 + j * stride1 + k * stride2
                    for base, offsets in load_plan:
                        for di, dj, dk in offsets:
                            addr = (
                                base + cell
                                + di * stride0 + dj * stride1 + dk * stride2
                            )
                            self.access(addr // self.line_bytes, is_load=True)
                            requests += 1
                    for base, offsets in store_plan:
                        for di, dj, dk in offsets:
                            addr = (
                                base + cell
                                + di * stride0 + dj * stride1 + dk * stride2
                            )
                            self.access(addr // self.line_bytes, is_load=False)
                            requests += 1
                            write_accesses += 1
        fetch = (self.load_misses - fetch_misses_before) * self.line_bytes
        return TrafficEstimate(
            fetch_bytes=float(fetch),
            write_bytes=float(write_accesses * itemsize),
            tcc_requests=float(requests),
            tcc_hits=float(self.hits),
            tcc_misses=float(self.misses),
            passes_by_array={},
        )


def seven_point_offsets() -> set[tuple[int, int, int]]:
    """The paper's 7-point Laplacian stencil offsets (Eq. 3)."""
    return set(_SEVEN_POINT)
