"""A rocprof-style profiler for the simulated device.

Records kernel dispatches, JIT compilations, and H2D/D2H copies with
their modeled timestamps, then renders

- per-kernel counter rows in Table 3's format (``wgr``, ``lds``,
  ``scr``, ``FETCH_SIZE``, ``WRITE_SIZE``, ``TCC_HIT``, ``TCC_MISS``,
  average duration), and
- a Figure-5-style text trace of computational load and memory
  transfers over simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.calibration import ROCPROF_COUNTER_SAMPLE_DIVISOR
from repro.gpu.kernel import LaunchConfig
from repro.gpu.perf import LaunchCost
from repro.util.tables import Table
from repro.util.units import GB


@dataclass(frozen=True)
class ProfileEvent:
    """One timeline entry: a kernel, a copy, or a JIT compilation."""

    device: str
    kind: str  # "kernel" | "copy" | "compile"
    name: str
    start: float
    seconds: float
    nbytes: float = 0.0
    cost: LaunchCost | None = None
    workgroup_size: int = 0

    @property
    def end(self) -> float:
        return self.start + self.seconds


@dataclass
class KernelStats:
    """Accumulated counters for one kernel symbol (one Table 3 column)."""

    name: str
    calls: int = 0
    total_seconds: float = 0.0
    fetch_bytes: float = 0.0
    write_bytes: float = 0.0
    tcc_hits: float = 0.0
    tcc_misses: float = 0.0
    workgroup_size: int = 0
    lds_bytes: int = 0
    scratch_bytes: int = 0

    @property
    def avg_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0

    @property
    def avg_fetch_bytes(self) -> float:
        return self.fetch_bytes / self.calls if self.calls else 0.0

    @property
    def avg_write_bytes(self) -> float:
        return self.write_bytes / self.calls if self.calls else 0.0

    @property
    def tcc_hit_m(self) -> float:
        """TCC_HIT per call in rocprof-normalized millions (Table 3)."""
        if not self.calls:
            return 0.0
        return self.tcc_hits / self.calls / ROCPROF_COUNTER_SAMPLE_DIVISOR / 1e6

    @property
    def tcc_miss_m(self) -> float:
        if not self.calls:
            return 0.0
        return self.tcc_misses / self.calls / ROCPROF_COUNTER_SAMPLE_DIVISOR / 1e6


class Profiler:
    """Collects :class:`ProfileEvent` entries from one or more devices."""

    def __init__(self) -> None:
        self.events: list[ProfileEvent] = []

    # -- recording hooks (called by Device) -----------------------------
    def record_kernel(
        self,
        device: str,
        name: str,
        start: float,
        cost: LaunchCost,
        config: LaunchConfig,
    ) -> None:
        self.events.append(
            ProfileEvent(
                device=device,
                kind="kernel",
                name=name,
                start=start,
                seconds=cost.seconds,
                nbytes=cost.total_bytes,
                cost=cost,
                workgroup_size=config.workgroup_size,
            )
        )

    def record_copy(self, device: str, kind: str, nbytes: int, start: float, seconds: float) -> None:
        self.events.append(
            ProfileEvent(
                device=device, kind="copy", name=kind, start=start,
                seconds=seconds, nbytes=nbytes,
            )
        )

    def record_compile(self, device: str, name: str, start: float, seconds: float) -> None:
        self.events.append(
            ProfileEvent(device=device, kind="compile", name=name, start=start, seconds=seconds)
        )

    # -- queries ---------------------------------------------------------
    def kernel_events(self, name: str | None = None) -> list[ProfileEvent]:
        return [
            e for e in self.events
            if e.kind == "kernel" and (name is None or e.name == name)
        ]

    def report(self, device=None) -> "RocprofReport":
        return RocprofReport.from_events(self.events, device=device)

    def replay_into(self, tracer) -> int:
        """Re-emit every recorded event into a tracer as sim-clock spans.

        Uses the same lane scheme as the live hooks in
        :mod:`repro.gpu.memory` (process = device name, threads ``jit``
        / ``kernel`` / ``copy``), so offline-collected profiles merge
        cleanly into a trace. Returns the number of spans emitted.
        """
        from repro.observe import SIM

        for event in self.events:
            if event.kind == "compile":
                name, thread = f"jit.{event.name}", "jit"
                args = {"kernel": event.name}
            elif event.kind == "copy":
                name, thread = f"memcpy.{event.name}", "copy"
                args = {"bytes": int(event.nbytes), "kind": event.name}
            else:
                name, thread = event.name, "kernel"
                args = {
                    "bytes": int(event.nbytes),
                    "workgroup_size": event.workgroup_size,
                }
            tracer.add_span(
                name,
                cat="gpu",
                clock=SIM,
                process=event.device,
                thread=thread,
                start=event.start,
                seconds=event.seconds,
                args=args,
            )
        return len(self.events)


@dataclass
class RocprofReport:
    """Aggregated per-kernel stats + the raw timeline."""

    stats: dict[str, KernelStats] = field(default_factory=dict)
    events: list[ProfileEvent] = field(default_factory=list)

    @classmethod
    def from_events(cls, events, *, device=None) -> "RocprofReport":
        report = cls(events=[e for e in events if device is None or e.device == device])
        for event in report.events:
            if event.kind != "kernel" or event.cost is None:
                continue
            st = report.stats.setdefault(event.name, KernelStats(event.name))
            st.calls += 1
            st.total_seconds += event.seconds
            st.fetch_bytes += event.cost.fetch_bytes
            st.write_bytes += event.cost.write_bytes
            st.tcc_hits += event.cost.tcc_hits
            st.tcc_misses += event.cost.tcc_misses
            st.workgroup_size = event.workgroup_size
        return report

    def attach_codegen(self, kernel_name: str, compiled) -> None:
        """Attach wgr/lds/scr from a :class:`CompiledKernel`."""
        st = self.stats.get(kernel_name)
        if st is None:
            return
        st.workgroup_size = compiled.workgroup_size
        st.lds_bytes = compiled.lds_bytes
        st.scratch_bytes = compiled.scratch_bytes

    def render_table(self, title: str = "rocprof outputs") -> str:
        """The Table 3 layout: one column block per kernel."""
        table = Table(
            ["metric", *self.stats.keys()],
            title=title,
        )
        columns = list(self.stats.values())
        rows = [
            ("wgr", lambda s: s.workgroup_size),
            ("lds", lambda s: s.lds_bytes),
            ("scr", lambda s: s.scratch_bytes),
            ("FETCH_SIZE (GB)", lambda s: s.avg_fetch_bytes / GB),
            ("WRITE_SIZE (GB)", lambda s: s.avg_write_bytes / GB),
            ("TCC_HIT (M)", lambda s: s.tcc_hit_m),
            ("TCC_MISS (M)", lambda s: s.tcc_miss_m),
            ("Avg Duration (ms)", lambda s: s.avg_seconds * 1e3),
        ]
        for label, getter in rows:
            table.add_row([label, *(getter(s) for s in columns)])
        return table.render()

    def to_csv(self) -> str:
        """The rocprof ``results.csv`` shape: one row per dispatch/copy.

        Columns follow rocprof's conventions (timestamps in ns, sizes in
        bytes); compile events appear with KernelName ``<jit>`` so the
        Figure 7 overhead is visible in the same file.
        """
        header = (
            '"Index","KernelName","gpu-id","BeginNs","EndNs","DurationNs",'
            '"FETCH_SIZE","WRITE_SIZE","TCC_HIT","TCC_MISS","wgr"'
        )
        lines = [header]
        for index, event in enumerate(self.events):
            if event.kind == "kernel" and event.cost is not None:
                name = event.name
                fetch = int(event.cost.fetch_bytes)
                write = int(event.cost.write_bytes)
                hits = int(event.cost.tcc_hits)
                misses = int(event.cost.tcc_misses)
            elif event.kind == "compile":
                name = f"<jit:{event.name}>"
                fetch = write = hits = misses = 0
            else:
                name = f"<memcpy:{event.name}>"
                fetch = int(event.nbytes) if event.name == "D2H" else 0
                write = int(event.nbytes) if event.name == "H2D" else 0
                hits = misses = 0
            lines.append(
                f'{index},"{name}","{event.device}",'
                f"{int(event.start * 1e9)},{int(event.end * 1e9)},"
                f"{int(event.seconds * 1e9)},"
                f"{fetch},{write},{hits},{misses},{event.workgroup_size}"
            )
        return "\n".join(lines)

    def write_csv(self, path) -> None:
        from pathlib import Path

        Path(path).write_text(self.to_csv() + "\n")

    def render_trace(self, *, width: int = 72) -> str:
        """Figure-5-style text timeline of kernels, copies, compiles.

        Rendered by the shared :func:`repro.observe.export.ascii_timeline`.
        """
        from repro.observe.export import ascii_timeline

        labels = {"compile": "JIT", "kernel": "GPU kernels", "copy": "memcpy"}
        glyphs = {"compile": "J", "kernel": "#", "copy": "="}
        rows = [
            (
                labels[kind],
                glyphs[kind],
                [
                    (e.start, e.end)
                    for e in self.events
                    if e.kind == kind
                ],
            )
            for kind in ("compile", "kernel", "copy")
        ]
        return ascii_timeline(rows, width=width)
