"""Counter-based device RNG.

The paper's kernel draws ``rand(Uniform(-1, 1))`` *inside* the GPU
kernel — this is exactly the feature that forces AMDGPU.jl to allocate
LDS and scratch (Table 3's ``lds``/``scr`` rows) and part of why the
application kernel is slower than the no-random variant (Table 2).

A stateful RNG is not reproducible across decompositions or between
the scalar interpreter and the vectorized path, so we use a
counter-based generator instead (the same idea as Philox): the sample
at (seed, step, i, j, k) is a pure hash of its coordinates. The scalar
form :func:`counter_uniform` and the vectorized :func:`uniform_field`
produce bitwise-identical values.

During JIT tracing the index arguments are symbolic; the tracer
intercepts the call, records a ``rand`` op for the codegen cost model,
and returns a concrete sample so tracing can proceed.
"""

from __future__ import annotations

import numpy as np

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_U64_MASK = 0xFFFFFFFFFFFFFFFF


def _splitmix64_int(x: int) -> int:
    """One splitmix64 round on a Python int (no numpy overflow warnings)."""
    x = (x + 0x9E3779B97F4A7C15) & _U64_MASK
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _U64_MASK
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _U64_MASK
    return z ^ (z >> 31)


def counter_hash(*keys: int) -> int:
    """Combine integer keys into a 64-bit hash, order-sensitively."""
    h = 0
    for key in keys:
        h = _splitmix64_int(h ^ (int(key) & _U64_MASK))
    return h


def counter_uniform(*keys) -> float:
    """A uniform sample in [-1, 1) keyed purely by its coordinates.

    Accepts traced integers during JIT tracing (see module docstring).
    """
    from repro.gpu.jit import TracedInt, TracedFloat

    traced = [k for k in keys if isinstance(k, TracedInt)]
    if traced:
        tracer = traced[0].tracer
        symbolic = tuple(
            k.expr if isinstance(k, TracedInt) else int(k) for k in keys
        )
        ssa = tracer.record_rand(symbolic)
        concrete = counter_uniform(*[int(k) for k in keys])
        return TracedFloat(tracer, concrete, ssa)
    h = counter_hash(*keys)
    # 53 random mantissa bits -> [0, 1), then map to [-1, 1).
    return (h >> 11) * (2.0**-53) * 2.0 - 1.0


def uniform_field(
    seed: int, step: int, shape: tuple[int, int, int], offset: tuple[int, int, int]
) -> np.ndarray:
    """Vectorized ``counter_uniform(seed, step, i, j, k)`` over a grid.

    ``offset`` maps local array indices to global cell coordinates so a
    decomposed run samples the same noise as a single-domain run.
    Returns a Fortran-ordered float64 array matching the scalar form
    bitwise.
    """
    with np.errstate(over="ignore"):
        i = (np.arange(shape[0], dtype=np.uint64) + np.uint64(offset[0]))[:, None, None]
        j = (np.arange(shape[1], dtype=np.uint64) + np.uint64(offset[1]))[None, :, None]
        k = (np.arange(shape[2], dtype=np.uint64) + np.uint64(offset[2]))[None, None, :]
        h = _splitmix64_vec(np.uint64(0) ^ np.uint64(seed))
        h = _splitmix64_vec(h ^ np.uint64(step))
        h = _splitmix64_vec(h ^ i)
        h = _splitmix64_vec(h ^ j)
        h = _splitmix64_vec(h ^ k)
    out = (h >> np.uint64(11)).astype(np.float64) * (2.0**-53) * 2.0 - 1.0
    return np.asfortranarray(out)


def _splitmix64_vec(x: np.ndarray | np.uint64) -> np.ndarray | np.uint64:
    x = x + _GOLDEN
    z = x
    z = (z ^ (z >> np.uint64(30))) * _MIX1
    z = (z ^ (z >> np.uint64(27))) * _MIX2
    return z ^ (z >> np.uint64(31))
