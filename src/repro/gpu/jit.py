"""A tracing JIT: lowers scalar kernel bodies to an LLVM-like IR.

The paper inspects the LLVM-IR Julia generates for the Gray-Scott
kernel (Listing 4) and observes "14 unique memory loads and 2 stores" —
consistent with the algorithm (7-point stencil x 2 variables), i.e. the
high-level language added no hidden memory traffic. We reproduce that
analysis mechanically: the kernel's scalar body is executed once with
*traced* operands; every array load/store, arithmetic op, and RNG call
is recorded; repeated loads of the same address are CSE'd exactly as
LLVM would; and the result is

- an IR listing (:meth:`KernelTrace.render_ir`) whose load/store lines
  can be compared against Listing 4, and
- the per-array stencil **offset sets** that feed the TCC cache model
  (:mod:`repro.gpu.cache`) — the JIT is how the performance layer
  learns a kernel's memory access pattern without being told.

Tracing strategy: index variables are :class:`TracedInt` carrying both
a concrete value (so data-dependent guards evaluate normally — we trace
an interior workitem) and an affine symbolic expression (so array
subscripts reveal their constant stencil offsets).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.observe import trace as observe
from repro.util.errors import GpuError

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.backends import BackendProfile
    from repro.gpu.kernel import Kernel


class TraceError(GpuError):
    """The kernel body did something the tracer cannot follow."""


# ---------------------------------------------------------------------------
# affine index expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Affine:
    """``sum(coeff * symbol) + const`` over launch-axis symbols.

    Instances are canonical regardless of how they were built:
    duplicate symbols merge, zero coefficients drop, and terms sort —
    so ``==`` and ``hash`` agree for semantically equal expressions
    (e.g. ``Affine((("x", 0),))`` equals ``Affine()``).
    """

    terms: tuple[tuple[str, int], ...] = ()
    const: int = 0

    def __post_init__(self) -> None:
        coeffs: dict[str, int] = {}
        for sym, c in self.terms:
            coeffs[sym] = coeffs.get(sym, 0) + int(c)
        canonical = tuple(sorted((s, c) for s, c in coeffs.items() if c != 0))
        object.__setattr__(self, "terms", canonical)
        object.__setattr__(self, "const", int(self.const))

    @classmethod
    def symbol(cls, name: str) -> "Affine":
        return cls(terms=((name, 1),), const=0)

    @classmethod
    def constant(cls, value: int) -> "Affine":
        return cls(terms=(), const=value)

    def _combine(self, other: "Affine", sign: int) -> "Affine":
        coeffs = dict(self.terms)
        for sym, c in other.terms:
            coeffs[sym] = coeffs.get(sym, 0) + sign * c
        return Affine(
            terms=tuple(coeffs.items()), const=self.const + sign * other.const
        )

    def __add__(self, other: "Affine") -> "Affine":
        return self._combine(other, +1)

    def __sub__(self, other: "Affine") -> "Affine":
        return self._combine(other, -1)

    def scaled(self, factor: int) -> "Affine":
        factor = int(factor)
        return Affine(
            terms=tuple((s, c * factor) for s, c in self.terms),
            const=self.const * factor,
        )

    def coefficient(self, symbol: str) -> int:
        """The coefficient of ``symbol`` (0 when absent)."""
        for sym, c in self.terms:
            if sym == symbol:
                return c
        return 0

    def evaluate(self, values: dict[str, int]) -> int:
        """Concrete value at a symbol assignment (missing symbols = 0)."""
        return self.const + sum(
            c * values.get(sym, 0) for sym, c in self.terms
        )

    @property
    def linear_part(self) -> tuple[tuple[str, int], ...]:
        return self.terms

    def __str__(self) -> str:
        parts = [
            (sym if c == 1 else f"{c}*{sym}") for sym, c in self.terms
        ]
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts).replace("+ -", "- ")


# ---------------------------------------------------------------------------
# traced values
# ---------------------------------------------------------------------------


class TracedInt:
    """An integer with a concrete value and an affine symbolic form."""

    __slots__ = ("tracer", "value", "expr")

    def __init__(self, tracer: "Tracer", value: int, expr: Affine):
        self.tracer = tracer
        self.value = int(value)
        self.expr = expr

    def __int__(self) -> int:
        return self.value

    def __index__(self) -> int:
        return self.value

    @staticmethod
    def _coerce(tracer: "Tracer", other) -> "TracedInt":
        if isinstance(other, TracedInt):
            return other
        if isinstance(other, (int, np.integer)):
            return TracedInt(tracer, int(other), Affine.constant(int(other)))
        raise TraceError(f"cannot mix traced index with {type(other).__name__}")

    def __add__(self, other):
        o = self._coerce(self.tracer, other)
        return TracedInt(self.tracer, self.value + o.value, self.expr + o.expr)

    __radd__ = __add__

    def __sub__(self, other):
        o = self._coerce(self.tracer, other)
        return TracedInt(self.tracer, self.value - o.value, self.expr - o.expr)

    def __rsub__(self, other):
        o = self._coerce(self.tracer, other)
        return TracedInt(self.tracer, o.value - self.value, o.expr - self.expr)

    def __mul__(self, other):
        if isinstance(other, TracedInt):
            if other.expr.linear_part and self.expr.linear_part:
                raise TraceError("non-affine index expression (symbol * symbol)")
            if other.expr.linear_part:
                return other.__mul__(self)
            other = other.value
        if not isinstance(other, (int, np.integer)):
            raise TraceError(f"index multiplied by {type(other).__name__}")
        return TracedInt(self.tracer, self.value * int(other), self.expr.scaled(int(other)))

    __rmul__ = __mul__

    # comparisons drive guards; they evaluate on the concrete value.
    def __eq__(self, other):
        try:
            return self.value == int(other)
        except (TypeError, ValueError):
            return NotImplemented

    def __ne__(self, other):
        eq = self.__eq__(other)
        if eq is NotImplemented:
            return eq
        return not eq

    def __lt__(self, other):
        return self.value < int(other)

    def __le__(self, other):
        return self.value <= int(other)

    def __gt__(self, other):
        return self.value > int(other)

    def __ge__(self, other):
        return self.value >= int(other)

    def __hash__(self) -> int:
        # consistent with __eq__, which compares concrete values: a
        # TracedInt hashes (and compares) like its plain int, so traced
        # indices work in sets/dicts keyed by int.
        return hash(self.value)

    def __repr__(self) -> str:  # pragma: no cover
        return f"TracedInt({self.value}, {self.expr})"


_BINOPS = {
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
    "fdiv": lambda a, b: a / b,
}


class TracedFloat:
    """A floating value flowing through the traced kernel body."""

    __slots__ = ("tracer", "value", "ssa")

    def __init__(self, tracer: "Tracer", value: float, ssa: str | None = None):
        self.tracer = tracer
        self.value = float(value)
        self.ssa = ssa if ssa is not None else tracer.fresh_ssa()

    def _binop(self, op: str, other, reverse: bool = False):
        if isinstance(other, TracedFloat):
            o_val, o_ssa = other.value, other.ssa
        elif isinstance(other, (int, float, np.floating, np.integer)):
            o_val, o_ssa = float(other), repr(float(other))
        elif isinstance(other, TracedInt):
            # a traced index promoted into float dataflow: LLVM would
            # emit a sitofp here — record it for the type-stability lint
            self.tracer.record_type_escape(
                "sitofp", f"index {other.expr} enters {op}"
            )
            o_val, o_ssa = float(other.value), repr(float(other.value))
        else:
            return NotImplemented
        a, b = (o_val, self.value) if reverse else (self.value, o_val)
        a_ssa, b_ssa = (o_ssa, self.ssa) if reverse else (self.ssa, o_ssa)
        result = TracedFloat(self.tracer, _BINOPS[op](a, b))
        self.tracer.record_arith(op, result.ssa, a_ssa, b_ssa)
        return result

    def __add__(self, other):
        return self._binop("fadd", other)

    def __radd__(self, other):
        return self._binop("fadd", other, reverse=True)

    def __sub__(self, other):
        return self._binop("fsub", other)

    def __rsub__(self, other):
        return self._binop("fsub", other, reverse=True)

    def __mul__(self, other):
        return self._binop("fmul", other)

    def __rmul__(self, other):
        return self._binop("fmul", other, reverse=True)

    def __truediv__(self, other):
        return self._binop("fdiv", other)

    def __rtruediv__(self, other):
        return self._binop("fdiv", other, reverse=True)

    def __neg__(self):
        return self._binop("fmul", -1.0)

    def __pow__(self, exponent):
        if not isinstance(exponent, (int, np.integer)) or exponent < 1:
            raise TraceError("traced pow supports positive integer exponents only")
        result = self
        for _ in range(int(exponent) - 1):
            result = result * self
        return result

    def __float__(self) -> float:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover
        return f"TracedFloat({self.value}, {self.ssa})"


class TracedArray:
    """Array stand-in: subscripts record loads/stores with affine offsets."""

    __slots__ = ("tracer", "name", "data")

    def __init__(self, tracer: "Tracer", name: str, data: np.ndarray):
        self.tracer = tracer
        self.name = name
        self.data = data

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    def _exprs(self, idx) -> tuple[tuple[Affine, ...], tuple[int, ...]]:
        if not isinstance(idx, tuple):
            idx = (idx,)
        exprs, values = [], []
        for component in idx:
            traced = TracedInt._coerce(self.tracer, component)
            exprs.append(traced.expr)
            values.append(traced.value)
        return tuple(exprs), tuple(values)

    def __getitem__(self, idx) -> TracedFloat:
        exprs, values = self._exprs(idx)
        concrete = float(self.data[values])
        ssa = self.tracer.record_load(self.name, exprs)
        return TracedFloat(self.tracer, concrete, ssa)

    def __setitem__(self, idx, value) -> None:
        exprs, values = self._exprs(idx)
        if isinstance(value, TracedFloat):
            ssa, concrete = value.ssa, value.value
        else:
            if isinstance(value, TracedInt):
                self.tracer.record_type_escape(
                    "int-store",
                    f"index {value.expr} stored into float array {self.name}",
                )
                value = value.value
            ssa, concrete = repr(float(value)), float(value)
        self.tracer.record_store(self.name, exprs, ssa)
        self.data[values] = concrete


# ---------------------------------------------------------------------------
# the trace itself
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MemoryAccess:
    """One load or store: array name + per-axis affine index expressions."""

    array: str
    exprs: tuple[Affine, ...]

    def stencil_offset(self) -> tuple[int, ...] | None:
        """Constant offsets when every axis is affine in >= 0 symbols.

        Returns None for accesses whose linear part differs between two
        accesses of the same array (handled conservatively by traffic
        models).
        """
        return tuple(e.const for e in self.exprs)

    def linear_signature(self) -> tuple:
        return tuple(e.linear_part for e in self.exprs)

    def __str__(self) -> str:
        return f"{self.array}[{', '.join(str(e) for e in self.exprs)}]"


@dataclass
class KernelTrace:
    """Everything the tracer observed in one kernel body execution."""

    kernel_name: str
    loads: list[MemoryAccess] = field(default_factory=list)
    stores: list[MemoryAccess] = field(default_factory=list)
    arith_ops: dict[str, int] = field(default_factory=dict)
    rand_calls: int = 0
    ir_lines: list[str] = field(default_factory=list)
    #: which argument positions were arrays, and the trace-time name
    #: used for them in IR/offset records
    array_names_by_position: dict[int, str] = field(default_factory=dict)
    #: trace-time array name -> numpy dtype name (the type-mix lint input)
    array_dtypes: dict[str, str] = field(default_factory=dict)
    #: trace-time array name -> shape (the absolute-bounds lint input)
    array_shapes: dict[str, tuple[int, ...]] = field(default_factory=dict)
    #: (kind, detail) records of integer values escaping into float
    #: dataflow ("sitofp", "int-store") — @code_warntype-style evidence
    type_escapes: list[tuple[str, str]] = field(default_factory=list)
    #: structured op records mirroring ``ir_lines`` — the input for
    #: :func:`repro.ir.from_trace`. One tuple per emitted IR line:
    #: ("load", ssa, array, exprs) / ("arith", ssa, op, a_ssa, b_ssa) /
    #: ("rand", ssa, keys) / ("store", array, exprs, value_ssa).
    #: Loads are CSE'd exactly like ``ir_lines``: a repeated load of the
    #: same address re-uses the first record's SSA and adds no op.
    ops: list[tuple] = field(default_factory=list)
    _load_ssa: dict[tuple, str] = field(default_factory=dict)

    @property
    def unique_loads(self) -> list[MemoryAccess]:
        seen, out = set(), []
        for acc in self.loads:
            key = (acc.array, acc.linear_signature(), acc.stencil_offset())
            if key not in seen:
                seen.add(key)
                out.append(acc)
        return out

    @property
    def unique_stores(self) -> list[MemoryAccess]:
        seen, out = set(), []
        for acc in self.stores:
            key = (acc.array, acc.linear_signature(), acc.stencil_offset())
            if key not in seen:
                seen.add(key)
                out.append(acc)
        return out

    @property
    def flops(self) -> int:
        return sum(self.arith_ops.values())

    def offsets_by_array(self) -> dict[str, set[tuple[int, ...]]]:
        """Per-array unique stencil load offsets — the cache model input."""
        result: dict[str, set[tuple[int, ...]]] = {}
        for acc in self.unique_loads:
            offset = acc.stencil_offset()
            if offset is not None:
                result.setdefault(acc.array, set()).add(offset)
        return result

    def stores_by_array(self) -> dict[str, set[tuple[int, ...]]]:
        result: dict[str, set[tuple[int, ...]]] = {}
        for acc in self.unique_stores:
            offset = acc.stencil_offset()
            if offset is not None:
                result.setdefault(acc.array, set()).add(offset)
        return result

    def render_ir(self) -> str:
        """The LLVM-like listing (compare with the paper's Listing 4)."""
        header = (
            f"; kernel {self.kernel_name}: "
            f"{len(self.unique_loads)} unique loads, "
            f"{len(self.unique_stores)} stores, "
            f"{self.flops} fp ops, {self.rand_calls} rand calls"
        )
        return "\n".join([header, *self.ir_lines])


class Tracer:
    """Records one symbolic execution of a kernel body."""

    def __init__(self, kernel_name: str):
        self.trace = KernelTrace(kernel_name)
        self._ssa_counter = 0

    def fresh_ssa(self) -> str:
        self._ssa_counter += 1
        return f"%{self._ssa_counter}"

    def record_load(self, array: str, exprs: tuple[Affine, ...]) -> str:
        access = MemoryAccess(array, exprs)
        key = (array, access.linear_signature(), access.stencil_offset())
        self.trace.loads.append(access)
        if key in self.trace._load_ssa:  # CSE: LLVM folds repeated loads
            return self.trace._load_ssa[key]
        ssa = self.fresh_ssa()
        self.trace._load_ssa[key] = ssa
        self.trace.ops.append(("load", ssa, array, exprs))
        self.trace.ir_lines.append(
            f"{ssa} = load double, double addrspace(1)* %{array}.ptr, align 8"
            f"  ; {access}"
        )
        return ssa

    def record_store(self, array: str, exprs: tuple[Affine, ...], value_ssa: str) -> None:
        access = MemoryAccess(array, exprs)
        self.trace.stores.append(access)
        self.trace.ops.append(("store", array, exprs, value_ssa))
        self.trace.ir_lines.append(
            f"store double {value_ssa}, double addrspace(1)* %{array}.ptr, align 8"
            f"  ; {access}"
        )

    def record_arith(self, op: str, result_ssa: str, a_ssa: str, b_ssa: str) -> None:
        self.trace.arith_ops[op] = self.trace.arith_ops.get(op, 0) + 1
        self.trace.ops.append(("arith", result_ssa, op, a_ssa, b_ssa))
        self.trace.ir_lines.append(
            f"{result_ssa} = {op} double {a_ssa}, {b_ssa}"
        )

    def record_rand(self, keys: tuple = ()) -> str:
        """Record a device RNG call; ``keys`` are Affine exprs or ints.

        Returns the SSA name of the sample so the caller can thread it
        into the value dataflow (the rand result is a first-class SSA
        value, not a side effect).
        """
        self.trace.rand_calls += 1
        ssa = self.fresh_ssa()
        self.trace.ops.append(("rand", ssa, tuple(keys)))
        self.trace.ir_lines.append(
            f"{ssa} = call double @device_uniform()  ; rand(Uniform(-1,1))"
        )
        return ssa

    def record_type_escape(self, kind: str, detail: str) -> None:
        self.trace.type_escapes.append((kind, detail))


def trace_kernel(kernel: "Kernel", args) -> KernelTrace:
    """Trace one interior workitem of ``kernel`` over ``args``.

    Array arguments (``DeviceArray`` or ``numpy.ndarray``) become traced
    arrays; every array must be at least 4 cells wide per axis so the
    canonical interior workitem (global index 2 on each axis) passes
    boundary guards.
    """
    from repro.gpu.kernel import KernelContext
    from repro.gpu.memory import DeviceArray

    tracer = Tracer(kernel.name)
    traced_args = []
    for position, arg in enumerate(args):
        data = arg.data if isinstance(arg, DeviceArray) else arg
        if isinstance(data, np.ndarray) and data.ndim >= 1:
            if any(s < 4 for s in data.shape):
                raise TraceError(
                    f"array argument {position} too small to trace an interior "
                    f"workitem (shape {data.shape}; need >= 4 per axis)"
                )
            name = getattr(arg, "name", None) or f"arg{position}"
            if name in tracer.trace.array_names_by_position.values():
                name = f"{name}@{position}"
            tracer.trace.array_names_by_position[position] = name
            tracer.trace.array_dtypes[name] = data.dtype.name
            tracer.trace.array_shapes[name] = tuple(data.shape)
            traced_args.append(TracedArray(tracer, name, data.copy(order="F")))
        else:
            traced_args.append(arg)

    symbols = [
        TracedInt(tracer, 2, Affine.symbol(axis)) for axis in ("x", "y", "z")
    ]
    ctx = KernelContext(
        workgroup_idx=(0, 0, 0),
        workgroup_dim=(1, 1, 1),
        workitem_idx=tuple(symbols),
    )
    kernel.body(ctx, *traced_args)
    return tracer.trace


# ---------------------------------------------------------------------------
# the launch-trace memo cache
# ---------------------------------------------------------------------------


def kernel_fingerprint(kernel: "Kernel") -> str | None:
    """A content hash of the kernel: stable across processes and runs.

    The fingerprint digests the kernel's name, codegen-relevant flags,
    and the *source text* of its scalar body — the same identity a real
    JIT's method cache keys on. Editing the kernel body changes the
    fingerprint, which is what invalidates persisted compilation plans
    (:mod:`repro.gpu.jitcache`). Returns None when the body's source is
    unavailable (lambdas defined in a REPL, exec'd code); callers then
    fall back to the process-local ``id()`` spelling, which memoizes
    fine but can never be persisted.

    The result is memoized on the kernel instance: tracing-hot paths
    call this once per launch.
    """
    cached = getattr(kernel, "_fingerprint", None)
    if cached is not None:
        return cached or None  # "" caches a failed source lookup
    import hashlib
    import inspect

    try:
        source = inspect.getsource(kernel.body)
    except (OSError, TypeError):
        kernel._fingerprint = ""
        return None
    digest = hashlib.sha256()
    for part in (
        kernel.name,
        str(bool(kernel.uses_rand)),
        str(int(getattr(kernel, "flops_per_workitem", 0) or 0)),
        source,
    ):
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    kernel._fingerprint = digest.hexdigest()
    return kernel._fingerprint


class TraceMemo:
    """Launch-trace memo: repeated launches skip re-tracing entirely.

    The memo is keyed the way a real JIT specializes methods — on types
    and shapes, not values: (kernel identity, per-argument signature,
    launch config). Arrays contribute (position, trace name, dtype,
    shape); tuple arguments keep their values (they carry extents that
    drive boundary guards, e.g. Listing 2's ``sizes``); every other
    scalar contributes only its Python type, so per-launch values like
    ``seed``/``step`` still hit the cache. That is what makes a 20-step
    fig5/fig6 run O(1) in trace cost and is exactly the paper's Fig. 7
    first-launch-vs-optimized JIT split: the trace is computed once per
    (kernel, dtype, shape-class, config) and replayed thereafter.

    Kernel identity is the :func:`kernel_fingerprint` content hash, so
    the same kernel source spells the same key in every process — a
    spawn-context worker or a restarted service computes byte-identical
    keys and can be answered from a persisted plan (the old
    ``id(kernel)`` spelling silently re-traced in every new process).

    Execution is tiered (the pkgimage arc the paper's Fig. 7 motivates):

    1. **interpret** — an unkeyable launch bypasses memoization and
       traces fresh every time (the retained slow path);
    2. **trace** — a keyed miss traces once, then promotes the plan
       into the in-memory memo *and* the attached disk cache;
    3. **memo** — an in-memory hit replays the plan in O(1);
    4. **disk** — a persisted plan from :class:`repro.gpu.jitcache.
       JitDiskCache` (attached via ``memo.disk``) answers a cold
       process's first launch and is promoted into the memo.

    Per-tier promotion counters are kept on the memo and mirrored into
    the active :mod:`repro.observe` metrics registry as
    ``gpu.jit.tier`` counters.

    :func:`trace_kernel` remains the retained slow path; the
    differential property tests assert that a memo hit returns a trace
    bit-identical to a freshly computed one.
    """

    def __init__(self, maxsize: int = 256):
        self.maxsize = int(maxsize)
        # key -> (kernel, trace); the kernel reference keeps the entry's
        # kernel alive (it may be None for plans preloaded from disk)
        self._entries: OrderedDict[tuple, tuple] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.bypasses = 0
        self.disk_hits = 0
        #: optional persistent tier — anything with ``lookup(key)`` /
        #: ``store(key, kernel, trace)``, in practice a
        #: :class:`repro.gpu.jitcache.JitDiskCache`
        self.disk = None

    @staticmethod
    def signature(kernel: "Kernel", args, config=None) -> tuple | None:
        """The (kernel, dtype, shape-class, launch config) memo key.

        Returns None when any argument cannot be keyed (unhashable);
        callers then fall back to the unmemoized slow path.
        """
        from repro.gpu.memory import DeviceArray

        fingerprint = kernel_fingerprint(kernel)
        if fingerprint is not None:
            parts: list = [("kernel", kernel.name, fingerprint)]
        else:
            # no source to hash: key on object identity, process-local
            parts = [("kernel_local", id(kernel), kernel.name)]
        for position, arg in enumerate(args):
            data = arg.data if isinstance(arg, DeviceArray) else arg
            if isinstance(data, np.ndarray) and data.ndim >= 1:
                name = getattr(arg, "name", None) or f"arg{position}"
                parts.append(
                    ("array", position, name, data.dtype.name, tuple(data.shape))
                )
            elif isinstance(arg, tuple):
                parts.append(("tuple", position, arg))
            else:
                parts.append((type(arg).__name__, position))
        if config is not None:
            parts.append(("config", config.grid, config.workgroup))
        key = tuple(parts)
        try:
            hash(key)
        except TypeError:
            return None
        return key

    def trace(self, kernel: "Kernel", args, config=None) -> KernelTrace:
        """Memoized :func:`trace_kernel` (the launch fast path).

        Walks the tiers in cost order: memo hit, persisted plan, fresh
        trace (with promotion into both caches), or — for unkeyable
        launches — the plain interpreter-style bypass.
        """
        key = self.signature(kernel, args, config)
        if key is None:
            self.bypasses += 1
            self._count_tier("interpret")
            return trace_kernel(kernel, args)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            self._count_tier("memo")
            if self.disk is not None:
                # backfill: a memo warm before the disk tier was
                # configured still populates the cache directory
                self.disk.ensure(key, entry[0], entry[1])
            return entry[1]
        if self.disk is not None:
            trace = self.disk.lookup(key)
            if trace is not None:
                self.disk_hits += 1
                self._count_tier("disk")
                self._insert(key, kernel, trace)
                return trace
        self.misses += 1
        self._count_tier("trace")
        trace = trace_kernel(kernel, args)
        self._insert(key, kernel, trace)
        if self.disk is not None:
            self.disk.store(key, kernel, trace)
        return trace

    def _insert(self, key: tuple, kernel, trace: KernelTrace) -> None:
        self._entries[key] = (kernel, trace)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    @staticmethod
    def _count_tier(tier: str) -> None:
        tracer = observe.active()
        if tracer is not None:
            tracer.metrics.counter("gpu.jit.tier", tier=tier).inc()

    def clear(self) -> None:
        self._entries.clear()

    @property
    def tiers(self) -> dict:
        """Per-tier answer counts (interpret/trace/memo/disk)."""
        return {
            "interpret": self.bypasses,
            "trace": self.misses,
            "memo": self.hits,
            "disk": self.disk_hits,
        }

    @property
    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "bypasses": self.bypasses,
            "disk_hits": self.disk_hits,
            "entries": len(self._entries),
        }


#: process-wide memo shared by every Device's JIT and the kernel lint —
#: the trace is a pure function of the memo key, so sharing is safe
_TRACE_MEMO = TraceMemo()


def trace_memo() -> TraceMemo:
    """The process-wide launch-trace memo cache."""
    return _TRACE_MEMO


def memoized_trace(kernel: "Kernel", args, config=None) -> KernelTrace:
    """Memo-backed :func:`trace_kernel`; identical output, O(1) repeats."""
    return _TRACE_MEMO.trace(kernel, args, config)


# ---------------------------------------------------------------------------
# compiled kernels & the JIT cache
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CompiledKernel:
    """A kernel after tracing + backend 'codegen'.

    ``lds_bytes``/``scratch_bytes`` mirror Table 3's ``lds``/``scr``
    rows. Table 3 shows AMDGPU.jl allocates LDS and spills to scratch
    for *both* the random and no-random kernels (29,184 B / 8,192 B) —
    it is a property of the Julia codegen path, not of the RNG — while
    the HIP kernel uses neither.
    """

    kernel: "Kernel"
    trace: KernelTrace
    backend_name: str
    workgroup_size: int
    lds_bytes: int
    scratch_bytes: int

    @property
    def name(self) -> str:
        return self.kernel.name

    @property
    def loads_per_workitem(self) -> int:
        return len(self.trace.unique_loads)

    @property
    def stores_per_workitem(self) -> int:
        return len(self.trace.unique_stores)


class JitCompiler:
    """Per-device JIT cache: first compile of each kernel costs time.

    The paper measures the first JIT-compiled run at ~8% of the
    optimized bandwidth over a 20-step window, i.e. a one-time cost of
    roughly 12.5x the steady window (Figure 7); the backend profile
    turns that into seconds.
    """

    def __init__(self, backend: "BackendProfile", memo: TraceMemo | None = None):
        self.backend = backend
        self.memo = memo if memo is not None else _TRACE_MEMO
        self._cache: dict[tuple, CompiledKernel] = {}
        self._by_name: dict[str, CompiledKernel] = {}
        self.compile_events: list[tuple[str, float]] = []

    def is_compiled(self, kernel: "Kernel") -> bool:
        return kernel.name in self._by_name

    def compile(
        self, kernel: "Kernel", args, config=None
    ) -> tuple[CompiledKernel, float]:
        """Return (compiled, compile_seconds); seconds is 0 on cache hit.

        The cache key is the trace-memo signature — kernel identity plus
        per-argument dtypes/shapes and launch config — so a dtype or
        shape change recompiles (the old name-only key replayed stale
        traces). The modeled compile *seconds* are charged per compiler
        (each device JITs for itself), but the trace work itself is
        shared through the process-wide memo.
        """
        key = self.memo.signature(kernel, args, config)
        cached = self._cache.get(key) if key is not None else None
        if cached is not None:
            return cached, 0.0
        if not args and kernel.name in self._by_name:
            # argument-free lookup of an already-compiled kernel (the
            # profiler's codegen-attach path): no specialization is
            # being requested, so return the last compilation by name
            return self._by_name[kernel.name], 0.0
        trace = self.memo.trace(kernel, args, config)
        compiled = CompiledKernel(
            kernel=kernel,
            trace=trace,
            backend_name=self.backend.name,
            workgroup_size=self.backend.workgroup_size,
            lds_bytes=self.backend.lds_bytes,
            scratch_bytes=self.backend.scratch_bytes,
        )
        if key is not None:
            self._cache[key] = compiled
        self._by_name[kernel.name] = compiled
        seconds = self.backend.compile_seconds(trace)
        self.compile_events.append((kernel.name, seconds))
        return compiled, seconds
