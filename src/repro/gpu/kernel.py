"""Kernel objects and launch semantics.

Kernels mirror the AMDGPU.jl programming model of the paper's Listing 2:
a scalar body is invoked once per workitem, computes its global index
from ``workgroup_idx``/``workgroup_dim``/``workitem_idx``, guards the
domain boundary, and reads/writes device arrays.

Each kernel carries two interchangeable implementations:

- the **scalar body** — the ground truth, executed per-workitem by the
  interpreter (exact but slow; used for small grids, for tests, and as
  the input to the tracing JIT), and
- an optional **vectorized** implementation — a whole-array NumPy
  version used as the fast path for real simulation runs.

``tests/gpu`` asserts the two agree bitwise on small grids (per-cell
RNG keys make even the noisy Gray-Scott kernel deterministic).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.cluster.frontier import GcdSpec
from repro.util.errors import LaunchError


@dataclass(frozen=True)
class LaunchConfig:
    """A 3D launch: ``grid`` workgroups of ``workgroup`` workitems each."""

    grid: tuple[int, int, int]
    workgroup: tuple[int, int, int]

    def __post_init__(self) -> None:
        for name, triple in (("grid", self.grid), ("workgroup", self.workgroup)):
            if len(triple) != 3:
                raise LaunchError(f"{name} must have 3 dimensions, got {triple}")
            if any((not isinstance(v, int)) or v <= 0 for v in triple):
                raise LaunchError(f"{name} dimensions must be positive ints: {triple}")

    @property
    def workgroup_size(self) -> int:
        wx, wy, wz = self.workgroup
        return wx * wy * wz

    @property
    def total_workitems(self) -> int:
        return self.workgroup_size * math.prod(self.grid)

    @property
    def global_extent(self) -> tuple[int, int, int]:
        """Workitems spanned along each launch dimension."""
        return tuple(g * w for g, w in zip(self.grid, self.workgroup))

    def validate(self, spec: GcdSpec) -> None:
        if self.workgroup_size > spec.max_workgroup_size:
            raise LaunchError(
                f"workgroup of {self.workgroup_size} workitems exceeds the "
                f"device limit of {spec.max_workgroup_size}"
            )
        for extent in self.global_extent:
            if extent > spec.max_workitems_per_dim * spec.max_workgroup_size:
                raise LaunchError(
                    f"launch extent {extent} exceeds device addressing limits"
                )

    @classmethod
    def for_domain(
        cls, shape: Sequence[int], workgroup: tuple[int, int, int]
    ) -> "LaunchConfig":
        """Cover ``shape`` workitems with ceil-divided workgroups.

        Mirrors the paper's launch setup, which grows problems by
        factors of 8 so every dimension stays within the 1,024-thread
        per-dimension placement limit (Section 4.1).
        """
        if len(shape) != 3:
            raise LaunchError(f"domain shape must be 3D, got {shape}")
        grid = tuple(-(-int(s) // w) for s, w in zip(shape, workgroup))
        return cls(grid=grid, workgroup=workgroup)


@dataclass(frozen=True)
class KernelContext:
    """Per-workitem identifiers, as AMDGPU.jl exposes them (0-based here).

    The launch x dimension is the fastest-varying workitem dimension.
    Listing 2 of the paper maps launch ``x`` to the *last* array index
    ``k`` and launch ``z`` to the first array index ``i``; kernels are
    free to pick their own mapping — the tracing JIT recovers the true
    memory access pattern either way.
    """

    workgroup_idx: tuple[int, int, int]
    workgroup_dim: tuple[int, int, int]
    workitem_idx: tuple[int, int, int]

    def global_idx(self) -> tuple[int, int, int]:
        """Global workitem index per launch dimension (x, y, z)."""
        return tuple(
            wg * dim + wi
            for wg, dim, wi in zip(
                self.workgroup_idx, self.workgroup_dim, self.workitem_idx
            )
        )


class Kernel:
    """A named GPU kernel with scalar and (optional) vectorized bodies.

    Parameters
    ----------
    name:
        Kernel symbol name; appears in IR listings and profiler output.
    body:
        ``body(ctx: KernelContext, *args)`` — the scalar ground truth.
        Array arguments arrive as raw ``numpy`` arrays (or traced
        stand-ins during JIT tracing); scalar arguments pass through.
    vectorized:
        Optional ``vectorized(extent, *args)`` whole-array fast path,
        where ``extent`` is the launch's global extent.
    uses_rand:
        Whether the body consumes per-workitem random numbers (the
        Gray-Scott noise term). Affects the codegen cost model.
    flops_per_workitem:
        Arithmetic intensity bookkeeping for the roofline model.
    """

    def __init__(
        self,
        name: str,
        body: Callable,
        *,
        vectorized: Callable | None = None,
        uses_rand: bool = False,
        flops_per_workitem: int = 0,
    ) -> None:
        self.name = name
        self.body = body
        self.vectorized = vectorized
        self.uses_rand = uses_rand
        self.flops_per_workitem = flops_per_workitem

    def execute(self, config: LaunchConfig, args, *, force_interpreter: bool = False):
        """Run the kernel functionally over the whole launch."""
        from repro.gpu.memory import DeviceArray

        raw = [a.data if isinstance(a, DeviceArray) else a for a in args]
        if self.vectorized is not None and not force_interpreter:
            self.vectorized(config.global_extent, *raw)
            return
        self._interpret(config, raw)

    def _interpret(self, config: LaunchConfig, raw_args) -> None:
        """The exact per-workitem reference execution (slow path)."""
        gx, gy, gz = config.grid
        wx, wy, wz = config.workgroup
        for bx in range(gx):
            for by in range(gy):
                for bz in range(gz):
                    for tx in range(wx):
                        for ty in range(wy):
                            for tz in range(wz):
                                ctx = KernelContext(
                                    workgroup_idx=(bx, by, bz),
                                    workgroup_dim=(wx, wy, wz),
                                    workitem_idx=(tx, ty, tz),
                                )
                                self.body(ctx, *raw_args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Kernel({self.name!r}, uses_rand={self.uses_rand})"
