"""Per-backend codegen profiles: HIP (vendor) vs. Julia (AMDGPU.jl).

The paper's central GPU finding is that the Julia kernel generates
clean IR (Listing 4) yet sustains only ~half the HIP kernel's
bandwidth; the difference sits "beyond the IR level" in vendor codegen
(Section 5.1). A :class:`BackendProfile` carries exactly the observable
codegen differences Table 3 exposes — workgroup size, LDS, scratch —
plus the calibrated efficiency factor and the JIT compile-cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.bench import calibration as cal
from repro.util.errors import GpuError

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.jit import KernelTrace


@dataclass(frozen=True)
class BackendProfile:
    """How one compiler toolchain lowers kernels on an MI250x GCD."""

    name: str
    #: rocprof "wgr": the workgroup size the toolchain launches with.
    workgroup_size: int
    #: rocprof "lds": LDS bytes per workgroup in generated code.
    lds_bytes: int
    #: rocprof "scr": scratch (register-spill) bytes per workitem.
    scratch_bytes: int
    #: Fraction of peak HBM bandwidth sustained on memory-bound kernels.
    codegen_efficiency: float
    #: Additional multiplicative efficiency when the kernel draws
    #: in-kernel random numbers.
    rand_penalty: float
    #: One-time JIT compile cost; zero for ahead-of-time toolchains.
    base_compile_seconds: float
    compile_seconds_per_ir_line: float

    def __post_init__(self) -> None:
        if not 0.0 < self.codegen_efficiency <= 1.0:
            raise GpuError(f"codegen_efficiency out of (0, 1]: {self.codegen_efficiency}")
        if not 0.0 < self.rand_penalty <= 1.0:
            raise GpuError(f"rand_penalty out of (0, 1]: {self.rand_penalty}")

    def effective_efficiency(self, uses_rand: bool) -> float:
        return self.codegen_efficiency * (self.rand_penalty if uses_rand else 1.0)

    def compile_seconds(self, trace: "KernelTrace") -> float:
        if self.base_compile_seconds == 0.0:
            return 0.0
        return self.base_compile_seconds + self.compile_seconds_per_ir_line * len(
            trace.ir_lines
        )


#: Vendor HIP/ROCm toolchain: ahead-of-time compiled, no LDS/scratch in
#: the stencil kernel (Table 3 column "HIP 1-var").
HIP_BACKEND = BackendProfile(
    name="hip",
    workgroup_size=cal.HIP_WORKGROUP_SIZE,
    lds_bytes=0,
    scratch_bytes=0,
    codegen_efficiency=cal.HIP_CODEGEN_EFFICIENCY,
    rand_penalty=cal.JULIA_RAND_PENALTY,
    base_compile_seconds=0.0,
    compile_seconds_per_ir_line=0.0,
)

#: Julia 1.9.2 + AMDGPU.jl 0.4.15 (Table 1), JIT compiled; allocates
#: LDS and scratch (Table 3 Julia columns).
JULIA_BACKEND = BackendProfile(
    name="julia",
    workgroup_size=cal.JULIA_WORKGROUP_SIZE,
    lds_bytes=cal.JULIA_LDS_BYTES,
    scratch_bytes=cal.JULIA_SCRATCH_BYTES,
    codegen_efficiency=cal.JULIA_CODEGEN_EFFICIENCY,
    rand_penalty=cal.JULIA_RAND_PENALTY,
    base_compile_seconds=cal.JULIA_BASE_COMPILE_SECONDS,
    compile_seconds_per_ir_line=cal.JULIA_COMPILE_SECONDS_PER_IR_LINE,
)

_BACKENDS = {b.name: b for b in (HIP_BACKEND, JULIA_BACKEND)}


def get_backend(name: str | BackendProfile) -> BackendProfile:
    """Look a backend up by name (or pass a profile through)."""
    if isinstance(name, BackendProfile):
        return name
    try:
        return _BACKENDS[name]
    except KeyError:
        raise GpuError(
            f"unknown GPU backend {name!r}; available: {sorted(_BACKENDS)}"
        ) from None
