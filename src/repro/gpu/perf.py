"""Roofline timing of kernel launches.

The Gray-Scott stencil is memory-bound (Section 3.2: 7 reads + 1 write
per variable per cell), so a launch's modeled duration is

    duration = modeled_traffic_bytes / (HBM peak x backend efficiency)

where the traffic comes from the TCC working-set model fed with the
stencil offsets the tracing JIT recovered, and the efficiency is the
backend's calibrated codegen factor (Tables 2-3). Both of the paper's
bandwidth metrics fall out (Eq. 5a/5b):

- ``effective_bandwidth`` — Eq. 4 minimal data movement / duration,
- ``total_bandwidth`` — modeled FETCH_SIZE + WRITE_SIZE / duration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.frontier import GcdSpec
from repro.gpu.backends import BackendProfile
from repro.gpu.cache import (
    StencilTrafficModel,
    TrafficEstimate,
    effective_fetch_cells,
    effective_write_cells,
    seven_point_offsets,
)
from repro.gpu.jit import CompiledKernel
from repro.gpu.kernel import LaunchConfig
from repro.util.errors import GpuError


@dataclass(frozen=True)
class LaunchCost:
    """Everything the performance model concluded about one launch."""

    kernel_name: str
    seconds: float
    fetch_bytes: float
    write_bytes: float
    effective_fetch_bytes: float
    effective_write_bytes: float
    tcc_hits: float
    tcc_misses: float
    flops: float

    @property
    def total_bytes(self) -> float:
        return self.fetch_bytes + self.write_bytes

    @property
    def effective_bytes(self) -> float:
        return self.effective_fetch_bytes + self.effective_write_bytes

    @property
    def total_bandwidth(self) -> float:
        """Eq. 5b: rocprof-style bandwidth, bytes/s."""
        return self.total_bytes / self.seconds

    @property
    def effective_bandwidth(self) -> float:
        """Eq. 5a: effective (minimal-movement) bandwidth, bytes/s."""
        return self.effective_bytes / self.seconds


class RooflineModel:
    """Memory-bound launch costing for one device + backend.

    ``counter_mode`` selects how TCC counters are produced:

    - ``"analytic"`` (default) — the working-set model; works at any
      problem size and is what Frontier-scale results use;
    - ``"trace"`` — exact trace-driven cache simulation of the access
      stream (:meth:`TraceCacheSim.multi_sweep`); only viable at mini
      scale (the access count is bounded by ``trace_probe_cap``) and
      used to validate the analytic model inside the executed pipeline.
    """

    #: maximum cells x accesses a trace-mode launch may generate
    trace_probe_cap = 4_000_000

    def __init__(
        self,
        spec: GcdSpec,
        backend: BackendProfile,
        *,
        counter_mode: str = "analytic",
    ):
        if counter_mode not in ("analytic", "trace"):
            raise GpuError(
                f"counter_mode must be 'analytic' or 'trace', got {counter_mode!r}"
            )
        self.spec = spec
        self.backend = backend
        self.counter_mode = counter_mode
        self.traffic_model = StencilTrafficModel(spec)

    def _array_shapes(self, compiled: CompiledKernel, args) -> dict[str, tuple]:
        """Map trace array names to the shapes/itemsizes of launch args."""
        shapes: dict[str, tuple] = {}
        for position, name in compiled.trace.array_names_by_position.items():
            if position >= len(args):
                raise GpuError(
                    f"kernel {compiled.name} was traced with an array at "
                    f"argument {position} but the launch passed {len(args)} args"
                )
            arg = args[position]
            from repro.gpu.memory import DeviceArray

            data = arg.data if isinstance(arg, DeviceArray) else arg
            if not isinstance(data, np.ndarray):
                raise GpuError(
                    f"argument {position} of {compiled.name} must be an array "
                    f"(traced as {name!r}), got {type(arg).__name__}"
                )
            shapes[name] = (tuple(data.shape), data.itemsize)
        return shapes

    def traffic(self, compiled: CompiledKernel, args) -> TrafficEstimate:
        """TCC traffic for this launch's actual array shapes."""
        shapes = self._array_shapes(compiled, args)
        loads = compiled.trace.offsets_by_array()
        stores = compiled.trace.stores_by_array()
        ref_shape = None
        itemsize = 8
        for name in list(loads) + list(stores):
            if name in shapes:
                ref_shape, itemsize = shapes[name]
                break
        if ref_shape is None:
            raise GpuError(f"kernel {compiled.name} accesses no traced arrays")
        if len(ref_shape) != 3:
            raise GpuError(
                f"performance model supports 3D kernels; {compiled.name} "
                f"touches an array of shape {ref_shape}"
            )
        if self.counter_mode == "trace":
            cells = int(np.prod(ref_shape))
            accesses = cells * (
                sum(len(o) for o in loads.values())
                + sum(len(o) for o in stores.values())
            )
            if accesses > self.trace_probe_cap:
                raise GpuError(
                    f"trace counter mode would replay {accesses} accesses "
                    f"(cap {self.trace_probe_cap}); use analytic mode for "
                    f"arrays of shape {ref_shape}"
                )
            from repro.gpu.cache import TraceCacheSim

            sim = TraceCacheSim(
                self.spec.tcc_bytes, line_bytes=self.spec.cache_line_bytes
            )
            return sim.multi_sweep(ref_shape, itemsize, loads, stores)
        return self.traffic_model.estimate(ref_shape, itemsize, loads, stores)

    def effective_sizes(self, compiled: CompiledKernel, args) -> tuple[float, float]:
        """Paper Eq. 4a/4b effective fetch and write bytes for a launch."""
        shapes = self._array_shapes(compiled, args)
        loads = compiled.trace.offsets_by_array()
        stores = compiled.trace.stores_by_array()
        seven = seven_point_offsets()
        fetch = 0.0
        for name, offsets in loads.items():
            shape, itemsize = shapes[name]
            if offsets == seven:
                fetch += effective_fetch_cells(shape) * itemsize
            else:
                # non-stencil arrays (e.g. a lookup table): read once
                fetch += float(np.prod(shape)) * itemsize
        write = 0.0
        for name, offsets in stores.items():
            shape, itemsize = shapes[name]
            if offsets == {(0, 0, 0)}:
                write += effective_write_cells(shape) * itemsize
            else:
                write += len(offsets) * float(np.prod(shape)) * itemsize
        return fetch, write

    def launch_cost(
        self, compiled: CompiledKernel, config: LaunchConfig, args
    ) -> LaunchCost:
        traffic = self.traffic(compiled, args)
        eff_fetch, eff_write = self.effective_sizes(compiled, args)
        efficiency = self.backend.effective_efficiency(compiled.kernel.uses_rand)
        achieved = self.spec.hbm_peak_bytes_per_s * efficiency
        seconds = traffic.total_bytes / achieved
        flops = compiled.trace.flops * config.total_workitems
        return LaunchCost(
            kernel_name=compiled.name,
            seconds=seconds,
            fetch_bytes=traffic.fetch_bytes,
            write_bytes=traffic.write_bytes,
            effective_fetch_bytes=eff_fetch,
            effective_write_bytes=eff_write,
            tcc_hits=traffic.tcc_hits,
            tcc_misses=traffic.tcc_misses,
            flops=flops,
        )
