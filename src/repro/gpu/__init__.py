"""A functional + performance simulator of Frontier's MI250x GCDs.

The paper's GPU results (Tables 2-3, Figures 5 and 7) are *memory
traffic* results: the Gray-Scott stencil is memory-bound, so every
reported number derives from bytes-moved divided by kernel time. This
package therefore pairs

- a **functional** layer that really executes kernels (so the solver
  is correct): :class:`~repro.gpu.memory.DeviceArray` with Julia's
  column-major layout, :class:`~repro.gpu.kernel.Kernel` objects with
  workgroup/workitem launch semantics and both a scalar interpreter and
  a vectorized fast path, and
- a **performance** layer that models what Frontier measured: a tracing
  JIT (:mod:`repro.gpu.jit`) that lowers the scalar kernel body to an
  LLVM-like IR and recovers the stencil access pattern, a TCC (L2)
  working-set cache model (:mod:`repro.gpu.cache`), per-backend codegen
  profiles for HIP vs. Julia/AMDGPU.jl (:mod:`repro.gpu.backends`), a
  roofline timing model (:mod:`repro.gpu.perf`), and a rocprof-style
  profiler (:mod:`repro.gpu.rocprof`).

Substitution note (see DESIGN.md): we do not have MI250x hardware; the
performance layer is calibrated against the paper's own measurements
and the structural models (working sets, rooflines) are validated
against a trace-driven cache simulator at sizes where they can be run
exactly.
"""

from repro.gpu.memory import Device, DeviceArray
from repro.gpu.kernel import Kernel, KernelContext, LaunchConfig
from repro.gpu.backends import BackendProfile, HIP_BACKEND, JULIA_BACKEND, get_backend
from repro.gpu.jit import (
    JitCompiler,
    CompiledKernel,
    KernelTrace,
    TraceMemo,
    kernel_fingerprint,
    memoized_trace,
    trace_memo,
)
from repro.gpu.jitcache import JitDiskCache, warm_start
from repro.gpu.cache import StencilTrafficModel, TraceCacheSim, TrafficEstimate
from repro.gpu.perf import RooflineModel, LaunchCost
from repro.gpu.rocprof import Profiler, ProfileEvent, RocprofReport

__all__ = [
    "Device",
    "DeviceArray",
    "Kernel",
    "KernelContext",
    "LaunchConfig",
    "BackendProfile",
    "HIP_BACKEND",
    "JULIA_BACKEND",
    "get_backend",
    "JitCompiler",
    "CompiledKernel",
    "KernelTrace",
    "TraceMemo",
    "kernel_fingerprint",
    "memoized_trace",
    "trace_memo",
    "JitDiskCache",
    "warm_start",
    "StencilTrafficModel",
    "TraceCacheSim",
    "TrafficEstimate",
    "RooflineModel",
    "LaunchCost",
    "Profiler",
    "ProfileEvent",
    "RocprofReport",
]
