"""Analytic launch costs for Frontier-scale problems.

The paper's per-GPU workload is 1024^3 cells — 8.6 GB per field, far
beyond what the functional simulator should allocate. The performance
models never needed the data, only the access pattern; this module
builds :class:`~repro.gpu.perf.LaunchCost` results directly from the
known Gray-Scott kernel structure (the same offsets the tracing JIT
recovers from the real kernels — asserted equal in
``tests/gpu/test_proxy.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.frontier import GcdSpec
from repro.gpu.backends import BackendProfile, get_backend
from repro.gpu.cache import (
    StencilTrafficModel,
    effective_fetch_cells,
    effective_write_cells,
    seven_point_offsets,
)
from repro.gpu.perf import LaunchCost
from repro.util.errors import GpuError

#: Kernel variants evaluated in Tables 2-3.
VARIANTS = ("application", "1var_norand")


@dataclass(frozen=True)
class KernelShape:
    """Structural description of one stencil kernel variant."""

    name: str
    nvars: int
    uses_rand: bool
    #: floating-point ops per workitem (from the traced IR; bookkeeping)
    flops_per_cell: int


_KERNEL_SHAPES = {
    # the paper's 2-variable application kernel (Listing 2)
    "application": KernelShape("gray_scott", nvars=2, uses_rand=True, flops_per_cell=33),
    # 1-variable, no-random diagnostic variant (Table 2/3 middle column)
    "1var_norand": KernelShape("laplacian_1var", nvars=1, uses_rand=False, flops_per_cell=14),
}


def kernel_access_pattern(nvars: int) -> tuple[dict, dict]:
    """(loads_by_array, stores_by_array) for an ``nvars`` stencil kernel."""
    names = ["u", "v", "w", "x"][:nvars]
    loads = {name: seven_point_offsets() for name in names}
    stores = {f"{name}_temp": {(0, 0, 0)} for name in names}
    return loads, stores


def grayscott_launch_cost(
    shape: tuple[int, int, int],
    backend: str | BackendProfile,
    *,
    variant: str = "application",
    spec: GcdSpec | None = None,
    itemsize: int = 8,
) -> LaunchCost:
    """Modeled cost of one Gray-Scott stencil launch on one GCD.

    ``shape`` is the per-GCD local grid (the paper's weak scaling keeps
    it at 1024^3). ``variant`` selects the Table 2/3 kernel flavour.
    """
    try:
        kshape = _KERNEL_SHAPES[variant]
    except KeyError:
        raise GpuError(
            f"unknown kernel variant {variant!r}; available: {sorted(_KERNEL_SHAPES)}"
        ) from None
    spec = spec or GcdSpec()
    backend = get_backend(backend)
    loads, stores = kernel_access_pattern(kshape.nvars)

    traffic = StencilTrafficModel(spec).estimate(shape, itemsize, loads, stores)
    eff_fetch = kshape.nvars * effective_fetch_cells(shape) * itemsize
    eff_write = kshape.nvars * effective_write_cells(shape) * itemsize

    efficiency = backend.effective_efficiency(kshape.uses_rand)
    achieved = spec.hbm_peak_bytes_per_s * efficiency
    seconds = traffic.total_bytes / achieved
    cells = int(np.prod(shape))
    return LaunchCost(
        kernel_name=f"{kshape.name}[{backend.name}]",
        seconds=seconds,
        fetch_bytes=traffic.fetch_bytes,
        write_bytes=traffic.write_bytes,
        effective_fetch_bytes=eff_fetch,
        effective_write_bytes=eff_write,
        tcc_hits=traffic.tcc_hits,
        tcc_misses=traffic.tcc_misses,
        flops=kshape.flops_per_cell * cells,
    )


def jit_compile_seconds(backend: str | BackendProfile, *, ir_lines: int = 70) -> float:
    """Modeled one-time JIT compile cost for the application kernel.

    ``ir_lines`` defaults to the traced Gray-Scott kernel's IR length
    (the real trace is used where available; this proxy serves the
    Frontier-scale models).
    """
    backend = get_backend(backend)
    if backend.base_compile_seconds == 0.0:
        return 0.0
    return backend.base_compile_seconds + backend.compile_seconds_per_ir_line * ir_lines
