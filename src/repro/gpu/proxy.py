"""Analytic launch costs for Frontier-scale problems.

The paper's per-GPU workload is 1024^3 cells — 8.6 GB per field, far
beyond what the functional simulator should allocate. The performance
models never needed the data, only the access pattern; this module
builds :class:`~repro.gpu.perf.LaunchCost` results directly from the
known Gray-Scott kernel structure (the same offsets the tracing JIT
recovers from the real kernels — asserted equal in
``tests/gpu/test_proxy.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.frontier import GcdSpec
from repro.gpu.backends import BackendProfile, get_backend
from repro.gpu.cache import (
    StencilTrafficModel,
    effective_fetch_cells,
    effective_write_cells,
    seven_point_offsets,
)
from repro.gpu.perf import LaunchCost
from repro.sched import UsePlan, use
from repro.util.errors import GpuError

#: Kernel variants evaluated in Tables 2-3.
VARIANTS = ("application", "1var_norand")


@dataclass(frozen=True)
class KernelShape:
    """Structural description of one stencil kernel variant."""

    name: str
    nvars: int
    uses_rand: bool
    #: floating-point ops per workitem (from the traced IR; bookkeeping)
    flops_per_cell: int


_KERNEL_SHAPES = {
    # the paper's 2-variable application kernel (Listing 2)
    "application": KernelShape("gray_scott", nvars=2, uses_rand=True, flops_per_cell=33),
    # 1-variable, no-random diagnostic variant (Table 2/3 middle column)
    "1var_norand": KernelShape("laplacian_1var", nvars=1, uses_rand=False, flops_per_cell=14),
}


def kernel_access_pattern(nvars: int) -> tuple[dict, dict]:
    """(loads_by_array, stores_by_array) for an ``nvars`` stencil kernel."""
    names = ["u", "v", "w", "x"][:nvars]
    loads = {name: seven_point_offsets() for name in names}
    stores = {f"{name}_temp": {(0, 0, 0)} for name in names}
    return loads, stores


def grayscott_launch_cost(
    shape: tuple[int, int, int],
    backend: str | BackendProfile,
    *,
    variant: str = "application",
    spec: GcdSpec | None = None,
    itemsize: int = 8,
) -> LaunchCost:
    """Modeled cost of one Gray-Scott stencil launch on one GCD.

    ``shape`` is the per-GCD local grid (the paper's weak scaling keeps
    it at 1024^3). ``variant`` selects the Table 2/3 kernel flavour.
    """
    try:
        kshape = _KERNEL_SHAPES[variant]
    except KeyError:
        raise GpuError(
            f"unknown kernel variant {variant!r}; available: {sorted(_KERNEL_SHAPES)}"
        ) from None
    spec = spec or GcdSpec()
    backend = get_backend(backend)
    loads, stores = kernel_access_pattern(kshape.nvars)

    traffic = StencilTrafficModel(spec).estimate(shape, itemsize, loads, stores)
    eff_fetch = kshape.nvars * effective_fetch_cells(shape) * itemsize
    eff_write = kshape.nvars * effective_write_cells(shape) * itemsize

    efficiency = backend.effective_efficiency(kshape.uses_rand)
    achieved = spec.hbm_peak_bytes_per_s * efficiency
    seconds = traffic.total_bytes / achieved
    cells = int(np.prod(shape))
    return LaunchCost(
        kernel_name=f"{kshape.name}[{backend.name}]",
        seconds=seconds,
        fetch_bytes=traffic.fetch_bytes,
        write_bytes=traffic.write_bytes,
        effective_fetch_bytes=eff_fetch,
        effective_write_bytes=eff_write,
        tcc_hits=traffic.tcc_hits,
        tcc_misses=traffic.tcc_misses,
        flops=kshape.flops_per_cell * cells,
    )


def jit_compile_seconds(backend: str | BackendProfile, *, ir_lines: int = 70) -> float:
    """Modeled one-time JIT compile cost for the application kernel.

    ``ir_lines`` defaults to the traced Gray-Scott kernel's IR length
    (the real trace is used where available; this proxy serves the
    Frontier-scale models).
    """
    backend = get_backend(backend)
    if backend.base_compile_seconds == 0.0:
        return 0.0
    return backend.base_compile_seconds + backend.compile_seconds_per_ir_line * ir_lines


class VirtualGcd:
    """One modeled GCD as a discrete-event resource.

    Wraps the analytic costs above as generators for the
    :mod:`repro.sched` engine: ``yield from gcd.kernel()`` occupies the
    GCD's compute queue for one launch, ``yield from gcd.copy(...)``
    occupies its Infinity Fabric copy queue, ``yield from gcd.jit()``
    charges the one-time compile. Kernel and copy are *separate*
    resources because HIP streams overlap them on real hardware.
    """

    def __init__(
        self,
        engine,
        index: int,
        *,
        shape: tuple[int, int, int],
        backend: str | BackendProfile = "julia",
        variant: str = "application",
        machine=None,
        spec: GcdSpec | None = None,
        launch_cost: LaunchCost | None = None,
    ):
        from repro.cluster.frontier import FRONTIER

        self.engine = engine
        self.index = index
        self.shape = shape
        self.backend = get_backend(backend)
        self.variant = variant
        self.machine = machine or FRONTIER
        self.spec = spec or GcdSpec()
        # the cost is identical for every GCD of a weak-scaled job, so
        # callers creating thousands of these pass one precomputed cost
        self.launch_cost = launch_cost if launch_cost is not None else (
            grayscott_launch_cost(
                shape, self.backend, variant=variant, spec=self.spec
            )
        )
        self.compute = engine.resource(
            f"gcd{index}", lane=(f"gcd{index}", "kernel")
        )
        self.copy_queue = engine.resource(
            f"gcd{index}.copy", lane=(f"gcd{index}", "copy")
        )
        self._jitted = False
        # one plan per (scale, label): a rank launches the same kernel
        # thousands of times, so reuse the frozen command triple
        self._kernel_plans: dict[tuple, UsePlan] = {}

    def jit(self):
        """One-time JIT compile; subsequent calls are free (cached)."""
        if self._jitted:
            return
        self._jitted = True
        seconds = jit_compile_seconds(self.backend)
        if seconds > 0.0:
            yield from use(
                self.compute, seconds, label="jit.compile", cat="gpu",
                args={"backend": self.backend.name},
            )

    def kernel(self, scale: float = 1.0, *, label: str | None = None):
        """One stencil launch on this GCD (``scale`` stretches jitter)."""
        plan = self._kernel_plans.get((scale, label))
        if plan is None:
            plan = UsePlan(
                self.compute, self.launch_cost.seconds * scale,
                label=label or self.launch_cost.kernel_name, cat="gpu",
                args={"gcd": self.index},
            )
            self._kernel_plans[(scale, label)] = plan
        yield from plan.use()

    def copy(self, nbytes: float, *, kind: str = "d2h"):
        """A D2H/H2D staging copy across the GPU-CPU Infinity Fabric."""
        if kind not in ("d2h", "h2d"):
            raise GpuError(f"copy kind must be d2h|h2d, got {kind!r}")
        seconds = nbytes / self.machine.node.gpu_cpu_bytes_per_s
        yield from use(
            self.copy_queue, seconds, label=f"copy.{kind}", cat="gpu",
            args={"gcd": self.index, "bytes": nbytes},
        )
