"""A persistent, content-addressed cache of JIT compilation plans.

The paper's Figure 7 headline is the 12.5x first-launch JIT penalty;
Julia's answer in the years since has been precompilation and
pkgimages — compile once, persist the result, start every later
process hot. This module reproduces that arc for the tracing JIT:
:class:`JitDiskCache` persists :class:`~repro.gpu.jit.KernelTrace`
plans on disk, keyed by the :meth:`~repro.gpu.jit.TraceMemo.signature`
memo key (kernel **source hash** + per-argument dtype/shape class +
launch config), so a fresh process — a spawned ``repro.par`` worker, a
restarted ``repro.serve`` service — answers its first launches from
persisted plans instead of re-tracing.

On-disk format (version :data:`ENTRY_SCHEMA`): one file per entry,
named by the sha256 of the canonical key JSON. Each file is a JSON
header line (schema id, kernel name, the canonical key — readable by
``grayscott jit-cache stats``), a newline, then the pickled trace.
Entries are written atomically (:func:`repro.util.files.
atomic_write_bytes`), so concurrent writers racing the same key both
leave a complete file and readers never observe a torn entry. Loads
are corruption-tolerant: any malformed entry (bad header, wrong
schema version, truncated or unpicklable payload) counts as a miss,
is deleted, and never propagates an exception into a launch.

The cache is LRU-capped by entry count: hits touch the file's mtime
and :meth:`JitDiskCache.store` evicts the stalest entries beyond
``max_entries``.

Process wiring: :func:`configure` attaches a cache to the process-wide
:class:`~repro.gpu.jit.TraceMemo`; :func:`warm_start` additionally
preloads every valid persisted plan straight into the in-memory memo,
so the warm process's first launch of a cached kernel is already a
memo hit — the tier ladder's pkgimage rung. ``repro.par`` workers and
the ``repro.serve`` worker pool call :func:`warm_start` on spawn with
the path the parent had configured.
"""

from __future__ import annotations

import json
import os
import pickle
from pathlib import Path

from repro.gpu.jit import KernelTrace, TraceMemo, trace_memo
from repro.observe import trace as observe
from repro.util.errors import GpuError
from repro.util.files import atomic_write_bytes

#: on-disk entry format version; bump to invalidate every persisted plan
ENTRY_SCHEMA = "repro.gpu.jitcache/1"

#: filename suffix of cache entries
ENTRY_SUFFIX = ".trace"

#: pickle protocol pinned for deterministic, cross-version payload bytes
PICKLE_PROTOCOL = 4


class JitCacheError(GpuError):
    """The persistent JIT cache cannot be used as requested."""


def canonical_key(key: tuple) -> str:
    """The canonical JSON spelling of a memo key (content address input).

    Raises TypeError for keys containing non-JSON-serializable values;
    :meth:`JitDiskCache.store` treats that as "not persistable".
    """
    return json.dumps(key, separators=(",", ":"), allow_nan=False)


def persistable_key(key: tuple) -> bool:
    """Whether a memo key is stable across processes.

    Kernels whose source cannot be hashed fall back to a
    ``("kernel_local", id(kernel), name)`` key; ``id`` values are
    meaningless (and collide) in other processes, so those keys never
    touch the disk tier.
    """
    return bool(key) and bool(key[0]) and key[0][0] == "kernel"


def freeze_key(value):
    """Rebuild the hashable tuple form of a JSON-decoded key."""
    if isinstance(value, list):
        return tuple(freeze_key(v) for v in value)
    return value


def serialize_trace(trace: KernelTrace) -> bytes:
    """The persisted byte form of a plan (the bit-identity unit)."""
    return pickle.dumps(trace, protocol=PICKLE_PROTOCOL)


class JitDiskCache:
    """Disk tier of the JIT: persisted plans under one directory."""

    def __init__(self, path: str | os.PathLike, *, max_entries: int = 512):
        if max_entries < 1:
            raise JitCacheError(
                f"jit cache needs max_entries >= 1, got {max_entries}"
            )
        self.path = Path(path)
        try:
            self.path.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise JitCacheError(
                f"cannot create jit cache directory {self.path}: {exc}"
            ) from exc
        self.max_entries = int(max_entries)
        self._known: set[str] = set()  # key texts already persisted here
        self.hits = 0
        self.misses = 0
        self.stored = 0
        self.corrupt = 0
        self.evicted = 0
        self.unsupported = 0

    # -- addressing ----------------------------------------------------------
    def entry_path(self, key_text: str) -> Path:
        import hashlib

        digest = hashlib.sha256(key_text.encode("utf-8")).hexdigest()
        return self.path / (digest[:32] + ENTRY_SUFFIX)

    def _entry_files(self) -> list[Path]:
        return sorted(self.path.glob("*" + ENTRY_SUFFIX))

    # -- load side -----------------------------------------------------------
    def _load_entry(self, file: Path) -> tuple[dict, KernelTrace] | None:
        """(header, trace) of one entry, or None (counted + unlinked)."""
        try:
            blob = file.read_bytes()
            head, _, payload = blob.partition(b"\n")
            header = json.loads(head.decode("utf-8"))
            if header.get("schema") != ENTRY_SCHEMA:
                raise ValueError(
                    f"entry schema {header.get('schema')!r} != {ENTRY_SCHEMA!r}"
                )
            trace = pickle.loads(payload)
            if not isinstance(trace, KernelTrace):
                raise ValueError("payload is not a KernelTrace")
        except Exception:
            # corruption tolerance: a bad entry is a miss, not a crash —
            # drop it so it cannot fail every later launch too
            self.corrupt += 1
            try:
                file.unlink()
            except OSError:
                pass
            return None
        return header, trace

    def lookup(self, key: tuple) -> KernelTrace | None:
        """The persisted plan for ``key``, or None (a disk-tier miss)."""
        if not persistable_key(key):
            self.unsupported += 1
            return None
        try:
            key_text = canonical_key(key)
        except (TypeError, ValueError):
            self.unsupported += 1
            return None
        file = self.entry_path(key_text)
        if not file.exists():
            self.misses += 1
            return None
        loaded = self._load_entry(file)
        if loaded is None:
            self.misses += 1
            return None
        header, trace = loaded
        if header.get("key") != json.loads(key_text):
            # sha-prefix collision (astronomically unlikely): treat as miss
            self.misses += 1
            return None
        self.hits += 1
        try:
            os.utime(file)  # LRU touch
        except OSError:
            pass
        return trace

    # -- store side ----------------------------------------------------------
    def store(self, key: tuple, kernel, trace: KernelTrace) -> bool:
        """Persist one plan; returns False when the key is unpersistable."""
        if not persistable_key(key):
            self.unsupported += 1
            return False
        try:
            key_text = canonical_key(key)
        except (TypeError, ValueError):
            self.unsupported += 1
            return False
        header = {
            "schema": ENTRY_SCHEMA,
            "kernel": trace.kernel_name,
            "key": json.loads(key_text),
        }
        blob = (
            json.dumps(header, separators=(",", ":")).encode("utf-8")
            + b"\n"
            + serialize_trace(trace)
        )
        try:
            atomic_write_bytes(self.entry_path(key_text), blob)
        except OSError:
            return False
        self._known.add(key_text)
        self.stored += 1
        self._evict_over_cap()
        return True

    def ensure(self, key: tuple, kernel, trace: KernelTrace) -> bool:
        """Persist ``key`` only if no complete entry for it exists yet.

        The memo-hit backfill path: a process whose in-memory memo was
        already warm (an earlier run in the same process, a preloaded
        plan) still populates a freshly configured cache directory. A
        known-persisted set keeps the hot path to one ``stat`` per key.
        """
        if not persistable_key(key):
            return False
        try:
            key_text = canonical_key(key)
        except (TypeError, ValueError):
            return False
        if key_text in self._known:
            return True
        if self.entry_path(key_text).exists():
            self._known.add(key_text)
            return True
        return self.store(key, kernel, trace)

    def _evict_over_cap(self) -> None:
        files = self._entry_files()
        if len(files) <= self.max_entries:
            return
        by_age = sorted(files, key=lambda f: f.stat().st_mtime)
        for stale in by_age[: len(files) - self.max_entries]:
            try:
                stale.unlink()
                self.evicted += 1
            except OSError:
                pass

    # -- bulk operations -----------------------------------------------------
    def entries(self) -> list[dict]:
        """Headers of every valid entry (corrupt ones are dropped)."""
        out = []
        for file in self._entry_files():
            loaded = self._load_entry(file)
            if loaded is not None:
                header, _ = loaded
                header["bytes"] = file.stat().st_size
                header["file"] = file.name
                out.append(header)
        return out

    def preload(self, memo: TraceMemo) -> int:
        """Promote every valid persisted plan into ``memo``; returns count.

        Preloaded entries carry no kernel object (``(None, trace)``);
        the memo only ever hands back the trace, so a warm process's
        first launch of a cached kernel is already an in-memory hit.
        """
        loaded = 0
        for file in self._entry_files():
            entry = self._load_entry(file)
            if entry is None:
                continue
            header, trace = entry
            memo._insert(freeze_key(header["key"]), None, trace)
            loaded += 1
        return loaded

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for file in self._entry_files():
            try:
                file.unlink()
                removed += 1
            except OSError:
                pass
        self._known.clear()
        return removed

    def stats(self) -> dict:
        files = self._entry_files()
        return {
            "path": str(self.path),
            "schema": ENTRY_SCHEMA,
            "entries": len(files),
            "bytes": sum(f.stat().st_size for f in files),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "stored": self.stored,
            "corrupt": self.corrupt,
            "evicted": self.evicted,
            "unsupported": self.unsupported,
        }


# ---------------------------------------------------------------------------
# process wiring
# ---------------------------------------------------------------------------

#: the path the process-wide memo's disk tier was configured with (the
#: value worker pools forward to their spawned children)
_CONFIGURED_PATH: str | None = None


def configure(
    path: str | os.PathLike,
    *,
    memo: TraceMemo | None = None,
    max_entries: int = 512,
) -> JitDiskCache:
    """Attach a disk cache at ``path`` to ``memo`` (default: process-wide).

    From here on, keyed misses persist their plans and cold lookups
    consult the disk tier. Returns the attached cache.
    """
    global _CONFIGURED_PATH
    target = memo if memo is not None else trace_memo()
    cache = JitDiskCache(path, max_entries=max_entries)
    target.disk = cache
    if memo is None or memo is trace_memo():
        _CONFIGURED_PATH = str(cache.path)
    return cache


def deconfigure(*, memo: TraceMemo | None = None) -> None:
    """Detach the disk tier (tests and CLI teardown)."""
    global _CONFIGURED_PATH
    target = memo if memo is not None else trace_memo()
    target.disk = None
    if memo is None or memo is trace_memo():
        _CONFIGURED_PATH = None


def configured_path() -> str | None:
    """The process-wide disk-cache path, if one is configured."""
    return _CONFIGURED_PATH


def warm_start(
    path: str | os.PathLike,
    *,
    memo: TraceMemo | None = None,
    max_entries: int = 512,
) -> dict:
    """Configure ``path`` and preload every persisted plan into the memo.

    The warm-start entry point for worker processes and service
    startup: after this, the first launch of every cached kernel
    specialization is an in-memory memo hit. Returns the cache stats
    plus the number of preloaded plans.
    """
    target = memo if memo is not None else trace_memo()
    cache = configure(path, memo=memo, max_entries=max_entries)
    loaded = cache.preload(target)
    tracer = observe.active()
    if tracer is not None:
        tracer.metrics.counter("gpu.jitcache.preloaded").inc(loaded)
    stats = cache.stats()
    stats["preloaded"] = loaded
    return stats
