"""Device memory: column-major device arrays and a modeled GCD.

Julia arrays are column-major; the paper stresses that "the fastest
index, being the first one, should be structured to avoid splitting
across threads on the GPU" (Section 4). :class:`DeviceArray` therefore
stores Fortran-ordered NumPy data, and the cache model treats axis 0 as
the contiguous direction.

:class:`Device` tracks allocations against the modeled 64 GiB of HBM,
owns the simulated clock, and times host<->device copies with the
Infinity-Fabric CPU-GPU bandwidth from Table 1 (36 GB/s) — the copies
visible in the paper's Figure 5 trace.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

import numpy as np

from repro.cluster.frontier import GcdSpec
from repro.observe import trace as observe
from repro.util.errors import DeviceMemoryError, GpuError
from repro.util.timers import SimClock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpu.rocprof import Profiler


class DeviceArray:
    """A column-major array resident on a simulated device.

    The backing store is a real ``numpy.ndarray`` (order ``'F'``) so the
    functional layer computes exact results; the wrapper exists to (a)
    account the allocation against device HBM, (b) forbid silent mixing
    of host and device data in kernel argument lists, and (c) carry the
    name used in IR listings and profiler output.
    """

    _ids = itertools.count()

    def __init__(self, device: "Device", data: np.ndarray, name: str | None = None):
        if not data.flags.f_contiguous:
            raise GpuError("DeviceArray requires Fortran-ordered backing data")
        self.device = device
        self.data = data
        self.name = name or f"darr{next(self._ids)}"

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    @property
    def itemsize(self) -> int:
        return self.data.itemsize

    def fill(self, value: float) -> None:
        self.data[...] = value

    def copy_to_host(self) -> np.ndarray:
        """Synchronous D2H copy; advances the device clock."""
        return self.device.to_host(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeviceArray({self.name}, shape={self.shape}, dtype={self.dtype}, "
            f"device={self.device.name})"
        )


class Device:
    """One simulated MI250x GCD.

    Functionally it executes kernels via :meth:`launch`; performance-wise
    it advances a :class:`~repro.util.timers.SimClock` by modeled kernel
    durations and copy times, and reports every event to an attached
    :class:`~repro.gpu.rocprof.Profiler`.
    """

    def __init__(
        self,
        spec: GcdSpec | None = None,
        *,
        name: str = "gcd0",
        backend: str = "julia",
        profiler: "Profiler | None" = None,
        exact_execution: bool = True,
        aot: bool = False,
        counter_mode: str = "analytic",
    ) -> None:
        from repro.gpu.backends import get_backend
        from repro.gpu.jit import JitCompiler
        from repro.gpu.perf import RooflineModel

        self.spec = spec or GcdSpec()
        self.name = name
        self.backend = get_backend(backend)
        self.profiler = profiler
        self.clock = SimClock()
        self.allocated_bytes = 0
        #: If False, launches only run the performance model (used by the
        #: Frontier-scale benchmarks where a real 1024^3 array would not
        #: fit in host memory, let alone be computed in Python).
        self.exact_execution = exact_execution
        #: Ahead-of-time mode (the paper notes "Julia's ahead-of-time
        #: mechanism was not explored in this study", Section 5.2):
        #: kernels are still traced/compiled, but the one-time compile
        #: cost is treated as paid offline (PackageCompiler.jl-style
        #: system image) and never charged to the run clock.
        self.aot = aot
        self.jit = JitCompiler(self.backend)
        self.roofline = RooflineModel(
            self.spec, self.backend, counter_mode=counter_mode
        )

    # ------------------------------------------------------------------
    # memory management
    # ------------------------------------------------------------------
    def _account(self, nbytes: int) -> None:
        if self.allocated_bytes + nbytes > self.spec.hbm_bytes:
            raise DeviceMemoryError(
                f"allocation of {nbytes} B exceeds HBM capacity "
                f"({self.allocated_bytes} B of {self.spec.hbm_bytes} B in use)"
            )
        self.allocated_bytes += nbytes

    def zeros(
        self, shape: tuple[int, ...], dtype=np.float64, name: str | None = None
    ) -> DeviceArray:
        self._account(int(np.prod(shape)) * np.dtype(dtype).itemsize)
        return DeviceArray(self, np.zeros(shape, dtype=dtype, order="F"), name)

    def to_device(self, host: np.ndarray, name: str | None = None) -> DeviceArray:
        """H2D copy: allocates and copies, advancing the modeled clock."""
        self._account(host.nbytes)
        arr = DeviceArray(self, np.asfortranarray(host), name)
        self.record_transfer("H2D", host.nbytes)
        return arr

    def to_host(self, darr: DeviceArray) -> np.ndarray:
        """D2H copy of a whole array; advances the modeled clock."""
        if darr.device is not self:
            raise GpuError("array belongs to a different device")
        self.record_transfer("D2H", darr.nbytes)
        return np.ascontiguousarray(darr.data)

    def free(self, darr: DeviceArray) -> None:
        """Release an allocation (the NumPy buffer dies with the object)."""
        if darr.device is not self:
            raise GpuError("array belongs to a different device")
        self.allocated_bytes -= darr.nbytes
        if self.allocated_bytes < 0:  # double free
            self.allocated_bytes = 0
            raise GpuError(f"double free of {darr.name}")
        darr.data = np.empty(0, order="F")

    def record_transfer(self, kind: str, nbytes: int) -> None:
        # Table 1: GPU-to-CPU Infinity Fabric at 36 GB/s.
        from repro.cluster.frontier import NodeSpec

        seconds = nbytes / NodeSpec().gpu_cpu_bytes_per_s
        start = self.clock.now
        self.clock.advance(seconds)
        if self.profiler is not None:
            self.profiler.record_copy(self.name, kind, nbytes, start, seconds)
        tracer = observe.active()
        if tracer is not None:
            tracer.add_span(
                f"memcpy.{kind}",
                cat="gpu",
                clock=observe.SIM,
                process=self.name,
                thread="copy",
                start=start,
                seconds=seconds,
                args={"bytes": nbytes, "kind": kind},
            )
            tracer.metrics.counter(
                "gpu.copy.bytes", device=self.name, kind=kind
            ).inc(nbytes)
            tracer.metrics.counter(
                "gpu.copy.count", device=self.name, kind=kind
            ).inc()

    # ------------------------------------------------------------------
    # kernel launch
    # ------------------------------------------------------------------
    def launch(self, kernel, grid, workgroup, args) -> "LaunchCost":
        """Launch ``kernel`` over ``grid`` workgroups of ``workgroup`` size.

        Executes the kernel functionally (unless ``exact_execution`` is
        off), charges the modeled duration — including one-time JIT
        compilation on the first launch of each kernel — and returns the
        :class:`~repro.gpu.perf.LaunchCost`.
        """
        from repro.gpu.kernel import LaunchConfig

        config = LaunchConfig(grid=grid, workgroup=workgroup)
        config.validate(self.spec)

        compiled, compile_seconds = self.jit.compile(kernel, args, config)
        if self.aot:
            compile_seconds = 0.0
        tracer = observe.active()
        if compile_seconds > 0.0:
            start = self.clock.now
            self.clock.advance(compile_seconds)
            if self.profiler is not None:
                self.profiler.record_compile(
                    self.name, kernel.name, start, compile_seconds
                )
            if tracer is not None:
                tracer.add_span(
                    f"jit.{kernel.name}",
                    cat="gpu",
                    clock=observe.SIM,
                    process=self.name,
                    thread="jit",
                    start=start,
                    seconds=compile_seconds,
                    args={"kernel": kernel.name, "backend": self.backend.name},
                )
                tracer.metrics.counter(
                    "gpu.jit.compiles", device=self.name
                ).inc()
                tracer.metrics.histogram("gpu.jit.seconds").observe(
                    compile_seconds
                )

        if self.exact_execution:
            kernel.execute(config, args)

        cost = self.roofline.launch_cost(compiled, config, args)
        start = self.clock.now
        self.clock.advance(cost.seconds)
        if self.profiler is not None:
            self.profiler.record_kernel(self.name, kernel.name, start, cost, config)
        if tracer is not None:
            tracer.add_span(
                kernel.name,
                cat="gpu",
                clock=observe.SIM,
                process=self.name,
                thread="kernel",
                start=start,
                seconds=cost.seconds,
                args={
                    "bytes": cost.total_bytes,
                    "workgroup_size": config.workgroup_size,
                },
            )
            tracer.metrics.counter(
                "gpu.kernel.launches", device=self.name, kernel=kernel.name
            ).inc()
            tracer.metrics.histogram(
                "gpu.kernel.seconds", kernel=kernel.name
            ).observe(cost.seconds)
        return cost
