"""A small workflow DAG engine (the paper's Figure 1 as code).

Figure 1 draws the end-to-end workflow as connected components:
simulation -> parallel I/O -> analysis/visualization, with provenance
flowing alongside. :class:`Pipeline` makes that graph executable: named
stages with explicit dependencies, topologically ordered execution,
per-stage wall-clock timing, value passing (each stage receives the
results of its dependencies), failure isolation (dependents of a failed
stage are skipped, independent stages still run), and a run record
suitable for FAIR provenance.

This is deliberately a *minimal* orchestrator — the unifying claim of
the paper is precisely that one does not need an external workflow
system when the language composes; the DAG here is ~150 lines of the
same language the solver uses.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.util.errors import ConfigError, ReproError


class PipelineError(ReproError):
    """A stage failed; details carry the stage name and cause."""


@dataclass
class StageResult:
    """Outcome of one stage in one run."""

    name: str
    status: str  # "ok" | "failed" | "skipped"
    seconds: float = 0.0
    value: Any = None
    error: str | None = None


@dataclass
class PipelineRun:
    """All stage results of one pipeline execution, in run order."""

    results: dict[str, StageResult] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(r.status == "ok" for r in self.results.values())

    def value(self, stage: str) -> Any:
        result = self.results[stage]
        if result.status != "ok":
            raise PipelineError(
                f"stage {stage!r} did not complete (status {result.status})"
            )
        return result.value

    def render(self) -> str:
        from repro.util.tables import Table

        table = Table(["stage", "status", "seconds"], title="pipeline run")
        for result in self.results.values():
            table.add_row([result.name, result.status, f"{result.seconds:.3f}"])
        return table.render()

    def provenance(self) -> dict:
        return {
            "stages": {
                name: {"status": r.status, "seconds": r.seconds, "error": r.error}
                for name, r in self.results.items()
            }
        }


class Pipeline:
    """Build a stage DAG, then :meth:`run` it.

    >>> pipe = Pipeline("demo")
    >>> pipe.stage("simulate", run_simulation)
    >>> pipe.stage("analyze", analyze, deps=("simulate",))
    >>> run = pipe.run()
    >>> run.value("analyze")

    Stage callables receive the values of their dependencies as
    positional arguments, in declaration order.
    """

    def __init__(self, name: str):
        self.name = name
        self._stages: dict[str, tuple[Callable, tuple[str, ...]]] = {}

    def stage(
        self, name: str, fn: Callable, *, deps: tuple[str, ...] = ()
    ) -> "Pipeline":
        """Register a stage; returns self for chaining."""
        if name in self._stages:
            raise ConfigError(f"stage {name!r} already defined")
        if not callable(fn):
            raise ConfigError(f"stage {name!r} needs a callable, got {fn!r}")
        for dep in deps:
            if dep not in self._stages:
                raise ConfigError(
                    f"stage {name!r} depends on undefined stage {dep!r} "
                    "(declare dependencies first)"
                )
        self._stages[name] = (fn, tuple(deps))
        return self

    def order(self) -> list[str]:
        """Topological execution order (declaration order is a valid one,
        since dependencies must be declared first)."""
        return list(self._stages)

    def run(self, *, raise_on_failure: bool = False) -> PipelineRun:
        """Execute the DAG; failed stages mark dependents as skipped."""
        if not self._stages:
            raise ConfigError(f"pipeline {self.name!r} has no stages")
        run = PipelineRun()
        for name in self.order():
            fn, deps = self._stages[name]
            blocked = [
                d for d in deps if run.results[d].status != "ok"
            ]
            if blocked:
                run.results[name] = StageResult(
                    name=name, status="skipped",
                    error=f"dependencies not satisfied: {blocked}",
                )
                continue
            args = [run.results[d].value for d in deps]
            start = time.perf_counter()
            try:
                value = fn(*args)
            except Exception as exc:  # noqa: BLE001 - stage isolation
                run.results[name] = StageResult(
                    name=name,
                    status="failed",
                    seconds=time.perf_counter() - start,
                    error=f"{type(exc).__name__}: {exc}",
                )
                if raise_on_failure:
                    raise PipelineError(f"stage {name!r} failed: {exc}") from exc
                continue
            run.results[name] = StageResult(
                name=name,
                status="ok",
                seconds=time.perf_counter() - start,
                value=value,
            )
        return run
