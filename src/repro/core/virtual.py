"""Virtual SPMD mode: modeled Frontier-scale runs of a settings file.

The thread-backed executor (:mod:`repro.mpi.executor`) runs the *real*
solver but tops out at a few dozen ranks. This module runs the same
workflow shape — JIT, then ``steps`` x (kernel, halo exchange), with a
barrier + BP5 node-aggregated write every ``plotgap`` steps — as
**virtual processes** on the discrete-event engine (:mod:`repro.sched`),
with every duration drawn from the calibrated performance models:

- kernel launches from :func:`repro.gpu.proxy.grayscott_launch_cost`
  (via :class:`~repro.gpu.proxy.VirtualGcd`), with the persistent
  per-rank jitter of :mod:`repro.mpi.netmodel`;
- halo-exchange costs from
  :class:`~repro.mpi.netmodel.HaloExchangeModel`;
- subfile writes from :class:`~repro.adios.fsmodel.LustreModel`, one
  aggregator per node on a shared OSS resource.

The settings' grid is the **per-rank local block** (the paper's weak
scaling: 1024^3 cells per GCD at every job size). ``overlap=True``
models the nonblocking exchange and BP5 async drain: halo traffic rides
the NIC while the kernel occupies the GCD, and the write of one output
step streams while the next solve steps run. A 4,096-rank run is 4,096
generators in one thread; when an :mod:`repro.observe` tracer is active
every modeled event lands in the exported Perfetto timeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.frontier import FRONTIER, MachineSpec
from repro.core.settings import GrayScottSettings
from repro.util.errors import ConfigError


@dataclass
class VirtualRunResult:
    """Outcome of one virtual SPMD run (all times are modeled seconds)."""

    nranks: int
    nnodes: int
    steps: int
    output_steps: int
    backend: str
    overlap: bool
    elapsed_seconds: float
    rank_finish_seconds: np.ndarray
    kernel_seconds_per_step: float
    comm_seconds_mean: float
    jit_seconds: float
    events_processed: int
    collectives_per_rank: int
    results: list

    @property
    def variability(self) -> float:
        """(max - min) / mean over rank finish times (the Fig. 6 metric)."""
        finish = self.rank_finish_seconds
        return float((finish.max() - finish.min()) / finish.mean())

    def render(self) -> str:
        from repro.core import present

        return present.render_virtual_result(self)


class VirtualWorkflow:
    """Event-driven "virtual SPMD" execution of a settings file.

    >>> from repro.core.settings import GrayScottSettings
    >>> s = GrayScottSettings(L=64, steps=4, plotgap=2, backend="julia")
    >>> result = VirtualWorkflow(s, nranks=16).run()
    >>> result.nranks, result.output_steps
    (16, 2)
    """

    #: execution tiers of :meth:`run`; see docs/SCHEDULER.md
    ENGINES = ("auto", "scalar", "batch", "vector")

    def __init__(
        self,
        settings: GrayScottSettings,
        *,
        nranks: int | None = None,
        overlap: bool = False,
        nic_contention: bool = False,
        machine: MachineSpec = FRONTIER,
        tracer=None,
        profiler=None,
        engine: str = "auto",
    ):
        from repro.cluster.frontier import extrapolated_machine
        from repro.cluster.placement import Placement
        from repro.mpi.cart import dims_create

        if settings.backend == "cpu":
            raise ConfigError(
                "virtual SPMD mode models GCD occupancy; pick a GPU "
                "backend (julia/hip) in the settings"
            )
        self.settings = settings
        self.nranks = nranks if nranks is not None else max(settings.ranks, 1)
        if self.nranks < 1:
            raise ConfigError(f"virtual run needs >= 1 rank, got {self.nranks}")
        self.overlap = overlap
        #: model the node's Slingshot ports as a shared capacity-limited
        #: resource: the node's 8 ranks queue on 4 NICs instead of each
        #: owning a private link (opt-in; changes modeled times)
        self.nic_contention = nic_contention
        if engine not in self.ENGINES:
            raise ConfigError(
                f"unknown virtual engine {engine!r}; use one of {self.ENGINES}"
            )
        if engine == "vector" and nic_contention:
            raise ConfigError(
                "engine='vector' models ranks independently between "
                "barriers; nic_contention couples them within a step — "
                "use engine='batch' (or 'auto')"
            )
        if engine == "vector" and profiler is not None:
            raise ConfigError(
                "engine='vector' has no per-rank process table for the "
                "profiler to sample; use engine='batch' (or 'auto')"
            )
        #: requested execution tier (see :meth:`_resolve_engine`)
        self.engine = engine
        #: beyond the real machine, extrapolate: a 1,048,576-rank run
        #: models a Frontier-like machine with enough nodes (per-node
        #: characteristics unchanged)
        nodes_needed = machine.nodes_for_ranks(self.nranks)
        if nodes_needed > machine.nodes:
            machine = extrapolated_machine(machine, nodes=nodes_needed)
        self.machine = machine
        self.tracer = tracer
        #: a :class:`repro.sched.SimProfiler` sampling the rank states
        #: at virtual-time intervals; forces the serial engine (one
        #: process table to sample)
        self.profiler = profiler
        self.placement = Placement(self.nranks, machine)
        self.cart_dims = dims_create(self.nranks, 3)
        #: weak scaling: the settings' grid is each rank's local block
        self.local_shape = settings.shape

    # -- modeled ingredients ------------------------------------------------
    def _kernel_jitter(self) -> np.ndarray:
        from repro.mpi.netmodel import noise_sigma
        from repro.util.rngs import RngStream

        stream = RngStream(self.settings.seed, ("virtual",))
        gen = stream.generator("jitter", self.nranks)
        return gen.normal(0.0, noise_sigma(self.nranks), size=self.nranks)

    def _comm_seconds(self) -> np.ndarray:
        return self._comm_slice(0, self.nranks)

    def _comm_slice(self, lo: int, hi: int) -> np.ndarray:
        """Per-rank halo-exchange seconds for ranks ``[lo, hi)``.

        Each rank's cost is an independent pure function of the seed and
        placement, so shard workers evaluate only their own slice.
        """
        from repro.mpi.netmodel import HaloExchangeModel

        halo = HaloExchangeModel(
            self.placement, self.cart_dims, self.local_shape,
            periodic=self.settings.boundary == "periodic",
            machine=self.machine,
        )
        return halo.slice_step_seconds(lo, hi)

    def _bytes_per_node(self) -> int:
        itemsize = 8 if self.settings.precision == "float64" else 4
        cells = int(np.prod(self.local_shape))
        ranks_on_full_node = min(self.nranks, self.placement.ranks_per_node)
        return 2 * cells * itemsize * ranks_on_full_node

    # -- the run ------------------------------------------------------------
    def _resolve_engine(self) -> str:
        """Pick the execution tier for this run (docs/SCHEDULER.md).

        ``auto`` takes the vector tier — bit-identical and fastest —
        unless a feature needs real engine processes: ``nic_contention``
        couples ranks within a step, and the profiler samples the
        process table; both fall back to the batch-pop generator engine.
        """
        if self.engine != "auto":
            return self.engine
        if self.nic_contention or self.profiler is not None:
            return "batch"
        return "vector"

    def run(self, *, jobs: int = 1) -> VirtualRunResult:
        """Run the virtual workflow; ``jobs > 1`` shards ranks over workers.

        The sharded path (see :mod:`repro.par` and docs/PARALLEL.md)
        partitions ranks into node-aligned contiguous shards, simulates
        each epoch (the steps between two output barriers) of every
        shard in a separate process, and re-synchronizes at the exact
        barrier times — ranks only couple at output-step barriers and
        the final allreduce, so the result is bit-identical to the
        serial run. ``nic_contention`` couples ranks within every step,
        so it falls back to the serial engine. The default ``auto``
        tier runs the epochs through the NumPy vector engine
        (:mod:`repro.sched.vector`) instead of per-rank generators —
        same floats, same spans, orders of magnitude fewer Python
        events.
        """
        from repro.par import resolve_jobs

        jobs = resolve_jobs(jobs)
        tier = self._resolve_engine()
        if tier == "vector":
            shards = self._shards(jobs) if jobs > 1 else [(0, self.nranks)]
            return self._run_epochs(jobs, shards, vector=True)
        if jobs > 1 and not self.nic_contention and self.profiler is None:
            shards = self._shards(jobs)
            if len(shards) > 1:
                return self._run_epochs(jobs, shards, vector=False, pop=tier)
        return self._run_serial(pop=tier)

    def _shards(self, jobs: int) -> list[tuple[int, int]]:
        """Split ranks into <= ``jobs`` node-aligned ``(lo, hi)`` ranges.

        Node alignment keeps each node's leader rank and its followers
        in the same shard, so a shard can simulate its BP5 writes
        without cross-shard traffic.
        """
        # node boundaries: ranks are placed on nodes in contiguous runs
        if self.placement.strategy == "block":
            bounds = list(range(0, self.nranks, self.placement.ranks_per_node))
            bounds.append(self.nranks)
        else:
            bounds = [0]
            for r in range(1, self.nranks):
                if (
                    self.placement.location(r).node
                    != self.placement.location(r - 1).node
                ):
                    bounds.append(r)
            bounds.append(self.nranks)
        nnodes = len(bounds) - 1
        nshards = min(jobs, nnodes)
        shards = []
        base, extra = divmod(nnodes, nshards)
        node = 0
        for s in range(nshards):
            take = base + (1 if s < extra else 0)
            shards.append((bounds[node], bounds[node + take]))
            node += take
        return shards

    def _run_serial(self, *, pop: str = "batch") -> VirtualRunResult:
        from repro.adios.fsmodel import LustreModel
        from repro.gpu.proxy import (
            VirtualGcd,
            grayscott_launch_cost,
            jit_compile_seconds,
        )
        from repro.mpi.netmodel import NetModel
        from repro.sched import Engine, Join, UsePlan, run_virtual_spmd, use

        settings = self.settings
        nranks, nnodes = self.nranks, self.placement.nnodes
        engine = Engine(
            name=f"virtual[{nranks}]", tracer=self.tracer,
            profiler=self.profiler, pop=pop,
        )
        jitter = self._kernel_jitter()
        comm = self._comm_seconds()
        lustre = LustreModel(self.machine, seed=settings.seed)
        bytes_per_node = self._bytes_per_node()
        oss = engine.resource(
            "lustre-oss", capacity=nnodes, lane=("lustre-oss", "write")
        )
        output_steps = settings.steps // settings.plotgap
        overlap = self.overlap
        leaders = {
            self.placement.location(r).node: r for r in range(nranks - 1, -1, -1)
        }
        # weak scaling: every GCD runs the same local block, so the
        # launch cost is computed once, not once per rank
        launch_cost = grayscott_launch_cost(
            self.local_shape, settings.backend
        )

        def program(vcomm):
            rank = vcomm.rank
            node = self.placement.location(rank).node
            gcd = VirtualGcd(
                engine, rank, shape=self.local_shape,
                backend=settings.backend, machine=self.machine,
                launch_cost=launch_cost,
            )
            if self.nic_contention:
                nic = engine.resource(
                    f"node{node}.nic",
                    capacity=self.machine.node.nics_per_node,
                    lane=(f"node{node}", "mpi"),
                )
            else:
                nic = engine.resource(
                    f"nic{rank}", lane=(f"vrank{rank}", "mpi")
                )
            scale = float(1.0 + jitter[rank])
            comm_s = float(comm[rank])
            halo_plan = UsePlan(nic, comm_s, label="halo", cat="mpi")
            halo_name = f"vrank{rank}.halo"
            halo_lane = (f"vrank{rank}", "mpi")
            yield from gcd.jit()
            pending_write = None
            for step in range(1, settings.steps + 1):
                if overlap:
                    halo = engine.spawn(
                        halo_name, halo_plan.use(), lane=halo_lane
                    )
                    yield from gcd.kernel(scale)
                    yield Join(halo)
                else:
                    yield from gcd.kernel(scale)
                    yield from halo_plan.use()
                if step % settings.plotgap == 0:
                    # output step: all ranks synchronize (BP5 end_step is
                    # collective), then each node's leader aggregates its
                    # ranks' blocks into one subfile
                    yield from vcomm.barrier()
                    if leaders[node] == rank:
                        out = step // settings.plotgap
                        seconds = lustre.write_seconds_per_node(
                            nnodes, bytes_per_node, sample=f"{out}:{node}"
                        )
                        write = use(
                            oss, seconds, label="bp5.write", cat="adios",
                            args={"node": node, "output_step": out},
                        )
                        if overlap:
                            if pending_write is not None:
                                yield Join(pending_write)
                            pending_write = engine.spawn(
                                f"node{node}.write{out}", write,
                                lane=(f"node{node}", "adios"),
                            )
                        else:
                            yield from write
            if pending_write is not None:
                yield Join(pending_write)
            checksum = yield from vcomm.allreduce(scale, op="sum")
            return checksum

        # point-to-point sends inside rank programs (none in the stock
        # Gray-Scott program, which models halo cost in aggregate) are
        # charged by the placement-aware LogGP model instead of the
        # bare VirtualJob's zero-latency default
        net = NetModel(self.placement)
        spmd = run_virtual_spmd(
            program, nranks, engine=engine, p2p_seconds=net.p2p_seconds
        )
        return VirtualRunResult(
            nranks=nranks,
            nnodes=nnodes,
            steps=settings.steps,
            output_steps=output_steps,
            backend=settings.backend,
            overlap=overlap,
            elapsed_seconds=spmd.elapsed_seconds,
            rank_finish_seconds=np.array(spmd.rank_finish_seconds),
            kernel_seconds_per_step=launch_cost.seconds,
            comm_seconds_mean=float(comm.mean()),
            jit_seconds=jit_compile_seconds(settings.backend),
            events_processed=engine.events_processed,
            collectives_per_rank=sum(
                1 for op in spmd.job.op_log[0]
                if op.kind in ("barrier", "allreduce")
            ),
            results=spmd.results,
        )

    # -- epoch execution (vector tier and sharded generator tier) -----------
    def _run_epochs(
        self,
        jobs: int,
        shards: list[tuple[int, int]],
        *,
        vector: bool,
        pop: str = "batch",
    ) -> VirtualRunResult:
        """Epoch-synchronized virtual run (sharded and/or vectorized).

        Ranks couple only at output-step barriers and the final
        allreduce, and the shared OSS resource (capacity == nnodes,
        one leader per node) never queues — so each *epoch* (the
        ``plotgap`` steps ending at a barrier, plus the write of the
        previous output on the node leader) of each shard is an
        independent simulation. The parent replays the couplings
        exactly: a barrier releases at ``max(arrivals)`` (the same
        float max the serial engine computes), and an overlapped
        leader resumes at ``max(barrier, previous write end)`` (the
        serial ``Join`` semantics). Worker SIM-clock spans merge
        verbatim into the parent tracer, so the Perfetto timeline is
        span-identical to the serial run.

        ``vector=True`` advances each epoch with the NumPy engine
        (:func:`repro.sched.vector.simulate_epoch`) instead of per-rank
        generators; with ``jobs <= 1`` (or a single shard) the epochs
        run inline in this process, otherwise each shard ships to a
        :mod:`repro.par` pool worker exactly like the generator tier.
        """
        from repro import observe
        from repro.gpu.proxy import grayscott_launch_cost, jit_compile_seconds
        from repro.observe.stream import stream_sink, worker_shard_spec
        from repro.par import run_tasks, tracemerge
        from repro.sched import replay_allreduce

        settings = self.settings
        nranks, nnodes = self.nranks, self.placement.nnodes
        tracer = self.tracer if self.tracer is not None else observe.active()
        trace = tracer is not None
        #: vector epochs run inline (no pool) for a single job/shard —
        #: spans go straight into the parent tracer
        inline = vector and (jobs <= 1 or len(shards) <= 1)
        # streaming mode: workers write their own shard files into the
        # parent stream's directory and ship back manifest entries only;
        # the span lists never cross the pickle boundary
        sink = stream_sink(tracer) if trace and not inline else None
        jitter = self._kernel_jitter()
        scale_full = 1.0 + jitter
        plotgap = settings.plotgap
        output_steps = settings.steps // settings.plotgap

        # epoch k = [write of output k-1 on each leader] + plotgap steps,
        # ending at barrier k; the final segment is the write of the last
        # output + the tail steps + the allreduce arrival
        segments = []
        for k in range(1, output_steps + 1):
            segments.append({
                "step_lo": (k - 1) * plotgap + 1,
                "step_hi": k * plotgap,
                "do_jit": k == 1,
                "out_prev": k - 1 if k >= 2 else None,
                "final": False,
            })
        segments.append({
            "step_lo": output_steps * plotgap + 1,
            "step_hi": settings.steps,
            "do_jit": output_steps == 0,
            "out_prev": output_steps if output_steps >= 1 else None,
            "final": True,
        })

        if self.placement.strategy == "block":
            # the leader of a node is its lowest rank (node * rpn)
            rpn = self.placement.ranks_per_node
            leaders = {node: node * rpn for node in range(nnodes)}
        else:
            leaders = {
                self.placement.location(r).node: r
                for r in range(nranks - 1, -1, -1)
            }
        starts = np.zeros(nranks)
        arrivals = np.empty(nranks)
        write_ends: dict[int, float] = {}
        comm_slices: list[np.ndarray | None] = [None] * len(shards)
        total_events = 0
        for seg_idx, seg in enumerate(segments):
            tasks = []
            for s, (lo, hi) in enumerate(shards):
                tasks.append({
                    "settings": settings,
                    "nranks": nranks,
                    "overlap": self.overlap,
                    "machine": self.machine,
                    "trace": trace,
                    "vector": vector,
                    "pop": pop,
                    "stream": (
                        worker_shard_spec(sink, f"w{seg_idx:03d}.{s:02d}")
                        if sink is not None else None
                    ),
                    "lo": lo,
                    "hi": hi,
                    "starts": starts[lo:hi].copy(),
                    "scale": scale_full[lo:hi].copy(),
                    "comm": comm_slices[s],
                    "seg": seg,
                })
            if inline:
                outs = [
                    self._vector_segment(task, tracer=tracer)
                    for task in tasks
                ]
            else:
                outs = run_tasks(
                    _virtual_segment_task, tasks, jobs=jobs, chunksize=1
                )
            for s, ((lo, hi), out) in enumerate(zip(shards, outs)):
                arrivals[lo:hi] = out["arrivals"]
                write_ends.update(out["write_ends"])
                if comm_slices[s] is None:
                    comm_slices[s] = out["comm"]
                total_events += out["events"]
                # (segment, shard) order — the same order merge_spans
                # replayed span lists in, so the streamed manifest
                # reconstructs the identical global span sequence
                if trace and out.get("shards") is not None:
                    sink.adopt_shards(out["shards"])
                elif trace and out["spans"]:
                    tracemerge.merge_spans(tracer, out["spans"])
            barrier = float(arrivals.max())
            if not seg["final"]:
                starts[:] = barrier
                if self.overlap:
                    # Join(previous write): the leader resumes at the
                    # later of the barrier and its node's drain finishing
                    for node, leader in leaders.items():
                        prev_end = write_ends.get(node)
                        if prev_end is not None and prev_end > barrier:
                            starts[leader] = prev_end

        elapsed = float(arrivals.max())
        comm = np.concatenate(comm_slices)
        launch_cost = grayscott_launch_cost(self.local_shape, settings.backend)
        checksum = replay_allreduce(scale_full, "sum")
        if trace:
            tracer.metrics.gauge(
                "sched.events_processed", engine=f"virtual[{nranks}]"
            ).set(total_events)
            if vector:
                tracer.metrics.counter(
                    "sched.vector_events", engine=f"virtual[{nranks}]"
                ).inc(total_events)
        return VirtualRunResult(
            nranks=nranks,
            nnodes=nnodes,
            steps=settings.steps,
            output_steps=output_steps,
            backend=settings.backend,
            overlap=self.overlap,
            elapsed_seconds=elapsed,
            rank_finish_seconds=np.full(nranks, elapsed),
            kernel_seconds_per_step=launch_cost.seconds,
            comm_seconds_mean=float(comm.mean()),
            jit_seconds=jit_compile_seconds(settings.backend),
            events_processed=total_events,
            collectives_per_rank=output_steps + 1,
            results=[checksum] * nranks,
        )

    def _vector_segment(self, payload: dict, *, tracer=None) -> dict:
        """Advance one epoch of one shard with the NumPy vector engine.

        Same payload contract as :meth:`_simulate_segment`, same float
        recurrences (see :mod:`repro.sched.vector`), none of the
        per-rank generator machinery. With ``tracer`` (inline mode) the
        epoch's spans go straight into the caller's tracer; in a pool
        worker they stream to a worker shard sink or ship back as a
        span list, exactly like the generator tier.
        """
        from repro.adios.fsmodel import LustreModel
        from repro.gpu.backends import get_backend
        from repro.gpu.proxy import grayscott_launch_cost, jit_compile_seconds
        from repro.sched.vector import (
            EpochEventQueue,
            EpochSpec,
            EpochWrites,
            emit_epoch_spans,
            simulate_epoch,
        )

        settings = self.settings
        lo, hi = payload["lo"], payload["hi"]
        seg = payload["seg"]
        overlap = self.overlap
        trace = payload["trace"]
        stream = payload.get("stream")
        inline = tracer is not None
        wsink = None
        if trace and not inline:
            from repro.observe.trace import Tracer

            if stream is not None:
                from repro.observe.stream import open_worker_sink

                wsink = open_worker_sink(stream)
                tracer = Tracer(sinks=[wsink], retain=False)
            else:
                tracer = Tracer()
        starts = np.asarray(payload["starts"], dtype=np.float64)
        scale = np.asarray(payload["scale"], dtype=np.float64)
        comm = payload["comm"]
        sent_comm = comm is None
        if comm is None:
            comm = self._comm_slice(lo, hi)
        launch_cost = grayscott_launch_cost(self.local_shape, settings.backend)
        # the same float product VirtualGcd.kernel(scale) plans per rank
        kernel = launch_cost.seconds * scale
        out_prev = seg["out_prev"]
        writes = None
        if out_prev is not None:
            nnodes = self.placement.nnodes
            if self.placement.strategy == "block":
                rpn = self.placement.ranks_per_node
                leader_ranks = np.arange(lo, hi, rpn, dtype=np.int64)
                nodes = leader_ranks // rpn
            else:
                by_node: dict[int, int] = {}
                for r in range(hi - 1, lo - 1, -1):
                    by_node[self.placement.location(r).node] = r
                nodes = np.array(sorted(by_node), dtype=np.int64)
                leader_ranks = np.array(
                    [by_node[int(n)] for n in nodes], dtype=np.int64
                )
            lustre = LustreModel(self.machine, seed=settings.seed)
            bytes_per_node = self._bytes_per_node()
            seconds = np.array([
                lustre.write_seconds_per_node(
                    nnodes, bytes_per_node, sample=f"{out_prev}:{int(node)}"
                )
                for node in nodes
            ])
            writes = EpochWrites(
                index=leader_ranks - lo, nodes=nodes, seconds=seconds,
                output_step=out_prev,
            )
        spec = EpochSpec(
            ranks=np.arange(lo, hi, dtype=np.int64),
            starts=starts,
            kernel=kernel,
            comm=comm,
            nsteps=max(0, seg["step_hi"] - seg["step_lo"] + 1),
            overlap=overlap,
            jit_seconds=(
                jit_compile_seconds(settings.backend) if seg["do_jit"] else 0.0
            ),
            writes=writes,
            final=seg["final"],
        )
        queue = EpochEventQueue() if trace else None
        result = simulate_epoch(spec, queue=queue)
        if queue is not None:
            emit_epoch_spans(
                queue, tracer,
                kernel_name=launch_cost.kernel_name,
                backend=get_backend(settings.backend).name,
            )
        ends: dict[int, float] = {}
        if overlap and writes is not None and result.write_ends is not None:
            ends = {
                int(node): float(end)
                for node, end in zip(writes.nodes, result.write_ends)
            }
        return {
            "arrivals": result.arrivals,
            "write_ends": ends,
            "comm": comm if sent_comm else None,
            "spans": (
                list(tracer.spans)
                if trace and not inline and wsink is None else None
            ),
            "shards": wsink.finish() if wsink is not None else None,
            "events": result.events,
        }

    def _simulate_segment(self, payload: dict) -> dict:
        """Simulate one epoch of one shard (runs inside a pool worker)."""
        from repro.adios.fsmodel import LustreModel
        from repro.gpu.proxy import VirtualGcd, grayscott_launch_cost
        from repro.observe.trace import Tracer
        from repro.sched import Delay, Engine, Join, UsePlan, use

        settings = self.settings
        lo, hi = payload["lo"], payload["hi"]
        seg = payload["seg"]
        overlap = self.overlap
        nranks, nnodes = self.nranks, self.placement.nnodes
        trace = payload["trace"]
        stream = payload.get("stream")
        wsink = None
        if trace and stream is not None:
            from repro.observe.stream import open_worker_sink

            # streaming worker: spans flush straight to this worker's
            # own shard files (retain=False — the list never grows)
            wsink = open_worker_sink(stream)
            tracer = Tracer(sinks=[wsink], retain=False)
        else:
            tracer = Tracer() if trace else None
        # mirror=False when untraced keeps the engine from picking up a
        # pool-harness tracer via observe.active(); events_gauge=False
        # because partial shard counts must not collide on the parent
        # engine's gauge label after the merge
        engine = Engine(
            name=f"virtual[{nranks}]", tracer=tracer, mirror=trace,
            events_gauge=False, pop=payload.get("pop", "batch"),
        )
        starts = payload["starts"]
        scale = payload["scale"]
        comm = payload["comm"]
        sent_comm = comm is None
        if comm is None:
            comm = self._comm_slice(lo, hi)
        lustre = LustreModel(self.machine, seed=settings.seed)
        bytes_per_node = self._bytes_per_node()
        oss = engine.resource(
            "lustre-oss", capacity=nnodes, lane=("lustre-oss", "write")
        )
        launch_cost = grayscott_launch_cost(self.local_shape, settings.backend)
        leaders: dict[int, int] = {}
        for r in range(hi - 1, lo - 1, -1):
            leaders[self.placement.location(r).node] = r
        out_prev = seg["out_prev"]
        writes: dict[int, object] = {}
        arrivals = np.empty(hi - lo)

        def program(idx, rank):
            node = self.placement.location(rank).node
            gcd = VirtualGcd(
                engine, rank, shape=self.local_shape,
                backend=settings.backend, machine=self.machine,
                launch_cost=launch_cost,
            )
            nic = engine.resource(f"nic{rank}", lane=(f"vrank{rank}", "mpi"))
            sc = float(scale[idx])
            comm_s = float(comm[idx])
            halo_plan = UsePlan(nic, comm_s, label="halo", cat="mpi")
            halo_name = f"vrank{rank}.halo"
            halo_lane = (f"vrank{rank}", "mpi")
            start = float(starts[idx])
            if start > 0.0:
                # unlabeled, so the bridge to this rank's epoch start
                # time is not mirrored; 0.0 + start == start exactly,
                # so shard clocks land on the serial engine's floats
                yield Delay(start)
            if seg["do_jit"]:
                yield from gcd.jit()
            wproc = None
            if out_prev is not None and leaders[node] == rank:
                seconds = lustre.write_seconds_per_node(
                    nnodes, bytes_per_node, sample=f"{out_prev}:{node}"
                )
                write = use(
                    oss, seconds, label="bp5.write", cat="adios",
                    args={"node": node, "output_step": out_prev},
                )
                if overlap:
                    wproc = engine.spawn(
                        f"node{node}.write{out_prev}", write,
                        lane=(f"node{node}", "adios"),
                    )
                    writes[node] = wproc
                else:
                    yield from write
            for _step in range(seg["step_lo"], seg["step_hi"] + 1):
                if overlap:
                    halo = engine.spawn(
                        halo_name, halo_plan.use(), lane=halo_lane
                    )
                    yield from gcd.kernel(sc)
                    yield Join(halo)
                else:
                    yield from gcd.kernel(sc)
                    yield from halo_plan.use()
            if seg["final"] and wproc is not None:
                yield Join(wproc)
            arrivals[idx] = engine.now

        for idx, rank in enumerate(range(lo, hi)):
            engine.spawn(
                f"vrank{rank}", program(idx, rank), lane=(f"vrank{rank}", "core")
            )
        engine.run()
        engine.check_quiescent()
        return {
            "arrivals": arrivals,
            "write_ends": {
                node: float(proc.finished_at) for node, proc in writes.items()
            },
            "comm": comm if sent_comm else None,
            "spans": list(tracer.spans) if trace and wsink is None else None,
            "shards": wsink.finish() if wsink is not None else None,
            "events": engine.events_processed,
        }


def _virtual_segment_task(payload: dict) -> dict:
    """Pool task: rebuild the workflow in the worker and run one segment."""
    wf = VirtualWorkflow(
        payload["settings"],
        nranks=payload["nranks"],
        overlap=payload["overlap"],
        machine=payload["machine"],
    )
    if payload.get("vector"):
        return wf._vector_segment(payload)
    return wf._simulate_segment(payload)
