"""Virtual SPMD mode: modeled Frontier-scale runs of a settings file.

The thread-backed executor (:mod:`repro.mpi.executor`) runs the *real*
solver but tops out at a few dozen ranks. This module runs the same
workflow shape — JIT, then ``steps`` x (kernel, halo exchange), with a
barrier + BP5 node-aggregated write every ``plotgap`` steps — as
**virtual processes** on the discrete-event engine (:mod:`repro.sched`),
with every duration drawn from the calibrated performance models:

- kernel launches from :func:`repro.gpu.proxy.grayscott_launch_cost`
  (via :class:`~repro.gpu.proxy.VirtualGcd`), with the persistent
  per-rank jitter of :mod:`repro.mpi.netmodel`;
- halo-exchange costs from
  :class:`~repro.mpi.netmodel.HaloExchangeModel`;
- subfile writes from :class:`~repro.adios.fsmodel.LustreModel`, one
  aggregator per node on a shared OSS resource.

The settings' grid is the **per-rank local block** (the paper's weak
scaling: 1024^3 cells per GCD at every job size). ``overlap=True``
models the nonblocking exchange and BP5 async drain: halo traffic rides
the NIC while the kernel occupies the GCD, and the write of one output
step streams while the next solve steps run. A 4,096-rank run is 4,096
generators in one thread; when an :mod:`repro.observe` tracer is active
every modeled event lands in the exported Perfetto timeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.frontier import FRONTIER, MachineSpec
from repro.core.settings import GrayScottSettings
from repro.util.errors import ConfigError


@dataclass
class VirtualRunResult:
    """Outcome of one virtual SPMD run (all times are modeled seconds)."""

    nranks: int
    nnodes: int
    steps: int
    output_steps: int
    backend: str
    overlap: bool
    elapsed_seconds: float
    rank_finish_seconds: np.ndarray
    kernel_seconds_per_step: float
    comm_seconds_mean: float
    jit_seconds: float
    events_processed: int
    collectives_per_rank: int
    results: list

    @property
    def variability(self) -> float:
        """(max - min) / mean over rank finish times (the Fig. 6 metric)."""
        finish = self.rank_finish_seconds
        return float((finish.max() - finish.min()) / finish.mean())

    def render(self) -> str:
        from repro.util.tables import Table

        mode = "overlapped (nonblocking halo + async drain)" if self.overlap \
            else "serial (blocking halo + blocking writes)"
        table = Table(
            ["quantity", "value"],
            title=f"virtual SPMD run: {self.nranks} ranks on "
                  f"{self.nnodes} node(s), {mode}",
        )
        table.add_row(["backend", self.backend])
        table.add_row(["solve steps", self.steps])
        table.add_row(["output steps", self.output_steps])
        table.add_row(["modeled elapsed (s)", f"{self.elapsed_seconds:.3f}"])
        table.add_row(
            ["rank finish min/mean/max (s)",
             f"{self.rank_finish_seconds.min():.3f} / "
             f"{self.rank_finish_seconds.mean():.3f} / "
             f"{self.rank_finish_seconds.max():.3f}"]
        )
        table.add_row(["variability", f"{self.variability * 100:.1f}%"])
        table.add_row(
            ["kernel (s/step)", f"{self.kernel_seconds_per_step:.4g}"]
        )
        table.add_row(["halo mean (s/step)", f"{self.comm_seconds_mean:.4g}"])
        table.add_row(["jit compile (s)", f"{self.jit_seconds:.3f}"])
        table.add_row(["collectives per rank", self.collectives_per_rank])
        table.add_row(["engine events", self.events_processed])
        return table.render()


class VirtualWorkflow:
    """Event-driven "virtual SPMD" execution of a settings file.

    >>> from repro.core.settings import GrayScottSettings
    >>> s = GrayScottSettings(L=64, steps=4, plotgap=2, backend="julia")
    >>> result = VirtualWorkflow(s, nranks=16).run()
    >>> result.nranks, result.output_steps
    (16, 2)
    """

    def __init__(
        self,
        settings: GrayScottSettings,
        *,
        nranks: int | None = None,
        overlap: bool = False,
        nic_contention: bool = False,
        machine: MachineSpec = FRONTIER,
        tracer=None,
    ):
        from repro.cluster.placement import Placement
        from repro.mpi.cart import dims_create

        if settings.backend == "cpu":
            raise ConfigError(
                "virtual SPMD mode models GCD occupancy; pick a GPU "
                "backend (julia/hip) in the settings"
            )
        self.settings = settings
        self.nranks = nranks if nranks is not None else max(settings.ranks, 1)
        if self.nranks < 1:
            raise ConfigError(f"virtual run needs >= 1 rank, got {self.nranks}")
        self.overlap = overlap
        #: model the node's Slingshot ports as a shared capacity-limited
        #: resource: the node's 8 ranks queue on 4 NICs instead of each
        #: owning a private link (opt-in; changes modeled times)
        self.nic_contention = nic_contention
        self.machine = machine
        self.tracer = tracer
        self.placement = Placement(self.nranks, machine)
        self.cart_dims = dims_create(self.nranks, 3)
        #: weak scaling: the settings' grid is each rank's local block
        self.local_shape = settings.shape

    # -- modeled ingredients ------------------------------------------------
    def _kernel_jitter(self) -> np.ndarray:
        from repro.mpi.netmodel import noise_sigma
        from repro.util.rngs import RngStream

        stream = RngStream(self.settings.seed, ("virtual",))
        gen = stream.generator("jitter", self.nranks)
        return gen.normal(0.0, noise_sigma(self.nranks), size=self.nranks)

    def _comm_seconds(self) -> np.ndarray:
        from repro.mpi.netmodel import HaloExchangeModel

        halo = HaloExchangeModel(
            self.placement, self.cart_dims, self.local_shape,
            periodic=self.settings.boundary == "periodic",
            machine=self.machine,
        )
        return np.array(
            [halo.rank_step_seconds(r).total_seconds for r in range(self.nranks)]
        )

    def _bytes_per_node(self) -> int:
        itemsize = 8 if self.settings.precision == "float64" else 4
        cells = int(np.prod(self.local_shape))
        ranks_on_full_node = min(self.nranks, self.placement.ranks_per_node)
        return 2 * cells * itemsize * ranks_on_full_node

    # -- the run ------------------------------------------------------------
    def run(self) -> VirtualRunResult:
        from repro.adios.fsmodel import LustreModel
        from repro.gpu.proxy import (
            VirtualGcd,
            grayscott_launch_cost,
            jit_compile_seconds,
        )
        from repro.mpi.netmodel import NetModel
        from repro.sched import Engine, Join, UsePlan, run_virtual_spmd, use

        settings = self.settings
        nranks, nnodes = self.nranks, self.placement.nnodes
        engine = Engine(name=f"virtual[{nranks}]", tracer=self.tracer)
        jitter = self._kernel_jitter()
        comm = self._comm_seconds()
        lustre = LustreModel(self.machine, seed=settings.seed)
        bytes_per_node = self._bytes_per_node()
        oss = engine.resource(
            "lustre-oss", capacity=nnodes, lane=("lustre-oss", "write")
        )
        output_steps = settings.steps // settings.plotgap
        overlap = self.overlap
        leaders = {
            self.placement.location(r).node: r for r in range(nranks - 1, -1, -1)
        }
        # weak scaling: every GCD runs the same local block, so the
        # launch cost is computed once, not once per rank
        launch_cost = grayscott_launch_cost(
            self.local_shape, settings.backend
        )

        def program(vcomm):
            rank = vcomm.rank
            node = self.placement.location(rank).node
            gcd = VirtualGcd(
                engine, rank, shape=self.local_shape,
                backend=settings.backend, machine=self.machine,
                launch_cost=launch_cost,
            )
            if self.nic_contention:
                nic = engine.resource(
                    f"node{node}.nic",
                    capacity=self.machine.node.nics_per_node,
                    lane=(f"node{node}", "mpi"),
                )
            else:
                nic = engine.resource(
                    f"nic{rank}", lane=(f"vrank{rank}", "mpi")
                )
            scale = float(1.0 + jitter[rank])
            comm_s = float(comm[rank])
            halo_plan = UsePlan(nic, comm_s, label="halo", cat="mpi")
            halo_name = f"vrank{rank}.halo"
            halo_lane = (f"vrank{rank}", "mpi")
            yield from gcd.jit()
            pending_write = None
            for step in range(1, settings.steps + 1):
                if overlap:
                    halo = engine.spawn(
                        halo_name, halo_plan.use(), lane=halo_lane
                    )
                    yield from gcd.kernel(scale)
                    yield Join(halo)
                else:
                    yield from gcd.kernel(scale)
                    yield from halo_plan.use()
                if step % settings.plotgap == 0:
                    # output step: all ranks synchronize (BP5 end_step is
                    # collective), then each node's leader aggregates its
                    # ranks' blocks into one subfile
                    yield from vcomm.barrier()
                    if leaders[node] == rank:
                        out = step // settings.plotgap
                        seconds = lustre.write_seconds_per_node(
                            nnodes, bytes_per_node, sample=f"{out}:{node}"
                        )
                        write = use(
                            oss, seconds, label="bp5.write", cat="adios",
                            args={"node": node, "output_step": out},
                        )
                        if overlap:
                            if pending_write is not None:
                                yield Join(pending_write)
                            pending_write = engine.spawn(
                                f"node{node}.write{out}", write,
                                lane=(f"node{node}", "adios"),
                            )
                        else:
                            yield from write
            if pending_write is not None:
                yield Join(pending_write)
            checksum = yield from vcomm.allreduce(scale, op="sum")
            return checksum

        # point-to-point sends inside rank programs (none in the stock
        # Gray-Scott program, which models halo cost in aggregate) are
        # charged by the placement-aware LogGP model instead of the
        # bare VirtualJob's zero-latency default
        net = NetModel(self.placement)
        spmd = run_virtual_spmd(
            program, nranks, engine=engine, p2p_seconds=net.p2p_seconds
        )
        return VirtualRunResult(
            nranks=nranks,
            nnodes=nnodes,
            steps=settings.steps,
            output_steps=output_steps,
            backend=settings.backend,
            overlap=overlap,
            elapsed_seconds=spmd.elapsed_seconds,
            rank_finish_seconds=np.array(spmd.rank_finish_seconds),
            kernel_seconds_per_step=launch_cost.seconds,
            comm_seconds_mean=float(comm.mean()),
            jit_seconds=jit_compile_seconds(settings.backend),
            events_processed=engine.events_processed,
            collectives_per_rank=sum(
                1 for op in spmd.job.op_log[0]
                if op.kind in ("barrier", "allreduce")
            ),
            results=spmd.results,
        )
