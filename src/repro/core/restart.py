"""Checkpoint / restart through the BP5 engine.

A checkpoint is a one-step dataset holding the exact ghostless interior
of U and V plus the step counter and settings provenance; restoring
re-assembles each rank's block (any compatible decomposition works,
because blocks are addressed in global coordinates) and refreshes the
ghost layers with one exchange. A restored run continues bitwise
identically to an uninterrupted one — asserted by
``tests/core/test_restart.py``.
"""

from __future__ import annotations

import numpy as np

from repro.adios.api import Adios
from repro.adios.engines import BP5Reader
from repro.core.simulation import Simulation
from repro.util.errors import ConfigError


def write_checkpoint(sim: Simulation, path: str | None = None) -> str:
    """Write a checkpoint dataset; returns its path."""
    target = path or sim.settings.checkpoint or "ckpt.bp"
    adios = Adios()
    io = adios.declare_io("Checkpoint")
    shape = sim.settings.shape
    var_u = io.define_variable(
        "U", sim.dtype, shape=shape, start=sim.domain.start, count=sim.domain.count
    )
    var_v = io.define_variable(
        "V", sim.dtype, shape=shape, start=sim.domain.start, count=sim.domain.count
    )
    var_step = io.define_variable("step", np.int64)
    io.define_attribute("settings_json", sim.settings.to_json())
    with io.open(target, "w", comm=sim.cart) as engine:
        engine.begin_step()
        engine.put(var_u, np.asfortranarray(sim.interior("u")))
        engine.put(var_v, np.asfortranarray(sim.interior("v")))
        engine.put(var_step, np.int64(sim.step_count))
        engine.end_step()
    return target


def restore_checkpoint(sim: Simulation, path: str | None = None) -> int:
    """Load a checkpoint into ``sim``; returns the restored step count.

    Collective when the simulation is parallel: every rank reads its own
    block (the reader is serial per rank, which is exactly how ADIOS2
    reading with a box selection behaves for restart).
    """
    source = path or sim.settings.checkpoint
    if not source:
        raise ConfigError("no checkpoint path configured")
    reader = BP5Reader(None, source)
    attrs = reader.attributes
    if "settings_json" in attrs:
        from repro.core.settings import GrayScottSettings

        saved = GrayScottSettings.from_json(attrs["settings_json"].value)
        if saved.shape != sim.settings.shape:
            raise ConfigError(
                f"checkpoint is for global shape {saved.shape}, "
                f"simulation has {sim.settings.shape}"
            )
    start, count = sim.domain.start, sim.domain.count
    sim.interior("u")[...] = reader.read("U", start=start, count=count)
    sim.interior("v")[...] = reader.read("V", start=start, count=count)
    sim.step_count = int(reader.read_scalar("step"))
    reader.close()
    sim.exchange()
    return sim.step_count
