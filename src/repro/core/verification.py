"""Solver verification against exact discrete solutions.

With the reaction and noise terms off (F = k = n = 0), Eq. (2) reduces
to forward-Euler diffusion under the normalized 7-point Laplacian of
Eq. (3). On a periodic grid that operator is diagonal in Fourier space:
mode (p, q, r) has eigenvalue

    lambda(p, q, r) = -1 + (cos(2 pi p / n0) + cos(2 pi q / n1)
                            + cos(2 pi r / n2)) / 3

so the *exact* discrete evolution of any initial field is

    u_hat(t) = u_hat(0) * (1 + dt * D * lambda)^t .

:func:`exact_diffusion_evolution` computes that; the verification tests
require the time-stepping solver to match it to machine precision over
many steps — a correctness oracle independent of the solver's own code
path, not merely reference-vs-vectorized self-consistency.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ConfigError


def laplacian_eigenvalues(shape: tuple[int, int, int]) -> np.ndarray:
    """Eigenvalues of the normalized periodic 7-point Laplacian (Eq. 3)."""
    if len(shape) != 3:
        raise ConfigError(f"expected a 3D shape, got {shape}")
    n0, n1, n2 = shape
    c0 = np.cos(2 * np.pi * np.fft.fftfreq(n0))[:, None, None]
    c1 = np.cos(2 * np.pi * np.fft.fftfreq(n1))[None, :, None]
    c2 = np.cos(2 * np.pi * np.fft.fftfreq(n2))[None, None, :]
    return -1.0 + (c0 + c1 + c2) / 3.0


def exact_diffusion_evolution(
    field0: np.ndarray, D: float, dt: float, steps: int
) -> np.ndarray:
    """Exact forward-Euler diffusion of ``field0`` after ``steps`` steps.

    Exact for the *discrete* scheme (not the PDE): every Fourier mode is
    scaled by its per-step growth factor raised to ``steps``.
    """
    if field0.ndim != 3:
        raise ConfigError(f"expected a 3D field, got shape {field0.shape}")
    if steps < 0:
        raise ConfigError(f"steps must be >= 0, got {steps}")
    growth = 1.0 + dt * D * laplacian_eigenvalues(field0.shape)
    spectrum = np.fft.fftn(np.asarray(field0, dtype=np.float64))
    evolved = np.fft.ifftn(spectrum * growth**steps)
    return np.asfortranarray(evolved.real)


def max_stable_dt(D: float) -> float:
    """Forward-Euler stability bound for the normalized operator.

    The most negative eigenvalue is -2 (checkerboard mode), so the
    growth factor stays in [-1, 1] iff dt * D <= 1.
    """
    if D <= 0:
        raise ConfigError(f"diffusion rate must be positive, got {D}")
    return 1.0 / D


def diffusion_error(
    solver_field: np.ndarray, field0: np.ndarray, D: float, dt: float, steps: int
) -> float:
    """Max-norm error of a solver state vs. the exact discrete solution."""
    exact = exact_diffusion_evolution(field0, D, dt, steps)
    return float(np.abs(np.asarray(solver_field) - exact).max())
