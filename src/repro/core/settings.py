"""JSON settings files, compatible with the GrayScott.jl artifact.

The paper's artifact configures runs through JSON settings files
(``examples/settings-files.json`` in the GrayScott.jl repository) with
keys like ``L``, ``Du``, ``Dv``, ``F``, ``k``, ``dt``, ``steps``,
``plotgap``, ``noise``, ``output``, ``checkpoint``. This module reads
and writes that schema and adds the knobs our reproduction introduces
(backend, decomposition) under the same flat-JSON style; unknown keys
are rejected so typos fail loudly.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields, replace
from pathlib import Path

from repro.core.params import GrayScottParams
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class GrayScottSettings:
    """One run configuration (the artifact's settings-file schema)."""

    #: global cells per dimension (the domain is L x L x L)
    L: int = 64
    #: optional non-cubic global shape; 0 means "use L" for that axis
    nx: int = 0
    ny: int = 0
    nz: int = 0
    Du: float = 0.2
    Dv: float = 0.1
    F: float = 0.02
    k: float = 0.048
    dt: float = 1.0
    noise: float = 0.1
    #: total simulation steps
    steps: int = 100
    #: write output every `plotgap` steps
    plotgap: int = 10
    #: output dataset name
    output: str = "gs.bp"
    #: checkpoint file ("" disables checkpointing)
    checkpoint: str = ""
    #: checkpoint every `checkpoint_freq` steps (when enabled)
    checkpoint_freq: int = 700
    #: RNG seed for the noise term
    seed: int = 42
    #: compute backend: "cpu" (vectorized NumPy) or a simulated GPU
    #: backend name ("julia", "hip")
    backend: str = "cpu"
    #: adios engine for output
    adios_engine: str = "BP5"
    #: precision of the fields ("float64" or "float32")
    precision: str = "float64"
    #: boundary conditions: "periodic" (the paper's) or "neumann"
    #: (zero-flux walls)
    boundary: str = "periodic"
    #: ghost exchange strategy: "sequential" (axis-by-axis blocking,
    #: Listing 3) or "overlapped" (post-all-then-wait; valid because the
    #: 7-point stencil reads face ghosts only)
    exchange: str = "sequential"
    #: simulated MPI ranks for CLI runs; 0/1 means serial
    ranks: int = 0

    def __post_init__(self) -> None:
        # Normalize numeric types before validation: JSON settings files
        # (and with_overrides calls) may carry `1` where the field is a
        # float. Without this, `F=1` and `F=1.0` would be equal settings
        # with different to_json bytes — and different canonical_hash
        # digests. -0.0 folds to 0.0 for the same reason: equal values
        # must serialize identically.
        for spec in fields(self):
            if spec.type != "float":
                continue
            value = getattr(self, spec.name)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            # `+ 0.0` folds -0.0 to +0.0; the fold is unconditional
            # because -0.0 == 0.0 would defeat any equality guard
            object.__setattr__(self, spec.name, float(value) + 0.0)
        if self.L < 4:
            raise ConfigError(f"L must be >= 4 (got {self.L})")
        for axis, n in (("nx", self.nx), ("ny", self.ny), ("nz", self.nz)):
            if n != 0 and n < 4:
                raise ConfigError(f"{axis} must be 0 (use L) or >= 4 (got {n})")
        if self.steps < 0:
            raise ConfigError(f"steps must be >= 0 (got {self.steps})")
        if self.plotgap <= 0:
            raise ConfigError(f"plotgap must be > 0 (got {self.plotgap})")
        if self.checkpoint and self.checkpoint_freq <= 0:
            raise ConfigError(f"checkpoint_freq must be > 0 (got {self.checkpoint_freq})")
        if self.precision not in ("float64", "float32"):
            raise ConfigError(f"precision must be float64|float32 (got {self.precision!r})")
        if self.backend not in ("cpu", "julia", "hip"):
            raise ConfigError(
                f"backend must be cpu|julia|hip (got {self.backend!r})"
            )
        if self.boundary not in ("periodic", "neumann"):
            raise ConfigError(
                f"boundary must be periodic|neumann (got {self.boundary!r})"
            )
        if self.exchange not in ("sequential", "overlapped"):
            raise ConfigError(
                f"exchange must be sequential|overlapped (got {self.exchange!r})"
            )
        if self.ranks < 0:
            raise ConfigError(f"ranks must be >= 0 (got {self.ranks})")
        # validate the physics eagerly so bad settings files fail at load
        self.params()

    def params(self) -> GrayScottParams:
        return GrayScottParams(
            Du=self.Du, Dv=self.Dv, F=self.F, k=self.k, noise=self.noise, dt=self.dt
        )

    @property
    def shape(self) -> tuple[int, int, int]:
        return (self.nx or self.L, self.ny or self.L, self.nz or self.L)

    def with_overrides(self, **kwargs) -> "GrayScottSettings":
        return replace(self, **kwargs)

    # -- canonical identity -------------------------------------------------
    def canonical_json(self) -> str:
        """The canonical one-line serialization: sorted keys, no spaces.

        Because ``__post_init__`` normalizes numeric types, two settings
        objects compare equal if and only if their canonical JSON is
        byte-identical — regardless of the field order of the settings
        file they were loaded from, or how many ``to_json``/``from_json``
        / ``with_overrides`` round trips they went through.
        """
        return json.dumps(asdict(self), sort_keys=True, separators=(",", ":"))

    def canonical_hash(self) -> str:
        """A stable content digest of this configuration (hex sha256).

        This is the cache key of :class:`repro.serve.ResultStore`:
        identical configurations — under any serialization round trip —
        hash identically, so a service answers them from cache.
        """
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    # -- JSON round trip ----------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "GrayScottSettings":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"settings file is not valid JSON: {exc}") from exc
        if not isinstance(raw, dict):
            raise ConfigError("settings JSON must be an object")
        known = set(cls.__dataclass_fields__)  # type: ignore[attr-defined]
        unknown = set(raw) - known
        if unknown:
            raise ConfigError(
                f"unknown settings keys: {sorted(unknown)}; known: {sorted(known)}"
            )
        try:
            return cls(**raw)
        except TypeError as exc:
            raise ConfigError(f"bad settings value types: {exc}") from exc

    def save(self, path) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path) -> "GrayScottSettings":
        p = Path(path)
        if not p.exists():
            raise ConfigError(f"settings file not found: {p}")
        return cls.from_json(p.read_text())
