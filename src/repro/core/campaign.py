"""Campaigns: parameter sweeps of end-to-end workflows.

A real workflow system runs families of simulations — the paper's
weak-scaling ladder is itself a campaign over job sizes, and Pearson
exploration is a campaign over (F, k). :class:`Campaign` runs a list of
named :class:`~repro.core.settings.GrayScottSettings` variants through
the full Workflow, collects every report, and renders/saves a combined
FAIR provenance record.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.settings import GrayScottSettings
from repro.core.workflow import Workflow, WorkflowReport
from repro.util.errors import ConfigError
from repro.util.tables import Table


@dataclass
class CampaignResult:
    """All member reports of one campaign, keyed by variant name."""

    reports: dict[str, WorkflowReport] = field(default_factory=dict)

    def render(self) -> str:
        table = Table(
            ["variant", "F", "k", "steps", "outputs", "V max", "wall (s)"],
            title=f"Campaign: {len(self.reports)} runs",
        )
        for name, report in self.reports.items():
            settings = report.settings
            table.add_row(
                [
                    name,
                    settings.F,
                    settings.k,
                    report.steps_run,
                    report.output_steps,
                    report.analysis.get("V_max", "-"),
                    f"{report.wall_seconds:.2f}",
                ]
            )
        return table.render()

    def provenance(self) -> dict:
        return {
            "campaign": {name: r.provenance() for name, r in self.reports.items()}
        }

    def save_provenance(self, path) -> None:
        Path(path).write_text(json.dumps(self.provenance(), indent=2))


class Campaign:
    """A named family of workflow runs.

    >>> campaign = Campaign(base_settings, workdir="out/")
    >>> campaign.add("alpha", F=0.010, k=0.047)
    >>> campaign.add("beta", F=0.026, k=0.051)
    >>> result = campaign.run()
    """

    def __init__(self, base: GrayScottSettings, *, workdir: str | Path = "."):
        self.base = base
        self.workdir = Path(workdir)
        self._variants: dict[str, GrayScottSettings] = {}

    def add(self, name: str, **overrides) -> GrayScottSettings:
        """Register a variant: base settings + overrides.

        The output path is derived from the variant name unless the
        overrides set one explicitly.
        """
        if name in self._variants:
            raise ConfigError(f"campaign variant {name!r} already defined")
        if not name or "/" in name:
            raise ConfigError(f"invalid variant name {name!r}")
        overrides.setdefault("output", str(self.workdir / f"{name}.bp"))
        settings = self.base.with_overrides(**overrides)
        self._variants[name] = settings
        return settings

    @property
    def variants(self) -> dict[str, GrayScottSettings]:
        return dict(self._variants)

    def run(self, *, analyze: bool = True) -> CampaignResult:
        """Run every variant sequentially; returns all reports."""
        if not self._variants:
            raise ConfigError("campaign has no variants; call add() first")
        self.workdir.mkdir(parents=True, exist_ok=True)
        result = CampaignResult()
        for name, settings in self._variants.items():
            result.reports[name] = Workflow(settings).run(analyze=analyze)
        return result
