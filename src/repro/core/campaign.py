"""Campaigns: parameter sweeps of end-to-end workflows.

A real workflow system runs families of simulations — the paper's
weak-scaling ladder is itself a campaign over job sizes, and Pearson
exploration is a campaign over (F, k). :class:`Campaign` runs a list of
named :class:`~repro.core.settings.GrayScottSettings` variants through
the full Workflow, collects every report, and renders/saves a combined
FAIR provenance record.

``Campaign.run(jobs=N)`` fans the members out over a
:func:`repro.par.run_tasks` worker pool with an index-ordered merge, so
the parallel result — report order, provenance JSON, and the datasets
on disk — is byte-identical to the serial run. Member failures are
captured per variant (the rest of the campaign still runs) and surface
in :attr:`CampaignResult.failures`; the CLI maps them to exit code 1.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.settings import GrayScottSettings
from repro.core.workflow import Workflow, WorkflowReport
from repro.util.errors import ConfigError


@dataclass
class CampaignResult:
    """All member reports of one campaign, keyed by variant name."""

    reports: dict[str, WorkflowReport] = field(default_factory=dict)
    #: tracebacks of failed members, keyed by variant name
    failures: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        from repro.core import present

        return present.render_campaign(self)

    def provenance(self) -> dict:
        from repro.core import present

        return present.campaign_provenance(self)

    def save_provenance(self, path) -> None:
        from repro.core import present

        present.write_provenance(self.provenance(), path)


def _run_member(task: tuple[str, GrayScottSettings, bool]):
    """Run one campaign member; never raises (module-level: pool-safe).

    Returns ``(name, True, report)`` or ``(name, False, traceback)`` so
    a failing variant doesn't abort the rest of the campaign — and so
    the parallel path's worker pool is never torn down by one bad
    member.
    """
    name, settings, analyze = task
    try:
        return name, True, Workflow(settings).run(analyze=analyze)
    except Exception:
        return name, False, traceback.format_exc()


class Campaign:
    """A named family of workflow runs.

    >>> campaign = Campaign(base_settings, workdir="out/")
    >>> campaign.add("alpha", F=0.010, k=0.047)
    >>> campaign.add("beta", F=0.026, k=0.051)
    >>> result = campaign.run(jobs=2)
    """

    def __init__(self, base: GrayScottSettings, *, workdir: str | Path = "."):
        self.base = base
        self.workdir = Path(workdir)
        self._variants: dict[str, GrayScottSettings] = {}

    def add(self, name: str, **overrides) -> GrayScottSettings:
        """Register a variant: base settings + overrides.

        The output path is derived from the variant name unless the
        overrides set one explicitly.
        """
        if name in self._variants:
            raise ConfigError(f"campaign variant {name!r} already defined")
        if not name or "/" in name:
            raise ConfigError(f"invalid variant name {name!r}")
        overrides.setdefault("output", str(self.workdir / f"{name}.bp"))
        settings = self.base.with_overrides(**overrides)
        self._variants[name] = settings
        return settings

    @property
    def variants(self) -> dict[str, GrayScottSettings]:
        return dict(self._variants)

    def run(self, *, analyze: bool = True, jobs: int = 1) -> CampaignResult:
        """Run every variant; returns all reports (+ captured failures).

        ``jobs > 1`` spreads the members over a process pool
        (:func:`repro.par.run_tasks`; ``jobs=0`` means every core). The
        merge is index-ordered, so the report dict, provenance record,
        and written datasets are byte-identical to ``jobs=1``.
        """
        from repro.par import run_tasks

        if not self._variants:
            raise ConfigError("campaign has no variants; call add() first")
        self.workdir.mkdir(parents=True, exist_ok=True)
        tasks = [
            (name, settings, analyze)
            for name, settings in self._variants.items()
        ]
        outcomes = run_tasks(_run_member, tasks, jobs=jobs)
        result = CampaignResult()
        for name, ok, payload in outcomes:
            if ok:
                result.reports[name] = payload
            else:
                result.failures[name] = payload
        return result
