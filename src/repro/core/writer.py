"""ADIOS2-style simulation output (paper Section 3.4, Listing 1).

Writes the U and V global arrays (one block per rank), the ``step``
scalar, the physics parameters as provenance attributes, and the
FIDES/VTX visualization-schema attributes that let ParaView readers
consume the dataset — reproducing the provenance record of Listing 1.
"""

from __future__ import annotations

import numpy as np

from repro.adios.api import Adios, IO
from repro.core.simulation import Simulation
from repro.mpi.comm import Comm


class SimulationWriter:
    """Owns the ADIOS IO + engine for one simulation's output stream."""

    def __init__(
        self,
        sim: Simulation,
        path: str | None = None,
        *,
        comm: Comm | None = None,
        io_name: str = "SimulationOutput",
        mode: str = "w",
    ):
        self.sim = sim
        self.path = path or sim.settings.output
        self.adios = Adios()
        self.io: IO = self.adios.declare_io(io_name)
        self.io.set_engine(sim.settings.adios_engine)

        shape = sim.settings.shape
        start = sim.domain.start
        count = sim.domain.count
        self.var_u = self.io.define_variable(
            "U", sim.dtype, shape=shape, start=start, count=count
        )
        self.var_v = self.io.define_variable(
            "V", sim.dtype, shape=shape, start=start, count=count
        )
        self.var_step = self.io.define_variable("step", np.int32)

        for name, value in sim.params.as_attributes().items():
            self.io.define_attribute(name, value)
        self.io.define_attribute("L", sim.settings.L)
        self.io.define_attribute("seed", sim.settings.seed)
        self.io.define_attribute("backend", sim.settings.backend)
        # ParaView readers (paper Section 3.4): FIDES and VTX schemas
        self.io.define_attribute("visualization_schemas", ["FIDES", "VTX"])
        self.io.define_attribute(
            "Fides_Data_Model", "uniform"
        )
        self.io.define_attribute(
            "vtk.xml",
            "<VTKFile type=\"ImageData\"><ImageData>"
            "<CellData Scalars=\"U\"/></ImageData></VTKFile>",
        )

        comm = comm if comm is not None else sim.cart
        self.engine = self.io.open(self.path, mode, comm=comm)

    def write(self) -> None:
        """Write one output step of the current simulation state."""
        self.engine.begin_step()
        self.engine.put(self.var_u, np.asfortranarray(self.sim.interior("u")))
        self.engine.put(self.var_v, np.asfortranarray(self.sim.interior("v")))
        self.engine.put(self.var_step, np.int32(self.sim.step_count))
        self.engine.end_step()

    def close(self) -> None:
        self.engine.close()

    def __enter__(self) -> "SimulationWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
