"""Domain decomposition and ghost-cell geometry.

The global L x L x L grid is block-decomposed over a 3D Cartesian
communicator (paper Section 3.3, Figure 4). Each rank owns an interior
block plus one ghost layer per side. This module computes the block
geometry (supporting non-divisible sizes via balanced remainders) and
builds the per-face ``MPI_Type_vector`` datatypes of Listing 3.

Face datatypes for a ghosted, Fortran-ordered local array of shape
``(m0, m1, m2)`` (``mi = ni + 2``):

- axis 0 (contiguous axis): a plane ``i = const`` is ``m1*m2`` single
  elements strided ``m0`` apart — ``Type_vector(m1*m2, 1, m0)``;
- axis 1: a plane ``j = const`` is ``m2`` contiguous runs of ``m0``
  elements strided ``m0*m1`` apart — ``Type_vector(m2, m0, m0*m1)``;
- axis 2: a plane ``k = const`` is one contiguous run of ``m0*m1``.

Faces span the *full* extent of the other axes (ghosts included): the
exchange runs axis-by-axis, so edge and corner ghost cells arrive
correctly after the three passes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mpi.datatypes import DOUBLE, FLOAT, BaseDatatype, Datatype, VectorDatatype
from repro.util.errors import ConfigError

_BASE_TYPES = {
    np.dtype(np.float64): DOUBLE,
    np.dtype(np.float32): FLOAT,
}


def base_datatype_for(dtype) -> BaseDatatype:
    """The elementary MPI datatype matching a field dtype."""
    try:
        return _BASE_TYPES[np.dtype(dtype)]
    except KeyError:
        raise ConfigError(
            f"no MPI base datatype for field dtype {np.dtype(dtype)}"
        ) from None


def block_range(n_global: int, nblocks: int, index: int) -> tuple[int, int]:
    """(start, count) of block ``index`` when splitting ``n_global`` cells.

    Balanced distribution: the first ``n_global % nblocks`` blocks get
    one extra cell.
    """
    if nblocks <= 0 or not 0 <= index < nblocks:
        raise ConfigError(f"bad block index {index} of {nblocks}")
    base, extra = divmod(n_global, nblocks)
    if base == 0:
        raise ConfigError(
            f"cannot split {n_global} cells into {nblocks} blocks (empty block)"
        )
    start = index * base + min(index, extra)
    count = base + (1 if index < extra else 0)
    return start, count


@dataclass(frozen=True)
class FaceSpec:
    """One exchangeable face: datatype + element offsets into the array."""

    datatype: Datatype
    #: offset of the interior boundary layer to *send*
    send_offset: int
    #: offset of the ghost layer to *receive into*
    recv_offset: int


@dataclass(frozen=True)
class LocalDomain:
    """One rank's block of the global grid."""

    global_shape: tuple[int, int, int]
    cart_dims: tuple[int, int, int]
    coords: tuple[int, int, int]
    start: tuple[int, int, int]
    count: tuple[int, int, int]

    @classmethod
    def for_coords(
        cls,
        global_shape: tuple[int, int, int],
        cart_dims: tuple[int, int, int],
        coords: tuple[int, int, int],
    ) -> "LocalDomain":
        start, count = [], []
        for n, dim, c in zip(global_shape, cart_dims, coords):
            s, cnt = block_range(n, dim, c)
            start.append(s)
            count.append(cnt)
        return cls(
            global_shape=tuple(global_shape),
            cart_dims=tuple(cart_dims),
            coords=tuple(coords),
            start=tuple(start),
            count=tuple(count),
        )

    @property
    def ghosted_shape(self) -> tuple[int, int, int]:
        return tuple(c + 2 for c in self.count)

    def allocate_field(self, dtype=np.float64) -> np.ndarray:
        """A zeroed ghosted local field in Fortran order."""
        return np.zeros(self.ghosted_shape, dtype=dtype, order="F")

    def interior(self, field: np.ndarray) -> np.ndarray:
        """View of the interior (no ghosts) of a ghosted field."""
        if field.shape != self.ghosted_shape:
            raise ConfigError(
                f"field shape {field.shape} != ghosted shape {self.ghosted_shape}"
            )
        return field[1:-1, 1:-1, 1:-1]

    def global_slices(self) -> tuple[slice, slice, slice]:
        """Where this block sits in the global array."""
        return tuple(slice(s, s + c) for s, c in zip(self.start, self.count))

    # -- face datatypes (Listing 3) ------------------------------------
    def face_specs(self, dtype=np.float64) -> dict[tuple[int, int], FaceSpec]:
        """{(axis, ±1): FaceSpec} for all six faces of the ghosted array.

        ``(axis, +1)`` is the *high* face (send layer ``m-2``, ghost
        ``m-1``); ``(axis, -1)`` the low face (send layer 1, ghost 0).
        ``dtype`` selects the elementary datatype of the field.
        """
        base = base_datatype_for(dtype)
        m0, m1, m2 = self.ghosted_shape
        specs: dict[tuple[int, int], FaceSpec] = {}
        for axis in range(3):
            if axis == 0:
                datatype = VectorDatatype(m1 * m2, 1, m0, base=base).commit()
                layer_stride = 1
            elif axis == 1:
                datatype = VectorDatatype(m2, m0, m0 * m1, base=base).commit()
                layer_stride = m0
            else:
                datatype = VectorDatatype(1, m0 * m1, m0 * m1, base=base).commit()
                layer_stride = m0 * m1
            extent = self.ghosted_shape[axis]
            specs[(axis, -1)] = FaceSpec(
                datatype=datatype,
                send_offset=1 * layer_stride,
                recv_offset=0,
            )
            specs[(axis, +1)] = FaceSpec(
                datatype=datatype,
                send_offset=(extent - 2) * layer_stride,
                recv_offset=(extent - 1) * layer_stride,
            )
        return specs


def mirror_ghosts(field: np.ndarray, *, axes=(0, 1, 2), sides=None) -> None:
    """Fill ghost layers by mirroring the adjacent interior layer.

    Zero-flux (Neumann) walls for the 7-point stencil: ghost = first
    interior layer, so the boundary-normal difference vanishes.
    ``sides`` optionally restricts which (axis, ±1) faces to fill —
    parallel runs mirror only their *global*-boundary faces and
    exchange the rest.
    """
    for axis in axes:
        for direction in (-1, +1):
            if sides is not None and (axis, direction) not in sides:
                continue
            ghost = [slice(None)] * 3
            source = [slice(None)] * 3
            if direction < 0:
                ghost[axis] = slice(0, 1)
                source[axis] = slice(1, 2)
            else:
                ghost[axis] = slice(-1, None)
                source[axis] = slice(-2, -1)
            field[tuple(ghost)] = field[tuple(source)]


def serial_wrap_ghosts(field: np.ndarray) -> None:
    """Fill ghost layers periodically from the field's own interior.

    The single-rank (or per-axis single-block) boundary path: the
    domain wraps onto itself, so ghosts copy the opposite interior
    layer. Matches what a 1-block periodic Cartesian exchange does.
    """
    for axis in range(3):
        src_hi = [slice(None)] * 3
        src_hi[axis] = slice(-2, -1)
        dst_lo = [slice(None)] * 3
        dst_lo[axis] = slice(0, 1)
        field[tuple(dst_lo)] = field[tuple(src_hi)]
        src_lo = [slice(None)] * 3
        src_lo[axis] = slice(1, 2)
        dst_hi = [slice(None)] * 3
        dst_hi[axis] = slice(-1, None)
        field[tuple(dst_hi)] = field[tuple(src_lo)]
