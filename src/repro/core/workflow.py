"""End-to-end workflow composition (paper Figure 1).

The paper's thesis is that one language can express the whole loop:
simulation -> parallel I/O -> analysis. :class:`Workflow` is that loop
as a library object: it runs the solver with the settings' output and
checkpoint policy, writes BP5 datasets through the ADIOS layer, invokes
the analysis module on what was written, and records a FAIR-style
provenance trail (inputs, software versions, outputs, derived results)
in the :class:`WorkflowReport`.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

from repro.core.restart import write_checkpoint
from repro.core.settings import GrayScottSettings
from repro.core.simulation import Simulation
from repro.core.writer import SimulationWriter
from repro.mpi.comm import Comm
from repro.observe import trace as observe
from repro.util.timers import WallTimer


@dataclass
class WorkflowReport:
    """Provenance + outcomes of one end-to-end run (FAIR record)."""

    settings: GrayScottSettings
    dataset: str
    steps_run: int = 0
    output_steps: int = 0
    checkpoints: list[str] = field(default_factory=list)
    wall_seconds: float = 0.0
    analysis: dict = field(default_factory=dict)
    #: observability summary (populated when a tracer was active)
    metrics: dict = field(default_factory=dict)

    def provenance(self) -> dict:
        """The machine-readable provenance record."""
        from repro.core import present

        return present.workflow_provenance(self)

    def render(self) -> str:
        from repro.core import present

        return present.render_workflow_report(self)


class Workflow:
    """simulate -> write -> analyze, under one settings object."""

    def __init__(self, settings: GrayScottSettings, comm: Comm | None = None):
        self.settings = settings
        self.comm = comm
        self.sim = Simulation(settings, comm)

    def _stage_span(self, name: str, **args):
        """A wall-clock tracer span for one workflow stage (or a no-op)."""
        tracer = observe.active()
        if tracer is None:
            return nullcontext()
        rank = self.sim.cart.rank if self.sim.cart is not None else 0
        return tracer.span(
            name, cat="core", process=f"rank{rank}", thread="core", args=args
        )

    def run(self, *, analyze: bool = True, resume: bool = False) -> WorkflowReport:
        """Execute the full workflow; returns the provenance report.

        On parallel runs every rank participates; the report's analysis
        section is populated on rank 0 (and on serial runs).

        ``resume=True`` continues an interrupted campaign: the state is
        restored from ``settings.checkpoint`` (which must exist), the
        output dataset is opened in append mode, and only the remaining
        steps run. The resulting dataset is bitwise identical to an
        uninterrupted run's (tested).
        """
        settings = self.settings
        report = WorkflowReport(settings=settings, dataset=settings.output)
        start_step = 0
        mode = "w"
        if resume:
            from repro.adios.bp5 import dataset_path
            from repro.core.restart import restore_checkpoint
            from repro.util.errors import ConfigError

            if not settings.checkpoint or not dataset_path(
                settings.checkpoint
            ).exists():
                raise ConfigError(
                    "resume=True needs an existing checkpoint at "
                    f"settings.checkpoint ({settings.checkpoint!r})"
                )
            start_step = restore_checkpoint(self.sim)
            mode = "a"
        writer = SimulationWriter(
            self.sim, settings.output, comm=self.sim.cart, mode=mode
        )
        with WallTimer() as timer, self._stage_span(
            "workflow.run", steps=settings.steps, resume=resume
        ):
            if not resume:
                with self._stage_span("workflow.output", step=0):
                    writer.write()  # step 0 snapshot
                report.output_steps += 1
            for _ in range(settings.steps - start_step):
                self.sim.step()
                report.steps_run += 1
                if self.sim.step_count % settings.plotgap == 0:
                    with self._stage_span(
                        "workflow.output", step=self.sim.step_count
                    ):
                        writer.write()
                    report.output_steps += 1
                if (
                    settings.checkpoint
                    and self.sim.step_count % settings.checkpoint_freq == 0
                ):
                    with self._stage_span(
                        "workflow.checkpoint", step=self.sim.step_count
                    ):
                        report.checkpoints.append(write_checkpoint(self.sim))
            writer.close()
        report.wall_seconds = timer.elapsed

        is_root = self.sim.cart is None or self.sim.cart.rank == 0
        if analyze and is_root:
            with self._stage_span("workflow.analysis"):
                report.analysis = self._analyze(settings.output)
        tracer = observe.active()
        if tracer is not None:
            if self.sim.cart is not None:
                self.sim.cart.barrier()  # all traffic recorded before export
            if is_root:
                # job stats are shared across ranks; export them once
                cart = self.sim.cart
                if cart is not None and cart.job.stats is not None:
                    cart.job.stats.to_metrics(tracer.metrics)
                report.metrics = tracer.metrics.summary()
        return report

    @staticmethod
    def _analyze(dataset: str) -> dict:
        """The 'Jupyter side': summarize what the run wrote."""
        from repro.analysis.reader import GrayScottDataset

        ds = GrayScottDataset(dataset)
        last = ds.steps[-1]
        u_min, u_max = ds.minmax("U")
        v_min, v_max = ds.minmax("V")
        stats = ds.summary(step=last)
        return {
            "nsteps": len(ds.steps),
            "last_step": last,
            "U_min": round(u_min, 6),
            "U_max": round(u_max, 6),
            "V_min": round(v_min, 6),
            "V_max": round(v_max, 6),
            "V_mean_last": round(stats["V"]["mean"], 6),
            "pattern_cells": stats["V"]["active_cells"],
        }
