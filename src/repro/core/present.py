"""Presentation layer: render and persist results the engine produced.

The engine/presentation split (see :mod:`repro.core.execute`) keeps run
*execution* free of any output concern: :class:`~repro.core.workflow.
WorkflowReport`, :class:`~repro.core.campaign.CampaignResult`, and
:class:`~repro.core.virtual.VirtualRunResult` are plain data, and every
human- or machine-facing view of them lives here — report tables,
FAIR provenance records, provenance files. The CLI and
:mod:`repro.serve` both consume this module, which is what makes a
cached service answer byte-identical to a cold run: the service stores
the text this module rendered once, instead of re-rendering (or worse,
re-executing) per request.

The result classes keep thin ``render()``/``provenance()`` methods for
backward compatibility; they delegate here.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING

from repro._version import __version__

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.campaign import CampaignResult
    from repro.core.execute import RunResult
    from repro.core.virtual import VirtualRunResult
    from repro.core.workflow import WorkflowReport


# -- workflow reports --------------------------------------------------------


def workflow_provenance(report: "WorkflowReport") -> dict:
    """The machine-readable FAIR provenance record of one run."""
    settings = report.settings
    record = {
        "workflow": "gray-scott",
        "repro_version": __version__,
        "inputs": settings.params().as_attributes()
        | {"L": settings.L, "steps": settings.steps,
           "plotgap": settings.plotgap, "seed": settings.seed,
           "backend": settings.backend},
        "outputs": {
            "dataset": report.dataset,
            "output_steps": report.output_steps,
            "checkpoints": list(report.checkpoints),
        },
        "derived": dict(report.analysis),
    }
    if report.metrics:
        record["metrics"] = dict(report.metrics)
    return record


def render_workflow_report(report: "WorkflowReport") -> str:
    from repro.util.tables import Table

    t = Table(["field", "value"], title="Gray-Scott workflow report")
    t.add_row(["dataset", report.dataset])
    t.add_row(["steps run", report.steps_run])
    t.add_row(["output steps", report.output_steps])
    t.add_row(["checkpoints", len(report.checkpoints)])
    t.add_row(["wall time (s)", f"{report.wall_seconds:.3f}"])
    for key, value in report.analysis.items():
        t.add_row([f"analysis.{key}", value])
    return t.render()


# -- virtual (modeled) runs --------------------------------------------------


def render_virtual_result(result: "VirtualRunResult") -> str:
    from repro.util.tables import Table

    mode = "overlapped (nonblocking halo + async drain)" if result.overlap \
        else "serial (blocking halo + blocking writes)"
    table = Table(
        ["quantity", "value"],
        title=f"virtual SPMD run: {result.nranks} ranks on "
              f"{result.nnodes} node(s), {mode}",
    )
    table.add_row(["backend", result.backend])
    table.add_row(["solve steps", result.steps])
    table.add_row(["output steps", result.output_steps])
    table.add_row(["modeled elapsed (s)", f"{result.elapsed_seconds:.3f}"])
    table.add_row(
        ["rank finish min/mean/max (s)",
         f"{result.rank_finish_seconds.min():.3f} / "
         f"{result.rank_finish_seconds.mean():.3f} / "
         f"{result.rank_finish_seconds.max():.3f}"]
    )
    table.add_row(["variability", f"{result.variability * 100:.1f}%"])
    table.add_row(
        ["kernel (s/step)", f"{result.kernel_seconds_per_step:.4g}"]
    )
    table.add_row(["halo mean (s/step)", f"{result.comm_seconds_mean:.4g}"])
    table.add_row(["jit compile (s)", f"{result.jit_seconds:.3f}"])
    table.add_row(["collectives per rank", result.collectives_per_rank])
    table.add_row(["engine events", result.events_processed])
    return table.render()


def virtual_provenance(result: "VirtualRunResult") -> dict:
    """A provenance-style record of one modeled run (all modeled time)."""
    return {
        "workflow": "gray-scott-virtual",
        "repro_version": __version__,
        "inputs": {
            "nranks": result.nranks,
            "backend": result.backend,
            "steps": result.steps,
            "overlap": result.overlap,
        },
        "derived": {
            "nnodes": result.nnodes,
            "output_steps": result.output_steps,
            "elapsed_seconds": result.elapsed_seconds,
            "variability": result.variability,
            "kernel_seconds_per_step": result.kernel_seconds_per_step,
            "comm_seconds_mean": result.comm_seconds_mean,
            "jit_seconds": result.jit_seconds,
            "events_processed": result.events_processed,
        },
    }


# -- campaigns ---------------------------------------------------------------


def render_campaign(result: "CampaignResult") -> str:
    from repro.util.tables import Table

    title = f"Campaign: {len(result.reports)} runs"
    if result.failures:
        title += f", {len(result.failures)} FAILED"
    table = Table(
        ["variant", "F", "k", "steps", "outputs", "V max", "wall (s)"],
        title=title,
    )
    for name, report in result.reports.items():
        settings = report.settings
        table.add_row(
            [
                name,
                settings.F,
                settings.k,
                report.steps_run,
                report.output_steps,
                report.analysis.get("V_max", "-"),
                f"{report.wall_seconds:.2f}",
            ]
        )
    for name in result.failures:
        table.add_row([name, "-", "-", "-", "-", "FAILED", "-"])
    return table.render()


def campaign_provenance(result: "CampaignResult") -> dict:
    record = {
        "campaign": {
            name: workflow_provenance(r) for name, r in result.reports.items()
        }
    }
    if result.failures:
        record["failures"] = {
            name: error.strip().splitlines()[-1]
            for name, error in result.failures.items()
        }
    return record


def write_provenance(record: dict, path) -> Path:
    """Persist a provenance record as indented JSON; returns the path."""
    target = Path(path)
    target.write_text(json.dumps(record, indent=2))
    return target


# -- unified run results -----------------------------------------------------


def render_result(result: "RunResult") -> str:
    """The report text of a unified :class:`~repro.core.execute.RunResult`.

    This is the single text path shared by the CLI and the service cache
    — the bytes :mod:`repro.serve` stores and replays on a cache hit.
    """
    if result.report is not None:
        return render_workflow_report(result.report)
    if result.virtual is not None:
        return render_virtual_result(result.virtual)
    raise ValueError("RunResult carries neither a report nor a virtual result")


def result_provenance(result: "RunResult") -> dict:
    if result.report is not None:
        return workflow_provenance(result.report)
    if result.virtual is not None:
        return virtual_provenance(result.virtual)
    raise ValueError("RunResult carries neither a report nor a virtual result")
