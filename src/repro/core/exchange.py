"""Ghost-cell exchange (paper Listing 3).

Per axis, every rank sends its high interior layer "up" and its low
interior layer "down", receiving into the opposite ghost layers, via
the strided face datatypes of :mod:`repro.core.domain`. The exchange
runs axis-by-axis with faces spanning ghost corners, so after three
passes the 26-neighbourhood is consistent; since Gray-Scott's stencil
only needs face neighbours, this is one pass more general than strictly
required — the same choice GrayScott.jl makes.

As in the paper, exchange happens from CPU-allocated memory: the GPU
path copies faces D2H before and H2D after (accounted by the device's
transfer model), since the study "did not experiment with GPU-aware
MPI" (Section 3.3).
"""

from __future__ import annotations

import numpy as np

from repro.core.domain import FaceSpec
from repro.mpi.cart import CartComm
from repro.mpi.comm import PROC_NULL
from repro.mpi.datatypes import pack, unpack

#: tag space for ghost messages: (axis, direction) -> tag
def _face_tag(axis: int, direction: int) -> int:
    return 100 + axis * 2 + (0 if direction < 0 else 1)


def exchange_ghosts_nonblocking(
    cart: CartComm,
    field: np.ndarray,
    face_specs: dict[tuple[int, int], FaceSpec],
) -> None:
    """Overlapped variant: post all receives, send all faces, then wait.

    Equivalent results to :func:`exchange_ghosts` for the Gray-Scott
    stencil's *face* ghosts, but edge/corner ghost cells are NOT made
    consistent (all six faces are packed from the pre-exchange state,
    so no cross-axis propagation happens). Use the axis-sequential
    blocking variant when a kernel reads edge or corner neighbours;
    use this one to overlap all 12 messages of a face-only stencil.
    """
    requests = []
    for axis in range(3):
        source_down, dest_up = cart.shift(axis, 1)
        if source_down != PROC_NULL:
            requests.append(
                ("recv", axis, -1, cart.irecv(source_down, _face_tag(axis, +1)))
            )
        if dest_up != PROC_NULL:
            requests.append(
                ("recv", axis, +1, cart.irecv(dest_up, _face_tag(axis, -1)))
            )
    for axis in range(3):
        source_down, dest_up = cart.shift(axis, 1)
        low = face_specs[(axis, -1)]
        high = face_specs[(axis, +1)]
        if dest_up != PROC_NULL:
            cart.isend(
                pack(field, high.datatype, offset_elements=high.send_offset),
                dest_up,
                _face_tag(axis, +1),
            )
        if source_down != PROC_NULL:
            cart.isend(
                pack(field, low.datatype, offset_elements=low.send_offset),
                source_down,
                _face_tag(axis, -1),
            )
    for kind, axis, direction, request in requests:
        msg = request.wait(cart.job.timeout)
        spec = face_specs[(axis, direction)]
        unpack(field, spec.datatype, msg.payload, offset_elements=spec.recv_offset)


def exchange_ghosts(
    cart: CartComm,
    field: np.ndarray,
    face_specs: dict[tuple[int, int], FaceSpec],
) -> None:
    """One full ghost exchange of ``field`` on the Cartesian communicator.

    Handles self-neighbours (periodic axes of extent 1 or 2) because
    sends are buffered: both messages are en route before either receive
    posts.
    """
    for axis in range(3):
        source_down, dest_up = cart.shift(axis, 1)
        low = face_specs[(axis, -1)]
        high = face_specs[(axis, +1)]

        # send my high interior layer up; it becomes the upper
        # neighbour's low ghost layer (and vice versa)
        if dest_up != PROC_NULL:
            cart.send(
                pack(field, high.datatype, offset_elements=high.send_offset),
                dest_up,
                _face_tag(axis, +1),
            )
        if source_down != PROC_NULL:
            cart.send(
                pack(field, low.datatype, offset_elements=low.send_offset),
                source_down,
                _face_tag(axis, -1),
            )
        if source_down != PROC_NULL:
            wire, _ = cart.recv(source_down, _face_tag(axis, +1))
            unpack(field, low.datatype, wire, offset_elements=low.recv_offset)
        if dest_up != PROC_NULL:
            wire, _ = cart.recv(dest_up, _face_tag(axis, -1))
            unpack(field, high.datatype, wire, offset_elements=high.recv_offset)
