"""In-situ diagnostics: global statistics without touching the disk.

Large campaigns cannot afford to write every step (the paper:
"drastically reducing the frequency of writes to the parallel file
system is often required", Section 3.4) — so monitoring happens
in-situ: each step, ranks reduce a handful of scalars and keep the time
series in memory. :class:`InSituMonitor` plugs into
``Simulation.run(on_step=...)`` and produces the series an analyst
would otherwise compute after the fact.

Parallel-correctness guarantee (tested): the series computed by an
8-rank run equals the serial run's, because every statistic is an
exact global reduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.simulation import Simulation
from repro.util.errors import ConfigError


@dataclass
class StepStats:
    """Global statistics of one field at one step."""

    step: int
    vmin: float
    vmax: float
    mean: float
    l2: float  # sqrt of the global sum of squares / cells

    def as_tuple(self) -> tuple:
        return (self.step, self.vmin, self.vmax, self.mean, self.l2)


class InSituMonitor:
    """Accumulates per-step global statistics of U and V.

    Usage::

        monitor = InSituMonitor(every=5)
        sim.run(100, on_step=monitor)
        series = monitor.series("V")
    """

    def __init__(self, *, every: int = 1, fields: tuple[str, ...] = ("u", "v")):
        if every <= 0:
            raise ConfigError(f"'every' must be positive, got {every}")
        bad = [f for f in fields if f not in ("u", "v")]
        if bad:
            raise ConfigError(f"unknown fields {bad}; monitor supports 'u'/'v'")
        self.every = every
        self.fields = fields
        self._series: dict[str, list[StepStats]] = {f: [] for f in fields}

    def __call__(self, sim: Simulation) -> None:
        if sim.step_count % self.every != 0:
            return
        for name in self.fields:
            self._series[name].append(self._global_stats(sim, name))

    def _global_stats(self, sim: Simulation, which: str) -> StepStats:
        data = sim.interior(which)
        cells = int(np.prod(sim.settings.shape))
        local = (
            float(data.min()),
            float(data.max()),
            float(data.sum()),
            float((data.astype(np.float64) ** 2).sum()),
        )
        if sim.cart is None:
            vmin, vmax, total, sq = local
        else:
            vmin = sim.cart.allreduce(local[0], "min")
            vmax = sim.cart.allreduce(local[1], "max")
            total = sim.cart.allreduce(local[2], "sum")
            sq = sim.cart.allreduce(local[3], "sum")
        return StepStats(
            step=sim.step_count,
            vmin=vmin,
            vmax=vmax,
            mean=total / cells,
            l2=float(np.sqrt(sq / cells)),
        )

    def series(self, which: str = "v") -> list[StepStats]:
        which = which.lower()
        if which not in self._series:
            raise ConfigError(f"monitor did not track field {which!r}")
        return list(self._series[which])

    def as_arrays(self, which: str = "v") -> dict[str, np.ndarray]:
        series = self.series(which)
        return {
            "step": np.array([s.step for s in series]),
            "min": np.array([s.vmin for s in series]),
            "max": np.array([s.vmax for s in series]),
            "mean": np.array([s.mean for s in series]),
            "l2": np.array([s.l2 for s in series]),
        }

    def render(self, which: str = "v") -> str:
        from repro.util.tables import Table

        table = Table(
            ["step", "min", "max", "mean", "L2"],
            title=f"in-situ series of {which.upper()}",
        )
        for s in self.series(which):
            table.add_row([s.step, s.vmin, s.vmax, s.mean, s.l2])
        return table.render()
