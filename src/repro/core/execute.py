"""Engine layer: canonical job specs and presentation-free execution.

This module is the execution half of the engine/presentation split:

- :class:`JobSpec` — *what to run*: a settings object plus a run mode
  (real workflow, simulated-MPI SPMD via ``settings.ranks``, or the
  event-driven virtual SPMD mode) with a **canonical content hash**.
  Two specs hash identically exactly when they describe the same run,
  regardless of settings-file field order or serialization round
  trips — the hash is the cache key of :mod:`repro.serve`.
- :class:`RunResult` — *what happened*: the workflow report or virtual
  result as plain picklable data, with no rendering attached.
- :func:`execute_job` — the one execution path. The CLI, campaigns,
  and the service all call it; tables, provenance files, and trace
  export live in :mod:`repro.core.present` and the callers.

Because a :class:`RunResult` crosses process boundaries unchanged (it
rides :mod:`repro.par`'s shm/pickle transport), a service worker pool
can compute it remotely and the front end can present it — or store it
— without ever touching the solver.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace

from repro.core.settings import GrayScottSettings
from repro.util.errors import ConfigError

#: run modes understood by :func:`execute_job`
MODES = ("workflow", "virtual")


@dataclass(frozen=True)
class JobSpec:
    """One executable run request with a canonical identity.

    ``mode="workflow"`` executes the real solver (serial, or simulated
    MPI when ``settings.ranks > 1``); ``mode="virtual"`` runs
    ``virtual_ranks`` modeled ranks on the discrete-event engine.
    """

    settings: GrayScottSettings
    mode: str = "workflow"
    #: run the analysis stage after the solve (workflow mode)
    analyze: bool = True
    #: resume from ``settings.checkpoint`` (workflow mode)
    resume: bool = False
    #: modeled ranks (virtual mode; >= 1)
    virtual_ranks: int = 0
    #: virtual mode: nonblocking halo + BP5 async drain
    overlap: bool = False
    #: virtual mode: ranks queue on the node's 4 shared NICs
    nic_contention: bool = False

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ConfigError(
                f"job mode must be one of {'|'.join(MODES)} "
                f"(got {self.mode!r})"
            )
        if self.mode == "virtual" and self.virtual_ranks < 1:
            raise ConfigError(
                "virtual jobs need virtual_ranks >= 1 "
                f"(got {self.virtual_ranks})"
            )
        if self.mode == "workflow" and self.virtual_ranks:
            raise ConfigError("virtual_ranks requires mode='virtual'")

    # -- canonical identity -------------------------------------------------
    def canonical_json(self) -> str:
        """Canonical serialization of the whole request (sorted, compact)."""
        return json.dumps(
            {
                "settings": json.loads(self.settings.canonical_json()),
                "mode": self.mode,
                "analyze": self.analyze,
                "resume": self.resume,
                "virtual_ranks": self.virtual_ranks,
                "overlap": self.overlap,
                "nic_contention": self.nic_contention,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    def canonical_key(self) -> str:
        """Hex sha256 of :meth:`canonical_json` — the service cache key."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    @property
    def fingerprint(self) -> str:
        """A short display form of :meth:`canonical_key`."""
        return self.canonical_key()[:12]

    def with_output(self, output: str) -> "JobSpec":
        """The same job writing its dataset elsewhere.

        Used by the service to sandbox each distinct job under its own
        path; note the canonical key *changes* (the output path is part
        of the configuration).
        """
        return replace(self, settings=self.settings.with_overrides(output=output))


@dataclass
class RunResult:
    """Outcome of one executed job — plain data, no presentation.

    Exactly one of ``report`` (workflow mode) / ``virtual`` (virtual
    mode) is set. Everything here pickles, so results cross worker
    process boundaries intact.
    """

    spec: JobSpec
    report: object | None = None
    virtual: object | None = None
    #: wall seconds of the execution as observed by the engine layer
    wall_seconds: float = 0.0
    #: per-section wall timers of the solver (workflow mode, rank 0)
    timings: object | None = None
    metrics: dict = field(default_factory=dict)

    @property
    def mode(self) -> str:
        return self.spec.mode

    @property
    def key(self) -> str:
        return self.spec.canonical_key()

    def render(self) -> str:
        from repro.core import present

        return present.render_result(self)

    def provenance(self) -> dict:
        from repro.core import present

        return present.result_provenance(self)


def execute_job(
    spec: JobSpec,
    *,
    jobs: int = 1,
    tracer=None,
    profiler=None,
    gpu_profiler=None,
    engine: str = "auto",
) -> RunResult:
    """Execute one :class:`JobSpec`; returns the unified result.

    ``jobs`` shards virtual-mode ranks over worker processes (results
    are jobs-invariant, so it is *not* part of the canonical key), and
    ``engine`` picks the virtual execution tier (also jobs-invariant —
    every tier is bit-identical; see docs/SCHEDULER.md).
    ``tracer``/``profiler`` feed virtual mode's engine; workflow mode
    picks up the ambient :func:`repro.observe.trace.active` tracer.
    ``gpu_profiler`` is attached to the simulated device of a workflow
    run (the CLI's rocprof-style ``--trace``).
    """
    from repro.util.timers import WallTimer

    with WallTimer() as timer:
        if spec.mode == "virtual":
            result = _execute_virtual(spec, jobs=jobs, tracer=tracer,
                                      profiler=profiler, engine=engine)
        else:
            result = _execute_workflow(spec, gpu_profiler=gpu_profiler)
    result.wall_seconds = timer.elapsed
    return result


def _execute_virtual(spec: JobSpec, *, jobs, tracer, profiler, engine) -> RunResult:
    from repro.core.virtual import VirtualWorkflow

    workflow = VirtualWorkflow(
        spec.settings,
        nranks=spec.virtual_ranks,
        overlap=spec.overlap,
        nic_contention=spec.nic_contention,
        tracer=tracer,
        profiler=profiler,
        engine=engine,
    )
    return RunResult(spec=spec, virtual=workflow.run(jobs=jobs))


def _execute_workflow(spec: JobSpec, *, gpu_profiler) -> RunResult:
    from repro.core.workflow import Workflow
    from repro.observe import trace as observe

    settings = spec.settings
    nranks = settings.ranks

    def run_one(comm=None):
        workflow = Workflow(settings, comm)
        if gpu_profiler is not None and workflow.sim.device is not None:
            workflow.sim.device.profiler = gpu_profiler
        report = workflow.run(analyze=spec.analyze, resume=spec.resume)
        return report, workflow.sim.wall

    if nranks > 1:
        from repro.mpi.executor import run_spmd

        # rank 0's report carries the analysis + metrics summary
        report, wall = run_spmd(
            run_one, nranks, collect_stats=observe.active() is not None
        )[0]
    else:
        report, wall = run_one()
    return RunResult(
        spec=spec, report=report, timings=wall,
        metrics=dict(report.metrics),
    )
