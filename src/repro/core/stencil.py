"""Gray-Scott stencil kernels (paper Listing 2 and Eqs. 2-3).

Three interchangeable implementations, used at different layers:

- :func:`step_reference` — plain Python loops over interior cells; the
  ground truth for tests (slow, small grids only);
- :func:`step_vectorized` — whole-array NumPy; the CPU production path.
  It performs the *same* floating-point operations in the same order as
  the reference, so the two agree bitwise;
- :func:`make_gray_scott_kernel` / :func:`make_laplacian_kernel` — GPU
  kernels for the simulated device, mirroring the paper's Listing 2:
  scalar per-workitem bodies (with the Listing 2 launch-axis mapping
  x->k, z->i) plus vectorized fast paths.

All fields carry one ghost layer per side (shape ``n + 2`` per axis)
and are Fortran-ordered like Julia arrays. The noise term uses the
counter-based RNG of :mod:`repro.gpu.rand` keyed by *global* cell
coordinates, so results are independent of the domain decomposition and
identical between the scalar and vectorized paths.
"""

from __future__ import annotations

import numpy as np

from repro.core.params import GrayScottParams
from repro.gpu.kernel import Kernel, KernelContext
from repro.gpu.rand import counter_uniform, uniform_field
from repro.util.errors import ConfigError

ONE_SIXTH = 1.0 / 6.0


def check_ghosted(field: np.ndarray, name: str = "field") -> None:
    """Validate a ghosted local field (3D, >= 3 cells/axis, F-order)."""
    if field.ndim != 3:
        raise ConfigError(f"{name} must be 3D, got shape {field.shape}")
    if any(s < 3 for s in field.shape):
        raise ConfigError(
            f"{name} of shape {field.shape} too small for one ghost layer per side"
        )
    if not field.flags.f_contiguous:
        raise ConfigError(f"{name} must be Fortran-ordered (column-major, like Julia)")


def laplacian_at(var, i: int, j: int, k: int):
    """The paper's ``_laplacian``: normalized 7-point operator (Eq. 3)."""
    l = (
        var[i - 1, j, k]
        + var[i + 1, j, k]
        + var[i, j - 1, k]
        + var[i, j + 1, k]
        + var[i, j, k - 1]
        + var[i, j, k + 1]
        - 6.0 * var[i, j, k]
    )
    return l * ONE_SIXTH


def laplacian_field(var: np.ndarray) -> np.ndarray:
    """Vectorized Eq. 3 over the interior of a ghosted field.

    Term order matches :func:`laplacian_at` exactly (bitwise parity).
    """
    c = var[1:-1, 1:-1, 1:-1]
    l = (
        var[:-2, 1:-1, 1:-1]
        + var[2:, 1:-1, 1:-1]
        + var[1:-1, :-2, 1:-1]
        + var[1:-1, 2:, 1:-1]
        + var[1:-1, 1:-1, :-2]
        + var[1:-1, 1:-1, 2:]
        - 6.0 * c
    )
    return l * ONE_SIXTH


def step_reference(
    u: np.ndarray,
    v: np.ndarray,
    u_new: np.ndarray,
    v_new: np.ndarray,
    params: GrayScottParams,
    *,
    seed: int,
    step: int,
    global_start: tuple[int, int, int] = (0, 0, 0),
) -> None:
    """Ground-truth interior update by explicit loops (Eqs. 2a/2b).

    ``global_start`` is the global coordinate of the first *interior*
    cell of this subdomain; it keys the decomposition-invariant noise.
    """
    check_ghosted(u, "u")
    for name, arr in (("v", v), ("u_new", u_new), ("v_new", v_new)):
        if arr.shape != u.shape:
            raise ConfigError(f"{name} shape {arr.shape} != u shape {u.shape}")
    Du, Dv, F, K = params.Du, params.Dv, params.F, params.k
    noise, dt = params.noise, params.dt
    g0, g1, g2 = global_start
    n0, n1, n2 = u.shape
    # arithmetic is float64 regardless of storage precision; the single
    # rounding happens at the store (same contract as step_vectorized)
    u = u.astype(np.float64, copy=False)
    v = v.astype(np.float64, copy=False)
    for k in range(1, n2 - 1):
        for j in range(1, n1 - 1):
            for i in range(1, n0 - 1):
                u_ijk = u[i, j, k]
                v_ijk = v[i, j, k]
                r = counter_uniform(
                    seed, step, i - 1 + g0, j - 1 + g1, k - 1 + g2
                )
                du = (
                    Du * laplacian_at(u, i, j, k)
                    - u_ijk * (v_ijk * v_ijk)
                    + F * (1.0 - u_ijk)
                    + noise * r
                )
                dv = (
                    Dv * laplacian_at(v, i, j, k)
                    + u_ijk * (v_ijk * v_ijk)
                    - (F + K) * v_ijk
                )
                u_new[i, j, k] = u_ijk + du * dt
                v_new[i, j, k] = v_ijk + dv * dt


def step_vectorized(
    u: np.ndarray,
    v: np.ndarray,
    u_new: np.ndarray,
    v_new: np.ndarray,
    params: GrayScottParams,
    *,
    seed: int,
    step: int,
    global_start: tuple[int, int, int] = (0, 0, 0),
) -> None:
    """Whole-array interior update; bitwise-matches :func:`step_reference`."""
    check_ghosted(u, "u")
    Du, Dv, F, K = params.Du, params.Dv, params.F, params.k
    noise, dt = params.noise, params.dt
    interior = tuple(s - 2 for s in u.shape)

    # arithmetic in float64 (one rounding, at the store below) so
    # float32 runs agree bitwise with the scalar reference
    u64 = u.astype(np.float64, copy=False)
    v64 = v.astype(np.float64, copy=False)
    uc = u64[1:-1, 1:-1, 1:-1]
    vc = v64[1:-1, 1:-1, 1:-1]
    r = uniform_field(seed, step, interior, global_start)
    reaction = uc * (vc * vc)
    du = Du * laplacian_field(u64) - reaction + F * (1.0 - uc) + noise * r
    dv = Dv * laplacian_field(v64) + reaction - (F + K) * vc
    u_new[1:-1, 1:-1, 1:-1] = uc + du * dt
    v_new[1:-1, 1:-1, 1:-1] = vc + dv * dt


# ---------------------------------------------------------------------------
# GPU-simulator kernels (Listing 2)
# ---------------------------------------------------------------------------


def _gs_body(
    ctx: KernelContext,
    u, v, u_temp, v_temp,
    sizes, Du, Dv, F, K, noise, dt,
    seed, step, g0, g1, g2,
):
    """Scalar body of the application kernel, as in Listing 2.

    The launch's fastest dimension x maps to the *last* array index k
    (and z to the first index i), the paper's AMDGPU.jl mapping.
    """
    x, y, z = ctx.global_idx()
    k, j, i = x, y, z
    if (
        k == 0 or k >= sizes[2] - 1
        or j == 0 or j >= sizes[1] - 1
        or i == 0 or i >= sizes[0] - 1
    ):
        return
    u_ijk = u[i, j, k]
    v_ijk = v[i, j, k]
    r = counter_uniform(seed, step, i - 1 + g0, j - 1 + g1, k - 1 + g2)
    du = (
        Du * laplacian_at(u, i, j, k)
        - u_ijk * (v_ijk * v_ijk)
        + F * (1.0 - u_ijk)
        + noise * r
    )
    dv = (
        Dv * laplacian_at(v, i, j, k)
        + u_ijk * (v_ijk * v_ijk)
        - (F + K) * v_ijk
    )
    u_temp[i, j, k] = u_ijk + du * dt
    v_temp[i, j, k] = v_ijk + dv * dt


def _gs_vectorized(
    extent,
    u, v, u_temp, v_temp,
    sizes, Du, Dv, F, K, noise, dt,
    seed, step, g0, g1, g2,
):
    params = GrayScottParams(Du=Du, Dv=Dv, F=F, k=K, noise=noise, dt=dt)
    step_vectorized(
        u, v, u_temp, v_temp, params,
        seed=seed, step=step, global_start=(g0, g1, g2),
    )


def make_gray_scott_kernel() -> Kernel:
    """The 2-variable application kernel (Table 2/3 'application')."""
    return Kernel(
        "_kernel_gray_scott",
        _gs_body,
        vectorized=_gs_vectorized,
        uses_rand=True,
        flops_per_workitem=33,
    )


def _lap_body(ctx: KernelContext, var, var_temp, sizes, D, dt):
    """1-variable diffusion kernel, no randomness (Table 2/3 middle column)."""
    x, y, z = ctx.global_idx()
    k, j, i = x, y, z
    if (
        k == 0 or k >= sizes[2] - 1
        or j == 0 or j >= sizes[1] - 1
        or i == 0 or i >= sizes[0] - 1
    ):
        return
    var_temp[i, j, k] = var[i, j, k] + D * laplacian_at(var, i, j, k) * dt


def _lap_vectorized(extent, var, var_temp, sizes, D, dt):
    c = var[1:-1, 1:-1, 1:-1]
    var_temp[1:-1, 1:-1, 1:-1] = c + D * laplacian_field(var) * dt


def make_laplacian_kernel() -> Kernel:
    """The 1-variable no-random diagnostic kernel."""
    return Kernel(
        "_kernel_laplacian_1var",
        _lap_body,
        vectorized=_lap_vectorized,
        uses_rand=False,
        flops_per_workitem=10,
    )


def kernel_args(
    u, v, u_temp, v_temp,
    params: GrayScottParams,
    *,
    seed: int,
    step: int,
    global_start: tuple[int, int, int] = (0, 0, 0),
) -> tuple:
    """Assemble the Listing 2 argument tuple for the application kernel."""
    shape = getattr(u, "shape")
    return (
        u, v, u_temp, v_temp,
        tuple(shape),
        params.Du, params.Dv, params.F, params.k, params.noise, params.dt,
        seed, step, *global_start,
    )
