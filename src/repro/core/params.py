"""Physical parameters of the Gray-Scott model (paper Eqs. 1a/1b).

The model couples two concentrations U and V:

    dU/dt = Du * lap(U) - U V^2 + F (1 - U) + n r
    dV/dt = Dv * lap(V) + U V^2 - (F + k) V

with diffusion rates Du, Dv, feed rate F, kill rate k, noise magnitude
n, and r ~ Uniform(-1, 1) per cell per step. The defaults are the
values of the paper's provenance record (Listing 1): Du=0.2, Dv=0.1,
F=0.02, k=0.048, noise=0.1, dt=1.

``PEARSON_REGIMES`` collects classic (F, k) pairs from Pearson (1993),
Science 261:5118 — the paper's reference [33] — used by the pattern
gallery example.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.errors import ConfigError


@dataclass(frozen=True)
class GrayScottParams:
    """Inputs of Eqs. (1a)/(1b), with the paper's Listing 1 defaults."""

    Du: float = 0.2
    Dv: float = 0.1
    F: float = 0.02
    k: float = 0.048
    noise: float = 0.1
    dt: float = 1.0

    def __post_init__(self) -> None:
        if self.Du < 0 or self.Dv < 0:
            raise ConfigError(f"diffusion rates must be >= 0 (Du={self.Du}, Dv={self.Dv})")
        if self.F < 0 or self.k < 0:
            raise ConfigError(f"feed/kill rates must be >= 0 (F={self.F}, k={self.k})")
        if self.noise < 0:
            raise ConfigError(f"noise magnitude must be >= 0 ({self.noise})")
        if self.dt <= 0:
            raise ConfigError(f"dt must be > 0 ({self.dt})")
        # Forward-Euler stability for the normalized 7-point Laplacian
        # (eigenvalues in [-2, 0] for lap = -u + mean(neighbours)):
        # dt * max(Du, Dv) * 2 < 2  =>  dt * max(Du, Dv) < 1.
        if self.dt * max(self.Du, self.Dv) >= 1.0:
            raise ConfigError(
                f"unstable time step: dt*max(Du,Dv) = "
                f"{self.dt * max(self.Du, self.Dv):.3f} must be < 1"
            )

    def with_overrides(self, **kwargs) -> "GrayScottParams":
        """A copy with some fields replaced (validated again)."""
        return replace(self, **kwargs)

    def as_attributes(self) -> dict[str, float]:
        """The provenance attributes written to every dataset (Listing 1)."""
        return {
            "Du": self.Du,
            "Dv": self.Dv,
            "F": self.F,
            "k": self.k,
            "noise": self.noise,
            "dt": self.dt,
        }


#: Pearson (1993) pattern regimes: name -> (F, k). Diffusion and dt are
#: the paper's defaults; noise is typically disabled when exploring.
PEARSON_REGIMES: dict[str, tuple[float, float]] = {
    "alpha": (0.010, 0.047),
    "beta": (0.026, 0.051),
    "gamma": (0.022, 0.051),
    "delta": (0.030, 0.055),
    "epsilon": (0.018, 0.055),
    "zeta": (0.025, 0.060),
    "eta": (0.034, 0.063),
    "theta": (0.030, 0.057),
    "iota": (0.046, 0.0594),
    "kappa": (0.050, 0.063),
    "lambda": (0.026, 0.061),
    "mu": (0.058, 0.065),
    "paper": (0.02, 0.048),  # Listing 1's values
}


def regime_params(name: str, **overrides) -> GrayScottParams:
    """Parameters for a named Pearson regime."""
    try:
        F, k = PEARSON_REGIMES[name]
    except KeyError:
        raise ConfigError(
            f"unknown regime {name!r}; available: {sorted(PEARSON_REGIMES)}"
        ) from None
    base = GrayScottParams(F=F, k=k)
    return base.with_overrides(**overrides) if overrides else base
