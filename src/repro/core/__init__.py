"""The Gray-Scott workflow application (the paper's GrayScott.jl).

A 2-variable diffusion-reaction model (Section 3.1, Eqs. 1-3) solved
with forward-Euler time stepping and a 7-point Laplacian stencil on a
periodic 3D grid, decomposed over an MPI Cartesian communicator with
ghost-cell face exchange (Section 3.3), writing ADIOS2-style output
with visualization schema attributes (Section 3.4), and composed into
an end-to-end workflow with FAIR provenance.

Layers:

- :mod:`repro.core.params` / :mod:`repro.core.settings` — physics
  parameters and the JSON settings files of the paper's artifact;
- :mod:`repro.core.stencil` — the kernels (reference loops, vectorized
  NumPy, and GPU-simulator kernels mirroring Listing 2);
- :mod:`repro.core.domain` — Cartesian decomposition, ghost geometry,
  and the per-face ``MPI_Type_vector`` datatypes;
- :mod:`repro.core.exchange` — the Listing 3 ghost exchange;
- :mod:`repro.core.simulation` — the time-stepping driver;
- :mod:`repro.core.writer` — ADIOS2-style output with provenance;
- :mod:`repro.core.restart` — checkpoint/restore;
- :mod:`repro.core.workflow` — simulate -> write -> analyze composition.
"""

from repro.core.campaign import Campaign, CampaignResult
from repro.core.execute import JobSpec, RunResult, execute_job
from repro.core.params import GrayScottParams, PEARSON_REGIMES
from repro.core.pipeline import Pipeline, PipelineRun
from repro.core.settings import GrayScottSettings
from repro.core.simulation import Simulation
from repro.core.workflow import Workflow, WorkflowReport

__all__ = [
    "Campaign",
    "CampaignResult",
    "JobSpec",
    "RunResult",
    "execute_job",
    "Pipeline",
    "PipelineRun",
    "GrayScottParams",
    "PEARSON_REGIMES",
    "GrayScottSettings",
    "Simulation",
    "Workflow",
    "WorkflowReport",
]
