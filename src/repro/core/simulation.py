"""The Gray-Scott time-stepping driver.

One :class:`Simulation` instance is one rank's view of the run: its
local ghosted fields, its Cartesian neighbourhood, and (in GPU mode)
its simulated GCD. Construction is collective when a communicator is
passed; serial runs pass ``comm=None``.

Backends (``settings.backend``):

- ``"cpu"`` — vectorized NumPy stepping;
- ``"julia"`` / ``"hip"`` — the simulated-GPU path: the same update
  runs through :class:`repro.gpu.memory.Device` kernel launches, which
  also produces modeled kernel timings, rocprof counters, and JIT
  compile events. Fields live in host memory shared with the device
  wrapper (the *timing* of H2D/D2H face staging is modeled, matching
  the paper's host-memory MPI exchanges).

Determinism: the noise field is keyed by (seed, step, global cell), so
any decomposition and any backend produce bitwise-identical fields.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from repro.core.domain import LocalDomain, mirror_ghosts, serial_wrap_ghosts
from repro.core.exchange import exchange_ghosts
from repro.core.params import GrayScottParams
from repro.core.settings import GrayScottSettings
from repro.core.stencil import (
    kernel_args,
    make_gray_scott_kernel,
    step_vectorized,
)
from repro.gpu.kernel import LaunchConfig
from repro.gpu.memory import Device, DeviceArray
from repro.gpu.rocprof import Profiler
from repro.mpi.cart import CartComm, dims_create
from repro.mpi.comm import Comm
from repro.observe import trace as observe
from repro.util.errors import ConfigError
from repro.util.timers import Stopwatch


@dataclass
class StepTimings:
    """Modeled per-section simulated time (GPU mode only)."""

    kernel_seconds: float = 0.0
    transfer_seconds: float = 0.0
    compile_seconds: float = 0.0


class Simulation:
    """One rank's Gray-Scott solver instance."""

    def __init__(
        self,
        settings: GrayScottSettings,
        comm: Comm | None = None,
        *,
        cart_dims: tuple[int, int, int] | None = None,
        profiler: Profiler | None = None,
    ):
        self.settings = settings
        self.params: GrayScottParams = settings.params()
        self.seed = settings.seed
        self.dtype = np.dtype(settings.precision)
        self.step_count = 0
        #: real wall time per section ("exchange", "compute"), this rank
        self.wall = Stopwatch()

        # --- decomposition -------------------------------------------------
        periodic = settings.boundary == "periodic"
        if comm is not None:
            dims = cart_dims or dims_create(comm.size, 3)
            self.cart: CartComm | None = comm.create_cart(
                dims, periods=(periodic,) * 3
            )
            coords = self.cart.coords()
        else:
            dims = cart_dims or (1, 1, 1)
            if any(d != 1 for d in dims):
                raise ConfigError(f"serial run cannot use cart dims {dims}")
            self.cart = None
            coords = (0, 0, 0)
        self.domain = LocalDomain.for_coords(settings.shape, dims, coords)
        self.face_specs = self.domain.face_specs(self.dtype)

        # --- fields ----------------------------------------------------------
        self.u = self.domain.allocate_field(self.dtype)
        self.v = self.domain.allocate_field(self.dtype)
        self.u_new = self.domain.allocate_field(self.dtype)
        self.v_new = self.domain.allocate_field(self.dtype)

        # --- backend ----------------------------------------------------------
        self.backend = settings.backend
        self.device: Device | None = None
        self._kernel = None
        self._dargs: tuple[DeviceArray, ...] | None = None
        if self.backend != "cpu":
            if self.dtype != np.float64:
                raise ConfigError(
                    "the simulated GPU backends compute in float64 (as the "
                    "paper's kernels do); use precision='float64' or "
                    "backend='cpu'"
                )
            name = f"gcd{comm.rank if comm else 0}"
            self.device = Device(name=name, backend=self.backend, profiler=profiler)
            self._kernel = make_gray_scott_kernel()
            self._wrap_device_fields()

        self.initialize()

    # ------------------------------------------------------------------
    @classmethod
    def from_settings(
        cls, settings: GrayScottSettings, comm: Comm | None = None, **kwargs
    ) -> "Simulation":
        return cls(settings, comm, **kwargs)

    def _wrap_device_fields(self) -> None:
        assert self.device is not None
        self._dfields = {
            "u": DeviceArray(self.device, self.u, "u"),
            "v": DeviceArray(self.device, self.v, "v"),
            "u_new": DeviceArray(self.device, self.u_new, "u_temp"),
            "v_new": DeviceArray(self.device, self.v_new, "v_temp"),
        }

    # ------------------------------------------------------------------
    # initial condition
    # ------------------------------------------------------------------
    def initialize(self) -> None:
        """GrayScott.jl's initial condition: U=1, V=0 everywhere except a
        centred seed box of extent L/8 per axis where (U, V) = (0.25, 0.33).

        Computed from global coordinates, so every decomposition
        produces the same global state.
        """
        self.step_count = 0
        self.u[...] = 1.0
        self.v[...] = 0.0
        L = self.settings.shape
        half = [max(n // 16, 1) for n in L]
        lo = [n // 2 - h for n, h in zip(L, half)]
        hi = [n // 2 + h for n, h in zip(L, half)]
        # intersect the global seed box with this rank's interior
        for field, value in ((self.u, 0.25), (self.v, 0.33)):
            slices = []
            empty = False
            for axis in range(3):
                a = max(lo[axis], self.domain.start[axis])
                b = min(hi[axis], self.domain.start[axis] + self.domain.count[axis])
                if a >= b:
                    empty = True
                    break
                # +1 converts interior-global to ghosted-local indices
                slices.append(
                    slice(a - self.domain.start[axis] + 1, b - self.domain.start[axis] + 1)
                )
            if not empty:
                field[tuple(slices)] = value
        self.exchange()

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def exchange(self) -> None:
        """Refresh ghost layers of both fields (periodic).

        On the GPU backends the exchange is staged through host memory
        (the paper did not use GPU-aware MPI, Section 3.3), so the face
        D2H/H2D copies are charged to the device either way.
        """
        if self.device is not None:
            self._record_face_staging("D2H")
        periodic = self.settings.boundary == "periodic"
        if self.cart is None:
            for field in (self.u, self.v):
                if periodic:
                    serial_wrap_ghosts(field)
                else:
                    mirror_ghosts(field)
        else:
            from repro.core.exchange import exchange_ghosts_nonblocking

            do_exchange = (
                exchange_ghosts_nonblocking
                if self.settings.exchange == "overlapped"
                else exchange_ghosts
            )
            do_exchange(self.cart, self.u, self.face_specs)
            do_exchange(self.cart, self.v, self.face_specs)
            if not periodic:
                # faces on the global boundary got no message
                # (PROC_NULL); zero-flux walls mirror locally instead
                sides = self._global_boundary_faces()
                if sides:
                    mirror_ghosts(self.u, sides=sides)
                    mirror_ghosts(self.v, sides=sides)
        if self.device is not None:
            self._record_face_staging("H2D")

    def _global_boundary_faces(self) -> set[tuple[int, int]]:
        coords = self.domain.coords
        dims = self.domain.cart_dims
        sides: set[tuple[int, int]] = set()
        for axis in range(3):
            if coords[axis] == 0:
                sides.add((axis, -1))
            if coords[axis] == dims[axis] - 1:
                sides.add((axis, +1))
        return sides

    def _record_face_staging(self, kind: str) -> None:
        """Model the GPU<->CPU copies around a host-memory MPI exchange."""
        assert self.device is not None
        m0, m1, m2 = self.domain.ghosted_shape
        itemsize = self.dtype.itemsize
        face_bytes = 2 * (m1 * m2 + m0 * m2 + m0 * m1) * itemsize  # 6 faces
        self.device.record_transfer(kind, 2 * face_bytes)  # both variables

    def _observe_span(self, name: str) -> "nullcontext | object":
        """A wall-clock tracer span on this rank's core lane (or a no-op)."""
        tracer = observe.active()
        if tracer is None:
            return nullcontext()
        rank = self.cart.rank if self.cart is not None else 0
        return tracer.span(
            name,
            cat="core",
            process=f"rank{rank}",
            thread="core",
            args={"step": self.step_count},
        )

    def step(self) -> None:
        """Advance one time step (exchange + stencil update + swap)."""
        with self.wall.section("exchange"), self._observe_span("step.exchange"):
            self.exchange()
        with self.wall.section("compute"), self._observe_span("step.compute"):
            if self.device is None:
                step_vectorized(
                    self.u, self.v, self.u_new, self.v_new, self.params,
                    seed=self.seed, step=self.step_count,
                    global_start=self.domain.start,
                )
            else:
                self._launch_gpu_step()
        self.u, self.u_new = self.u_new, self.u
        self.v, self.v_new = self.v_new, self.v
        if self.device is not None:
            self._wrap_device_fields()
        self.step_count += 1
        tracer = observe.active()
        if tracer is not None:
            rank = self.cart.rank if self.cart is not None else 0
            tracer.metrics.counter("core.steps", rank=rank).inc()

    def _launch_gpu_step(self) -> None:
        assert self.device is not None and self._kernel is not None
        m0, m1, m2 = self.domain.ghosted_shape
        wgs = self.device.backend.workgroup_size
        config = LaunchConfig.for_domain((m2, m1, m0), (min(wgs, m2), 1, 1))
        d = self._dfields
        args = kernel_args(
            d["u"], d["v"], d["u_new"], d["v_new"], self.params,
            seed=self.seed, step=self.step_count,
            global_start=self.domain.start,
        )
        self.device.launch(self._kernel, config.grid, config.workgroup, args)

    def run(self, steps: int | None = None, *, on_step=None) -> None:
        """Run ``steps`` steps (default: settings.steps), with a hook.

        ``on_step(sim)`` is invoked after every step; output/checkpoint
        policy lives in :mod:`repro.core.workflow`.
        """
        total = steps if steps is not None else self.settings.steps
        for _ in range(total):
            self.step()
            if on_step is not None:
                on_step(self)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def interior(self, which: str = "u") -> np.ndarray:
        field = {"u": self.u, "v": self.v}[which]
        return self.domain.interior(field)

    def local_minmax(self, which: str = "u") -> tuple[float, float]:
        data = self.interior(which)
        return float(data.min()), float(data.max())

    def global_minmax(self, which: str = "u") -> tuple[float, float]:
        lo, hi = self.local_minmax(which)
        if self.cart is None:
            return lo, hi
        return (
            self.cart.allreduce(lo, "min"),
            self.cart.allreduce(hi, "max"),
        )

    def global_mean(self, which: str = "u") -> float:
        data = self.interior(which)
        local_sum = float(data.sum())
        cells = int(np.prod(self.settings.shape))
        if self.cart is None:
            return local_sum / cells
        return self.cart.allreduce(local_sum, "sum") / cells

    def gather_global(self, which: str = "u") -> np.ndarray | None:
        """Assemble the full global field on rank 0 (None elsewhere)."""
        interior = np.asfortranarray(self.interior(which))
        if self.cart is None:
            return interior.copy(order="F")
        pieces = self.cart.gather((self.domain.global_slices(), interior), root=0)
        if self.cart.rank != 0:
            return None
        out = np.zeros(self.settings.shape, dtype=self.dtype, order="F")
        for slices, block in pieces:
            out[slices] = block
        return out

    def timings(self) -> StepTimings:
        """Modeled device-time breakdown (zeros for the CPU backend)."""
        if self.device is None or self.device.profiler is None:
            return StepTimings()
        t = StepTimings()
        for event in self.device.profiler.events:
            if event.device != self.device.name:
                continue
            if event.kind == "kernel":
                t.kernel_seconds += event.seconds
            elif event.kind == "copy":
                t.transfer_seconds += event.seconds
            elif event.kind == "compile":
                t.compile_seconds += event.seconds
        return t
