"""Variables, attributes, and block metadata.

A :class:`Variable` mirrors ADIOS2's: a name, a dtype, a *global* shape,
and a per-rank (start, count) selection describing the block this rank
contributes. Scalars have an empty shape. An :class:`Attribute` is a
named constant recorded once (the paper's provenance record in
Listing 1 is attributes: Du, Dv, F, k, noise, dt, plus the
visualization schemas). A :class:`BlockInfo` is the metadata of one
written block: placement in the global array, byte location in a
subfile, min/max statistics, and a CRC for corruption detection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import VariableError

_DTYPE_NAMES = {
    "float64": "double",
    "float32": "float",
    "int32": "int32_t",
    "int64": "int64_t",
    "uint64": "uint64_t",
}


def dtype_display_name(dtype: np.dtype) -> str:
    """The C-style dtype names bpls prints (Listing 1)."""
    return _DTYPE_NAMES.get(np.dtype(dtype).name, np.dtype(dtype).name)


class Variable:
    """A variable definition within an IO group."""

    def __init__(
        self,
        name: str,
        dtype,
        shape: tuple[int, ...] = (),
        start: tuple[int, ...] = (),
        count: tuple[int, ...] = (),
    ):
        if not name:
            raise VariableError("variable name must be non-empty")
        self.name = name
        self.dtype = np.dtype(dtype)
        self.shape = tuple(int(s) for s in shape)
        self._start: tuple[int, ...] = ()
        self._count: tuple[int, ...] = ()
        #: (codec, params) from add_operation(); None = store raw
        self.operation: tuple[str, dict] | None = None
        if self.shape:
            if any(s <= 0 for s in self.shape):
                raise VariableError(f"{name}: global shape must be positive: {shape}")
            self.set_selection(start or (0,) * len(self.shape), count or self.shape)

    @property
    def is_scalar(self) -> bool:
        return not self.shape

    @property
    def start(self) -> tuple[int, ...]:
        return self._start

    @property
    def count(self) -> tuple[int, ...]:
        return self._count

    def set_selection(self, start, count) -> None:
        """Set this rank's block within the global array."""
        if self.is_scalar:
            raise VariableError(f"{self.name}: scalars have no selection")
        start = tuple(int(s) for s in start)
        count = tuple(int(c) for c in count)
        if len(start) != len(self.shape) or len(count) != len(self.shape):
            raise VariableError(
                f"{self.name}: selection rank mismatch (shape {self.shape}, "
                f"start {start}, count {count})"
            )
        if any(c <= 0 for c in count):
            raise VariableError(f"{self.name}: counts must be positive: {count}")
        for s, c, n in zip(start, count, self.shape):
            if s < 0 or s + c > n:
                raise VariableError(
                    f"{self.name}: block [{start}, {count}) outside global "
                    f"shape {self.shape}"
                )
        self._start = start
        self._count = count

    def add_operation(self, codec: str, params: dict | None = None) -> None:
        """Attach a compression operator (ADIOS2 ``AddOperation``).

        Supported codecs: ``"zlib"`` (params: ``{"level": 1..9}``).
        Blocks of this variable are stored compressed; the reader
        decompresses transparently.
        """
        from repro.adios.operators import validate_operation

        self.operation = validate_operation(codec, params or {})

    def validate_data(self, data: np.ndarray) -> np.ndarray:
        """Check a put() payload against the selection; returns as array."""
        arr = np.asarray(data, dtype=self.dtype)
        if self.is_scalar:
            if arr.shape not in ((), (1,)):
                raise VariableError(
                    f"{self.name}: scalar variable got array of shape {arr.shape}"
                )
            return arr.reshape(())
        if tuple(arr.shape) != self._count:
            raise VariableError(
                f"{self.name}: put() data shape {arr.shape} does not match "
                f"selection count {self._count}"
            )
        return arr

    def __repr__(self) -> str:  # pragma: no cover
        return f"Variable({self.name!r}, {self.dtype}, shape={self.shape})"


@dataclass(frozen=True)
class Attribute:
    """A named constant stored in the dataset metadata."""

    name: str
    value: object

    def display_value(self) -> str:
        if isinstance(self.value, float):
            return f"{self.value:g}"
        if isinstance(self.value, (list, tuple)):
            return ", ".join(str(v) for v in self.value)
        return str(self.value)

    def dtype_name(self) -> str:
        if isinstance(self.value, bool):
            return "int8_t"
        if isinstance(self.value, int):
            return "int64_t"
        if isinstance(self.value, float):
            return "double"
        if isinstance(self.value, str):
            return "string"
        if isinstance(self.value, (list, tuple)):
            return "string array" if all(isinstance(v, str) for v in self.value) else "double array"
        raise VariableError(f"unsupported attribute type: {type(self.value).__name__}")


@dataclass
class BlockInfo:
    """Metadata of one block written by one rank at one step."""

    var: str
    step: int
    writer_rank: int
    subfile: int
    offset: int
    nbytes: int
    start: tuple[int, ...]
    count: tuple[int, ...]
    vmin: float
    vmax: float
    crc32: int
    #: inline value for scalar blocks (kept out of the data subfiles)
    value: object = None
    #: compression codec applied to the stored bytes (None = raw)
    codec: str | None = None
    #: uncompressed size when a codec is set
    raw_nbytes: int = 0

    def to_json(self) -> dict:
        return {
            "var": self.var,
            "step": self.step,
            "writer_rank": self.writer_rank,
            "subfile": self.subfile,
            "offset": self.offset,
            "nbytes": self.nbytes,
            "start": list(self.start),
            "count": list(self.count),
            "min": self.vmin,
            "max": self.vmax,
            "crc32": self.crc32,
            "value": self.value,
            "codec": self.codec,
            "raw_nbytes": self.raw_nbytes,
        }

    @classmethod
    def from_json(cls, data: dict) -> "BlockInfo":
        return cls(
            var=data["var"],
            step=int(data["step"]),
            writer_rank=int(data["writer_rank"]),
            subfile=int(data["subfile"]),
            offset=int(data["offset"]),
            nbytes=int(data["nbytes"]),
            start=tuple(data["start"]),
            count=tuple(data["count"]),
            vmin=data["min"],
            vmax=data["max"],
            crc32=int(data["crc32"]),
            value=data.get("value"),
            codec=data.get("codec"),
            raw_nbytes=int(data.get("raw_nbytes", 0)),
        )

    def intersection(self, start, count):
        """Overlap of this block with a box selection, or None.

        Returns (global_start, extent) of the overlapping box.
        """
        lo, extent = [], []
        for bs, bc, ss, sc in zip(self.start, self.count, start, count):
            a = max(bs, ss)
            b = min(bs + bc, ss + sc)
            if a >= b:
                return None
            lo.append(a)
            extent.append(b - a)
        return tuple(lo), tuple(extent)
