"""BP5 writer and reader engines.

Writer protocol (mirrors ADIOS2's BP5 aggregation, Section 5.3 of the
paper: "a single sub-file per node"):

1. ranks are partitioned contiguously over ``nsubfiles`` aggregators
   (default: one per 8 ranks — one per Frontier node);
2. at ``end_step`` every rank serializes its deferred puts and sends
   them to its aggregator, which appends them to its data subfile in
   rank order and records block offsets;
3. aggregators forward block metadata to rank 0, which merges it into
   the JSON index and rewrites it atomically — so a dataset is readable
   after every completed step, like real BP5.

The reader is serial (the paper's analysis side is a single Jupyter
kernel): it loads the index once and assembles any box selection of any
step from the intersecting blocks, verifying CRCs.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.adios import bp5
from repro.adios.variable import Attribute, BlockInfo, Variable
from repro.observe import trace as observe
from repro.util.errors import EngineStateError, VariableError

if TYPE_CHECKING:  # pragma: no cover
    from repro.adios.api import IO
    from repro.mpi.comm import Comm

_TAG_BLOCKS = 1
_TAG_META = 2


def _adios_span(rank: int, name: str, **args):
    """Wall-clock tracer span on this rank's adios lane (or a no-op)."""
    tracer = observe.active()
    if tracer is None:
        return nullcontext()
    return tracer.span(
        name, cat="adios", process=f"rank{rank}", thread="adios", args=args
    )


@dataclass
class WriterStats:
    """Mini-scale I/O accounting (used by the real-I/O benchmarks)."""

    steps: int = 0
    put_bytes: int = 0
    wall_seconds_end_step: float = 0.0


class BP5Writer:
    """Step-based parallel writer."""

    def __init__(
        self,
        io: "IO",
        path,
        *,
        comm: "Comm | None" = None,
        mode: str = "w",
        aggregators: int | None = None,
        ranks_per_subfile: int = 8,
    ):
        if mode not in ("w", "a"):
            raise EngineStateError(f"BP5Writer mode must be 'w' or 'a', got {mode!r}")
        self.io = io
        self.path = bp5.dataset_path(path)
        self.comm = comm.dup() if comm is not None else None
        self.rank = comm.rank if comm else 0
        self.size = comm.size if comm else 1
        self.nsubfiles = aggregators or max(1, -(-self.size // ranks_per_subfile))
        if self.nsubfiles > self.size:
            raise EngineStateError(
                f"{self.nsubfiles} aggregators for {self.size} ranks"
            )
        self._subfile = self.rank * self.nsubfiles // self.size
        self._in_step = False
        self._closed = False
        self._step = -1
        self._deferred: list[tuple[Variable, np.ndarray]] = []
        self.stats = WriterStats()

        if self.rank == 0:
            if mode == "w":
                bp5.create_dataset(self.path, self.nsubfiles)
                self._index = bp5.Bp5Index(nsubfiles=self.nsubfiles)
            else:
                self._index = bp5.read_index(self.path)
                if self._index.nsubfiles != self.nsubfiles:
                    raise EngineStateError(
                        f"append with {self.nsubfiles} aggregators onto a "
                        f"dataset written with {self._index.nsubfiles}"
                    )
            self._index.attributes.update(
                {a.name: a for a in self.io.attributes.values()}
            )
        else:
            self._index = None
        if mode == "a":
            # all ranks need the step counter to continue correctly
            nsteps = self._index.nsteps if self.rank == 0 else None
            if self.comm is not None:
                nsteps = self.comm.bcast(nsteps, root=0)
            self._step = nsteps - 1
        if self.comm is not None:
            self.comm.barrier()  # dataset dir exists before anyone proceeds

    # -- aggregation geometry -------------------------------------------
    def _is_aggregator(self) -> bool:
        return self.size == 1 or self.rank == self._aggregator_rank(self._subfile)

    def _aggregator_rank(self, subfile: int) -> int:
        """Lowest rank mapped to ``subfile``."""
        return -(-subfile * self.size // self.nsubfiles)

    def _members(self, subfile: int) -> list[int]:
        return [
            r for r in range(self.size) if r * self.nsubfiles // self.size == subfile
        ]

    # -- step protocol -----------------------------------------------------
    def begin_step(self) -> int:
        if self._closed:
            raise EngineStateError("begin_step on a closed writer")
        if self._in_step:
            raise EngineStateError("begin_step while a step is already open")
        self._in_step = True
        self._step += 1
        self._deferred.clear()
        tracer = observe.active()
        if tracer is not None:
            tracer.instant(
                "begin_step",
                cat="adios",
                clock=observe.WALL,
                process=f"rank{self.rank}",
                thread="adios",
                args={"step": self._step},
            )
        return self._step

    def put(self, variable: Variable | str, data) -> None:
        """Queue one block for this step (sync semantics: data is copied)."""
        if not self._in_step:
            raise EngineStateError("put outside begin_step/end_step")
        if isinstance(variable, str):
            variable = self.io.inquire_variable(variable)
        if variable.name not in self.io.variables:
            raise VariableError(
                f"variable {variable.name!r} was not defined on IO {self.io.name!r}"
            )
        arr = variable.validate_data(data)
        with _adios_span(
            self.rank, "put", var=variable.name, bytes=arr.nbytes
        ):
            # sync semantics: snapshot the data AND the selection now, so a
            # caller may re-select the same variable and put again within
            # one step (one block per selection)
            self._deferred.append(
                (variable, np.array(arr, copy=True, order="F"),
                 variable.start, variable.count)
            )
        self.stats.put_bytes += arr.nbytes
        tracer = observe.active()
        if tracer is not None:
            tracer.metrics.counter("adios.put.bytes", rank=self.rank).inc(
                arr.nbytes
            )

    def end_step(self) -> None:
        if not self._in_step:
            raise EngineStateError("end_step without begin_step")
        with _adios_span(
            self.rank, "end_step", step=self._step, subfile=self._subfile
        ):
            self._end_step_inner()
        tracer = observe.active()
        if tracer is not None:
            tracer.metrics.counter("adios.steps", rank=self.rank).inc()

    def _end_step_inner(self) -> None:
        started = time.perf_counter()
        local_blocks = self._serialize_deferred()
        if self.comm is None:
            written, summaries = self._aggregate_and_write([(0, local_blocks)])
            self._merge_index(written, summaries)
        else:
            aggregator = self._aggregator_rank(self._subfile)
            if self.rank == aggregator:
                incoming = [(self.rank, local_blocks)]
                for member in self._members(self._subfile):
                    if member != self.rank:
                        payload, _ = self.comm.recv(member, _TAG_BLOCKS)
                        incoming.append((member, payload))
                incoming.sort()
                written, summaries = self._aggregate_and_write(incoming)
                if self.rank == 0:
                    merged = list(written)
                    for subfile in range(self.nsubfiles):
                        agg = self._aggregator_rank(subfile)
                        if agg != 0:
                            other, other_summaries = self.comm.recv(agg, _TAG_META)[0]
                            merged.extend(other)
                            summaries.update(other_summaries)
                    self._merge_index(merged, summaries)
                else:
                    self.comm.send((written, summaries), 0, _TAG_META)
            else:
                # block_payload returns zero-copy memoryviews; they must
                # become bytes to cross the (pickling) comm boundary
                for rec in local_blocks:
                    if not isinstance(rec["payload"], bytes):
                        rec["payload"] = bytes(rec["payload"])
                self.comm.send(local_blocks, aggregator, _TAG_BLOCKS)
            self.comm.barrier()  # step is durable before anyone continues
        self._in_step = False
        self.stats.steps += 1
        self.stats.wall_seconds_end_step += time.perf_counter() - started

    def _serialize_deferred(self) -> list[dict]:
        """Turn deferred puts into wire records (metadata + payload)."""
        records = []
        for variable, arr, start, count in self._deferred:
            if variable.is_scalar:
                if self.rank != 0:
                    continue  # one scalar block per step, from rank 0
                records.append(
                    {
                        "var": variable.name,
                        "dtype": variable.dtype.name,
                        "shape": (),
                        "start": (),
                        "count": (),
                        "scalar": arr.item(),
                        "payload": b"",
                        "crc": 0,
                        "min": float(np.real(arr)),
                        "max": float(np.real(arr)),
                    }
                )
                continue
            payload, crc = bp5.block_payload(arr)
            codec = None
            raw_nbytes = 0
            if variable.operation is not None:
                from repro.adios.operators import compress
                import zlib as _zlib

                codec, params = variable.operation
                raw_nbytes = len(payload)
                payload = compress(codec, params, payload)
                crc = _zlib.crc32(payload) & 0xFFFFFFFF
            records.append(
                {
                    "var": variable.name,
                    "dtype": variable.dtype.name,
                    "shape": variable.shape,
                    "start": start,
                    "count": count,
                    "scalar": None,
                    "payload": payload,
                    "crc": crc,
                    "min": float(arr.min()),
                    "max": float(arr.max()),
                    "codec": codec,
                    "raw_nbytes": raw_nbytes,
                }
            )
        return records

    def _aggregate_and_write(self, incoming):
        """Append members' payloads to this aggregator's subfile.

        Returns (blocks, variable summaries) — the summaries travel to
        rank 0 with the block metadata so the index can describe
        variables rank 0 never put locally.
        """
        blocks: list[BlockInfo] = []
        summaries: dict[str, tuple[str, tuple]] = {}
        flushed = sum(
            len(rec["payload"]) for _, records in incoming for rec in records
        )
        with _adios_span(
            self.rank, "subfile.flush", subfile=self._subfile, bytes=flushed
        ):
            # fast path: every data block of the step goes out in one
            # open + one vectored write instead of one open per block
            flat = [
                (writer_rank, rec)
                for writer_rank, records in incoming
                for rec in records
            ]
            data_recs = [
                rec for _, rec in flat
                if rec["scalar"] is None and len(rec["payload"]) > 0
            ]
            offsets = iter(
                bp5.append_blocks(
                    self.path, self._subfile,
                    [rec["payload"] for rec in data_recs],
                )
                if data_recs else ()
            )
            for writer_rank, rec in flat:
                if rec["scalar"] is not None or len(rec["payload"]) == 0:
                    offset = 0
                else:
                    offset = next(offsets)
                summaries[rec["var"]] = (rec["dtype"], tuple(rec["shape"]))
                blocks.append(
                    BlockInfo(
                        var=rec["var"],
                        step=self._step,
                        writer_rank=writer_rank,
                        subfile=self._subfile,
                        offset=offset,
                        nbytes=len(rec["payload"]),
                        start=tuple(rec["start"]),
                        count=tuple(rec["count"]),
                        vmin=rec["min"],
                        vmax=rec["max"],
                        crc32=rec["crc"],
                        value=rec["scalar"],
                        codec=rec.get("codec"),
                        raw_nbytes=rec.get("raw_nbytes", 0),
                    )
                )
        tracer = observe.active()
        if tracer is not None:
            tracer.metrics.counter(
                "adios.subfile.bytes", subfile=self._subfile
            ).inc(flushed)
        return blocks, summaries

    def _merge_index(self, blocks: list[BlockInfo], summaries: dict) -> None:
        assert self._index is not None
        self._index.blocks.extend(blocks)
        self._index.nsteps = self._step + 1
        for block in blocks:
            dtype_name, shape = summaries[block.var]
            entry = self._index.variables.get(block.var)
            if entry is None:
                entry = bp5.VariableIndexEntry(block.var, dtype_name, shape)
                self._index.variables[block.var] = entry
            if block.step not in entry.steps:
                entry.steps.append(block.step)
        self._index.attributes.update({a.name: a for a in self.io.attributes.values()})
        bp5.write_index(self.path, self._index)

    def close(self) -> None:
        if self._closed:
            return
        if self._in_step:
            raise EngineStateError("close() inside an open step; call end_step first")
        if self.rank == 0 and self._index is not None:
            bp5.write_index(self.path, self._index)
        if self.comm is not None:
            self.comm.barrier()
        self._closed = True

    def __enter__(self) -> "BP5Writer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self._closed = True  # don't mask the original error


class BP5Reader:
    """Serial step/selection reader over a finished (or growing) dataset."""

    def __init__(self, io: "IO | None", path, *, verify: bool = True):
        self.io = io
        self.path = bp5.dataset_path(path)
        self.index = bp5.read_index(self.path)
        self.verify = verify

    # -- inventory ---------------------------------------------------------
    @property
    def nsteps(self) -> int:
        return self.index.nsteps

    def variables(self) -> dict[str, bp5.VariableIndexEntry]:
        return dict(self.index.variables)

    @property
    def attributes(self) -> dict[str, Attribute]:
        return dict(self.index.attributes)

    def steps(self, var: str) -> list[int]:
        return list(self._entry(var).steps)

    def minmax(self, var: str) -> tuple[float, float]:
        return self.index.var_minmax(var)

    def blocks(self, var: str, step: int) -> list[BlockInfo]:
        return self.index.blocks_for(var, step)

    def _entry(self, var: str) -> bp5.VariableIndexEntry:
        try:
            return self.index.variables[var]
        except KeyError:
            raise VariableError(
                f"variable {var!r} not in dataset (has: {sorted(self.index.variables)})"
            ) from None

    def _resolve_step(self, var: str, step: int | None) -> int:
        steps = self._entry(var).steps
        if step is None:
            if len(steps) == 1:
                return steps[0]
            raise VariableError(
                f"{var!r} has {len(steps)} steps; pass step= explicitly"
            )
        if step not in steps:
            raise VariableError(f"{var!r} has no step {step} (has {steps})")
        return step

    # -- data --------------------------------------------------------------
    def read(
        self,
        var: str,
        *,
        step: int | None = None,
        start: tuple[int, ...] | None = None,
        count: tuple[int, ...] | None = None,
    ) -> np.ndarray:
        """Assemble a box selection of a global array variable."""
        entry = self._entry(var)
        if not entry.shape:
            raise VariableError(f"{var!r} is a scalar; use read_scalar()")
        step = self._resolve_step(var, step)
        shape = entry.shape
        start = tuple(start) if start is not None else (0,) * len(shape)
        count = tuple(count) if count is not None else shape
        if len(start) != len(shape) or len(count) != len(shape):
            raise VariableError(
                f"selection rank mismatch for {var!r} of shape {shape}"
            )
        for s, c, n in zip(start, count, shape):
            if s < 0 or c <= 0 or s + c > n:
                raise VariableError(
                    f"selection [{start}, {count}) outside {var!r} shape {shape}"
                )
        dtype = np.dtype(self._np_dtype(entry.dtype))
        out = np.zeros(count, dtype=dtype, order="F")
        covered = 0
        for block in self.index.blocks_for(var, step):
            overlap = block.intersection(start, count)
            if overlap is None:
                continue
            olo, oextent = overlap
            data = bp5.read_block(self.path, block, dtype, verify=self.verify)
            src = tuple(
                slice(a - bs, a - bs + e) for a, bs, e in zip(olo, block.start, oextent)
            )
            dst = tuple(
                slice(a - ss, a - ss + e) for a, ss, e in zip(olo, start, oextent)
            )
            out[dst] = data[src]
            covered += int(np.prod(oextent))
        if covered < int(np.prod(count)):
            raise VariableError(
                f"{var!r} step {step}: blocks cover only {covered} of "
                f"{int(np.prod(count))} selected cells"
            )
        return out

    def read_scalar(self, var: str, *, step: int | None = None):
        step = self._resolve_step(var, step)
        blocks = self.index.blocks_for(var, step)
        if not blocks:
            raise VariableError(f"{var!r} has no block at step {step}")
        return blocks[0].value

    def scalar_series(self, var: str) -> list:
        """All step values of a scalar variable, in step order."""
        blocks = sorted(self.index.blocks_for(var), key=lambda b: b.step)
        if not blocks:
            raise VariableError(f"{var!r} has no blocks")
        return [b.value for b in blocks]

    @staticmethod
    def _np_dtype(name: str) -> str:
        return name

    def close(self) -> None:
        pass

    def __enter__(self) -> "BP5Reader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
