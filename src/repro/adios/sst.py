"""In-memory streaming engine (the paper's stated future work).

The paper's conclusion points at "in-memory streaming data pipelines"
(Poeschel et al., reference [34]) as the next step beyond file-based
coupling: the analysis consumes simulation steps while the simulation
runs, without touching the parallel file system. This module is that
engine, modeled on ADIOS2's SST:

- a process-global :class:`SstBroker` plays the role of SST's
  rendezvous: writers register a stream by name, readers connect to it;
- each writer rank pushes one packet per step; the reader's
  ``begin_step`` gathers the packets of all writer ranks for the next
  step (and can assemble any box selection from their blocks);
- a bounded queue provides backpressure: a fast producer blocks once
  ``queue_limit`` steps are in flight, SST's ``QueueLimit`` semantics;
- ``close`` propagates end-of-stream; a reader's ``begin_step`` then
  returns :data:`END_OF_STREAM`.

Functionally real (used by ``examples/streaming_pipeline.py`` and the
streaming tests); there is no performance model here — streaming was
future work in the paper, so there are no numbers to calibrate against.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.util.errors import AdiosError, EngineStateError, VariableError

if TYPE_CHECKING:  # pragma: no cover
    from repro.adios.api import IO
    from repro.mpi.comm import Comm

#: begin_step statuses (mirrors adios2.StepStatus)
OK = "OK"
END_OF_STREAM = "EndOfStream"
TIMEOUT = "Timeout"


class StreamError(AdiosError):
    """Stream rendezvous or protocol failure."""


@dataclass
class _BlockPacket:
    var: str
    dtype: str
    shape: tuple[int, ...]
    start: tuple[int, ...]
    count: tuple[int, ...]
    data: np.ndarray | None  # None for scalars
    value: object = None


@dataclass
class _StepPacket:
    writer_rank: int
    step: int
    blocks: list[_BlockPacket]
    attributes: dict
    eos: bool = False


class _Stream:
    """One named stream: per-writer-rank bounded queues."""

    def __init__(self, name: str, writer_size: int, queue_limit: int):
        self.name = name
        self.writer_size = writer_size
        self.queues = [queue.Queue(maxsize=queue_limit) for _ in range(writer_size)]


class SstBroker:
    """Process-global stream registry (the SST rendezvous point)."""

    _lock = threading.Lock()
    _streams: dict[str, _Stream] = {}
    _waiters = threading.Condition(_lock)

    @classmethod
    def open_stream(cls, name: str, writer_size: int, queue_limit: int) -> _Stream:
        with cls._waiters:
            if name in cls._streams:
                raise StreamError(f"stream {name!r} is already being written")
            stream = _Stream(name, writer_size, queue_limit)
            cls._streams[name] = stream
            cls._waiters.notify_all()
            return stream

    @classmethod
    def connect(cls, name: str, *, timeout: float = 10.0) -> _Stream:
        with cls._waiters:
            if name not in cls._streams:
                cls._waiters.wait_for(lambda: name in cls._streams, timeout=timeout)
            try:
                return cls._streams[name]
            except KeyError:
                raise StreamError(
                    f"no writer opened stream {name!r} within {timeout}s"
                ) from None

    @classmethod
    def release(cls, name: str) -> None:
        with cls._waiters:
            cls._streams.pop(name, None)

    @classmethod
    def reset(cls) -> None:
        """Drop all streams (test isolation)."""
        with cls._waiters:
            cls._streams.clear()


class SSTWriter:
    """Step-streaming producer (one instance per writer rank)."""

    def __init__(
        self,
        io: "IO",
        name: str,
        *,
        comm: "Comm | None" = None,
        queue_limit: int = 4,
    ):
        self.io = io
        self.name = str(name)
        self.comm = comm
        self.rank = comm.rank if comm else 0
        self.size = comm.size if comm else 1
        if self.rank == 0:
            self._stream = SstBroker.open_stream(self.name, self.size, queue_limit)
        if comm is not None:
            comm.barrier()  # stream exists before any rank proceeds
        if self.rank != 0:
            self._stream = SstBroker.connect(self.name)
        self._in_step = False
        self._closed = False
        self._step = -1
        self._deferred: list[_BlockPacket] = []

    def begin_step(self) -> int:
        if self._closed:
            raise EngineStateError("begin_step on a closed SST writer")
        if self._in_step:
            raise EngineStateError("begin_step while a step is already open")
        self._in_step = True
        self._step += 1
        self._deferred.clear()
        return self._step

    def put(self, variable, data) -> None:
        if not self._in_step:
            raise EngineStateError("put outside begin_step/end_step")
        if isinstance(variable, str):
            variable = self.io.inquire_variable(variable)
        arr = variable.validate_data(data)
        if variable.is_scalar:
            self._deferred.append(
                _BlockPacket(
                    var=variable.name, dtype=variable.dtype.name, shape=(),
                    start=(), count=(), data=None, value=arr.item(),
                )
            )
        else:
            self._deferred.append(
                _BlockPacket(
                    var=variable.name,
                    dtype=variable.dtype.name,
                    shape=variable.shape,
                    start=variable.start,
                    count=variable.count,
                    data=np.array(arr, copy=True, order="F"),
                )
            )

    def end_step(self) -> None:
        if not self._in_step:
            raise EngineStateError("end_step without begin_step")
        packet = _StepPacket(
            writer_rank=self.rank,
            step=self._step,
            blocks=list(self._deferred),
            attributes={a.name: a.value for a in self.io.attributes.values()},
        )
        self._stream.queues[self.rank].put(packet)  # blocks on backpressure
        self._in_step = False

    def backlog(self) -> int:
        """Steps this rank has queued that no reader consumed yet.

        ``backlog() >= queue_limit`` means the next ``end_step`` will
        block — a producer that must never stall (e.g. a service
        telemetry feed) can poll this and drop instead.
        """
        return self._stream.queues[self.rank].qsize()

    @property
    def queue_limit(self) -> int:
        return self._stream.queues[self.rank].maxsize

    def close(self) -> None:
        if self._closed:
            return
        if self._in_step:
            raise EngineStateError("close() inside an open step")
        self._stream.queues[self.rank].put(
            _StepPacket(self.rank, self._step + 1, [], {}, eos=True)
        )
        self._closed = True

    def abort(self) -> None:
        """Tear the stream down after an abnormal termination.

        Unlike :meth:`close` this never blocks (a saturated queue is
        drained of one packet to make room for the EOS marker, and the
        broker entry is released immediately), so a writer dying under
        backpressure cannot deadlock its own cleanup. An attached
        reader observes END_OF_STREAM; the stream name is immediately
        reusable by a new writer.
        """
        if not self._closed:
            eos = _StepPacket(self.rank, self._step + 1, [], {}, eos=True)
            rank_queue = self._stream.queues[self.rank]
            while True:
                try:
                    rank_queue.put_nowait(eos)
                    break
                except queue.Full:
                    try:
                        rank_queue.get_nowait()
                    except queue.Empty:  # pragma: no cover - racing reader
                        continue
            self._closed = True
        self._in_step = False
        SstBroker.release(self.name)

    def __enter__(self) -> "SSTWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


class SSTReader:
    """Step-streaming consumer (serial, like the paper's analysis side)."""

    def __init__(self, io: "IO | None", name: str, *, connect_timeout: float = 10.0):
        self.io = io
        self.name = str(name)
        self._stream = SstBroker.connect(self.name, timeout=connect_timeout)
        self._current: list[_StepPacket] | None = None
        self._eos = False
        self.current_step = -1
        self.attributes: dict = {}

    def begin_step(self, *, timeout: float = 30.0) -> str:
        """Gather the next step from every writer rank.

        Returns OK, END_OF_STREAM, or TIMEOUT (adios2.StepStatus style).
        """
        if self._eos:
            return END_OF_STREAM
        if self._current is not None:
            raise EngineStateError("begin_step while a step is already open")
        packets = []
        for rank_queue in self._stream.queues:
            try:
                packets.append(rank_queue.get(timeout=timeout))
            except queue.Empty:
                return TIMEOUT
        if any(p.eos for p in packets):
            self._eos = True
            SstBroker.release(self.name)
            return END_OF_STREAM
        steps = {p.step for p in packets}
        if len(steps) != 1:
            raise StreamError(f"writer ranks diverged: steps {sorted(steps)}")
        self._current = packets
        self.current_step = steps.pop()
        for p in packets:
            self.attributes.update(p.attributes)
        return OK

    def _require_step(self) -> list[_StepPacket]:
        if self._current is None:
            raise EngineStateError("get outside begin_step/end_step")
        return self._current

    def available_variables(self) -> dict[str, tuple[int, ...]]:
        """{name: global shape} of the variables in the current step."""
        out: dict[str, tuple[int, ...]] = {}
        for packet in self._require_step():
            for block in packet.blocks:
                out[block.var] = block.shape
        return out

    def get(
        self,
        var: str,
        *,
        start: tuple[int, ...] | None = None,
        count: tuple[int, ...] | None = None,
    ) -> np.ndarray:
        """Assemble a box selection of the current step's global array."""
        blocks = [
            b for p in self._require_step() for b in p.blocks if b.var == var
        ]
        if not blocks:
            raise VariableError(f"variable {var!r} not in the current step")
        shape = blocks[0].shape
        if not shape:
            raise VariableError(f"{var!r} is a scalar; use get_scalar()")
        start = tuple(start) if start is not None else (0,) * len(shape)
        count = tuple(count) if count is not None else shape
        dtype = np.dtype(blocks[0].dtype)
        out = np.zeros(count, dtype=dtype, order="F")
        for block in blocks:
            lo, extent = [], []
            disjoint = False
            for bs, bc, ss, sc in zip(block.start, block.count, start, count):
                a, b = max(bs, ss), min(bs + bc, ss + sc)
                if a >= b:
                    disjoint = True
                    break
                lo.append(a)
                extent.append(b - a)
            if disjoint:
                continue
            src = tuple(
                slice(a - bs, a - bs + e)
                for a, bs, e in zip(lo, block.start, extent)
            )
            dst = tuple(
                slice(a - ss, a - ss + e) for a, ss, e in zip(lo, start, extent)
            )
            out[dst] = block.data[src]
        return out

    def get_scalar(self, var: str):
        for packet in self._require_step():
            for block in packet.blocks:
                if block.var == var and not block.shape:
                    return block.value
        raise VariableError(f"scalar {var!r} not in the current step")

    def end_step(self) -> None:
        if self._current is None:
            raise EngineStateError("end_step without begin_step")
        self._current = None

    def close(self) -> None:
        self._eos = True

    def __enter__(self) -> "SSTReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
