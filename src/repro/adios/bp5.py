"""The on-disk BP5-style format.

A dataset is a directory ``<name>.bp/`` containing

- ``data.<k>`` — binary subfiles, one per aggregator (one per node in
  the paper's runs), holding concatenated raw blocks in Fortran byte
  order, and
- ``md.idx.json`` — the metadata index: variables, attributes, steps,
  and one :class:`~repro.adios.variable.BlockInfo` per written block
  (subfile + byte offset + global placement + min/max + CRC32).

Real BP5 serializes its index in a binary format; we use JSON (see the
package docstring for why this divergence is acceptable). Everything a
reader needs — random access to any block of any step without scanning
data, per-block statistics for query pushdown, subfile aggregation —
is structurally faithful.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.adios.variable import Attribute, BlockInfo
from repro.util.errors import CorruptFileError
from repro.util.files import atomic_write_text

FORMAT_NAME = "repro-bp5"
FORMAT_VERSION = 1
INDEX_FILE = "md.idx.json"


def dataset_path(path: str | os.PathLike) -> Path:
    """Normalize a dataset path (append .bp if missing)."""
    p = Path(path)
    if p.suffix != ".bp":
        p = p.with_name(p.name + ".bp")
    return p


@dataclass
class VariableIndexEntry:
    """Per-variable summary in the index."""

    name: str
    dtype: str
    shape: tuple[int, ...]
    steps: list[int] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "dtype": self.dtype,
            "shape": list(self.shape),
            "steps": self.steps,
        }

    @classmethod
    def from_json(cls, data: dict) -> "VariableIndexEntry":
        return cls(
            name=data["name"],
            dtype=data["dtype"],
            shape=tuple(data["shape"]),
            steps=list(data["steps"]),
        )


@dataclass
class Bp5Index:
    """The whole metadata index of a dataset."""

    nsteps: int = 0
    nsubfiles: int = 0
    variables: dict[str, VariableIndexEntry] = field(default_factory=dict)
    attributes: dict[str, Attribute] = field(default_factory=dict)
    blocks: list[BlockInfo] = field(default_factory=list)
    engine: str = "BP5"

    def to_json(self) -> dict:
        return {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "engine": self.engine,
            "order": "F",
            "nsteps": self.nsteps,
            "nsubfiles": self.nsubfiles,
            "variables": [v.to_json() for v in self.variables.values()],
            "attributes": {k: _attr_to_json(a) for k, a in self.attributes.items()},
            "blocks": [b.to_json() for b in self.blocks],
        }

    @classmethod
    def from_json(cls, data: dict) -> "Bp5Index":
        if data.get("format") != FORMAT_NAME:
            raise CorruptFileError(
                f"not a {FORMAT_NAME} index (format={data.get('format')!r})"
            )
        if data.get("version") != FORMAT_VERSION:
            raise CorruptFileError(
                f"unsupported index version {data.get('version')!r}"
            )
        index = cls(
            nsteps=int(data["nsteps"]),
            nsubfiles=int(data["nsubfiles"]),
            engine=data.get("engine", "BP5"),
        )
        for ventry in data["variables"]:
            entry = VariableIndexEntry.from_json(ventry)
            index.variables[entry.name] = entry
        for name, araw in data["attributes"].items():
            index.attributes[name] = Attribute(name, _attr_from_json(araw))
        index.blocks = [BlockInfo.from_json(b) for b in data["blocks"]]
        return index

    # -- queries ---------------------------------------------------------
    def blocks_for(self, var: str, step: int | None = None) -> list[BlockInfo]:
        return [
            b
            for b in self.blocks
            if b.var == var and (step is None or b.step == step)
        ]

    def var_minmax(self, var: str) -> tuple[float, float]:
        """Global min/max across all steps and blocks (bpls' Min/Max)."""
        blocks = self.blocks_for(var)
        if not blocks:
            raise CorruptFileError(f"variable {var!r} has no blocks")
        return min(b.vmin for b in blocks), max(b.vmax for b in blocks)


def _attr_to_json(attr: Attribute) -> dict:
    value = attr.value
    if isinstance(value, tuple):
        value = list(value)
    return {"value": value}


def _attr_from_json(raw: dict):
    return raw["value"]


# ---------------------------------------------------------------------------
# on-disk operations
# ---------------------------------------------------------------------------


def create_dataset(path: Path, nsubfiles: int) -> None:
    path.mkdir(parents=True, exist_ok=True)
    for k in range(nsubfiles):
        (path / f"data.{k}").write_bytes(b"")


def write_index(path: Path, index: Bp5Index) -> None:
    # atomic write-then-rename: readers never see a torn index
    atomic_write_text(path / INDEX_FILE, json.dumps(index.to_json(), indent=1))


def read_index(path: str | os.PathLike) -> Bp5Index:
    p = dataset_path(path)
    index_file = p / INDEX_FILE
    if not index_file.exists():
        raise CorruptFileError(f"{p}: missing metadata index {INDEX_FILE}")
    try:
        raw = json.loads(index_file.read_text())
    except json.JSONDecodeError as exc:
        raise CorruptFileError(f"{index_file}: unparseable index: {exc}") from exc
    return Bp5Index.from_json(raw)


def append_block(path: Path, subfile: int, payload) -> int:
    """Append one raw block to a subfile; returns the write offset."""
    target = path / f"data.{subfile}"
    with open(target, "ab") as fh:
        offset = fh.tell()
        fh.write(payload)
    return offset


#: max buffers per writev() call (POSIX guarantees >= 16; Linux: 1024)
_IOV_MAX = min(getattr(os, "sysconf", lambda _: 1024)("SC_IOV_MAX")
               if hasattr(os, "sysconf") else 1024, 1024)


def append_blocks(path: Path, subfile: int, payloads) -> list[int]:
    """Append many blocks to a subfile in one open + one batched write.

    The fast path behind ``BP5Writer.end_step``: instead of re-opening
    the subfile and issuing one ``write()`` per block, the step's
    payloads go out through vectored ``os.writev`` (batched by
    ``IOV_MAX``), so a step is one open/seek plus a handful of
    syscalls regardless of how many blocks the aggregator gathered.
    Payloads may be any bytes-like object — including the zero-copy
    ``memoryview``s from :func:`block_payload`. Returns each block's
    write offset, in input order.
    """
    views = [memoryview(p).cast("B") for p in payloads]
    target = path / f"data.{subfile}"
    offsets: list[int] = []
    with open(target, "ab", buffering=0) as fh:
        offset = fh.seek(0, os.SEEK_END)
        for view in views:
            offsets.append(offset)
            offset += view.nbytes
        pending = [v for v in views if v.nbytes]
        if not hasattr(os, "writev"):  # pragma: no cover - POSIX fallback
            fh.write(b"".join(pending))
            return offsets
        fd = fh.fileno()
        while pending:
            written = os.writev(fd, pending[:_IOV_MAX])
            while pending and written >= pending[0].nbytes:
                written -= pending[0].nbytes
                pending.pop(0)
            if written:  # partial write inside a buffer: re-slice it
                pending[0] = pending[0][written:]
    return offsets


def read_block(path: Path, block: BlockInfo, dtype, *, verify: bool = True) -> np.ndarray:
    """Read one block back as a Fortran-ordered array of ``block.count``."""
    target = path / f"data.{block.subfile}"
    if not target.exists():
        raise CorruptFileError(f"{target}: missing data subfile")
    with open(target, "rb") as fh:
        fh.seek(block.offset)
        payload = fh.read(block.nbytes)
    if len(payload) != block.nbytes:
        raise CorruptFileError(
            f"{target}: truncated block for {block.var} step {block.step} "
            f"(wanted {block.nbytes} B at offset {block.offset}, got {len(payload)})"
        )
    if verify and (zlib.crc32(payload) & 0xFFFFFFFF) != block.crc32:
        raise CorruptFileError(
            f"{target}: CRC mismatch for {block.var} step {block.step} "
            f"block of rank {block.writer_rank}"
        )
    if block.codec is not None:
        from repro.adios.operators import decompress

        payload = decompress(block.codec, {}, payload, block.raw_nbytes)
    flat = np.frombuffer(payload, dtype=dtype)
    return flat.reshape(block.count, order="F")


def block_payload(data: np.ndarray) -> tuple[memoryview, int]:
    """Serialize an array block to (Fortran-order buffer, crc32).

    Returns a **zero-copy** ``memoryview`` whenever the input is already
    Fortran-contiguous (the solver's native layout): the transpose of an
    F-contiguous array is C-contiguous, so casting it to a flat byte
    view walks the array in Fortran byte order without the ``tobytes``
    copy the old path paid per block. Non-contiguous inputs still copy
    once. The view supports everything downstream needs — ``len()``,
    CRC32, compression, ``os.writev`` — but is *not* picklable; callers
    shipping payloads across process or simulated-MPI boundaries must
    take ``bytes(payload)`` first.
    """
    arr = np.asfortranarray(data)
    if arr.ndim == 0:
        payload = memoryview(arr.tobytes()).cast("B")
    else:
        payload = memoryview(arr.T).cast("B")
    return payload, zlib.crc32(payload) & 0xFFFFFFFF
