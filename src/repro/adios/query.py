"""Metadata query pushdown over BP5 block statistics.

Every BP5 block carries its min/max (Listing 1's ``Min/Max`` column
comes from them). A range query therefore never needs to read blocks
whose [min, max] interval cannot intersect the predicate — the classic
ADIOS2 query-engine optimization. :func:`query_blocks` does the
metadata-only pruning; :func:`read_matching` reads only the surviving
blocks and returns their cells above/below the bounds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.adios.engines import BP5Reader
from repro.adios.variable import BlockInfo
from repro.util.errors import VariableError


@dataclass(frozen=True)
class RangeQuery:
    """value in [lo, hi] (either bound may be None = unbounded)."""

    lo: float | None = None
    hi: float | None = None

    def __post_init__(self) -> None:
        if self.lo is None and self.hi is None:
            raise VariableError("range query needs at least one bound")
        if self.lo is not None and self.hi is not None and self.lo > self.hi:
            raise VariableError(f"empty range: [{self.lo}, {self.hi}]")

    def block_may_match(self, block: BlockInfo) -> bool:
        """Can any cell of this block satisfy the predicate?"""
        if self.lo is not None and block.vmax < self.lo:
            return False
        if self.hi is not None and block.vmin > self.hi:
            return False
        return True

    def mask(self, data: np.ndarray) -> np.ndarray:
        mask = np.ones(data.shape, dtype=bool)
        if self.lo is not None:
            mask &= data >= self.lo
        if self.hi is not None:
            mask &= data <= self.hi
        return mask


@dataclass
class QueryResult:
    """Matching cells: global coordinates + values + pruning stats."""

    coords: np.ndarray  # (n, ndim) global indices
    values: np.ndarray  # (n,)
    blocks_total: int
    blocks_read: int

    @property
    def pruned_fraction(self) -> float:
        if self.blocks_total == 0:
            return 0.0
        return 1.0 - self.blocks_read / self.blocks_total


def query_blocks(
    reader: BP5Reader, var: str, step: int, query: RangeQuery
) -> tuple[list[BlockInfo], int]:
    """(blocks that may match, total blocks) — metadata only."""
    blocks = reader.blocks(var, step)
    if not blocks:
        raise VariableError(f"{var!r} has no blocks at step {step}")
    return [b for b in blocks if query.block_may_match(b)], len(blocks)


def read_matching(
    reader: BP5Reader, var: str, step: int, query: RangeQuery
) -> QueryResult:
    """Evaluate a range query, reading only non-prunable blocks."""
    from repro.adios import bp5

    candidates, total = query_blocks(reader, var, step, query)
    entry = reader.variables()[var]
    dtype = np.dtype(entry.dtype)
    all_coords = []
    all_values = []
    for block in candidates:
        data = bp5.read_block(reader.path, block, dtype, verify=reader.verify)
        mask = query.mask(data)
        local = np.argwhere(mask)
        if local.size:
            all_coords.append(local + np.asarray(block.start))
            all_values.append(data[mask])
    if all_coords:
        coords = np.concatenate(all_coords)
        values = np.concatenate(all_values)
        order = np.lexsort(coords.T[::-1])
        coords, values = coords[order], values[order]
    else:
        coords = np.empty((0, len(entry.shape)), dtype=np.int64)
        values = np.empty(0, dtype=dtype)
    return QueryResult(
        coords=coords,
        values=values,
        blocks_total=total,
        blocks_read=len(candidates),
    )
