"""Lustre Orion performance model (Figure 8).

The paper's parallel I/O experiment writes one output step of each
weak-scaling case (two 1024^3 float64 fields per GCD, 8 GCDs per node
-> ~137 GB per node-subfile) and observes "fairly flat" write times
with aggregate bandwidth growing to 434 GB/s at 512 nodes — 8% of the
file system's 5.5 TB/s peak while using 5% of the machine.

Model: each node's aggregator streams its subfile at a sustained
per-node bandwidth, derated by a slowly growing contention factor (OSS
sharing and metadata pressure), plus a fixed metadata/open cost and
lognormal jitter ("real-time file system usage"). The aggregate is
capped by the file system peak. Constants live in
:mod:`repro.bench.calibration`.

The weak-scaling sweep posts each node's write as a timed event on the
discrete-event engine (:mod:`repro.sched`): node aggregators occupy a
shared Lustre OSS resource, the job's write time is the virtual instant
the last subfile lands, and :func:`IoWeakScalingModel.run_pipeline`
additionally models BP5's deferred/async drain — the write of step
``k`` rides the OSS while the solve of step ``k+1`` runs on the GCDs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.bench import calibration as cal
from repro.cluster.frontier import FRONTIER, MachineSpec
from repro.util.rngs import RngStream


def contention_efficiency(nnodes: int) -> float:
    """Per-node derating factor as the job's writer count grows."""
    if nnodes < 1:
        raise ValueError(f"nnodes must be >= 1, got {nnodes}")
    return 1.0 / (1.0 + cal.LUSTRE_CONTENTION_COEF * math.log2(max(nnodes, 1) or 1))


class LustreModel:
    """Write-time model for BP5-style one-subfile-per-node output."""

    def __init__(self, machine: MachineSpec = FRONTIER, *, seed: int = 2023):
        self.machine = machine
        self.stream = RngStream(seed, ("lustre",))

    def node_write_bandwidth(self, nnodes: int) -> float:
        """Sustained bytes/s one aggregator gets in an ``nnodes`` job."""
        return cal.LUSTRE_NODE_WRITE_BW_BYTES_PER_S * contention_efficiency(nnodes)

    def aggregate_write_bandwidth(self, nnodes: int) -> float:
        """Job-level write bandwidth, capped at the file system peak."""
        return min(
            nnodes * self.node_write_bandwidth(nnodes),
            self.machine.filesystem.peak_write_bytes_per_s,
        )

    def write_seconds_per_node(
        self, nnodes: int, bytes_per_node: float, *, sample: int | str = 0
    ) -> float:
        """Wall-clock of one node's subfile write, with jitter.

        ``sample`` keys the deterministic jitter draw (e.g. node id).
        """
        if bytes_per_node < 0:
            raise ValueError("bytes_per_node must be non-negative")
        gen = self.stream.generator("write", nnodes, sample)
        jitter = float(np.exp(gen.normal(0.0, cal.LUSTRE_WRITE_SIGMA)))
        base = bytes_per_node / self.node_write_bandwidth(nnodes)
        return cal.LUSTRE_METADATA_SECONDS + base * jitter

    def job_write_seconds(self, nnodes: int, bytes_per_node: float) -> float:
        """Slowest node's write time (the job waits on all subfiles)."""
        times = [
            self.write_seconds_per_node(nnodes, bytes_per_node, sample=node)
            for node in range(nnodes)
        ]
        return max(times)


@dataclass(frozen=True)
class IoScalingPoint:
    """One Figure-8 x-value: an (nnodes, bytes_per_node) write."""

    nnodes: int
    nranks: int
    bytes_per_node: float
    write_seconds: float

    @property
    def total_bytes(self) -> float:
        return self.nnodes * self.bytes_per_node

    @property
    def write_bandwidth(self) -> float:
        return self.total_bytes / self.write_seconds


@dataclass(frozen=True)
class IoPipelinePoint:
    """A multi-step solve+write schedule (BP5 deferred-drain model)."""

    nranks: int
    nnodes: int
    steps: int
    bytes_per_node: float
    compute_seconds_per_step: float
    #: slowest node's serial compute->write->compute->write... total
    serial_seconds: float
    #: virtual end time of the scheduled job (== serial when overlap off)
    elapsed_seconds: float
    overlap: bool

    @property
    def overlap_speedup(self) -> float:
        return self.serial_seconds / self.elapsed_seconds


class IoWeakScalingModel:
    """Reproduces Figure 8: write wall-clock + bandwidth vs. job size."""

    def __init__(
        self,
        *,
        local_shape: tuple[int, int, int] = (1024, 1024, 1024),
        nvars: int = 2,
        itemsize: int = 8,
        ranks_per_node: int = 8,
        machine: MachineSpec = FRONTIER,
        seed: int = 2023,
    ):
        self.machine = machine
        self.local_shape = local_shape
        self.ranks_per_node = ranks_per_node
        self.bytes_per_rank = int(np.prod(local_shape)) * nvars * itemsize
        self.model = LustreModel(machine, seed=seed)

    def _layout(self, nranks: int) -> tuple[int, float]:
        nnodes = -(-nranks // self.ranks_per_node)
        ranks_on_full_node = min(nranks, self.ranks_per_node)
        return nnodes, self.bytes_per_rank * ranks_on_full_node

    def run_point(self, nranks: int) -> IoScalingPoint:
        from repro.sched import Engine, use

        nnodes, bytes_per_node = self._layout(nranks)
        engine = Engine(name=f"fig8[{nranks}]")
        # capacity == nnodes: every aggregator streams concurrently; the
        # contention cost of sharing the OSS pool is already inside
        # node_write_bandwidth's derating factor
        oss = engine.resource(
            "lustre-oss", capacity=nnodes, lane=("lustre-oss", "write")
        )

        def writer(node: int):
            seconds = self.model.write_seconds_per_node(
                nnodes, bytes_per_node, sample=node
            )
            yield from use(
                oss, seconds, label="bp5.write", cat="adios",
                args={"node": node, "bytes": bytes_per_node},
            )

        for node in range(nnodes):
            engine.spawn(f"node{node}", writer(node), lane=(f"node{node}", "adios"))
        # the job waits on the slowest subfile: virtual end time == the
        # max over nodes, bitwise identical to job_write_seconds()
        seconds = engine.run()
        engine.check_quiescent()
        return IoScalingPoint(
            nnodes=nnodes,
            nranks=nranks,
            bytes_per_node=bytes_per_node,
            write_seconds=seconds,
        )

    def run_pipeline(
        self,
        nranks: int,
        *,
        steps: int = 4,
        compute_seconds_per_step: float | None = None,
        overlap: bool = False,
    ) -> IoPipelinePoint:
        """Schedule ``steps`` x (solve, output) on the engine.

        ``overlap=True`` models BP5's deferred-put drain: the write of
        step ``k`` streams to the OSS while step ``k+1`` computes; each
        node joins its outstanding write before posting the next one
        (one in-flight output step, like an async double buffer).
        """
        from repro.sched import Engine, Join, use

        if compute_seconds_per_step is None:
            from repro.gpu.proxy import grayscott_launch_cost

            compute_seconds_per_step = grayscott_launch_cost(
                self.local_shape, "julia"
            ).seconds
        nnodes, bytes_per_node = self._layout(nranks)
        engine = Engine(name=f"fig8.pipeline[{nranks}]")
        oss = engine.resource(
            "lustre-oss", capacity=nnodes, lane=("lustre-oss", "write")
        )

        def write_seconds(node: int, step: int) -> float:
            # sample keys the deterministic jitter draw; fold the step in
            # so every (step, node) write jitters independently
            return self.model.write_seconds_per_node(
                nnodes, bytes_per_node, sample=step * 1_000_003 + node
            )

        def node_program(node: int, gcd):
            pending = None
            for step in range(steps):
                yield from use(
                    gcd, compute_seconds_per_step, label="solve", cat="gpu",
                    args={"step": step},
                )
                write = use(
                    oss, write_seconds(node, step), label="bp5.write",
                    cat="adios", args={"node": node, "step": step},
                )
                if overlap:
                    if pending is not None:
                        yield Join(pending)
                    pending = engine.spawn(
                        f"node{node}.write{step}", write,
                        lane=(f"node{node}", "adios"),
                    )
                else:
                    yield from write
            if pending is not None:
                yield Join(pending)

        processes = []
        for node in range(nnodes):
            gcd = engine.resource(
                f"node{node}-gcds", lane=(f"node{node}", "solve")
            )
            processes.append(
                engine.spawn(
                    f"node{node}", node_program(node, gcd),
                    lane=(f"node{node}", "core"),
                )
            )
        elapsed = engine.run()
        engine.check_quiescent()
        serial = max(
            sum(
                compute_seconds_per_step + write_seconds(node, step)
                for step in range(steps)
            )
            for node in range(nnodes)
        )
        return IoPipelinePoint(
            nranks=nranks,
            nnodes=nnodes,
            steps=steps,
            bytes_per_node=bytes_per_node,
            compute_seconds_per_step=compute_seconds_per_step,
            serial_seconds=serial,
            elapsed_seconds=elapsed,
            overlap=overlap,
        )

    def run(self, nranks_list=None, *, jobs: int = 1) -> list[IoScalingPoint]:
        from repro.bench.sweep import run_ladder

        return run_ladder(self.run_point, nranks_list, jobs=jobs)
