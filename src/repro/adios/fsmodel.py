"""Lustre Orion performance model (Figure 8).

The paper's parallel I/O experiment writes one output step of each
weak-scaling case (two 1024^3 float64 fields per GCD, 8 GCDs per node
-> ~137 GB per node-subfile) and observes "fairly flat" write times
with aggregate bandwidth growing to 434 GB/s at 512 nodes — 8% of the
file system's 5.5 TB/s peak while using 5% of the machine.

Model: each node's aggregator streams its subfile at a sustained
per-node bandwidth, derated by a slowly growing contention factor (OSS
sharing and metadata pressure), plus a fixed metadata/open cost and
lognormal jitter ("real-time file system usage"). The aggregate is
capped by the file system peak. Constants live in
:mod:`repro.bench.calibration`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.bench import calibration as cal
from repro.cluster.frontier import FRONTIER, MachineSpec
from repro.util.rngs import RngStream


def contention_efficiency(nnodes: int) -> float:
    """Per-node derating factor as the job's writer count grows."""
    if nnodes < 1:
        raise ValueError(f"nnodes must be >= 1, got {nnodes}")
    return 1.0 / (1.0 + cal.LUSTRE_CONTENTION_COEF * math.log2(max(nnodes, 1) or 1))


class LustreModel:
    """Write-time model for BP5-style one-subfile-per-node output."""

    def __init__(self, machine: MachineSpec = FRONTIER, *, seed: int = 2023):
        self.machine = machine
        self.stream = RngStream(seed, ("lustre",))

    def node_write_bandwidth(self, nnodes: int) -> float:
        """Sustained bytes/s one aggregator gets in an ``nnodes`` job."""
        return cal.LUSTRE_NODE_WRITE_BW_BYTES_PER_S * contention_efficiency(nnodes)

    def aggregate_write_bandwidth(self, nnodes: int) -> float:
        """Job-level write bandwidth, capped at the file system peak."""
        return min(
            nnodes * self.node_write_bandwidth(nnodes),
            self.machine.filesystem.peak_write_bytes_per_s,
        )

    def write_seconds_per_node(
        self, nnodes: int, bytes_per_node: float, *, sample: int | str = 0
    ) -> float:
        """Wall-clock of one node's subfile write, with jitter.

        ``sample`` keys the deterministic jitter draw (e.g. node id).
        """
        if bytes_per_node < 0:
            raise ValueError("bytes_per_node must be non-negative")
        gen = self.stream.generator("write", nnodes, sample)
        jitter = float(np.exp(gen.normal(0.0, cal.LUSTRE_WRITE_SIGMA)))
        base = bytes_per_node / self.node_write_bandwidth(nnodes)
        return cal.LUSTRE_METADATA_SECONDS + base * jitter

    def job_write_seconds(self, nnodes: int, bytes_per_node: float) -> float:
        """Slowest node's write time (the job waits on all subfiles)."""
        times = [
            self.write_seconds_per_node(nnodes, bytes_per_node, sample=node)
            for node in range(nnodes)
        ]
        return max(times)


@dataclass(frozen=True)
class IoScalingPoint:
    """One Figure-8 x-value: an (nnodes, bytes_per_node) write."""

    nnodes: int
    nranks: int
    bytes_per_node: float
    write_seconds: float

    @property
    def total_bytes(self) -> float:
        return self.nnodes * self.bytes_per_node

    @property
    def write_bandwidth(self) -> float:
        return self.total_bytes / self.write_seconds


class IoWeakScalingModel:
    """Reproduces Figure 8: write wall-clock + bandwidth vs. job size."""

    def __init__(
        self,
        *,
        local_shape: tuple[int, int, int] = (1024, 1024, 1024),
        nvars: int = 2,
        itemsize: int = 8,
        ranks_per_node: int = 8,
        machine: MachineSpec = FRONTIER,
        seed: int = 2023,
    ):
        self.machine = machine
        self.ranks_per_node = ranks_per_node
        self.bytes_per_rank = int(np.prod(local_shape)) * nvars * itemsize
        self.model = LustreModel(machine, seed=seed)

    def run_point(self, nranks: int) -> IoScalingPoint:
        nnodes = -(-nranks // self.ranks_per_node)
        ranks_on_full_node = min(nranks, self.ranks_per_node)
        bytes_per_node = self.bytes_per_rank * ranks_on_full_node
        seconds = self.model.job_write_seconds(nnodes, bytes_per_node)
        return IoScalingPoint(
            nnodes=nnodes,
            nranks=nranks,
            bytes_per_node=bytes_per_node,
            write_seconds=seconds,
        )

    def run(self, nranks_list=(1, 8, 64, 512, 4096)) -> list[IoScalingPoint]:
        return [self.run_point(n) for n in nranks_list]
