"""Compression operators for BP5 blocks (ADIOS2 "operators").

ADIOS2 lets a variable carry an operator chain (zlib, blosc, zfp, ...)
applied per block at write time and inverted at read time, with the
codec recorded in the block metadata. We implement the lossless zlib
codec; the registry keeps the mechanism open for more.

The paper itself writes uncompressed (default BP5), so operators are an
extension — but a load-bearing one for workflows that, like Gray-Scott,
produce smooth fields that compress 3-10x.
"""

from __future__ import annotations

import zlib
from typing import Callable

from repro.util.errors import AdiosError, CorruptFileError


class OperatorError(AdiosError):
    """Unknown codec or invalid operator parameters."""


def _zlib_compress(payload: bytes, params: dict) -> bytes:
    return zlib.compress(payload, level=int(params.get("level", 6)))


def _zlib_decompress(payload: bytes, params: dict, raw_nbytes: int) -> bytes:
    try:
        raw = zlib.decompress(payload)
    except zlib.error as exc:
        raise CorruptFileError(f"zlib stream corrupt: {exc}") from exc
    if len(raw) != raw_nbytes:
        raise CorruptFileError(
            f"decompressed block is {len(raw)} B, metadata says {raw_nbytes} B"
        )
    return raw


def _zlib_validate(params: dict) -> None:
    level = params.get("level", 6)
    if not isinstance(level, int) or not 1 <= level <= 9:
        raise OperatorError(f"zlib level must be an int in 1..9, got {level!r}")
    unknown = set(params) - {"level"}
    if unknown:
        raise OperatorError(f"unknown zlib parameters: {sorted(unknown)}")


_CODECS: dict[str, tuple[Callable, Callable, Callable]] = {
    "zlib": (_zlib_compress, _zlib_decompress, _zlib_validate),
}


def validate_operation(codec: str, params: dict) -> tuple[str, dict]:
    try:
        _, _, validate = _CODECS[codec]
    except KeyError:
        raise OperatorError(
            f"unknown codec {codec!r}; available: {sorted(_CODECS)}"
        ) from None
    validate(params)
    return codec, dict(params)


def compress(codec: str, params: dict, payload: bytes) -> bytes:
    compressor, _, _ = _CODECS[codec]
    return compressor(payload, params)


def decompress(codec: str, params: dict, payload: bytes, raw_nbytes: int) -> bytes:
    try:
        _, decompressor, _ = _CODECS[codec]
    except KeyError:
        raise CorruptFileError(
            f"block written with unknown codec {codec!r}"
        ) from None
    return decompressor(payload, params, raw_nbytes)
