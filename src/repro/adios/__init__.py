"""An ADIOS2-workalike parallel I/O library with a BP5-style format.

The paper writes its Gray-Scott output "using the ADIOS2 library via
the Julia ADIOS2.jl bindings" (Section 4): global 3D array variables
assembled from per-rank blocks, step-based writing, provenance
attributes, per-block min/max statistics, and the BP5 engine's
one-subfile-per-node aggregation (Section 5.3). This package implements
that stack:

- :mod:`repro.adios.api` — ``Adios -> IO -> Engine`` object model;
- :mod:`repro.adios.variable` — variables (global arrays, scalars),
  attributes, block metadata;
- :mod:`repro.adios.bp5` — the on-disk format: binary data subfiles +
  a JSON metadata index with per-block offsets, min/max and CRCs;
- :mod:`repro.adios.engines` — ``BP5Writer`` (parallel, aggregating
  over our MPI substrate) and ``BP5Reader`` (steps, box selection,
  per-block access);
- :mod:`repro.adios.bpls` — the dataset lister reproducing the paper's
  Listing 1 provenance record;
- :mod:`repro.adios.fsmodel` — the Lustre Orion performance model used
  for Figure 8's Frontier-scale write bandwidths.

Divergence from real BP5, by design: the metadata index is JSON rather
than binary (documented in DESIGN.md) — the *structure* (subfiles,
blocks, steps, stats) is faithful; the serialization is not the object
of study.
"""

from repro.adios.api import Adios, IO
from repro.adios.variable import Variable, Attribute, BlockInfo
from repro.adios.engines import BP5Writer, BP5Reader
from repro.adios.bpls import bpls

__all__ = [
    "Adios",
    "IO",
    "Variable",
    "Attribute",
    "BlockInfo",
    "BP5Writer",
    "BP5Reader",
    "bpls",
]
