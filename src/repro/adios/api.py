"""The ADIOS2-style object model: ``Adios -> IO -> Engine``.

Usage mirrors ADIOS2.jl / adios2 Python::

    adios = Adios()
    io = adios.declare_io("SimulationOutput")
    u = io.define_variable("U", np.float64, shape=(64, 64, 64),
                           start=(0, 0, 0), count=(64, 64, 64))
    io.define_attribute("Du", 0.2)
    with io.open("gs.bp", "w", comm=comm) as engine:
        engine.begin_step()
        engine.put(u, data)
        engine.end_step()
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.adios.engines import BP5Reader, BP5Writer
from repro.adios.variable import Attribute, Variable
from repro.util.errors import AdiosError, EngineStateError, VariableError

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.comm import Comm

_ENGINES = ("BP5", "SST")


class IO:
    """A named group of variable/attribute definitions + engine config."""

    def __init__(self, name: str):
        self.name = name
        self.engine_type = "BP5"
        self.variables: dict[str, Variable] = {}
        self.attributes: dict[str, Attribute] = {}
        self.parameters: dict[str, str] = {}
        #: variable summaries learned from remote ranks during writes
        self._remote_summaries: dict[str, tuple[str, tuple]] = {}

    def set_engine(self, engine_type: str) -> None:
        if engine_type not in _ENGINES:
            raise AdiosError(
                f"unsupported engine {engine_type!r}; available: {_ENGINES}"
            )
        self.engine_type = engine_type

    def set_parameter(self, key: str, value) -> None:
        """Engine tuning knobs (e.g. NumAggregators), stringly like ADIOS2."""
        self.parameters[str(key)] = str(value)

    # -- definitions -------------------------------------------------------
    def define_variable(
        self,
        name: str,
        dtype=np.float64,
        shape: tuple[int, ...] = (),
        start: tuple[int, ...] = (),
        count: tuple[int, ...] = (),
    ) -> Variable:
        if name in self.variables:
            raise VariableError(f"variable {name!r} already defined on IO {self.name!r}")
        variable = Variable(name, dtype, shape, start, count)
        self.variables[name] = variable
        return variable

    def inquire_variable(self, name: str) -> Variable:
        try:
            return self.variables[name]
        except KeyError:
            raise VariableError(
                f"variable {name!r} not defined on IO {self.name!r} "
                f"(has: {sorted(self.variables)})"
            ) from None

    def remove_variable(self, name: str) -> None:
        self.variables.pop(name, None)

    def define_attribute(self, name: str, value) -> Attribute:
        if name in self.attributes:
            raise VariableError(f"attribute {name!r} already defined on IO {self.name!r}")
        attribute = Attribute(name, value)
        attribute.dtype_name()  # validate the value type eagerly
        self.attributes[name] = attribute
        return attribute

    # -- engine factory ------------------------------------------------------
    def open(self, path, mode: str, *, comm: "Comm | None" = None):
        """Open an engine: 'w' write, 'a' append, 'r' read.

        With ``set_engine("SST")``, ``path`` names an in-memory stream
        instead of a dataset directory (append is meaningless there).
        """
        if self.engine_type == "SST":
            from repro.adios.sst import SSTReader, SSTWriter

            if mode == "r":
                timeout = float(self.parameters.get("OpenTimeoutSecs", 10.0))
                return SSTReader(self, path, connect_timeout=timeout)
            if mode == "w":
                limit = int(self.parameters.get("QueueLimit", 4))
                return SSTWriter(self, path, comm=comm, queue_limit=limit)
            raise EngineStateError(f"SST supports modes 'w'/'r', not {mode!r}")
        if mode == "r":
            return BP5Reader(self, path)
        if mode in ("w", "a"):
            aggregators = self.parameters.get("NumAggregators")
            return BP5Writer(
                self,
                path,
                comm=comm,
                mode=mode,
                aggregators=int(aggregators) if aggregators else None,
            )
        raise EngineStateError(f"unknown open mode {mode!r}; use 'w', 'a', or 'r'")

    # -- internal ------------------------------------------------------------
    def remember_remote_variable(self, name: str, dtype: str, shape) -> None:
        self._remote_summaries[name] = (dtype, tuple(shape))

    def variable_summary(self, name: str) -> tuple[str, tuple]:
        if name in self.variables:
            variable = self.variables[name]
            return variable.dtype.name, variable.shape
        if name in self._remote_summaries:
            return self._remote_summaries[name]
        raise VariableError(f"no summary for variable {name!r}")

    def __repr__(self) -> str:  # pragma: no cover
        return f"IO({self.name!r}, engine={self.engine_type})"


class Adios:
    """Top-level factory, one per 'process' (matches adios2.Adios)."""

    def __init__(self):
        self._ios: dict[str, IO] = {}

    def declare_io(self, name: str) -> IO:
        if name in self._ios:
            raise AdiosError(f"IO {name!r} already declared")
        io = IO(name)
        self._ios[name] = io
        return io

    def at_io(self, name: str) -> IO:
        try:
            return self._ios[name]
        except KeyError:
            raise AdiosError(f"IO {name!r} was never declared") from None

    def remove_io(self, name: str) -> None:
        self._ios.pop(name, None)
