"""``bpls``-style dataset listing (the paper's Listing 1).

Renders the provenance record of a dataset: every attribute with its
value, every variable with its step count, global shape, and global
min/max — e.g.::

    double   Du      attr = 0.2
    double   U       1000*{1024, 1024, 1024} = Min/Max -0.120795 / 1.46671
    int32_t  step    50*scalar = 20 / 1000
    Attribute visualization schemas: FIDES, VTX
"""

from __future__ import annotations

import sys

from repro.adios.bp5 import read_index
from repro.adios.variable import dtype_display_name

#: attribute names treated as visualization schemas in the trailer line
SCHEMA_ATTRIBUTES = ("visualization_schemas", "schemas")


def bpls(path, *, show_schema_line: bool = True) -> str:
    """Render the Listing-1-style provenance record of a dataset."""
    index = read_index(path)
    rows: list[tuple[str, str, str]] = []

    schema_values: list[str] = []
    for name, attribute in sorted(index.attributes.items()):
        if name in SCHEMA_ATTRIBUTES:
            value = attribute.value
            schema_values.extend(value if isinstance(value, (list, tuple)) else [value])
            continue
        rows.append(
            (attribute.dtype_name(), name, f"attr = {attribute.display_value()}")
        )

    for name, entry in sorted(index.variables.items()):
        nsteps = len(entry.steps)
        vmin, vmax = index.var_minmax(name)
        if entry.shape:
            dims = "{" + ", ".join(str(s) for s in entry.shape) + "}"
            desc = f"{nsteps}*{dims} = Min/Max {vmin:g} / {vmax:g}"
        else:
            desc = f"{nsteps}*scalar = {vmin:g} / {vmax:g}"
        rows.append((dtype_display_name(entry.dtype), name, desc))

    width_type = max((len(r[0]) for r in rows), default=6)
    width_name = max((len(r[1]) for r in rows), default=4)
    lines = [
        f"  {t.ljust(width_type)}  {n.ljust(width_name)}  {d}" for t, n, d in rows
    ]
    if show_schema_line and schema_values:
        lines.append(f"  Attribute visualization schemas: {', '.join(schema_values)}")
    return "\n".join(lines)


def bpls_blocks(path, var: str) -> str:
    """``bpls -v``-style per-block decomposition listing for one variable."""
    index = read_index(path)
    blocks = [b for b in index.blocks if b.var == var]
    if not blocks:
        raise ValueError(f"variable {var!r} not in dataset")
    lines = [f"  {var}: {len(blocks)} blocks"]
    for block in sorted(blocks, key=lambda b: (b.step, b.writer_rank)):
        placement = (
            "scalar"
            if not block.count
            else f"start={list(block.start)} count={list(block.count)}"
        )
        codec = f" codec={block.codec}" if block.codec else ""
        lines.append(
            f"    step {block.step} rank {block.writer_rank}: {placement} "
            f"subfile data.{block.subfile}+{block.offset} ({block.nbytes} B)"
            f" min/max {block.vmin:g}/{block.vmax:g}{codec}"
        )
    return "\n".join(lines)


def bpls_dump(path, var: str, *, step: int | None = None, limit: int = 64) -> str:
    """``bpls -d``-style data dump (first ``limit`` values)."""
    from repro.adios.engines import BP5Reader

    reader = BP5Reader(None, path)
    entry = reader.variables().get(var)
    if entry is None:
        raise ValueError(f"variable {var!r} not in dataset")
    if not entry.shape:
        values = reader.scalar_series(var)
        body = " ".join(f"{v:g}" for v in values[:limit])
        return f"  {var} = {body}"
    data = reader.read(var, step=step)
    flat = data.ravel(order="F")[:limit]
    body = "\n    ".join(
        " ".join(f"{v:.6g}" for v in flat[i: i + 8]) for i in range(0, len(flat), 8)
    )
    return f"  {var} (first {len(flat)} of {data.size} values)\n    {body}"


def main(argv: list[str] | None = None) -> int:
    """CLI: ``repro-bpls [-a] [-v VAR] [-d VAR] <dataset.bp>``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-bpls", description="list a BP5 dataset (Listing 1 format)"
    )
    parser.add_argument("dataset")
    parser.add_argument("-a", "--attrs-only", action="store_true",
                        help="list attributes only")
    parser.add_argument("-v", "--blocks", metavar="VAR",
                        help="show the per-block decomposition of VAR")
    parser.add_argument("-d", "--dump", metavar="VAR",
                        help="dump the leading values of VAR")
    try:
        args = parser.parse_args(argv if argv is not None else sys.argv[1:])
    except SystemExit as exc:
        return int(exc.code or 0) and 2
    try:
        if args.blocks:
            print(bpls_blocks(args.dataset, args.blocks))
        elif args.dump:
            print(bpls_dump(args.dataset, args.dump))
        elif args.attrs_only:
            text = bpls(args.dataset, show_schema_line=True)
            print("\n".join(l for l in text.splitlines()
                            if "attr = " in l or "Attribute" in l))
        else:
            print(bpls(args.dataset))
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        print(f"bpls: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
