"""One-shot machine-readable report of every reproduced experiment.

``collect()`` runs all Frontier-scale reproductions and returns one
JSON-serializable dict: per experiment the modeled values, the paper's
values, and the shape-check verdicts. ``examples/frontier_campaign.py``
prints the human version; this is the version a CI job archives.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro._version import __version__
from repro.bench import calibration as cal
from repro.bench import fig6, fig7, fig8, listings, table1, table2, table3
from repro.util.units import GB


def collect(*, seed: int = 2023) -> dict:
    """Run every modeled experiment; returns the full report dict."""
    report: dict = {
        "repro_version": __version__,
        "seed": seed,
        "experiments": {},
    }
    experiments = report["experiments"]

    machine = table1.run()
    experiments["table1"] = {
        "checks": table1.shape_checks(machine),
        "nodes": machine.nodes,
        "total_gcds": machine.total_gcds,
    }

    rows = table2.run()
    experiments["table2"] = {
        "checks": table2.shape_checks(rows),
        "rows": {
            r.key: {
                "effective_gb_s": round(r.effective_gb_s, 1),
                "total_gb_s": round(r.total_gb_s, 1),
                "paper_effective": r.paper_effective,
                "paper_total": r.paper_total,
            }
            for r in rows
        },
    }

    columns = table3.run()
    experiments["table3"] = {
        "checks": table3.shape_checks(columns),
        "columns": {
            c.key: {
                "fetch_gb": round(c.fetch_gb, 2),
                "write_gb": round(c.write_gb, 2),
                "duration_ms": round(c.duration_ms, 2),
                "paper_duration_ms": c.paper["avg_duration_ms"],
            }
            for c in columns
        },
    }

    points6 = fig6.run_frontier(seed=seed)
    experiments["fig6"] = {
        "checks": fig6.shape_checks(points6),
        "points": [
            {
                "nranks": p.nranks,
                "mean_s": round(p.mean_seconds, 3),
                "variability": round(p.variability, 4),
            }
            for p in points6
        ],
        "paper_bands": {
            str(k): v for k, v in cal.PAPER_FIG6_VARIABILITY.items()
        },
    }

    result7 = fig7.run(seed=seed)
    experiments["fig7"] = {
        "checks": fig7.shape_checks(result7),
        "jit_fraction": round(result7.jit_fraction, 4),
        "jit_cost_factor": round(result7.jit_cost_factor, 2),
        "paper": cal.PAPER_FIG7,
    }

    points8 = fig8.run_frontier(seed=seed)
    experiments["fig8"] = {
        "checks": fig8.shape_checks(points8),
        "points": [
            {
                "nranks": p.nranks,
                "write_s": round(p.write_seconds, 1),
                "bandwidth_gb_s": round(p.write_bandwidth / GB, 1),
            }
            for p in points8
        ],
        "paper": cal.PAPER_FIG8,
    }

    listing4 = listings.run_listing4()
    experiments["listing4"] = {
        "checks": listings.listing4_shape_checks(listing4),
        "unique_loads": len(listing4.trace.unique_loads),
        "stores": len(listing4.trace.unique_stores),
    }

    all_checks = [
        ok
        for experiment in experiments.values()
        for ok in experiment["checks"].values()
    ]
    report["summary"] = {
        "checks_total": len(all_checks),
        "checks_passed": sum(all_checks),
        "all_passed": all(all_checks),
    }
    return report


def save(path, *, seed: int = 2023) -> dict:
    """Collect and write the report as JSON; returns the dict."""
    report = collect(seed=seed)
    Path(path).write_text(json.dumps(report, indent=2))
    return report
