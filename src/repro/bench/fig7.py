"""Figure 7: bandwidth distributions, JIT first run vs. optimized code.

The paper runs 20 simulation steps on 4,096 GPUs twice — once cold
(first launch pays JIT compilation) and once warm — and plots the
per-GPU effective-bandwidth distributions. The JIT run averages ~8% of
the optimized bandwidth (a ~12.5x cost).

Model: per GCD, the optimized effective bandwidth is the roofline
prediction with a small per-device spread (KERNEL_BANDWIDTH_SIGMA);
the JIT-run bandwidth divides the same 20 steps of useful bytes by
``20 * t_step + t_compile`` with a lognormal compile-time spread.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench import calibration as cal
from repro.gpu.proxy import grayscott_launch_cost, jit_compile_seconds
from repro.util.rngs import RngStream
from repro.util.tables import Table
from repro.util.units import GB


@dataclass(frozen=True)
class Fig7Result:
    ngpus: int
    steps: int
    optimized_gb_s: np.ndarray  # per-GPU effective bandwidth, warm
    jit_gb_s: np.ndarray  # per-GPU effective bandwidth, cold window

    @property
    def jit_fraction(self) -> float:
        """Mean JIT-run bandwidth as a fraction of the optimized mean."""
        return float(self.jit_gb_s.mean() / self.optimized_gb_s.mean())

    @property
    def jit_cost_factor(self) -> float:
        """Wall-clock cost factor of the cold window vs. warm (paper: ~12.5x)."""
        return 1.0 / self.jit_fraction


def run(
    *,
    ngpus: int = 4096,
    steps: int = 20,
    shape: tuple[int, int, int] = (1024, 1024, 1024),
    backend: str = "julia",
    seed: int = 2023,
    aot: bool = False,
    warm: bool = False,
) -> Fig7Result:
    """``aot=True`` ablates the JIT: compile cost paid offline
    (the mechanism the paper mentions but did not explore).
    ``warm=True`` models a warm start from the persistent compilation
    cache (:mod:`repro.gpu.jitcache`): the first launch loads a
    persisted plan (:data:`~repro.bench.calibration.JIT_WARM_LOAD_SECONDS`)
    instead of compiling, closing the 12.5x gap to ~1x."""
    cost = grayscott_launch_cost(shape, backend)
    effective_bytes = cost.effective_bytes
    stream = RngStream(seed, ("fig7",))
    gen = stream.generator(ngpus)
    kernel_jitter = gen.normal(1.0, cal.KERNEL_BANDWIDTH_SIGMA, size=ngpus)
    step_seconds = cost.seconds / np.clip(kernel_jitter, 0.5, None)
    optimized = effective_bytes / step_seconds

    if aot:
        compile_base = 0.0
    elif warm:
        compile_base = cal.JIT_WARM_LOAD_SECONDS
    else:
        compile_base = jit_compile_seconds(backend)
    compile_seconds = compile_base * np.exp(
        gen.normal(0.0, cal.JIT_COMPILE_SIGMA, size=ngpus)
    )
    jit_window = steps * step_seconds + compile_seconds
    jit_bw = steps * effective_bytes / jit_window
    return Fig7Result(
        ngpus=ngpus,
        steps=steps,
        optimized_gb_s=optimized / GB,
        jit_gb_s=jit_bw / GB,
    )


def run_warm_comparison(
    *,
    ngpus: int = 4096,
    steps: int = 20,
    shape: tuple[int, int, int] = (1024, 1024, 1024),
    backend: str = "julia",
    seed: int = 2023,
) -> tuple[Fig7Result, Fig7Result]:
    """(cold, warm) Fig. 7 variants over identical device jitter draws."""
    cold = run(ngpus=ngpus, steps=steps, shape=shape, backend=backend,
               seed=seed)
    warm = run(ngpus=ngpus, steps=steps, shape=shape, backend=backend,
               seed=seed, warm=True)
    return cold, warm


def render_warm(cold: Fig7Result, warm: Fig7Result) -> str:
    """The warm-start variant table: persisted plans close the gap."""
    table = Table(
        ["first-launch window", "mean (GB/s)", "p5", "p95", "cost factor"],
        title=(
            f"Figure 7 variant: cold vs. warm first launch over "
            f"{cold.ngpus} GPUs, {cold.steps} steps (modeled)"
        ),
    )
    for label, result in (("cold (full JIT)", cold),
                          ("warm (persisted plans)", warm)):
        data = result.jit_gb_s
        table.add_row(
            [label, float(data.mean()),
             float(np.percentile(data, 5)), float(np.percentile(data, 95)),
             f"{result.jit_cost_factor:.2f}x"]
        )
    closing = cold.jit_cost_factor / warm.jit_cost_factor
    lines = [table.render()]
    lines.append(
        f"warm start closes the cold/warm gap {closing:.1f}x: "
        f"{cold.jit_cost_factor:.1f}x cold "
        f"(paper: ~{cal.PAPER_FIG7['jit_cost_factor']:.1f}x) -> "
        f"{warm.jit_cost_factor:.2f}x warm "
        f"(plan load ~{cal.JIT_WARM_LOAD_SECONDS:.2f} s vs. full compile)"
    )
    return "\n".join(lines)


def warm_shape_checks(cold: Fig7Result, warm: Fig7Result) -> dict[str, bool]:
    return {
        "cold_cost_near_12x": 8.0 < cold.jit_cost_factor < 20.0,
        "warm_cost_near_1x": warm.jit_cost_factor < 1.2,
        "warm_at_least_5x_better": (
            cold.jit_cost_factor / warm.jit_cost_factor > 5.0
        ),
        "warm_still_below_optimized": float(warm.jit_gb_s.mean())
        < float(warm.optimized_gb_s.mean()),
    }


def histogram(samples: np.ndarray, *, bins: int = 24) -> list[tuple[float, int]]:
    counts, edges = np.histogram(samples, bins=bins)
    centers = 0.5 * (edges[:-1] + edges[1:])
    return list(zip(centers.tolist(), counts.tolist()))


def render(result: Fig7Result) -> str:
    table = Table(
        ["distribution", "mean (GB/s)", "p5", "p95"],
        title=(
            f"Figure 7: effective bandwidth over {result.ngpus} GPUs, "
            f"{result.steps} steps (modeled)"
        ),
    )
    for label, data in (
        ("JIT first run", result.jit_gb_s),
        ("optimized", result.optimized_gb_s),
    ):
        table.add_row(
            [label, float(data.mean()),
             float(np.percentile(data, 5)), float(np.percentile(data, 95))]
        )
    lines = [table.render()]
    lines.append(
        f"JIT-run bandwidth = {result.jit_fraction*100:.1f}% of optimized "
        f"(paper: ~{cal.PAPER_FIG7['jit_bandwidth_fraction']*100:.0f}%), "
        f"cost factor {result.jit_cost_factor:.1f}x "
        f"(paper: ~{cal.PAPER_FIG7['jit_cost_factor']:.1f}x)"
    )
    for label, data in (
        ("JIT", result.jit_gb_s),
        ("optimized", result.optimized_gb_s),
    ):
        lines.append(f"{label} histogram:")
        hist = histogram(data)
        peak = max(c for _, c in hist) or 1
        for center, count in hist:
            bar = "#" * int(40 * count / peak)
            lines.append(f"  {center:8.1f} GB/s |{bar}")
    return "\n".join(lines)


def shape_checks(result: Fig7Result) -> dict[str, bool]:
    return {
        "jit_fraction_near_8pct": 0.04 < result.jit_fraction < 0.16,
        "cost_factor_near_12x": 8.0 < result.jit_cost_factor < 20.0,
        "distributions_disjoint": float(result.jit_gb_s.max())
        < float(result.optimized_gb_s.min()),
        "optimized_near_table2": 250.0
        < float(result.optimized_gb_s.mean())
        < 400.0,
    }
