"""Every Frontier-calibrated constant of the performance models.

The models themselves are structural (roofline, working-set cache
analysis, LogGP, OSS striping); the constants below pin the free
parameters to what the paper measured. Each constant cites its source
table/figure. Changing a constant re-shapes the reproduced experiments
but never changes functional results (solver output, file contents).

We deliberately do NOT tune models to match paper values to the last
digit: the targets are the paper's *shapes* (who wins, by what factor,
where behaviour changes) as listed in DESIGN.md section 3.
"""

from __future__ import annotations

from repro.util.units import GB

# ---------------------------------------------------------------------------
# GPU codegen efficiency (Tables 2 and 3)
# ---------------------------------------------------------------------------

#: Fraction of peak HBM bandwidth (1,600 GB/s per GCD, Table 1) the
#: hand-written HIP stencil sustains. Derived from Table 3: the HIP
#: kernel moves 25.08 + 8.35 GB in 28.74 ms -> ~1,163 GB/s measured; our
#: traffic model predicts 34.3 GB for the same kernel, so the efficiency
#: that reproduces the measured duration is 34.3 GB / 28.74 ms / 1600.
HIP_CODEGEN_EFFICIENCY = 0.746

#: Same quantity for AMDGPU.jl-generated code (Table 3: 54.03 ms for the
#: 1-variable no-random kernel). The paper attributes the ~1.9x gap to
#: codegen below the IR level (Section 5.1): the IR shows no extra
#: memory ops, but the Julia kernel allocates LDS and scratch.
JULIA_CODEGEN_EFFICIENCY = 0.397

#: Extra slowdown of the Julia application kernel from in-kernel RNG:
#: Table 3 gives 111.07 ms (2-variable with rand) vs 2 x 54.03 ms
#: (no-random), a 2.8% penalty.
JULIA_RAND_PENALTY = 0.973

#: Workgroup sizes rocprof reported per backend (Table 3, "wgr").
HIP_WORKGROUP_SIZE = 256
JULIA_WORKGROUP_SIZE = 512

#: LDS and scratch per workgroup/workitem for Julia codegen (Table 3,
#: "lds"/"scr"; zero for HIP).
JULIA_LDS_BYTES = 29_184
JULIA_SCRATCH_BYTES = 8_192

# ---------------------------------------------------------------------------
# JIT compilation (Figure 7)
# ---------------------------------------------------------------------------

#: Figure 7: over a 20-step window at 1024^3 the first JIT-compiled run
#: sustains ~8% of the optimized bandwidth (a ~12.5x cost). With the
#: optimized application step at ~111 ms, the implied one-time compile
#: cost is ~ (12.5 - 1) x 20 x 0.111 s ~ 25.5 s. We split it into a base
#: plus a per-IR-line term so bigger kernels compile slower.
JULIA_BASE_COMPILE_SECONDS = 22.0
JULIA_COMPILE_SECONDS_PER_IR_LINE = 0.05

#: Relative spread of compile times across 4,096 GCDs (Figure 7 shows a
#: distribution, not a spike): lognormal sigma.
JIT_COMPILE_SIGMA = 0.10

#: Warm start from a persistent compilation cache (the pkgimage /
#: precompilation arc Julia landed after the paper; our
#: ``repro.gpu.jitcache``): the first launch loads a persisted plan
#: instead of compiling. Loading a few-hundred-MB pkgimage from the
#: parallel filesystem costs order 0.1 s — ~200x below the ~22 s
#: compile — which closes the Fig. 7 cold/warm gap to ~1x.
JIT_WARM_LOAD_SECONDS = 0.12

#: Per-device spread of steady-state kernel bandwidth (Figure 7's
#: "optimized" distribution width).
KERNEL_BANDWIDTH_SIGMA = 0.015

# ---------------------------------------------------------------------------
# rocprof counter normalization (Table 3)
# ---------------------------------------------------------------------------

#: Table 3 reports TCC_HIT/TCC_MISS in "M" at magnitudes ~48x below the
#: full line-transaction counts our cache model produces for a 1024^3
#: kernel (rocprof samples a subset of TCC channels). This divisor only
#: rescales *reported* counter magnitudes; hit/miss ratios come straight
#: from the model.
ROCPROF_COUNTER_SAMPLE_DIVISOR = 48

# ---------------------------------------------------------------------------
# Network performance model (Figure 6)
# ---------------------------------------------------------------------------

#: LogGP latency (seconds) for inter-node (Slingshot) and intra-node
#: (Infinity Fabric / shared memory) point-to-point messages.
NET_LATENCY_INTER_S = 2.0e-6
NET_LATENCY_INTRA_S = 0.8e-6

#: Effective per-rank large-message bandwidth. Each Frontier node has
#: 4 x 25 GB/s NICs shared by 8 ranks (Table 1 / Slingshot specs).
NET_BW_INTER_BYTES_PER_S = 12.5 * GB
NET_BW_INTRA_BYTES_PER_S = 50 * GB  # Infinity Fabric GPU-GPU, Table 1

#: Per-rank per-step noise model calibrated to Figure 6: the paper sees
#: 2-3% wall-clock variability up to 512 ranks and 12-15% at 4,096.
#: sigma(P) = NOISE_SIGMA_BASE + NOISE_SIGMA_CONGESTION *
#:            max(0, log8(P / NOISE_CONGESTION_ONSET_RANKS))
NOISE_SIGMA_BASE = 0.004
NOISE_SIGMA_CONGESTION = 0.0145
NOISE_CONGESTION_ONSET_RANKS = 512

#: Ghost-exchange pack/unpack per-byte CPU cost (strided MPI_Type_vector
#: assembly on the host; the paper keeps exchanges in CPU memory,
#: Section 3.3). Order of DDR copy bandwidth.
PACK_BYTES_PER_S = 100 * GB

#: The paper's 32,768-GPU attempt hit "unpredictable failures ... at
#: the underlying MPI layers during the ghost cell exchange stage"
#: while 4,096 GPUs ran reliably. Modeled as a per-message failure
#: probability that turns on past the reliable scale: calibrated so a
#: 20-step run at 4,096 ranks survives with probability > 0.99 while
#: 32,768 ranks almost surely fails within 20 steps.
MPI_FAILURE_ONSET_RANKS = 4096
MPI_FAILURE_PER_MESSAGE = 6.0e-8

# ---------------------------------------------------------------------------
# Lustre / parallel I/O model (Figure 8)
# ---------------------------------------------------------------------------

#: Sustained BP5 write bandwidth of one aggregating node (one subfile
#: per node, Section 5.3). Calibrated so that 512 nodes reach the
#: paper's 434 GB/s *after* contention derating and the slowest-node
#: jitter that dictates the job's write time:
#: 512 nodes x 1.15 GB/s x eff(512) / straggler(~1.29) ~ 434 GB/s.
LUSTRE_NODE_WRITE_BW_BYTES_PER_S = 1.15 * GB

#: Slow contention growth with node count (OSS sharing, metadata).
#: efficiency(N) = 1 / (1 + LUSTRE_CONTENTION_COEF * log2(N))
LUSTRE_CONTENTION_COEF = 0.006

#: Lognormal sigma of per-write wall-clock jitter ("real-time file
#: system usage", Section 5.3).
LUSTRE_WRITE_SIGMA = 0.08

#: Fixed per-write open/metadata cost in seconds (40 Lustre MDS nodes).
LUSTRE_METADATA_SECONDS = 0.35

# ---------------------------------------------------------------------------
# Reference values straight from the paper, used by EXPERIMENTS.md and
# the benchmark reports for side-by-side comparison (never by models).
# ---------------------------------------------------------------------------

PAPER_TABLE2 = {
    # kernel: (effective GB/s, total GB/s)
    "julia_2var": (312.0, 570.0),
    "julia_1var_norand": (312.0, 625.0),
    "hip_1var": (599.0, 1163.0),
    "peak": (1600.0, 1600.0),
}

PAPER_TABLE3 = {
    # kernel: dict of rocprof metrics
    "hip_1var": {
        "wgr": 256, "lds": 0, "scr": 0,
        "fetch_gb": 25.08, "write_gb": 8.35,
        "tcc_hit_m": 9.14, "tcc_miss_m": 8.36,
        "avg_duration_ms": 28.74,
    },
    "julia_1var_norand": {
        "wgr": 512, "lds": 29_184, "scr": 8_192,
        "fetch_gb": 25.40, "write_gb": 8.38,
        "tcc_hit_m": 10.80, "tcc_miss_m": 8.69,
        "avg_duration_ms": 54.03,
    },
    "julia_2var": {
        "wgr": 512, "lds": 29_184, "scr": 8_192,
        "fetch_gb": 50.80, "write_gb": 16.78,
        "tcc_hit_m": 24.60, "tcc_miss_m": 17.19,
        "avg_duration_ms": 111.07,
    },
}

PAPER_FIG6_VARIABILITY = {
    # ranks: (low, high) fractional spread of per-process wall-clock
    512: (0.02, 0.03),
    4096: (0.12, 0.15),
}

PAPER_FIG7 = {
    "jit_bandwidth_fraction": 0.08,  # JIT run ~8% of optimized bandwidth
    "jit_cost_factor": 12.5,
}

PAPER_FIG8 = {
    "max_write_bandwidth_gb_s": 434.0,
    "peak_fraction": 0.08,  # 8% of the 5.5 TB/s filesystem peak
}
