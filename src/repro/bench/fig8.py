"""Figure 8: parallel I/O weak scaling (write wall-clock + bandwidth).

Two layers:

- :func:`run_frontier` — the Lustre-model reproduction of the paper's
  experiment (one output step of each Figure 6 case; BP5 one subfile
  per node; up to 434 GB/s at 512 nodes);
- :func:`run_mini` — real BP5 writes through our engine at mini scale,
  measuring actual wall time: the binding-overhead claim exercised on a
  real code path.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from repro.adios.fsmodel import IoPipelinePoint, IoScalingPoint, IoWeakScalingModel
from repro.bench.calibration import PAPER_FIG8
from repro.bench.sweep import RANK_LADDER
from repro.util.tables import Table
from repro.util.units import GB, TB


def run_frontier(
    *, ranks=RANK_LADDER, local_cells: int = 1024, seed: int = 2023,
    jobs: int = 1,
) -> list[IoScalingPoint]:
    model = IoWeakScalingModel(local_shape=(local_cells,) * 3, seed=seed)
    return model.run(list(ranks), jobs=jobs)


def run_pipeline(
    *,
    nranks: int = 4096,
    steps: int = 4,
    local_cells: int = 1024,
    seed: int = 2023,
    overlap: bool = True,
) -> IoPipelinePoint:
    """The async-drain schedule: writes of step k overlap solve k+1."""
    model = IoWeakScalingModel(local_shape=(local_cells,) * 3, seed=seed)
    return model.run_pipeline(nranks, steps=steps, overlap=overlap)


def render_pipeline(point: IoPipelinePoint) -> str:
    mode = "async drain (overlapped)" if point.overlap else "blocking writes"
    return (
        f"I/O pipeline, {point.nranks} ranks x {point.steps} output steps, "
        f"{mode}: {point.elapsed_seconds:.1f} s scheduled vs "
        f"{point.serial_seconds:.1f} s serial "
        f"({point.overlap_speedup:.3f}x)"
    )


def render_frontier(points: list[IoScalingPoint]) -> str:
    table = Table(
        ["MPI procs", "nodes", "data (TB)", "write (s)", "bandwidth (GB/s)"],
        title="Figure 8: parallel I/O weak scaling (modeled, 1 output step)",
    )
    for p in points:
        table.add_row(
            [p.nranks, p.nnodes, p.total_bytes / TB, p.write_seconds,
             p.write_bandwidth / GB]
        )
    lines = [table.render()]
    peak = PAPER_FIG8["max_write_bandwidth_gb_s"]
    best = max(p.write_bandwidth for p in points) / GB
    lines.append(
        f"max bandwidth {best:.0f} GB/s (paper: {peak:.0f} GB/s, "
        f"~{PAPER_FIG8['peak_fraction']*100:.0f}% of the 5.5 TB/s filesystem peak)"
    )
    return "\n".join(lines)


def shape_checks(points: list[IoScalingPoint]) -> dict[str, bool]:
    by_ranks = {p.nranks: p for p in points}
    checks = {
        "bandwidth_grows_with_scale": all(
            a.write_bandwidth < b.write_bandwidth
            for a, b in zip(points, points[1:])
        ),
    }
    if 4096 in by_ranks:
        bw = by_ranks[4096].write_bandwidth
        checks["near_434_gb_s_at_512_nodes"] = 350 * GB < bw < 520 * GB
        checks["under_10pct_of_fs_peak"] = bw < 0.10 * 5.5 * TB
    if 8 in by_ranks and 4096 in by_ranks:
        # "write times are fairly flat" — compared from the first case
        # that fills a node (8 ranks); the 1-rank case writes only 1/8
        # of a node's data and is naturally faster
        ratio = by_ranks[4096].write_seconds / by_ranks[8].write_seconds
        checks["write_times_fairly_flat"] = ratio < 2.0
    return checks


# ---------------------------------------------------------------------------
# mini-scale real I/O
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MiniIoPoint:
    nranks: int
    total_bytes: int
    write_seconds: float

    @property
    def write_bandwidth(self) -> float:
        return self.total_bytes / self.write_seconds


def run_mini(*, local_cells: int = 16, ranks=(1, 2, 4, 8)) -> list[MiniIoPoint]:
    """Actual BP5 writes of a decomposed field, wall-clock measured."""
    import numpy as np

    from repro.adios.api import Adios
    from repro.mpi.executor import run_spmd

    points = []
    for nranks in ranks:
        tmp = Path(tempfile.mkdtemp(prefix="fig8-mini-"))
        path = tmp / "out.bp"
        shape = (local_cells, local_cells, local_cells * nranks)

        def worker(comm):
            adios = Adios()
            io = adios.declare_io("fig8")
            start = (0, 0, local_cells * comm.rank)
            count = (local_cells, local_cells, local_cells)
            u = io.define_variable("U", np.float64, shape=shape, start=start, count=count)
            v = io.define_variable("V", np.float64, shape=shape, start=start, count=count)
            block = np.full(count, float(comm.rank), order="F")
            begin = time.perf_counter()
            with io.open(str(path), "w", comm=comm) as engine:
                engine.begin_step()
                engine.put(u, block)
                engine.put(v, block)
                engine.end_step()
            return time.perf_counter() - begin

        if nranks == 1:
            import numpy as np  # noqa: F811 - local reuse

            adios = Adios()
            io = adios.declare_io("fig8")
            u = io.define_variable("U", np.float64, shape=shape, count=shape)
            v = io.define_variable("V", np.float64, shape=shape, count=shape)
            block = np.zeros(shape, order="F")
            begin = time.perf_counter()
            with io.open(str(path), "w") as engine:
                engine.begin_step()
                engine.put(u, block)
                engine.put(v, block)
                engine.end_step()
            seconds = [time.perf_counter() - begin]
        else:
            seconds = run_spmd(worker, nranks, timeout=120.0)
        total = 2 * 8 * local_cells**3 * nranks
        points.append(
            MiniIoPoint(
                nranks=nranks,
                total_bytes=total,
                write_seconds=max(seconds),
            )
        )
        shutil.rmtree(tmp, ignore_errors=True)
    return points


def render_mini(points: list[MiniIoPoint]) -> str:
    table = Table(
        ["ranks", "data (MB)", "write (s)", "bandwidth (MB/s)"],
        title="Figure 8 (mini): real BP5 writes on this machine",
    )
    for p in points:
        table.add_row(
            [p.nranks, p.total_bytes / 1e6, p.write_seconds,
             p.write_bandwidth / 1e6]
        )
    return table.render()
