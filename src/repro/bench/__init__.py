"""Experiment harness: regenerate every table and figure of the paper.

Submodules (one per experiment; see DESIGN.md's per-experiment index):

- :mod:`repro.bench.calibration` — every Frontier-calibrated constant,
  each annotated with the paper table/figure it comes from.
- :mod:`repro.bench.table2` — single-GCD stencil bandwidth comparison.
- :mod:`repro.bench.table3` — rocprof counter comparison.
- :mod:`repro.bench.fig5` — kernel/copy trace timeline.
- :mod:`repro.bench.fig6` — MPI weak scaling with per-rank variability.
- :mod:`repro.bench.fig7` — JIT vs. optimized bandwidth distributions.
- :mod:`repro.bench.fig8` — parallel I/O weak scaling.
- :mod:`repro.bench.listings` — Listing 1 (bpls provenance) and
  Listing 4 (kernel IR).
- :mod:`repro.bench.perfsuite` — self-performance suite: times the
  simulator's own hot paths against their retained reference
  implementations (``benchmarks/bench_selfperf.py``, CI-gated).

Each submodule exposes a ``run(...)`` returning a structured result and
a ``render(result)`` producing the paper-format text block; the
``benchmarks/`` pytest files call these.
"""

from repro.bench import calibration

__all__ = ["calibration"]
