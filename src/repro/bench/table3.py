"""Table 3: rocprof counters for the HIP and Julia kernels.

Reports, per kernel: workgroup size (wgr), LDS and scratch allocations
(lds/scr, the codegen differences Table 3 exposes), modeled FETCH_SIZE
and WRITE_SIZE, rocprof-normalized TCC_HIT/TCC_MISS, and average kernel
duration — side-by-side with the paper's measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.calibration import PAPER_TABLE3, ROCPROF_COUNTER_SAMPLE_DIVISOR
from repro.gpu.backends import get_backend
from repro.gpu.proxy import grayscott_launch_cost
from repro.util.tables import Table
from repro.util.units import GB

ROWS = (
    ("hip_1var", "HIP 1-var", "hip", "1var_norand"),
    ("julia_1var_norand", "Julia 1-var no-random", "julia", "1var_norand"),
    ("julia_2var", "Julia 2-var (application)", "julia", "application"),
)


@dataclass(frozen=True)
class Table3Column:
    key: str
    label: str
    wgr: int
    lds: int
    scr: int
    fetch_gb: float
    write_gb: float
    tcc_hit_m: float
    tcc_miss_m: float
    duration_ms: float
    paper: dict


def run(shape: tuple[int, int, int] = (1024, 1024, 1024)) -> list[Table3Column]:
    columns = []
    for key, label, backend_name, variant in ROWS:
        backend = get_backend(backend_name)
        cost = grayscott_launch_cost(shape, backend, variant=variant)
        columns.append(
            Table3Column(
                key=key,
                label=label,
                wgr=backend.workgroup_size,
                lds=backend.lds_bytes,
                scr=backend.scratch_bytes,
                fetch_gb=cost.fetch_bytes / GB,
                write_gb=cost.write_bytes / GB,
                tcc_hit_m=cost.tcc_hits / ROCPROF_COUNTER_SAMPLE_DIVISOR / 1e6,
                tcc_miss_m=cost.tcc_misses / ROCPROF_COUNTER_SAMPLE_DIVISOR / 1e6,
                duration_ms=cost.seconds * 1e3,
                paper=PAPER_TABLE3[key],
            )
        )
    return columns


def render(columns: list[Table3Column]) -> str:
    table = Table(
        ["metric", *(c.label for c in columns), "(paper values)"],
        title="Table 3: rocprof outputs, modeled vs paper",
    )
    metrics = [
        ("wgr", lambda c: c.wgr, "wgr"),
        ("lds", lambda c: c.lds, "lds"),
        ("scr", lambda c: c.scr, "scr"),
        ("FETCH_SIZE (GB)", lambda c: c.fetch_gb, "fetch_gb"),
        ("WRITE_SIZE (GB)", lambda c: c.write_gb, "write_gb"),
        ("TCC_HIT (M)", lambda c: c.tcc_hit_m, "tcc_hit_m"),
        ("TCC_MISS (M)", lambda c: c.tcc_miss_m, "tcc_miss_m"),
        ("Avg Duration (ms)", lambda c: c.duration_ms, "avg_duration_ms"),
    ]
    for label, getter, paper_key in metrics:
        paper_values = " / ".join(
            f"{c.paper[paper_key]:g}" for c in columns
        )
        table.add_row([label, *(getter(c) for c in columns), paper_values])
    from repro.gpu.occupancy import render_comparison

    return table.render() + "\n\n" + render_comparison()


def shape_checks(columns: list[Table3Column]) -> dict[str, bool]:
    by_key = {c.key: c for c in columns}
    hip = by_key["hip_1var"]
    j1 = by_key["julia_1var_norand"]
    j2 = by_key["julia_2var"]
    return {
        # traffic is an algorithm property: backend-independent
        "fetch_matches_across_backends": abs(hip.fetch_gb - j1.fetch_gb) < 1.0,
        # fetch ~3x the effective 8.59 GB (the TCC working-set effect)
        "fetch_is_about_3x_effective": 2.5 < hip.fetch_gb / 8.59 < 3.5,
        "two_vars_double_traffic": 1.9 < j2.fetch_gb / j1.fetch_gb < 2.1,
        # the codegen gap: Julia ~1.9x slower per launch
        "julia_duration_about_2x_hip": 1.5 < j1.duration_ms / hip.duration_ms < 2.5,
        "julia_uses_lds_and_scratch": j1.lds > 0 and j1.scr > 0 and hip.lds == 0,
        "counter_magnitudes_match_paper": all(
            0.2 < c.tcc_miss_m / c.paper["tcc_miss_m"] < 5.0 for c in columns
        ),
    }
