"""Listings 1 and 4: the provenance record and the kernel IR.

- Listing 1: run a small Gray-Scott workflow and ``bpls`` its dataset —
  the same attribute/variable/min-max record the paper shows.
- Listing 4: trace the application kernel and verify the IR property
  the paper highlights: 14 unique memory loads and 2 stores (7-point
  stencil x 2 variables, with repeated loads CSE'd) — i.e. the
  high-level implementation adds no hidden memory traffic.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.adios.bpls import bpls
from repro.core.params import GrayScottParams
from repro.core.settings import GrayScottSettings
from repro.core.stencil import kernel_args, make_gray_scott_kernel
from repro.core.workflow import Workflow
from repro.gpu.jit import KernelTrace, trace_kernel


@dataclass(frozen=True)
class Listing1Result:
    listing: str
    attributes: dict


def run_listing1(*, L: int = 16, steps: int = 20) -> Listing1Result:
    tmp = Path(tempfile.mkdtemp(prefix="listing1-"))
    try:
        settings = GrayScottSettings(
            L=L, steps=steps, plotgap=max(steps // 4, 1),
            output=str(tmp / "gs.bp"), noise=0.1,
        )
        Workflow(settings).run(analyze=False)
        listing = bpls(settings.output)
        from repro.adios.bp5 import read_index

        index = read_index(settings.output)
        attributes = {k: a.value for k, a in index.attributes.items()}
        return Listing1Result(listing=listing, attributes=attributes)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def listing1_shape_checks(result: Listing1Result) -> dict[str, bool]:
    text = result.listing
    return {
        "has_physics_attributes": all(
            key in result.attributes for key in ("Du", "Dv", "F", "k", "noise", "dt")
        ),
        "has_fields": " U " in text.replace("  ", " ") or "U" in text,
        "has_step_scalar": "scalar" in text,
        "has_schemas": "FIDES" in text and "VTX" in text,
        "has_minmax": "Min/Max" in text,
    }


@dataclass(frozen=True)
class Listing4Result:
    trace: KernelTrace
    ir: str


def run_listing4() -> Listing4Result:
    shape = (12, 12, 12)
    u = np.ones(shape, order="F")
    v = np.ones(shape, order="F")
    u_new = np.zeros(shape, order="F")
    v_new = np.zeros(shape, order="F")
    kernel = make_gray_scott_kernel()
    args = kernel_args(
        u, v, u_new, v_new, GrayScottParams(), seed=1, step=0
    )
    trace = trace_kernel(kernel, args)
    return Listing4Result(trace=trace, ir=trace.render_ir())


def listing4_shape_checks(result: Listing4Result) -> dict[str, bool]:
    trace = result.trace
    return {
        # the paper's headline: 14 unique loads, 2 stores
        "fourteen_unique_loads": len(trace.unique_loads) == 14,
        "two_stores": len(trace.unique_stores) == 2,
        "one_rand_call": trace.rand_calls == 1,
        "loads_are_seven_point": all(
            len(offsets) == 7 for offsets in trace.offsets_by_array().values()
        ),
    }
