"""Table 2: average bandwidth of stencil implementations on one GCD.

Reproduces the paper's comparison of effective (Eq. 5a) and total
(Eq. 5b) bandwidths for the Julia 2-variable application kernel, the
Julia 1-variable no-random kernel, and the HIP single-variable kernel,
against the MI250x theoretical peak.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.calibration import PAPER_TABLE2
from repro.gpu.proxy import grayscott_launch_cost
from repro.util.tables import Table
from repro.util.units import GB

#: (row key, display label, backend, kernel variant)
ROWS = (
    ("julia_2var", "Julia GrayScott.jl 2-variable (application)", "julia", "application"),
    ("julia_1var_norand", "Julia 1-variable no random", "julia", "1var_norand"),
    ("hip_1var", "HIP single variable", "hip", "1var_norand"),
)


@dataclass(frozen=True)
class Table2Row:
    key: str
    label: str
    effective_gb_s: float
    total_gb_s: float
    paper_effective: float
    paper_total: float


def run(shape: tuple[int, int, int] = (1024, 1024, 1024)) -> list[Table2Row]:
    """Model every Table 2 row at the paper's per-GCD problem size."""
    rows = []
    for key, label, backend, variant in ROWS:
        cost = grayscott_launch_cost(shape, backend, variant=variant)
        paper_eff, paper_total = PAPER_TABLE2[key]
        rows.append(
            Table2Row(
                key=key,
                label=label,
                effective_gb_s=cost.effective_bandwidth / GB,
                total_gb_s=cost.total_bandwidth / GB,
                paper_effective=paper_eff,
                paper_total=paper_total,
            )
        )
    return rows


def render(rows: list[Table2Row]) -> str:
    table = Table(
        ["Kernel", "Effective (GB/s)", "Total (GB/s)", "paper eff.", "paper total"],
        title="Table 2: average bandwidth of stencil implementations (modeled vs paper)",
    )
    for row in rows:
        table.add_row(
            [row.label, row.effective_gb_s, row.total_gb_s,
             row.paper_effective, row.paper_total]
        )
    peak_eff, peak_total = PAPER_TABLE2["peak"]
    table.add_row(["Theoretical peak MI250x (GCD)", peak_eff, peak_total, peak_eff, peak_total])
    return table.render()


def shape_checks(rows: list[Table2Row]) -> dict[str, bool]:
    """The paper's qualitative findings this table must reproduce."""
    by_key = {r.key: r for r in rows}
    hip = by_key["hip_1var"]
    j1 = by_key["julia_1var_norand"]
    j2 = by_key["julia_2var"]
    return {
        # "a nearly 50% performance difference exists vs native HIP"
        "julia_about_half_of_hip": 0.35 < j1.total_gb_s / hip.total_gb_s < 0.65,
        "hip_below_peak": hip.total_gb_s < 1600.0,
        "rand_costs_something": j2.total_gb_s <= j1.total_gb_s + 1e-9,
        "effective_below_total": all(
            r.effective_gb_s < r.total_gb_s for r in rows
        ),
    }
