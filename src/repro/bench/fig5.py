"""Figure 5: rocprof trace of GPU kernels and memory transfers.

Runs a few steps of the simulated-GPU Gray-Scott solver with the
profiler attached and renders the timeline: the JIT compilation burst,
then alternating kernel dispatches and the D2H/H2D face-staging copies
around each host-memory MPI exchange — the pattern the paper's Figure 5
shows from rocprof.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.settings import GrayScottSettings
from repro.core.simulation import Simulation
from repro.gpu.rocprof import Profiler, RocprofReport


@dataclass(frozen=True)
class Fig5Result:
    report: RocprofReport
    kernel_count: int
    copy_count: int
    compile_count: int


def run(*, L: int = 24, steps: int = 4, backend: str = "julia") -> Fig5Result:
    profiler = Profiler()
    settings = GrayScottSettings(L=L, steps=steps, backend=backend, noise=0.05)
    sim = Simulation(settings, profiler=profiler)
    sim.run(steps)
    report = profiler.report()
    kinds = [e.kind for e in report.events]
    return Fig5Result(
        report=report,
        kernel_count=kinds.count("kernel"),
        copy_count=kinds.count("copy"),
        compile_count=kinds.count("compile"),
    )


def render(result: Fig5Result) -> str:
    header = (
        "Figure 5: simulated rocprof trace "
        f"({result.kernel_count} kernels, {result.copy_count} copies, "
        f"{result.compile_count} JIT compilations)"
    )
    return header + "\n" + result.report.render_trace()


def shape_checks(result: Fig5Result) -> dict[str, bool]:
    return {
        "one_jit_compile_total": result.compile_count == 1,
        "one_kernel_per_step": result.kernel_count >= 1,
        "copies_bracket_each_exchange": result.copy_count >= 2 * result.kernel_count,
    }
