"""Figure 5: rocprof trace of GPU kernels and memory transfers.

Runs a few steps of the simulated-GPU Gray-Scott solver with the
profiler attached and renders the timeline: the JIT compilation burst,
then alternating kernel dispatches and the D2H/H2D face-staging copies
around each host-memory MPI exchange — the pattern the paper's Figure 5
shows from rocprof.

:func:`run_virtual` produces the same trace shape from the
discrete-event engine instead: a small virtual-SPMD job
(:class:`repro.core.virtual.VirtualWorkflow`) whose modeled kernel,
halo, and write events land in an :mod:`repro.observe` tracer and
render as a virtual-time timeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.settings import GrayScottSettings
from repro.core.simulation import Simulation
from repro.gpu.rocprof import Profiler, RocprofReport


@dataclass(frozen=True)
class Fig5Result:
    report: RocprofReport
    kernel_count: int
    copy_count: int
    compile_count: int


def run(*, L: int = 24, steps: int = 4, backend: str = "julia") -> Fig5Result:
    profiler = Profiler()
    settings = GrayScottSettings(L=L, steps=steps, backend=backend, noise=0.05)
    sim = Simulation(settings, profiler=profiler)
    sim.run(steps)
    report = profiler.report()
    kinds = [e.kind for e in report.events]
    return Fig5Result(
        report=report,
        kernel_count=kinds.count("kernel"),
        copy_count=kinds.count("copy"),
        compile_count=kinds.count("compile"),
    )


def render(result: Fig5Result) -> str:
    header = (
        "Figure 5: simulated rocprof trace "
        f"({result.kernel_count} kernels, {result.copy_count} copies, "
        f"{result.compile_count} JIT compilations)"
    )
    return header + "\n" + result.report.render_trace()


def shape_checks(result: Fig5Result) -> dict[str, bool]:
    return {
        "one_jit_compile_total": result.compile_count == 1,
        "one_kernel_per_step": result.kernel_count >= 1,
        "copies_bracket_each_exchange": result.copy_count >= 2 * result.kernel_count,
    }


# ---------------------------------------------------------------------------
# virtual-time variant (discrete-event engine)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig5VirtualResult:
    """Engine-driven Figure 5: modeled spans instead of profiler events."""

    tracer: object  # repro.observe.trace.Tracer
    nranks: int
    kernel_spans: int
    halo_spans: int
    write_spans: int
    elapsed_seconds: float


def run_virtual(
    *, nranks: int = 8, L: int = 64, steps: int = 4, overlap: bool = False,
    backend: str = "julia",
) -> Fig5VirtualResult:
    """A small virtual-SPMD run traced through :mod:`repro.observe`."""
    from repro.core.virtual import VirtualWorkflow
    from repro.observe.trace import Tracer

    tracer = Tracer()
    settings = GrayScottSettings(
        L=L, steps=steps, plotgap=max(steps // 2, 1), backend=backend
    )
    result = VirtualWorkflow(
        settings, nranks=nranks, overlap=overlap, tracer=tracer
    ).run()
    names = [s.name for s in tracer.spans]
    return Fig5VirtualResult(
        tracer=tracer,
        nranks=nranks,
        kernel_spans=sum(1 for n in names if n.startswith("gray_scott")),
        halo_spans=names.count("halo"),
        write_spans=names.count("bp5.write"),
        elapsed_seconds=result.elapsed_seconds,
    )


def render_virtual(result: Fig5VirtualResult, *, width: int = 72) -> str:
    from repro.observe.export import tracer_timeline

    header = (
        "Figure 5 (virtual): modeled timeline, "
        f"{result.nranks} ranks ({result.kernel_spans} kernels, "
        f"{result.halo_spans} halos, {result.write_spans} writes, "
        f"{result.elapsed_seconds:.3f} modeled s)"
    )
    return header + "\n" + tracer_timeline(result.tracer, width=width)


def virtual_shape_checks(result: Fig5VirtualResult) -> dict[str, bool]:
    steps_per_rank = result.kernel_spans // result.nranks
    return {
        "kernels_on_every_rank": result.kernel_spans >= result.nranks,
        "halo_per_kernel": result.halo_spans == result.kernel_spans,
        "writes_are_node_aggregated": 0 < result.write_spans <= result.kernel_spans,
        "steps_consistent": steps_per_rank * result.nranks == result.kernel_spans,
    }
