"""Table 1: the Frontier hardware/software summary.

Pure data (see :mod:`repro.cluster.frontier`); the bench target exists
so every table of the paper has a regenerating entry point, and its
checks pin the constants the performance models consume.
"""

from __future__ import annotations

from repro.cluster.frontier import FRONTIER, MachineSpec
from repro.util.units import GB, TB


def run() -> MachineSpec:
    return FRONTIER


def render(machine: MachineSpec) -> str:
    return machine.describe()


def shape_checks(machine: MachineSpec) -> dict[str, bool]:
    node = machine.node
    fs = machine.filesystem
    return {
        "nodes": machine.nodes == 9408,
        "gcd_bandwidth": node.gcd.hbm_peak_bytes_per_s == 1600 * GB,
        "gpu_cpu_link": node.gpu_cpu_bytes_per_s == 36 * GB,
        "fs_write_peak": fs.peak_write_bytes_per_s == 5.5 * TB,
        "eight_gcds_per_node": node.gcds_per_node == 8,
        "software_versions_recorded": machine.software.julia == "1.9.2",
    }
