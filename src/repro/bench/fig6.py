"""Figure 6: weak scaling with per-process wall-clock variability.

Two layers, per the substitution rule:

- :func:`run_frontier` — the modeled reproduction of the paper's runs
  (1 -> 4,096 GPUs, 1024^3 cells each) via
  :class:`repro.mpi.netmodel.WeakScalingModel`;
- :func:`run_mini` — *real* SPMD executions of the full solver at small
  scale on the thread-backed MPI substrate, demonstrating that the
  binding layers add no overhead: per-rank wall-clock stays flat as
  ranks grow with constant local work.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.bench.calibration import PAPER_FIG6_VARIABILITY
from repro.bench.sweep import RANK_LADDER
from repro.mpi.executor import run_spmd
from repro.mpi.netmodel import WeakScalingModel, WeakScalingPoint
from repro.util.tables import Table


def run_frontier(
    *,
    steps: int = 20,
    local_cells: int = 1024,
    ranks=RANK_LADDER,
    seed: int = 2023,
    overlap: bool = False,
    jobs: int = 1,
) -> list[WeakScalingPoint]:
    model = WeakScalingModel(
        local_shape=(local_cells,) * 3, steps=steps, backend="julia",
        seed=seed, overlap=overlap,
    )
    return model.run(list(ranks), jobs=jobs)


def render_frontier(points: list[WeakScalingPoint]) -> str:
    table = Table(
        ["MPI procs (GPUs)", "nodes", "min (s)", "mean (s)", "max (s)",
         "variability", "paper band"],
        title="Figure 6: weak scaling, per-process wall-clock (modeled)",
    )
    for p in points:
        band = PAPER_FIG6_VARIABILITY.get(p.nranks)
        band_text = f"{band[0]*100:.0f}-{band[1]*100:.0f}%" if band else "-"
        table.add_row(
            [p.nranks, p.nnodes, p.min_seconds, p.mean_seconds, p.max_seconds,
             f"{p.variability*100:.1f}%", band_text]
        )
    return table.render()


def shape_checks(points: list[WeakScalingPoint]) -> dict[str, bool]:
    by_ranks = {p.nranks: p for p in points}
    checks = {}
    if 512 in by_ranks:
        checks["small_variability_at_512"] = by_ranks[512].variability < 0.05
    if 4096 in by_ranks:
        checks["large_variability_at_4096"] = 0.08 < by_ranks[4096].variability < 0.20
    if 1 in by_ranks and 4096 in by_ranks:
        # weak scaling: mean per-process time grows only mildly
        checks["weak_scaling_flat"] = (
            by_ranks[4096].mean_seconds / by_ranks[1].mean_seconds < 1.25
        )
    return checks


# ---------------------------------------------------------------------------
# mini-scale real execution
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MiniScalingPoint:
    nranks: int
    local_cells: int
    steps: int
    rank_seconds: list[float]

    @property
    def mean_seconds(self) -> float:
        return sum(self.rank_seconds) / len(self.rank_seconds)

    @property
    def max_seconds(self) -> float:
        return max(self.rank_seconds)


def run_mini(
    *, local_cells: int = 12, steps: int = 5, ranks=(1, 2, 4, 8)
) -> list[MiniScalingPoint]:
    """Real weak scaling of the full solver on the thread substrate.

    The global domain grows with the rank count so local work stays
    constant (1D decomposition along the last axis keeps the per-rank
    block shape identical at every size).
    """
    from repro.core.settings import GrayScottSettings
    from repro.core.simulation import Simulation

    points = []
    for nranks in ranks:
        settings = GrayScottSettings(
            L=local_cells, nz=local_cells * nranks, steps=steps, noise=0.01
        )
        cart_dims = (1, 1, nranks)

        def worker(comm):
            sim = Simulation(settings, comm, cart_dims=cart_dims)
            start = time.perf_counter()
            sim.run(steps)
            return time.perf_counter() - start

        if nranks == 1:
            sim = Simulation(settings)
            start = time.perf_counter()
            sim.run(steps)
            seconds = [time.perf_counter() - start]
        else:
            seconds = run_spmd(worker, nranks, timeout=120.0)
        points.append(
            MiniScalingPoint(
                nranks=nranks,
                local_cells=local_cells,
                steps=steps,
                rank_seconds=seconds,
            )
        )
    return points


def render_mini(points: list[MiniScalingPoint]) -> str:
    table = Table(
        ["ranks", "global cells", "mean (s)", "max (s)"],
        title=(
            "Figure 6 (mini): real SPMD weak scaling of the solver "
            f"({points[0].local_cells}^3-per-rank local blocks)"
        ),
    )
    for p in points:
        table.add_row(
            [p.nranks, f"{p.local_cells}^3 x {p.nranks}", p.mean_seconds, p.max_seconds]
        )
    return table.render()
