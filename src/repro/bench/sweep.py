"""Shared scaling-sweep scaffolding for the Frontier-scale models.

The paper runs every weak-scaling experiment over the same factor-of-8
job-size ladder (Section 4.1): 1 -> 8 -> 64 -> 512 -> 4,096 GPUs. Both
:class:`repro.mpi.netmodel.WeakScalingModel` (Fig. 6) and
:class:`repro.adios.fsmodel.IoWeakScalingModel` (Fig. 8) — and the
figure drivers in :mod:`repro.bench.fig6` / :mod:`repro.bench.fig8` —
take their ladder from here instead of each hard-coding it.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, TypeVar

#: the paper's factor-of-8 job-size ladder (ranks == GCDs)
RANK_LADDER: tuple[int, ...] = (1, 8, 64, 512, 4096)

P = TypeVar("P")


def run_ladder(
    run_point: Callable[[int], P],
    nranks_list: Iterable[int] | None = None,
    *,
    jobs: int = 1,
) -> list[P]:
    """Evaluate ``run_point`` at every job size of the ladder.

    ``nranks_list=None`` means the paper's :data:`RANK_LADDER`; any
    iterable of rank counts substitutes a custom sweep. ``jobs > 1``
    evaluates the points on a :func:`repro.par.run_tasks` process pool
    — every point's model derives its randomness purely from the seed,
    so the returned list is bit-identical to the serial one (``jobs=0``
    means one worker per core).
    """
    sizes: Sequence[int] = (
        RANK_LADDER if nranks_list is None else tuple(nranks_list)
    )
    if jobs == 1:
        return [run_point(n) for n in sizes]
    from repro.par import run_tasks

    return run_tasks(run_point, sizes, jobs=jobs, chunksize=1)
