"""Self-performance suite: timings for the repo's own hot paths.

The figure benchmarks measure the *modeled* machine; this suite
measures the *simulator*. Each case times one optimization shipped by
the perf pass against its retained reference implementation, checking
bit-identity where a reference exists:

- ``cache_sweep`` — :meth:`repro.gpu.cache.TraceCacheSim.multi_sweep`
  vector engine vs. the retained scalar loop (identical counters);
- ``jit_trace_memo`` — :func:`repro.gpu.jit.memoized_trace` vs. a cold
  :func:`repro.gpu.jit.trace_kernel` per launch (identical traces);
- ``pack_unpack`` — :func:`repro.mpi.datatypes.pack`/``unpack`` strided
  view vs. the retained gather path (identical wire bytes);
- ``io_bp5`` — :func:`repro.adios.bp5.append_blocks` batched writev of
  zero-copy :func:`~repro.adios.bp5.block_payload` views vs. the
  retained per-block ``tobytes`` + ``append_block`` path (identical
  file bytes, offsets, and CRCs);
- ``par_speedup`` — the Fig. 6 rank ladder through
  :func:`repro.par.run_tasks` at ``--jobs 2`` vs. serial (identical
  points; the speedup is the process-parallel win on multi-core CI);
- ``sched_engine`` — a virtual-SPMD overlap run; no slow engine is
  retained, so the case reports absolute throughput plus a
  machine-normalized event rate for the regression gate;
- ``vspmd`` — the vector epoch-queue tier of
  :class:`repro.core.virtual.VirtualWorkflow` vs. the retained scalar
  event-heap tier on the same overlap run (identical reductions,
  barrier recurrence, and per-rank finish times), gated against the
  *absolute* ``min_rate_speedup`` (5.0x): the NumPy epoch engine must
  stay at least 5x above the scalar reference's event rate — the
  million-rank contract, not a host-relative floor;
- ``trace_streaming`` — the bounded-memory streaming sink
  (:mod:`repro.observe.stream`): raw spans/sec through a
  ``ShardedPerfettoWriter`` (machine-normalized for the rate gate),
  plus the tracing overhead of streaming the real solver workflow vs.
  the untraced run — gated against the *absolute* ``overhead_limit``
  (1.10x) rather than a derated baseline, because "streaming tracing
  costs <= 10%" is the contract, not a host-relative floor;
- ``ir_passes`` — the stencil-IR rewrite pipeline
  (:class:`repro.ir.passes.PassManager` over the traced workflow
  module): pipeline wall time plus the dimensionless op-count
  reduction ratios the passes deliver, with the pass-legality contract
  checked as bit-identity of :func:`repro.ir.interp.evaluate_module`
  before vs. after rewriting;
- ``serve_load`` — the cached service (:mod:`repro.serve`) under a
  synthetic concurrent-client mix: saturation throughput
  (machine-normalized for the rate gate) plus hit/miss latency
  p50/p99, gated against the *absolute*
  ``hit_miss_p99_limit`` (0.10): a cache hit's tail latency must stay
  at least 10x below a cache miss's — the service contract, not a
  host-relative floor;
- ``jit_warm`` — the persistent compilation cache
  (:mod:`repro.gpu.jitcache`): first-launch latency over distinct
  kernel specializations in a cold process (full trace) vs. a
  warm-started one (plans preloaded from disk), gated against the
  *absolute* ``warm_cold_limit`` (0.20): a warm first launch's p50
  must stay at least 5x below a cold one's — the warm-start contract
  (the Fig. 7 gap, closed) — with bit-identity of every persisted
  plan against a fresh trace.

``run_suite`` returns a :class:`SuiteResult`; ``to_json`` produces the
schema-stable payload written to ``BENCH_selfperf.json`` (schema id
:data:`SCHEMA`); ``check_regressions`` compares a run against the
committed baseline and reports anything >25% worse. The CLI wrapper is
``benchmarks/bench_selfperf.py``; CI runs it with ``--quick --check``.

Machine normalization: raw seconds are not comparable across CI hosts,
so the gate only consumes dimensionless quantities — optimized-vs-
reference speedups, and event rates divided by ``loop_score`` (the
host's measured pure-Python loop throughput in Miter/s).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

import numpy as np

#: schema identifier written to (and required of) BENCH_selfperf.json
SCHEMA = "repro.bench.selfperf/1"

#: regression tolerance of :func:`check_regressions` (fractional)
TOLERANCE = 0.25


@dataclass
class CaseResult:
    """One hot path's before/after timing."""

    name: str
    optimized_seconds: float
    #: retained slow-path timing; None when no reference is kept
    reference_seconds: float | None
    #: True when optimized and reference outputs were bit-identical,
    #: None for cases without a comparable reference output
    identical: bool | None
    metrics: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float | None:
        if self.reference_seconds is None or self.optimized_seconds <= 0:
            return None
        return self.reference_seconds / self.optimized_seconds


@dataclass
class SuiteResult:
    quick: bool
    #: pure-Python loop throughput of this host (Miter/s) — divides
    #: absolute rates into machine-normalized ones for the gate
    loop_score: float
    cases: list[CaseResult]

    def case(self, name: str) -> CaseResult:
        for c in self.cases:
            if c.name == name:
                return c
        raise KeyError(name)


def _measure_loop_score() -> float:
    """Millions of trivial loop iterations per second on this host."""
    n = 2_000_000
    t0 = time.perf_counter()
    s = 0
    for i in range(n):
        s += i
    dt = time.perf_counter() - t0
    return n / dt / 1e6


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# -- cases -------------------------------------------------------------------


def _case_cache_sweep(quick: bool) -> CaseResult:
    from repro.gpu.cache import TraceCacheSim
    from repro.gpu.proxy import kernel_access_pattern

    L = 40 if quick else 192
    shape = (L, L, L)
    loads, stores = kernel_access_pattern(2)
    capacity = 8 * 1024 * 1024  # the MI250x GCD's 8 MiB TCC

    def run(engine: str):
        sim = TraceCacheSim(capacity)
        est = sim.multi_sweep(shape, 8, loads, stores, engine=engine)
        return est, sim.hits, sim.misses

    t0 = time.perf_counter()
    vec_est, vec_hits, vec_misses = run("vector")
    vec_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    ref_est, ref_hits, ref_misses = run("scalar")
    ref_s = time.perf_counter() - t0

    identical = (
        vec_est == ref_est and vec_hits == ref_hits and vec_misses == ref_misses
    )
    return CaseResult(
        name="cache_sweep",
        optimized_seconds=vec_s,
        reference_seconds=ref_s,
        identical=identical,
        metrics={
            "L": L,
            "fetch_bytes": vec_est.fetch_bytes,
            "write_bytes": vec_est.write_bytes,
            "tcc_hits": vec_est.tcc_hits,
            "tcc_misses": vec_est.tcc_misses,
        },
    )


def _case_jit_trace_memo(quick: bool) -> CaseResult:
    from repro.core.stencil import kernel_args, make_gray_scott_kernel
    from repro.core.settings import GrayScottSettings
    from repro.gpu.jit import TraceMemo, trace_kernel

    settings = GrayScottSettings(L=16, backend="julia")
    shape = (12, 12, 12)
    u, v = (np.ones(shape, order="F") for _ in range(2))
    u_new, v_new = (np.zeros(shape, order="F") for _ in range(2))
    kernel = make_gray_scott_kernel()
    args = kernel_args(u, v, u_new, v_new, settings.params(), seed=1, step=0)
    launches = 50 if quick else 100
    memo = TraceMemo()
    ref_trace = trace_kernel(kernel, args)
    memo_trace = memo.trace(kernel, args)  # prime: first launch traces

    def ref_batch():
        for _ in range(launches):
            trace_kernel(kernel, args)

    def memo_batch():
        for _ in range(launches):
            memo.trace(kernel, args)

    # interleaved best-of-3: the memo batch is sub-millisecond, so a
    # single pass is at the mercy of scheduler noise
    opt_s = ref_s = float("inf")
    for _ in range(3):
        opt_s = min(opt_s, _best_of(memo_batch, 1))
        ref_s = min(ref_s, _best_of(ref_batch, 1))

    identical = (
        ref_trace.ir_lines == memo_trace.ir_lines
        and ref_trace.flops == memo_trace.flops
    )
    return CaseResult(
        name="jit_trace_memo",
        optimized_seconds=opt_s,
        reference_seconds=ref_s,
        identical=identical,
        metrics={
            "launches": launches,
            "memo_hits": memo.hits,
            "memo_misses": memo.misses,
        },
    )


def _case_pack_unpack(quick: bool) -> CaseResult:
    from repro.mpi.datatypes import VectorDatatype, pack, unpack

    n = 96 if quick else 128
    rng = np.random.default_rng(2023)
    arr = np.asfortranarray(rng.random((n, n, n)))
    face = VectorDatatype(n, n, n * n).commit()  # one y-z ghost face
    repeats = 100 if quick else 200

    out = np.zeros_like(arr)

    def roundtrip(mode: str):
        wire = pack(arr, face, offset_elements=1, mode=mode)
        unpack(out, face, wire, offset_elements=1, mode=mode)
        return wire

    def batch(mode: str):
        for _ in range(repeats):
            roundtrip(mode)

    # interleaved best-of-5 batches: quick-mode iterations are tens of
    # microseconds, so a single pass is at the mercy of CPU frequency
    # and scheduler noise
    wire_s = roundtrip("strided")
    out_s = out.copy()
    out[:] = 0.0
    wire_g = roundtrip("gather")
    identical = (
        wire_s.tobytes() == wire_g.tobytes()
        and out_s.tobytes() == out.tobytes()
    )
    opt_s = ref_s = float("inf")
    for _ in range(5):
        opt_s = min(opt_s, _best_of(lambda: batch("strided"), 1))
        ref_s = min(ref_s, _best_of(lambda: batch("gather"), 1))
    return CaseResult(
        name="pack_unpack",
        optimized_seconds=opt_s,
        reference_seconds=ref_s,
        identical=identical,
        metrics={"n": n, "repeats": repeats, "wire_bytes": wire_s.nbytes},
    )


def _case_io_bp5(quick: bool) -> CaseResult:
    import tempfile
    import zlib
    from pathlib import Path

    from repro.adios import bp5

    nblocks = 64 if quick else 128
    edge = 16 if quick else 32
    rng = np.random.default_rng(7)
    blocks = [
        np.asfortranarray(rng.random((edge, edge, edge)))
        for _ in range(nblocks)
    ]

    def fast(root: Path):
        payloads, crcs = [], []
        for b in blocks:
            payload, crc = bp5.block_payload(b)
            payloads.append(payload)
            crcs.append(crc)
        return bp5.append_blocks(root, 0, payloads), crcs

    def ref(root: Path):
        # the retained per-block path: one tobytes copy and one
        # open+write syscall pair per block
        offsets, crcs = [], []
        for b in blocks:
            payload = b.tobytes(order="F")
            crcs.append(zlib.crc32(payload) & 0xFFFFFFFF)
            offsets.append(bp5.append_block(root, 0, payload))
        return offsets, crcs

    repeats = 3 if quick else 5
    opt_s = ref_s = float("inf")
    identical = True
    with tempfile.TemporaryDirectory() as tmp:
        for i in range(repeats):
            fast_root = Path(tmp) / f"fast{i}.bp"
            ref_root = Path(tmp) / f"ref{i}.bp"
            bp5.create_dataset(fast_root, 1)
            bp5.create_dataset(ref_root, 1)
            t0 = time.perf_counter()
            fast_offsets, fast_crcs = fast(fast_root)
            opt_s = min(opt_s, time.perf_counter() - t0)
            t0 = time.perf_counter()
            ref_offsets, ref_crcs = ref(ref_root)
            ref_s = min(ref_s, time.perf_counter() - t0)
            identical = identical and (
                fast_offsets == ref_offsets
                and fast_crcs == ref_crcs
                and (fast_root / "data.0").read_bytes()
                == (ref_root / "data.0").read_bytes()
            )
    return CaseResult(
        name="io_bp5",
        optimized_seconds=opt_s,
        reference_seconds=ref_s,
        identical=identical,
        metrics={
            "blocks": nblocks,
            "block_bytes": blocks[0].nbytes,
            "step_bytes": nblocks * blocks[0].nbytes,
        },
    )


def _case_par_speedup(quick: bool) -> CaseResult:
    from repro.bench import fig6

    ranks = (1, 8, 64, 512) if quick else (1, 8, 64, 512, 4096)
    steps = 10 if quick else 20
    jobs = 2

    t0 = time.perf_counter()
    serial = fig6.run_frontier(steps=steps, ranks=ranks)
    ref_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    par = fig6.run_frontier(steps=steps, ranks=ranks, jobs=jobs)
    opt_s = time.perf_counter() - t0

    identical = len(serial) == len(par) and all(
        a.nranks == b.nranks
        and a.steps == b.steps
        and np.array_equal(a.rank_seconds, b.rank_seconds)
        and a.kernel_seconds_per_step == b.kernel_seconds_per_step
        and a.comm_seconds_mean == b.comm_seconds_mean
        for a, b in zip(serial, par)
    )
    return CaseResult(
        name="par_speedup",
        optimized_seconds=opt_s,
        reference_seconds=ref_s,
        identical=identical,
        metrics={"ladder": list(ranks), "steps": steps, "jobs": jobs},
    )


def _case_sched_engine(quick: bool, loop_score: float) -> CaseResult:
    from repro.core.settings import GrayScottSettings
    from repro.core.virtual import VirtualWorkflow

    nranks = 1024 if quick else 16384
    settings = GrayScottSettings(
        L=64, steps=10 if quick else 20, plotgap=5 if quick else 10,
        backend="julia",
    )
    t0 = time.perf_counter()
    result = VirtualWorkflow(settings, nranks=nranks, overlap=True).run()
    wall = time.perf_counter() - t0
    events_per_second = result.events_processed / wall
    return CaseResult(
        name="sched_engine",
        optimized_seconds=wall,
        reference_seconds=None,
        identical=None,
        metrics={
            "virtual_ranks": nranks,
            "events": result.events_processed,
            "events_per_second": events_per_second,
            # dimensionless: engine events per plain-Python loop
            # iteration — comparable across differently-clocked hosts
            "normalized_rate": events_per_second / (loop_score * 1e6),
            "modeled_elapsed_seconds": result.elapsed_seconds,
        },
    )


#: absolute floor on the vspmd vector-vs-scalar event-rate speedup
#: (the epoch-queue tier must process events >= 5x faster than the
#: retained scalar heap) enforced by :func:`check_regressions`
MIN_RATE_SPEEDUP = 5.0


def _case_vspmd(quick: bool, loop_score: float) -> CaseResult:
    from repro.core.settings import GrayScottSettings
    from repro.core.virtual import VirtualWorkflow

    nranks = 2048 if quick else 16384
    settings = GrayScottSettings(
        L=64, steps=10 if quick else 20, plotgap=5 if quick else 10,
        backend="julia",
    )

    def run(engine: str):
        t0 = time.perf_counter()
        result = VirtualWorkflow(
            settings, nranks=nranks, overlap=True, engine=engine,
        ).run()
        return result, time.perf_counter() - t0

    vec, opt_s = run("vector")
    ref, ref_s = run("scalar")

    # the tier contract: identical reductions, barrier recurrence, and
    # per-rank finish times — events_processed legitimately differs
    # (the vector tier retires whole epochs per rank, the scalar heap
    # one delay at a time)
    identical = (
        vec.elapsed_seconds == ref.elapsed_seconds
        and np.array_equal(vec.rank_finish_seconds, ref.rank_finish_seconds)
        and vec.results == ref.results
        and vec.collectives_per_rank == ref.collectives_per_rank
    )
    vec_rate = vec.events_processed / opt_s
    ref_rate = ref.events_processed / ref_s
    return CaseResult(
        name="vspmd",
        optimized_seconds=opt_s,
        reference_seconds=ref_s,
        identical=identical,
        metrics={
            "virtual_ranks": nranks,
            "events": vec.events_processed,
            "reference_events": ref.events_processed,
            "events_per_second": vec_rate,
            # dimensionless: engine events per plain-Python loop
            # iteration — comparable across differently-clocked hosts
            "normalized_rate": vec_rate / (loop_score * 1e6),
            "rate_speedup": vec_rate / ref_rate,
            "min_rate_speedup": MIN_RATE_SPEEDUP,
        },
    )


#: absolute ceiling on streaming-tracing overhead (traced / untraced
#: wall time of the smoke workflow) enforced by :func:`check_regressions`
OVERHEAD_LIMIT = 1.10


def _case_trace_streaming(quick: bool, loop_score: float) -> CaseResult:
    import tempfile
    from pathlib import Path

    from repro.core.settings import GrayScottSettings
    from repro.core.workflow import Workflow
    from repro.observe import trace as observe
    from repro.observe.stream import ShardedPerfettoWriter
    from repro.observe.trace import SIM, Tracer

    # raw sink throughput: a synthetic span pump straight through the
    # tracer into rotating shards (retain=False, so this measures the
    # streaming path itself, not list growth)
    nspans = 20_000 if quick else 100_000
    with tempfile.TemporaryDirectory() as tmp:
        sink = ShardedPerfettoWriter(
            Path(tmp) / "pump", flush_threshold=4096, shard_spans=32768
        )
        tracer = Tracer(sinks=[sink], retain=False)
        add_span = tracer.add_span
        t0 = time.perf_counter()
        for i in range(nspans):
            add_span(
                "pump", cat="core", clock=SIM, process=f"p{i & 7}",
                thread="core", start=float(i), seconds=1.0,
                args={"i": i & 15},
            )
        tracer.close()
        pump_s = time.perf_counter() - t0
        max_buffered = sink.max_buffered
        shards = len(sink._entries)
    spans_per_second = nspans / pump_s

    # tracing overhead on the real (compute-dominated) solver workflow
    # — the smoke workload of the <=10% acceptance gate
    with tempfile.TemporaryDirectory() as tmp:
        settings = GrayScottSettings(
            L=48 if quick else 64,
            steps=24 if quick else 32,
            plotgap=4,
            output=str(Path(tmp) / "bench.bp"),
        )
        runs = [0]

        def untraced():
            Workflow(settings).run()

        def traced():
            runs[0] += 1
            stream = ShardedPerfettoWriter(Path(tmp) / f"t{runs[0]}")
            with observe.session(Tracer(sinks=[stream], retain=False)) as tr:
                Workflow(settings).run()
                tr.close()

        # interleaved best-of: both paths see the same cache/frequency
        # conditions, so the ratio is not biased by measurement order
        ref_s = opt_s = float("inf")
        for _ in range(3):
            ref_s = min(ref_s, _best_of(untraced, 1))
            opt_s = min(opt_s, _best_of(traced, 1))
    return CaseResult(
        name="trace_streaming",
        optimized_seconds=pump_s,
        reference_seconds=None,
        identical=None,
        metrics={
            "spans": nspans,
            "spans_per_second": spans_per_second,
            # dimensionless: streamed spans per plain-Python loop
            # iteration — comparable across differently-clocked hosts
            "normalized_rate": spans_per_second / (loop_score * 1e6),
            "max_buffered": max_buffered,
            "shards": shards,
            "untraced_seconds": ref_s,
            "traced_seconds": opt_s,
            "overhead_ratio": opt_s / ref_s,
            "overhead_limit": OVERHEAD_LIMIT,
        },
    )


def _case_ir_passes(quick: bool) -> CaseResult:
    from repro.ir.build import workflow_module
    from repro.ir.interp import evaluate_module
    from repro.ir.passes import PassManager

    extent = 6  # evaluator-friendly domain; the trace is extent-invariant
    module = workflow_module(extent=extent)
    rewritten, _ = PassManager().run(module)
    repeats = 10 if quick else 30
    pipeline_s = _best_of(lambda: PassManager().run(module), repeats)

    # the pass-legality contract: evaluating the rewritten module over
    # the same inputs must reproduce every output array bit for bit
    rng = np.random.default_rng(11)
    shape = (extent,) * 3
    base = {
        "u": np.asfortranarray(rng.random(shape)),
        "v": np.asfortranarray(rng.random(shape)),
        "u_new": np.zeros(shape, order="F"),
        "v_new": np.zeros(shape, order="F"),
        "lap": np.zeros(shape, order="F"),
    }
    reference = {k: a.copy(order="F") for k, a in base.items()}
    optimized = {k: a.copy(order="F") for k, a in base.items()}
    evaluate_module(module, reference)
    evaluate_module(rewritten, optimized)
    identical = all(
        np.array_equal(reference[name], optimized[name]) for name in base
    )

    before, after = module.op_counts(), rewritten.op_counts()
    return CaseResult(
        name="ir_passes",
        optimized_seconds=pipeline_s,
        reference_seconds=None,
        identical=identical,
        metrics={
            "funcs_before": 2,
            "funcs_after": len(rewritten.funcs),
            "load_ops_before": before["load"],
            "load_ops_after": after["load"],
            # dimensionless reduction ratios — comparable across hosts
            "load_reduction": 1.0 - after["load"] / before["load"],
            "arith_reduction": 1.0 - after["arith"] / before["arith"],
        },
    )


#: absolute ceiling on the serve_load hit/miss p99 ratio (cache hits
#: must stay >= 10x faster at the tail) enforced by
#: :func:`check_regressions`
HIT_MISS_P99_LIMIT = 0.10


def _case_serve_load(quick: bool, loop_score: float) -> CaseResult:
    import tempfile
    from pathlib import Path

    from repro.core.settings import GrayScottSettings
    from repro.serve.loadgen import run_load

    clients = 8 if quick else 16
    requests = 6 if quick else 12
    with tempfile.TemporaryDirectory() as tmp:
        settings = GrayScottSettings(
            L=16, steps=6, plotgap=3,
            output=str(Path(tmp) / "serve.bp"),
        )
        t0 = time.perf_counter()
        report, _ = run_load(
            settings,
            clients=clients,
            requests=requests,
            hit_fraction=0.75,
            workers=2,
            backend="thread",
            workdir=str(Path(tmp) / "jobs"),
        )
        wall = time.perf_counter() - t0
    return CaseResult(
        name="serve_load",
        optimized_seconds=wall,
        reference_seconds=None,
        identical=None,
        metrics={
            "clients": clients,
            "requests_per_client": requests,
            "completed": report.completed,
            "failed": report.failed,
            "cache_hits": report.cache_hits,
            "coalesced": report.coalesced,
            "jobs_per_second": report.throughput,
            # dimensionless: service answers per plain-Python loop
            # iteration — comparable across differently-clocked hosts
            "normalized_rate": report.throughput / (loop_score * 1e6),
            "hit_p50_seconds": report.hit_p50,
            "hit_p99_seconds": report.hit_p99,
            "miss_p50_seconds": report.miss_p50,
            "miss_p99_seconds": report.miss_p99,
            "hit_miss_p99_ratio": report.hit_miss_p99_ratio,
            "hit_miss_p99_limit": HIT_MISS_P99_LIMIT,
        },
    )


#: absolute ceiling on the jit_warm warm/cold first-launch p50 ratio
#: (warm starts from the persistent cache must answer first launches
#: >= 5x faster than cold traces) enforced by :func:`check_regressions`
WARM_COLD_LIMIT = 0.20


def _case_jit_warm(quick: bool) -> CaseResult:
    import tempfile

    from repro.core.settings import GrayScottSettings
    from repro.core.stencil import kernel_args, make_gray_scott_kernel
    from repro.gpu import jitcache
    from repro.gpu.jit import TraceMemo, trace_kernel

    settings = GrayScottSettings(L=16, backend="julia")
    kernel = make_gray_scott_kernel()
    edges = range(8, 14) if quick else range(8, 24)
    arg_sets = []
    for edge in edges:
        shape = (edge,) * 3
        u, v = (np.ones(shape, order="F") for _ in range(2))
        u_new, v_new = (np.zeros(shape, order="F") for _ in range(2))
        arg_sets.append(
            kernel_args(u, v, u_new, v_new, settings.params(), seed=1, step=0)
        )

    def first_launches(memo: TraceMemo) -> list[float]:
        times = []
        for args in arg_sets:
            t0 = time.perf_counter()
            memo.trace(kernel, args)
            times.append(time.perf_counter() - t0)
        return times

    repeats = 3
    with tempfile.TemporaryDirectory() as tmp:
        # cold: a fresh process traces every specialization on first
        # launch (no disk tier attached — pure trace cost)
        cold_times = np.full(len(arg_sets), np.inf)
        for _ in range(repeats):
            cold_times = np.minimum(
                cold_times, first_launches(TraceMemo())
            )

        # persist every plan, as `run --jit-cache` would have
        seed_memo = TraceMemo()
        cache = jitcache.JitDiskCache(tmp)
        for args in arg_sets:
            key = seed_memo.signature(kernel, args, None)
            cache.store(key, kernel, seed_memo.trace(kernel, args))

        # warm: a fresh memo preloaded from the persisted plans — the
        # first launch of every specialization is already a memo hit
        warm_times = np.full(len(arg_sets), np.inf)
        warm_memo = TraceMemo()
        for _ in range(repeats):
            warm_memo = TraceMemo()
            preloaded = jitcache.warm_start(tmp, memo=warm_memo)["preloaded"]
            warm_times = np.minimum(
                warm_times, first_launches(warm_memo)
            )
        jitcache.deconfigure(memo=warm_memo)

        # bit-identity: every warm answer is byte for byte the plan a
        # fresh trace of the same specialization produces
        identical = all(
            jitcache.serialize_trace(warm_memo.trace(kernel, args))
            == jitcache.serialize_trace(trace_kernel(kernel, args))
            for args in arg_sets
        )

    cold_p50 = float(np.percentile(cold_times, 50))
    warm_p50 = float(np.percentile(warm_times, 50))
    return CaseResult(
        name="jit_warm",
        optimized_seconds=float(warm_times.sum()),
        reference_seconds=float(cold_times.sum()),
        identical=identical,
        metrics={
            "shape_classes": len(arg_sets),
            "preloaded": preloaded,
            "warm_memo_hits": warm_memo.hits,
            "cold_p50_seconds": cold_p50,
            "warm_p50_seconds": warm_p50,
            "warm_cold_ratio": warm_p50 / cold_p50,
            "warm_cold_limit": WARM_COLD_LIMIT,
        },
    )


def run_suite(*, quick: bool = False) -> SuiteResult:
    """Run all hot-path cases; ``quick`` shrinks sizes to CI scale."""
    loop_score = _measure_loop_score()
    cases = [
        _case_cache_sweep(quick),
        _case_jit_trace_memo(quick),
        _case_pack_unpack(quick),
        _case_io_bp5(quick),
        _case_par_speedup(quick),
        _case_sched_engine(quick, loop_score),
        _case_vspmd(quick, loop_score),
        _case_trace_streaming(quick, loop_score),
        _case_ir_passes(quick),
        _case_serve_load(quick, loop_score),
        _case_jit_warm(quick),
    ]
    return SuiteResult(quick=quick, loop_score=loop_score, cases=cases)


# -- schema ------------------------------------------------------------------


def to_json(suite: SuiteResult) -> dict:
    """The schema-stable payload of ``BENCH_selfperf.json``."""
    return {
        "schema": SCHEMA,
        "quick": suite.quick,
        "loop_score_miters_per_s": round(suite.loop_score, 3),
        "cases": [
            {
                "name": c.name,
                "optimized_seconds": round(c.optimized_seconds, 6),
                "reference_seconds": (
                    None if c.reference_seconds is None
                    else round(c.reference_seconds, 6)
                ),
                "speedup": (
                    None if c.speedup is None else round(c.speedup, 3)
                ),
                "identical": c.identical,
                "metrics": {
                    k: (round(v, 6) if isinstance(v, float) else v)
                    for k, v in sorted(c.metrics.items())
                },
            }
            for c in suite.cases
        ],
    }


#: derating applied by :func:`to_baseline`: committed floors are half
#: the measured values, so scheduler jitter on microsecond-scale cases
#: cannot trip the gate but losing an optimization outright (speedup
#: collapsing to ~1x) still does
BASELINE_DERATE = 0.5


def to_baseline(payload: dict) -> dict:
    """Derate a run's payload into a committable baseline."""
    out = json.loads(json.dumps(payload))
    out["note"] = (
        "baseline floors are measured values derated by "
        f"{BASELINE_DERATE}; regenerate with bench_selfperf.py "
        "--write-baseline"
    )
    for case in out["cases"]:
        if case.get("speedup"):
            case["speedup"] = round(case["speedup"] * BASELINE_DERATE, 3)
        rate = case.get("metrics", {}).get("normalized_rate")
        if rate:
            case["metrics"]["normalized_rate"] = round(
                rate * BASELINE_DERATE, 6
            )
    return out


def check_regressions(
    current: dict, baseline: dict, *, tolerance: float = TOLERANCE
) -> list[str]:
    """Failures of ``current`` vs ``baseline`` (>``tolerance`` worse).

    Only dimensionless quantities are gated: per-case speedups, the
    normalized event rate, and the bit-identity flags. Raw seconds are
    reported but never compared — CI hosts differ too much.
    """
    failures: list[str] = []
    for payload, label in ((current, "current"), (baseline, "baseline")):
        if payload.get("schema") != SCHEMA:
            failures.append(
                f"{label} payload has schema {payload.get('schema')!r}, "
                f"expected {SCHEMA!r}"
            )
    if failures:
        return failures
    base_cases = {c["name"]: c for c in baseline["cases"]}
    cur_cases = {c["name"]: c for c in current["cases"]}
    for name, base in base_cases.items():
        cur = cur_cases.get(name)
        if cur is None:
            failures.append(f"case {name!r} missing from current run")
            continue
        if base.get("identical") and not cur.get("identical"):
            failures.append(
                f"{name}: optimized path no longer bit-identical to its "
                "reference"
            )
        base_speedup = base.get("speedup")
        cur_speedup = cur.get("speedup")
        if base_speedup and cur_speedup is not None:
            floor = base_speedup * (1.0 - tolerance)
            if cur_speedup < floor:
                failures.append(
                    f"{name}: speedup {cur_speedup:.2f}x fell below "
                    f"{floor:.2f}x (baseline {base_speedup:.2f}x - "
                    f"{tolerance:.0%})"
                )
        base_rate = base.get("metrics", {}).get("normalized_rate")
        cur_rate = cur.get("metrics", {}).get("normalized_rate")
        if base_rate and cur_rate is not None:
            floor = base_rate * (1.0 - tolerance)
            if cur_rate < floor:
                failures.append(
                    f"{name}: normalized event rate {cur_rate:.4f} fell "
                    f"below {floor:.4f} (baseline {base_rate:.4f} - "
                    f"{tolerance:.0%})"
                )
        # absolute floor on the vector-tier event-rate speedup (no
        # derate, no tolerance): "the epoch engine is >= 5x the scalar
        # heap" is the million-rank contract, not a host-relative floor
        rate_floor = base.get("metrics", {}).get("min_rate_speedup")
        cur_rate_speedup = cur.get("metrics", {}).get("rate_speedup")
        if (
            rate_floor
            and cur_rate_speedup is not None
            and cur_rate_speedup < rate_floor
        ):
            failures.append(
                f"{name}: vector-tier event rate is only "
                f"{cur_rate_speedup:.2f}x the scalar reference, below "
                f"the absolute {rate_floor:.1f}x floor"
            )
        # absolute overhead ceilings (no derate, no tolerance): the
        # limit is a contract — "streaming tracing costs <= 10%" —
        # not a host-relative floor
        limit = base.get("metrics", {}).get("overhead_limit")
        cur_overhead = cur.get("metrics", {}).get("overhead_ratio")
        if limit and cur_overhead is not None and cur_overhead > limit:
            failures.append(
                f"{name}: tracing overhead {cur_overhead:.3f}x exceeds "
                f"the absolute {limit:.2f}x limit"
            )
        # same absolute-contract shape for the service cache: a hit's
        # p99 must stay at least 1/limit times below a miss's p99
        ratio_limit = base.get("metrics", {}).get("hit_miss_p99_limit")
        cur_ratio = cur.get("metrics", {}).get("hit_miss_p99_ratio")
        if ratio_limit and cur_ratio is not None and cur_ratio > ratio_limit:
            failures.append(
                f"{name}: cache-hit p99 is {cur_ratio:.3f}x of the miss "
                f"p99, above the absolute {ratio_limit:.2f} limit "
                f"(hits must stay >= {1 / ratio_limit:.0f}x faster)"
            )
        # and for the persistent JIT cache: a warm first-launch p50
        # must stay at least 1/limit times below the cold-trace p50
        warm_limit = base.get("metrics", {}).get("warm_cold_limit")
        cur_warm = cur.get("metrics", {}).get("warm_cold_ratio")
        if warm_limit and cur_warm is not None and cur_warm > warm_limit:
            failures.append(
                f"{name}: warm first-launch p50 is {cur_warm:.3f}x of the "
                f"cold p50, above the absolute {warm_limit:.2f} limit "
                f"(warm starts must stay >= {1 / warm_limit:.0f}x faster)"
            )
    return failures


def render(suite: SuiteResult) -> str:
    from repro.util.tables import Table

    table = Table(
        ["hot path", "optimized (s)", "reference (s)", "speedup", "identical"],
        title=f"self-performance suite ({'quick' if suite.quick else 'full'} "
              f"mode, host {suite.loop_score:.1f} Miter/s)",
    )
    for c in suite.cases:
        table.add_row([
            c.name,
            f"{c.optimized_seconds:.4f}",
            "-" if c.reference_seconds is None else f"{c.reference_seconds:.4f}",
            "-" if c.speedup is None else f"{c.speedup:.1f}x",
            {True: "yes", False: "NO", None: "-"}[c.identical],
        ])
    return table.render()
