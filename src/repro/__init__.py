"""repro — a Python reproduction of the SC-W 2023 study
"Julia as a Unifying End-to-End Workflow Language on the Frontier
Exascale System" (Godoy et al.).

The package rebuilds, in plain Python/NumPy, every system the paper's
evaluation touches:

- :mod:`repro.core` — the Gray-Scott 2-variable diffusion-reaction
  application (the paper's ``GrayScott.jl``), including the 7-point
  stencil solver, MPI Cartesian domain decomposition with ghost-cell
  exchange, ADIOS2-style output, checkpoint/restart, and an end-to-end
  workflow driver with FAIR provenance.
- :mod:`repro.gpu` — a functional + performance simulator of Frontier's
  AMD MI250x GCDs: device arrays, workgroup/workitem kernel launches, a
  tracing JIT that lowers kernels to an LLVM-like IR, a TCC (L2) cache
  model, a roofline timing model with per-backend (HIP vs. Julia)
  codegen profiles, and a rocprof-style profiler.
- :mod:`repro.mpi` — a message-passing substrate: blocking and
  nonblocking point-to-point with tag matching, tree-based collectives,
  Cartesian topologies, strided MPI datatypes, an SPMD thread executor,
  and a LogGP-style network performance model for Frontier-scale runs.
- :mod:`repro.adios` — an ADIOS2-workalike parallel I/O library with a
  BP5-style on-disk format (data subfiles + metadata index), step-based
  writer/reader engines, a ``bpls`` provenance lister, and a Lustre
  file-system performance model.
- :mod:`repro.cluster` — the Frontier machine model (Table 1) and rank
  placement.
- :mod:`repro.analysis` — the "Jupyter side" of the workflow: dataset
  readers, 2D slices, pattern statistics, and ASCII rendering.
- :mod:`repro.bench` — the experiment harness that regenerates every
  table and figure of the paper's evaluation section.

Quickstart::

    from repro import GrayScottSettings, Simulation

    settings = GrayScottSettings(L=64, steps=200, plotgap=50)
    sim = Simulation.from_settings(settings)
    sim.run()
"""

from repro._version import __version__

__all__ = [
    "__version__",
    "GrayScottParams",
    "GrayScottSettings",
    "Simulation",
    "Workflow",
    "WorkflowReport",
]

_LAZY = {
    "GrayScottParams": ("repro.core.params", "GrayScottParams"),
    "GrayScottSettings": ("repro.core.settings", "GrayScottSettings"),
    "Simulation": ("repro.core.simulation", "Simulation"),
    "Workflow": ("repro.core.workflow", "Workflow"),
    "WorkflowReport": ("repro.core.workflow", "WorkflowReport"),
}


def __getattr__(name: str):
    """Lazy top-level exports so subpackages stay independently importable."""
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
