"""SPMD execution: run one function as N ranks on threads.

NumPy releases the GIL for array work, and our sends are buffered, so
mini-scale Gray-Scott runs execute genuinely concurrently. Any rank
raising aborts the whole job (all blocked receives raise
:class:`~repro.util.errors.CommAbort`), mirroring ``MPI_Abort``.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.mpi.comm import Job
from repro.util.errors import CommAbort, MPIError


def run_spmd(
    fn: Callable[..., Any],
    nranks: int,
    *args: Any,
    timeout: float = 60.0,
    job_out: dict | None = None,
    collect_stats: bool = False,
    **kwargs: Any,
) -> list[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on every rank; return all results.

    Results are ordered by rank. The first exception raised by any rank
    is re-raised here (``CommAbort`` echoes from other ranks are
    suppressed in its favour).

    ``collect_stats=True`` attaches an mpiP-style
    :class:`~repro.mpi.stats.CommStats` to the job; pass a dict as
    ``job_out`` to receive ``{"job": Job}`` for post-run inspection
    (``job_out["job"].stats``).
    """
    job = Job(nranks, timeout=timeout, collect_stats=collect_stats)
    if job_out is not None:
        job_out["job"] = job
    results: list[Any] = [None] * nranks
    errors: list[tuple[int, BaseException]] = []
    errors_lock = threading.Lock()

    def worker(rank: int) -> None:
        comm = job.comm_world(rank)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - must abort peers
            with errors_lock:
                errors.append((rank, exc))
            job.abort(exc)

    threads = [
        threading.Thread(target=worker, args=(rank,), name=f"rank-{rank}", daemon=True)
        for rank in range(nranks)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        # generous join: individual receives already time out at
        # job.timeout, so this only guards against runaway compute
        thread.join(timeout * 4)
        if thread.is_alive():
            job.abort(MPIError(f"{thread.name} still running at job teardown"))

    if errors:
        primary = next(
            (e for _, e in sorted(errors) if not isinstance(e, CommAbort)),
            errors[0][1],
        )
        raise primary
    return results
