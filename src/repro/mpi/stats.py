"""Communication statistics (an mpiP-style profiling layer).

The paper reasons about its communication volumes analytically (face
sizes, Section 3.3); a workflow developer wants them *measured*. When a
:class:`~repro.mpi.comm.Job` is created with ``collect_stats=True``,
every send — point-to-point and collective-internal alike — is counted
by (source, destination, kind), and :meth:`CommStats.render` reports
message counts, byte volumes, and the peer matrix.

The counters see the *implementation* traffic: a binomial-tree bcast on
8 ranks records its 7 internal messages, which is exactly what a real
mpiP would show and makes algorithm costs visible in tests.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass


@dataclass(frozen=True)
class CommTotals:
    messages: int
    bytes: int


class CommStats:
    """Thread-safe per-job communication counters."""

    def __init__(self, nranks: int):
        self.nranks = nranks
        self._lock = threading.Lock()
        #: (src, dst) -> [messages, bytes] for point-to-point traffic
        self._p2p: dict[tuple[int, int], list[int]] = defaultdict(lambda: [0, 0])
        #: collective name -> [messages, bytes] of internal traffic
        self._coll: dict[str, list[int]] = defaultdict(lambda: [0, 0])

    # -- recording (called from Comm internals) --------------------------
    def record_p2p(self, src: int, dst: int, nbytes: int) -> None:
        with self._lock:
            entry = self._p2p[(src, dst)]
            entry[0] += 1
            entry[1] += nbytes

    def record_coll(self, name: str, nbytes: int) -> None:
        with self._lock:
            entry = self._coll[name]
            entry[0] += 1
            entry[1] += nbytes

    # -- queries ----------------------------------------------------------
    def p2p_totals(self) -> CommTotals:
        with self._lock:
            return CommTotals(
                messages=sum(v[0] for v in self._p2p.values()),
                bytes=sum(v[1] for v in self._p2p.values()),
            )

    def coll_totals(self) -> CommTotals:
        with self._lock:
            return CommTotals(
                messages=sum(v[0] for v in self._coll.values()),
                bytes=sum(v[1] for v in self._coll.values()),
            )

    def pair(self, src: int, dst: int) -> CommTotals:
        with self._lock:
            messages, nbytes = self._p2p.get((src, dst), (0, 0))
            return CommTotals(messages=messages, bytes=nbytes)

    def collective(self, name: str) -> CommTotals:
        with self._lock:
            messages, nbytes = self._coll.get(name, (0, 0))
            return CommTotals(messages=messages, bytes=nbytes)

    def peer_matrix(self):
        """(nranks x nranks) message-count matrix (src row, dst column)."""
        import numpy as np

        matrix = np.zeros((self.nranks, self.nranks), dtype=np.int64)
        with self._lock:
            for (src, dst), (messages, _) in self._p2p.items():
                matrix[src, dst] = messages
        return matrix

    def byte_matrix(self):
        """(nranks x nranks) point-to-point byte-volume matrix."""
        import numpy as np

        matrix = np.zeros((self.nranks, self.nranks), dtype=np.int64)
        with self._lock:
            for (src, dst), (_, nbytes) in self._p2p.items():
                matrix[src, dst] = nbytes
        return matrix

    def to_metrics(self, registry) -> None:
        """Export every counter into a metrics registry.

        Point-to-point traffic becomes ``mpi.p2p.pair.messages`` /
        ``mpi.p2p.pair.bytes`` counters labeled by (src, dst); each
        collective's internal traffic becomes ``mpi.coll.messages`` /
        ``mpi.coll.bytes`` labeled by operation. Exporting is additive,
        so stats from several jobs can accumulate in one registry.
        """
        with self._lock:
            p2p_rows = list(self._p2p.items())
            coll_rows = list(self._coll.items())
        for (src, dst), (messages, nbytes) in p2p_rows:
            registry.counter("mpi.p2p.pair.messages", src=src, dst=dst).inc(
                messages
            )
            registry.counter("mpi.p2p.pair.bytes", src=src, dst=dst).inc(
                nbytes
            )
        for name, (messages, nbytes) in coll_rows:
            registry.counter("mpi.coll.messages", op=name).inc(messages)
            registry.counter("mpi.coll.bytes", op=name).inc(nbytes)

    def render(self) -> str:
        from repro.util.tables import Table
        from repro.util.units import format_bytes

        p2p = self.p2p_totals()
        coll = self.coll_totals()
        table = Table(
            ["traffic", "messages", "volume"],
            title=f"communication statistics ({self.nranks} ranks)",
        )
        table.add_row(["point-to-point", p2p.messages, format_bytes(p2p.bytes)])
        with self._lock:
            coll_rows = sorted(self._coll.items())
        for name, (messages, nbytes) in coll_rows:
            table.add_row([f"  {name}", messages, format_bytes(nbytes)])
        table.add_row(["collectives (total)", coll.messages, format_bytes(coll.bytes)])
        return table.render()
