"""Communicators with MPI matching semantics.

A :class:`Job` is one SPMD program run: it owns the mailboxes of all
ranks. A :class:`Comm` is one rank's endpoint in one communicator
(message spaces of different communicators never mix — each carries a
context id, like MPI's hidden context). Point-to-point matching follows
MPI: a receive matches the earliest pending message with the same
context whose (source, tag) agree, with ``ANY_SOURCE``/``ANY_TAG``
wildcards, and messages between a (source, dest) pair are
non-overtaking.

Sends are buffered (the payload is copied at send time), so a blocking
``send`` returns immediately — the same eager behaviour the paper's
8 MB face messages get from Cray-MPICH under the rendezvous threshold
tuning used for host-memory exchanges.
"""

from __future__ import annotations

import itertools
import pickle
import threading
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.mpi.datatypes import Datatype, pack, unpack
from repro.mpi.request import Request
from repro.observe import trace as observe
from repro.util.errors import CommAbort, MPIError, TruncationError

ANY_SOURCE = -1
ANY_TAG = -1
#: Null process: sends/recvs to PROC_NULL are no-ops (MPI_PROC_NULL).
PROC_NULL = -2


@dataclass(frozen=True)
class Status:
    """Receive status: who sent, which tag, how many bytes."""

    source: int
    tag: int
    count_bytes: int


@dataclass
class Message:
    source: int
    tag: int
    context: tuple
    payload: Any
    seq: int


@dataclass
class _PostedRecv:
    source: int
    tag: int
    context: tuple
    request: Request
    seq: int

    def matches(self, msg: Message) -> bool:
        return (
            self.context == msg.context
            and self.source in (ANY_SOURCE, msg.source)
            and self.tag in (ANY_TAG, msg.tag)
        )


class _Mailbox:
    """Unmatched messages + posted receives for one rank."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.messages: list[Message] = []
        self.posted: list[_PostedRecv] = []
        self.seq = itertools.count()

    def deliver(self, msg: Message) -> None:
        with self.lock:
            for idx, posted in enumerate(self.posted):
                if posted.matches(msg):
                    del self.posted[idx]
                    posted.request._complete(msg)
                    return
            self.messages.append(msg)

    def post(self, posted: _PostedRecv) -> None:
        with self.lock:
            for idx, msg in enumerate(self.messages):
                if posted.matches(msg):
                    del self.messages[idx]
                    posted.request._complete(msg)
                    return
            self.posted.append(posted)

    def fail_all(self, error: BaseException) -> None:
        with self.lock:
            for posted in self.posted:
                posted.request._fail(error)
            self.posted.clear()


class Job:
    """Shared state of one SPMD run: mailboxes, abort flag, timeout."""

    def __init__(
        self, nranks: int, *, timeout: float = 60.0, collect_stats: bool = False
    ):
        if nranks <= 0:
            raise MPIError(f"job needs at least 1 rank, got {nranks}")
        self.nranks = nranks
        self.timeout = timeout
        self.mailboxes = [_Mailbox() for _ in range(nranks)]
        self._abort_error: BaseException | None = None
        self._send_seq = itertools.count()
        if collect_stats:
            from repro.mpi.stats import CommStats

            self.stats: "CommStats | None" = CommStats(nranks)
        else:
            self.stats = None

    def comm_world(self, rank: int) -> "Comm":
        return Comm(self, rank, comm_id=(0,))

    @property
    def aborted(self) -> bool:
        return self._abort_error is not None

    def abort(self, error: BaseException) -> None:
        """Kill the job: every blocked receive raises CommAbort."""
        if self._abort_error is None:
            self._abort_error = error
        abort = CommAbort(f"job aborted: {error!r}")
        for mailbox in self.mailboxes:
            mailbox.fail_all(abort)

    def check_abort(self) -> None:
        if self._abort_error is not None:
            raise CommAbort(f"job aborted: {self._abort_error!r}")


def _coll_span(comm: "Comm", name: str):
    """Wall-clock tracer span for one collective call (or a no-op)."""
    tracer = observe.active()
    if tracer is None:
        return nullcontext()
    tracer.metrics.counter("mpi.coll.calls", op=name).inc()
    return tracer.span(
        f"coll.{name}",
        cat="mpi",
        process=f"rank{comm._world_rank}",
        thread="mpi",
        args={"rank": comm.rank, "size": comm.size},
    )


def _freeze_payload(data: Any) -> tuple[Any, int]:
    """Copy a payload at send time (buffered send semantics)."""
    if isinstance(data, np.ndarray):
        copy = data.copy()
        return copy, copy.nbytes
    # generic objects ride through pickle — catches unpicklables and
    # prevents sender/receiver sharing mutable state.
    blob = pickle.dumps(data)
    return pickle.loads(blob), len(blob)


class Comm:
    """One rank's endpoint in one communicator."""

    def __init__(self, job: Job, rank: int, comm_id: tuple = (0,)):
        if not 0 <= rank < job.nranks:
            raise MPIError(f"rank {rank} outside job of {job.nranks} ranks")
        self.job = job
        self.rank = rank
        self.comm_id = comm_id
        self._coll_seq = itertools.count()
        self._derived = itertools.count(1)
        #: group-rank -> world-rank map; None for world communicators
        self._group: list[int] | None = None
        #: this endpoint's world rank (mailbox index)
        self._world_rank = rank

    @property
    def size(self) -> int:
        return len(self._group) if self._group is not None else self.job.nranks

    def _world(self, rank: int) -> int:
        """Translate a rank of this communicator to a world rank."""
        return self._group[rank] if self._group is not None else rank

    def _my_mailbox(self) -> "_Mailbox":
        return self.job.mailboxes[self._world_rank]

    def _adopt_group(self, parent: "Comm") -> None:
        """Inherit a parent communicator's group mapping (derived comms)."""
        self._group = parent._group
        self._world_rank = parent._world_rank

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def _check_peer(self, peer: int, what: str) -> bool:
        """Validate a peer rank; returns False for PROC_NULL (no-op)."""
        if peer == PROC_NULL:
            return False
        if not 0 <= peer < self.size:
            raise MPIError(f"{what} to invalid rank {peer} (size {self.size})")
        return True

    def _context(self, kind: tuple) -> tuple:
        return (self.comm_id, *kind)

    def send(self, data: Any, dest: int, tag: int = 0) -> None:
        """Blocking (buffered) send of an array or picklable object."""
        self.isend(data, dest, tag).wait()

    def isend(self, data: Any, dest: int, tag: int = 0) -> Request:
        request = Request("isend")
        if not self._check_peer(dest, "send"):
            request._complete(None)
            return request
        self.job.check_abort()
        tracer = observe.active()
        start = tracer.wall_now() if tracer is not None else 0.0
        payload, nbytes = _freeze_payload(data)
        if self.job.stats is not None:
            self.job.stats.record_p2p(self._world_rank, self._world(dest), nbytes)
        msg = Message(
            source=self.rank,
            tag=tag,
            context=self._context(("p2p",)),
            payload=payload,
            seq=next(self.job._send_seq),
        )
        self.job.mailboxes[self._world(dest)].deliver(msg)
        request._complete(None)
        if tracer is not None:
            src, dst = self._world_rank, self._world(dest)
            tracer.add_span(
                "p2p.send",
                cat="mpi",
                clock=observe.WALL,
                process=f"rank{src}",
                thread="mpi",
                start=start,
                seconds=tracer.wall_now() - start,
                args={"src": src, "dst": dst, "tag": tag, "bytes": nbytes},
            )
            tracer.metrics.counter("mpi.p2p.messages", rank=src).inc()
            tracer.metrics.counter("mpi.p2p.bytes", rank=src).inc(nbytes)
        return request

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        request = Request("irecv")
        if source == PROC_NULL:
            request._complete(Message(PROC_NULL, tag, (), None, -1))
            return request
        if source != ANY_SOURCE:
            self._check_peer(source, "recv")
        self.job.check_abort()
        mailbox = self._my_mailbox()
        posted = _PostedRecv(
            source=source,
            tag=tag,
            context=self._context(("p2p",)),
            request=request,
            seq=next(mailbox.seq),
        )
        mailbox.post(posted)
        return request

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        *,
        timeout: float | None = None,
    ) -> tuple[Any, Status]:
        """Blocking receive; returns (payload, status)."""
        tracer = observe.active()
        start = tracer.wall_now() if tracer is not None else 0.0
        msg = self.irecv(source, tag).wait(timeout or self.job.timeout)
        nbytes = msg.payload.nbytes if isinstance(msg.payload, np.ndarray) else 0
        if tracer is not None:
            tracer.add_span(
                "p2p.recv",
                cat="mpi",
                clock=observe.WALL,
                process=f"rank{self._world_rank}",
                thread="mpi",
                start=start,
                seconds=tracer.wall_now() - start,
                args={
                    "src": msg.source,
                    "dst": self.rank,
                    "tag": msg.tag,
                    "bytes": nbytes,
                },
            )
        return msg.payload, Status(msg.source, msg.tag, nbytes)

    def recv_into(
        self,
        buf: np.ndarray,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        *,
        timeout: float | None = None,
    ) -> Status:
        """Blocking receive into a preallocated buffer (MPI_Recv).

        Raises :class:`TruncationError` if the matched message is larger
        than ``buf`` (MPI_ERR_TRUNCATE); shorter messages fill a prefix,
        as MPI allows.
        """
        payload, status = self.recv(source, tag, timeout=timeout)
        if not isinstance(payload, np.ndarray):
            raise MPIError(
                f"recv_into matched an object message (tag {status.tag}); "
                "use recv() for objects"
            )
        if payload.nbytes > buf.nbytes:
            raise TruncationError(
                f"message of {payload.nbytes} B from rank {status.source} "
                f"truncated: receive buffer holds {buf.nbytes} B"
            )
        flat = buf.reshape(-1, order="F" if buf.flags.f_contiguous and buf.ndim > 1 else "C")
        flat[: payload.size] = payload.reshape(-1)
        return status

    def sendrecv(
        self,
        senddata: Any,
        dest: int,
        recvsource: int,
        *,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
    ) -> tuple[Any, Status | None]:
        """Combined send+receive (deadlock-free halo exchange step).

        Either side may be PROC_NULL: the send becomes a no-op and/or
        the receive returns ``(None, None)``.
        """
        self.isend(senddata, dest, sendtag)
        if recvsource == PROC_NULL:
            return None, None
        return self.recv(recvsource, recvtag)

    # -- Listing 3 pattern: strided face exchange ------------------------
    def send_face(
        self,
        arr: np.ndarray,
        datatype: Datatype,
        dest: int,
        tag: int = 0,
        *,
        offset_elements: int = 0,
    ) -> None:
        """Pack a strided face through ``datatype`` and send it."""
        if dest == PROC_NULL:
            return
        self.send(pack(arr, datatype, offset_elements=offset_elements), dest, tag)

    def recv_face(
        self,
        arr: np.ndarray,
        datatype: Datatype,
        source: int,
        tag: int = ANY_TAG,
        *,
        offset_elements: int = 0,
    ) -> Status | None:
        """Receive a face and unpack it through ``datatype``."""
        if source == PROC_NULL:
            return None
        wire, status = self.recv(source, tag)
        if not isinstance(wire, np.ndarray):
            raise MPIError("recv_face matched a non-array message")
        if wire.size != datatype.size_elements:
            raise TruncationError(
                f"face message has {wire.size} elements, datatype describes "
                f"{datatype.size_elements}"
            )
        unpack(arr, datatype, wire, offset_elements=offset_elements)
        return status

    # ------------------------------------------------------------------
    # collectives (implementations in repro.mpi.collectives)
    # ------------------------------------------------------------------
    def _coll_context(self, name: str) -> tuple:
        return self._context(("coll", name, next(self._coll_seq)))

    def _coll_send(self, context: tuple, data: Any, dest: int) -> None:
        self.job.check_abort()
        payload, nbytes = _freeze_payload(data)
        if self.job.stats is not None:
            # context = (comm_id, "coll", name, seq[, round]) — index by name
            name = context[2] if len(context) > 2 else "coll"
            self.job.stats.record_coll(str(name), nbytes)
        self.job.mailboxes[self._world(dest)].deliver(
            Message(self.rank, 0, context, payload, next(self.job._send_seq))
        )

    def _coll_recv(self, context: tuple, source: int) -> Any:
        self.job.check_abort()
        request = Request("coll-recv")
        mailbox = self._my_mailbox()
        mailbox.post(
            _PostedRecv(source, ANY_TAG, context, request, next(mailbox.seq))
        )
        return request.wait(self.job.timeout).payload

    def barrier(self) -> None:
        from repro.mpi.collectives import barrier

        with _coll_span(self, "barrier"):
            barrier(self)

    def bcast(self, data: Any = None, root: int = 0) -> Any:
        from repro.mpi.collectives import bcast

        with _coll_span(self, "bcast"):
            return bcast(self, data, root)

    def reduce(self, value: Any, op="sum", root: int = 0) -> Any:
        from repro.mpi.collectives import reduce

        with _coll_span(self, "reduce"):
            return reduce(self, value, op, root)

    def allreduce(self, value: Any, op="sum") -> Any:
        from repro.mpi.collectives import allreduce

        with _coll_span(self, "allreduce"):
            return allreduce(self, value, op)

    def gather(self, value: Any, root: int = 0):
        from repro.mpi.collectives import gather

        with _coll_span(self, "gather"):
            return gather(self, value, root)

    def allgather(self, value: Any) -> list:
        from repro.mpi.collectives import allgather

        with _coll_span(self, "allgather"):
            return allgather(self, value)

    def scatter(self, values, root: int = 0):
        from repro.mpi.collectives import scatter

        with _coll_span(self, "scatter"):
            return scatter(self, values, root)

    def alltoall(self, values) -> list:
        from repro.mpi.collectives import alltoall

        with _coll_span(self, "alltoall"):
            return alltoall(self, values)

    # ------------------------------------------------------------------
    # derived communicators
    # ------------------------------------------------------------------
    def probe(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
        *, timeout: float | None = None,
    ) -> Status:
        """Block until a matching message is pending; do not consume it.

        MPI_Probe: the returned status lets the caller size a receive
        buffer before posting the actual receive.
        """
        deadline_timeout = timeout if timeout is not None else self.job.timeout
        import time as _time

        deadline = _time.monotonic() + deadline_timeout
        mailbox = self._my_mailbox()
        context = self._context(("p2p",))
        probe_posted = _PostedRecv(source, tag, context, Request("probe"), 0)
        while True:
            self.job.check_abort()
            with mailbox.lock:
                for msg in mailbox.messages:
                    if probe_posted.matches(msg):
                        nbytes = (
                            msg.payload.nbytes
                            if isinstance(msg.payload, np.ndarray)
                            else 0
                        )
                        return Status(msg.source, msg.tag, nbytes)
            if _time.monotonic() > deadline:
                raise MPIError(
                    f"probe(source={source}, tag={tag}) timed out after "
                    f"{deadline_timeout}s"
                )
            _time.sleep(0.0005)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status | None:
        """Nonblocking probe: a matching pending message's status, or None."""
        mailbox = self._my_mailbox()
        context = self._context(("p2p",))
        probe_posted = _PostedRecv(source, tag, context, Request("iprobe"), 0)
        with mailbox.lock:
            for msg in mailbox.messages:
                if probe_posted.matches(msg):
                    nbytes = (
                        msg.payload.nbytes
                        if isinstance(msg.payload, np.ndarray)
                        else 0
                    )
                    return Status(msg.source, msg.tag, nbytes)
        return None

    def scan(self, value: Any, op="sum") -> Any:
        from repro.mpi.collectives import scan

        with _coll_span(self, "scan"):
            return scan(self, value, op)

    def exscan(self, value: Any, op="sum") -> Any:
        from repro.mpi.collectives import exscan

        with _coll_span(self, "exscan"):
            return exscan(self, value, op)

    def reduce_scatter(self, values, op="sum"):
        from repro.mpi.collectives import reduce_scatter

        with _coll_span(self, "reduce_scatter"):
            return reduce_scatter(self, values, op)

    def split(self, color: int, key: int | None = None) -> "Comm | None":
        """MPI_Comm_split: partition ranks into sub-communicators.

        Collective. Ranks passing the same ``color`` land in the same
        sub-communicator, ordered by ``key`` (default: world rank).
        ``color=None`` (MPI_UNDEFINED) returns None for that rank.
        """
        key = self.rank if key is None else key
        table = self.allgather((color, key, self.rank))
        if color is None:
            next(self._derived)  # stay in lockstep with members
            return None
        members = sorted((k, r) for c, k, r in table if c == color)
        ranks = [r for _, r in members]
        new_rank = ranks.index(self.rank)
        # context id derivation: all ranks derive in lockstep; fold the
        # color in so different sub-communicators never share a context
        sub_id = self._derive_id() + (color,)
        world_ranks = [self._world(r) for r in ranks]
        return SplitComm(self.job, self._world_rank, sub_id, world_ranks, new_rank)

    def dup(self) -> "Comm":
        """Duplicate the communicator with a fresh context (MPI_Comm_dup).

        Collective: every rank must call it, in the same order relative
        to other communicator constructions. Libraries (e.g. the BP5
        engines) dup the caller's communicator so their internal traffic
        can never match application messages.
        """
        twin = Comm(self.job, self.rank, comm_id=self._derive_id())
        twin._adopt_group(self)
        return twin

    def create_cart(self, dims, periods=None) -> "CartComm":
        from repro.mpi.cart import CartComm

        return CartComm(self, dims, periods)

    def _derive_id(self) -> tuple:
        """Context id for the next derived communicator.

        Valid because MPI requires all ranks to create communicators in
        the same order, so per-rank counters agree.
        """
        return self.comm_id + (next(self._derived),)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Comm(rank={self.rank}, size={self.size}, id={self.comm_id})"


class SplitComm(Comm):
    """A sub-communicator produced by :meth:`Comm.split`."""

    def __init__(
        self,
        job: Job,
        world_rank: int,
        comm_id: tuple,
        world_ranks: list[int],
        group_rank: int,
    ):
        super().__init__(job, group_rank, comm_id=comm_id)
        self._group = list(world_ranks)
        self._world_rank = world_rank

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"SplitComm(rank={self.rank}/{self.size}, "
            f"world={self._world_rank}, id={self.comm_id})"
        )
