"""A message-passing substrate mirroring the MPI.jl usage in the paper.

The paper's communication layer (Section 3.3) is: an MPI Cartesian
communicator decomposing the 3D domain, ghost-cell face exchange with
``MPI_Send``/``MPI_Recv``, and strided ``MPI_Type_vector`` datatypes for
the non-contiguous faces (Listing 3). This package implements all of it
for real:

- :mod:`repro.mpi.datatypes` — base, contiguous, and vector datatypes
  with pack/unpack against NumPy buffers;
- :mod:`repro.mpi.comm` — communicators with tag/source matching,
  blocking and nonblocking point-to-point, and truncation checking;
- :mod:`repro.mpi.collectives` — barrier/bcast/reduce/allreduce/gather/
  allgather/scatter/alltoall built from point-to-point with the classic
  tree/ring algorithms;
- :mod:`repro.mpi.cart` — ``dims_create`` and Cartesian topologies with
  ``shift`` (the paper's decomposition);
- :mod:`repro.mpi.executor` — ``run_spmd``: run an SPMD function across
  N ranks on threads (NumPy releases the GIL, so halo exchange runs
  genuinely concurrently);
- :mod:`repro.mpi.netmodel` — the LogGP-style performance model used to
  reproduce Frontier-scale weak scaling (Figure 6), where 4,096 real
  ranks are out of reach for a single process.

Ranks at mini scale execute the *real protocol*; the network model is
only consulted for modeled Frontier timings.
"""

from repro.mpi.datatypes import (
    Datatype,
    BaseDatatype,
    ContiguousDatatype,
    VectorDatatype,
    DOUBLE,
    FLOAT,
    INT32,
    INT64,
    pack,
    unpack,
)
from repro.mpi.comm import Comm, Job, Message, ANY_SOURCE, ANY_TAG, PROC_NULL
from repro.mpi.request import Request
from repro.mpi.cart import CartComm, dims_create
from repro.mpi.executor import run_spmd

__all__ = [
    "Datatype",
    "BaseDatatype",
    "ContiguousDatatype",
    "VectorDatatype",
    "DOUBLE",
    "FLOAT",
    "INT32",
    "INT64",
    "pack",
    "unpack",
    "Comm",
    "Job",
    "Message",
    "ANY_SOURCE",
    "ANY_TAG",
    "PROC_NULL",
    "Request",
    "CartComm",
    "dims_create",
    "run_spmd",
]
