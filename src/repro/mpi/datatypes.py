"""MPI derived datatypes over NumPy buffers.

The paper's ghost surfaces are not memory-contiguous, so GrayScott.jl
"defines a new strided vector type by using MPI_Datatypes and
MPI_Type_vector" (Section 3.3). This module reproduces that machinery:
a :class:`Datatype` describes a set of element offsets inside a flat
buffer; :func:`pack` gathers those elements into a contiguous wire
buffer and :func:`unpack` scatters a wire buffer back.

Offsets are in *elements* of the base dtype, applied to the target
array's memory-order flattening (Fortran order for the solver's
column-major fields), exactly how MPI applies a datatype to a base
address.

Like MPI, a derived datatype must be committed before use — using an
uncommitted type raises :class:`~repro.util.errors.DatatypeError`
(tested by the failure-injection suite).
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import DatatypeError


def flat_view(arr: np.ndarray) -> np.ndarray:
    """A 1-D view of ``arr`` in its own memory order (no copy).

    Raises :class:`DatatypeError` for non-contiguous arrays — MPI
    datatypes address raw memory, which a sliced view does not own.
    """
    if arr.flags.f_contiguous and arr.ndim > 1:
        return arr.reshape(-1, order="F")
    if arr.flags.c_contiguous:
        return arr.reshape(-1, order="C")
    if arr.flags.f_contiguous:
        return arr.reshape(-1, order="F")
    raise DatatypeError(
        "datatype pack/unpack requires a contiguous base array; "
        "pass the full field, not a sliced view"
    )


class Datatype:
    """Base class: a committed datatype yields element offsets."""

    def __init__(self, base: np.dtype):
        self.base = np.dtype(base)
        self._committed = False
        self._offsets: np.ndarray | None = None

    # -- required interface -------------------------------------------
    def _build_offsets(self) -> np.ndarray:
        raise NotImplementedError

    @property
    def extent_elements(self) -> int:
        """Span from first to one-past-last element (MPI extent)."""
        offsets = self.element_offsets()
        return int(offsets.max()) + 1 if offsets.size else 0

    @property
    def size_elements(self) -> int:
        """Number of base elements of actual data (MPI size)."""
        return int(self.element_offsets().size)

    @property
    def size_bytes(self) -> int:
        return self.size_elements * self.base.itemsize

    def commit(self) -> "Datatype":
        """Finalize the type (MPI_Type_commit); returns self for chaining."""
        self._offsets = np.asarray(self._build_offsets(), dtype=np.int64)
        if self._offsets.size and self._offsets.min() < 0:
            raise DatatypeError("datatype produced negative element offsets")
        self._committed = True
        return self

    def free(self) -> None:
        """Release the type (MPI_Type_free); further use raises."""
        self._committed = False
        self._offsets = None

    def element_offsets(self) -> np.ndarray:
        if not self._committed or self._offsets is None:
            raise DatatypeError(
                f"{type(self).__name__} used before commit() (or after free())"
            )
        return self._offsets

    def _strided_spec(self) -> tuple[int, int, int] | None:
        """(count, blocklength, stride) when this type is a regular
        strided layout over an elementary base, else ``None``.

        A non-None spec lets :func:`pack`/:func:`unpack` copy through a
        NumPy strided view instead of a fancy-index gather/scatter —
        the hot path for every ghost face. Composite/irregular types
        return ``None`` and take the general gather path.
        """
        return None


class BaseDatatype(Datatype):
    """A named elementary type (MPI_DOUBLE and friends)."""

    def __init__(self, name: str, dtype):
        super().__init__(dtype)
        self.name = name
        self.commit()

    def _build_offsets(self) -> np.ndarray:
        return np.zeros(1, dtype=np.int64)

    def _strided_spec(self) -> tuple[int, int, int] | None:
        return (1, 1, 1)

    def __repr__(self) -> str:  # pragma: no cover
        return f"BaseDatatype({self.name})"


DOUBLE = BaseDatatype("MPI_DOUBLE", np.float64)
FLOAT = BaseDatatype("MPI_FLOAT", np.float32)
INT32 = BaseDatatype("MPI_INT32_T", np.int32)
INT64 = BaseDatatype("MPI_INT64_T", np.int64)


class ContiguousDatatype(Datatype):
    """MPI_Type_contiguous: ``count`` consecutive base elements."""

    def __init__(self, count: int, base: Datatype = DOUBLE):
        if count < 0:
            raise DatatypeError(f"negative count: {count}")
        super().__init__(base.base)
        self.count = count
        self.inner = base

    def _build_offsets(self) -> np.ndarray:
        inner = self.inner.element_offsets()
        extent = self.inner.extent_elements
        return (
            np.arange(self.count, dtype=np.int64)[:, None] * extent + inner[None, :]
        ).reshape(-1)

    def _strided_spec(self) -> tuple[int, int, int] | None:
        if self.inner.size_elements == 1 and self.inner.extent_elements == 1:
            return (1, self.count, self.count)
        return None


class VectorDatatype(Datatype):
    """MPI_Type_vector: ``count`` blocks of ``blocklength`` elements,
    block starts ``stride`` elements apart.

    This is the type GrayScott.jl builds for each non-contiguous ghost
    face (Listing 3). The convenience constructors in
    :mod:`repro.core.domain` choose count/blocklength/stride per face.
    """

    def __init__(
        self, count: int, blocklength: int, stride: int, base: Datatype = DOUBLE
    ):
        if count < 0 or blocklength < 0:
            raise DatatypeError(
                f"negative count/blocklength: {count}/{blocklength}"
            )
        if count > 1 and stride < blocklength:
            raise DatatypeError(
                f"stride {stride} < blocklength {blocklength}: blocks overlap"
            )
        super().__init__(base.base)
        self.count = count
        self.blocklength = blocklength
        self.stride = stride
        self.inner = base

    def _build_offsets(self) -> np.ndarray:
        inner = self.inner.element_offsets()
        extent = self.inner.extent_elements
        blocks = np.arange(self.count, dtype=np.int64)[:, None, None] * self.stride
        elems = np.arange(self.blocklength, dtype=np.int64)[None, :, None]
        return (
            (blocks + elems) * extent + inner[None, None, :]
        ).reshape(-1)

    def _strided_spec(self) -> tuple[int, int, int] | None:
        if self.inner.size_elements == 1 and self.inner.extent_elements == 1:
            return (self.count, self.blocklength, self.stride)
        return None


_PACK_MODES = ("auto", "strided", "gather")


def _strided_window(
    flat: np.ndarray, datatype: Datatype, offset_elements: int
) -> np.ndarray | None:
    """A (count, blocklength) strided view over the type's elements.

    Returns ``None`` when the type has no regular strided layout (the
    caller falls back to the gather path). Bounds and commit checks
    raise the same :class:`DatatypeError` messages as the gather path,
    so the two paths are behaviourally interchangeable.
    """
    spec = datatype._strided_spec()
    if spec is None:
        return None
    datatype.element_offsets()  # commit check (raises if freed/uncommitted)
    count, blocklength, stride = spec
    if count == 0 or blocklength == 0:
        return flat[:0].reshape(0, 1)
    first = offset_elements
    last = offset_elements + (count - 1) * stride + blocklength - 1
    if first < 0 or last >= flat.size:
        raise DatatypeError(
            f"datatype (offset {offset_elements}) reaches outside the buffer "
            f"of {flat.size} elements"
        )
    itemsize = flat.itemsize
    return np.lib.stride_tricks.as_strided(
        flat[first:],
        shape=(count, blocklength),
        strides=(stride * itemsize, itemsize),
    )


def _check_base(flat: np.ndarray, datatype: Datatype) -> None:
    if flat.dtype != datatype.base:
        raise DatatypeError(
            f"buffer dtype {flat.dtype} does not match datatype base "
            f"{datatype.base}"
        )


def _check_mode(mode: str) -> None:
    if mode not in _PACK_MODES:
        raise DatatypeError(
            f"pack/unpack mode must be one of {_PACK_MODES}, got {mode!r}"
        )


def pack(
    arr: np.ndarray,
    datatype: Datatype,
    *,
    offset_elements: int = 0,
    mode: str = "auto",
) -> np.ndarray:
    """Gather the datatype's elements from ``arr`` into a wire buffer.

    ``mode`` selects the implementation: ``"auto"`` (default) copies
    regular vector/contiguous types through a NumPy strided view — the
    ghost-face hot path — and falls back to the general fancy-index
    gather otherwise; ``"strided"`` and ``"gather"`` force one path
    (``"strided"`` raises for types with no regular layout). Both
    produce bit-identical wire buffers (asserted by the property
    suite).
    """
    _check_mode(mode)
    flat = flat_view(arr)
    _check_base(flat, datatype)
    if mode != "gather":
        window = _strided_window(flat, datatype, offset_elements)
        if window is not None:
            out = np.empty(window.size, dtype=flat.dtype)
            out.reshape(window.shape)[...] = window
            return out
        if mode == "strided":
            raise DatatypeError(
                f"{type(datatype).__name__} has no regular strided layout; "
                "use mode='auto' or 'gather'"
            )
    offsets = datatype.element_offsets() + offset_elements
    if offsets.size and (offsets.min() < 0 or offsets.max() >= flat.size):
        raise DatatypeError(
            f"datatype (offset {offset_elements}) reaches outside the buffer "
            f"of {flat.size} elements"
        )
    return flat[offsets].copy()


def unpack(
    arr: np.ndarray,
    datatype: Datatype,
    wire: np.ndarray,
    *,
    offset_elements: int = 0,
    mode: str = "auto",
) -> None:
    """Scatter a wire buffer into ``arr`` through the datatype.

    ``mode`` works as in :func:`pack`; the strided path scatters with
    one strided assignment instead of a fancy-index store.
    """
    _check_mode(mode)
    flat = flat_view(arr)
    _check_base(flat, datatype)
    wire = np.asarray(wire)
    if mode != "gather":
        window = _strided_window(flat, datatype, offset_elements)
        if window is not None:
            if wire.size != window.size:
                raise DatatypeError(
                    f"wire buffer has {wire.size} elements, datatype "
                    f"describes {window.size}"
                )
            window[...] = wire.reshape(window.shape)
            return
        if mode == "strided":
            raise DatatypeError(
                f"{type(datatype).__name__} has no regular strided layout; "
                "use mode='auto' or 'gather'"
            )
    offsets = datatype.element_offsets() + offset_elements
    if wire.size != offsets.size:
        raise DatatypeError(
            f"wire buffer has {wire.size} elements, datatype describes "
            f"{offsets.size}"
        )
    if offsets.size and (offsets.min() < 0 or offsets.max() >= flat.size):
        raise DatatypeError(
            f"datatype (offset {offset_elements}) reaches outside the buffer "
            f"of {flat.size} elements"
        )
    flat[offsets] = wire.reshape(-1)
