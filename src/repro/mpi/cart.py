"""Cartesian topologies (MPI_Cart_create workalike).

The paper decomposes the 3D Gray-Scott domain with "an MPI Cartesian
communicator" (Section 3.3); each subdomain exchanges ghost faces with
the neighbours ``shift`` reports. Rank ordering is row-major with the
last dimension varying fastest, matching MPI's convention.
"""

from __future__ import annotations

import math

from repro.mpi.comm import Comm, PROC_NULL
from repro.util.errors import MPIError


def dims_create(nnodes: int, ndims: int, dims=None) -> tuple[int, ...]:
    """Balanced factorization of ``nnodes`` into ``ndims`` factors.

    Mirrors ``MPI_Dims_create``: zero entries in ``dims`` are free to
    choose, nonzero entries are fixed constraints. Free factors are as
    close to each other as possible, in non-increasing order.

    >>> dims_create(4096, 3)
    (16, 16, 16)
    >>> dims_create(12, 2)
    (4, 3)
    >>> dims_create(12, 3, dims=[0, 2, 0])
    (3, 2, 2)
    """
    if nnodes <= 0 or ndims <= 0:
        raise MPIError(f"invalid dims_create({nnodes}, {ndims})")
    dims = list(dims) if dims is not None else [0] * ndims
    if len(dims) != ndims:
        raise MPIError(f"dims has {len(dims)} entries, expected {ndims}")
    fixed = math.prod(d for d in dims if d > 0)
    if fixed and nnodes % fixed:
        raise MPIError(f"{nnodes} ranks not divisible by fixed dims {dims}")
    remaining = nnodes // max(fixed, 1)
    free = [i for i, d in enumerate(dims) if d == 0]
    if not free:
        if fixed != nnodes:
            raise MPIError(f"fixed dims {dims} do not multiply to {nnodes}")
        return tuple(dims)

    # prime-factorize the remaining count, then greedily assign the
    # largest factors to the currently-smallest dimension
    factors = []
    n = remaining
    p = 2
    while p * p <= n:
        while n % p == 0:
            factors.append(p)
            n //= p
        p += 1
    if n > 1:
        factors.append(n)
    chosen = [1] * len(free)
    for factor in sorted(factors, reverse=True):
        smallest = min(range(len(chosen)), key=lambda i: chosen[i])
        chosen[smallest] *= factor
    chosen.sort(reverse=True)
    for slot, value in zip(free, chosen):
        dims[slot] = value
    return tuple(dims)


class CartComm(Comm):
    """A communicator with an attached Cartesian topology."""

    def __init__(self, parent: Comm, dims, periods=None):
        dims = tuple(int(d) for d in dims)
        if math.prod(dims) != parent.size:
            raise MPIError(
                f"cartesian dims {dims} multiply to {math.prod(dims)}, "
                f"communicator has {parent.size} ranks"
            )
        if any(d <= 0 for d in dims):
            raise MPIError(f"cartesian dims must be positive: {dims}")
        periods = tuple(bool(p) for p in (periods or (False,) * len(dims)))
        if len(periods) != len(dims):
            raise MPIError(
                f"periods has {len(periods)} entries, dims has {len(dims)}"
            )
        super().__init__(parent.job, parent.rank, comm_id=parent._derive_id())
        self._adopt_group(parent)
        self.dims = dims
        self.periods = periods

    @property
    def ndims(self) -> int:
        return len(self.dims)

    def coords(self, rank: int | None = None) -> tuple[int, ...]:
        """Cartesian coordinates of ``rank`` (default: this rank)."""
        rank = self.rank if rank is None else rank
        if not 0 <= rank < self.size:
            raise MPIError(f"rank {rank} outside communicator of size {self.size}")
        out = []
        for dim in reversed(self.dims):
            out.append(rank % dim)
            rank //= dim
        return tuple(reversed(out))

    def rank_of(self, coords) -> int:
        """Rank at Cartesian ``coords``; periodic wrap where allowed.

        Returns PROC_NULL for out-of-range coordinates on non-periodic
        dimensions (MPI would error; PROC_NULL composes better with
        shift-based exchange loops).
        """
        coords = list(coords)
        if len(coords) != self.ndims:
            raise MPIError(f"coords {coords} have wrong dimensionality")
        for axis, (c, dim, periodic) in enumerate(zip(coords, self.dims, self.periods)):
            if 0 <= c < dim:
                continue
            if not periodic:
                return PROC_NULL
            coords[axis] = c % dim
        rank = 0
        for c, dim in zip(coords, self.dims):
            rank = rank * dim + c
        return rank

    def shift(self, direction: int, disp: int = 1) -> tuple[int, int]:
        """(source, dest) for a shift along ``direction`` (MPI_Cart_shift).

        ``dest`` is the rank ``disp`` steps up this dimension, ``source``
        the rank the same distance down; PROC_NULL past non-periodic
        boundaries.
        """
        if not 0 <= direction < self.ndims:
            raise MPIError(
                f"shift direction {direction} outside {self.ndims} dimensions"
            )
        here = list(self.coords())
        up = list(here)
        up[direction] += disp
        down = list(here)
        down[direction] -= disp
        return self.rank_of(down), self.rank_of(up)

    def neighbors(self) -> dict[tuple[int, int], int]:
        """All face neighbours: {(direction, ±1): rank-or-PROC_NULL}."""
        out = {}
        for direction in range(self.ndims):
            source, dest = self.shift(direction, 1)
            out[(direction, +1)] = dest
            out[(direction, -1)] = source
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"CartComm(rank={self.rank}, dims={self.dims}, "
            f"coords={self.coords()}, periods={self.periods})"
        )
