"""Nonblocking communication requests (MPI_Request workalike)."""

from __future__ import annotations

import threading
from typing import Any

from repro.util.errors import MPIError


class Request:
    """Completion handle for a nonblocking operation.

    ``isend`` requests complete immediately (our sends are buffered, as
    small/medium MPI sends are in practice); ``irecv`` requests complete
    when a matching message is delivered. ``wait`` returns the received
    payload (``None`` for sends); ``test`` polls without blocking.
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._event = threading.Event()
        self._result: Any = None
        self._error: BaseException | None = None

    # -- completion (called by the comm layer) --------------------------
    def _complete(self, result: Any = None) -> None:
        self._result = result
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    # -- user API --------------------------------------------------------
    @property
    def done(self) -> bool:
        return self._event.is_set()

    def test(self):
        """(flag, result): nonblocking completion check."""
        if not self._event.is_set():
            return False, None
        if self._error is not None:
            raise self._error
        return True, self._result

    def wait(self, timeout: float | None = None):
        """Block until complete; returns the payload (None for sends)."""
        if not self._event.wait(timeout):
            raise MPIError(
                f"{self.kind} request timed out after {timeout}s "
                "(likely deadlock: no matching operation was posted)"
            )
        if self._error is not None:
            raise self._error
        return self._result

    @staticmethod
    def wait_all(requests: list["Request"], timeout: float | None = None) -> list:
        """MPI_Waitall: wait on every request, preserving order."""
        return [r.wait(timeout) for r in requests]
